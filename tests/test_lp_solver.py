"""Unit tests for the LinearProgram wrapper and HiGHS front-end."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    InfeasibleProblemError,
    LinearProgram,
    UnboundedProblemError,
    ValidationError,
    solve_lp,
)


class TestLinearProgramValidation:
    def test_objective_must_be_vector(self):
        with pytest.raises(ValidationError):
            LinearProgram(objective=np.zeros((2, 2)))

    def test_matrix_rhs_pairing(self):
        with pytest.raises(ValidationError):
            LinearProgram(objective=np.zeros(2), a_ub=sp.eye(2))

    def test_column_count_checked(self):
        with pytest.raises(ValidationError):
            LinearProgram(
                objective=np.zeros(3), a_ub=sp.eye(2), b_ub=np.zeros(2)
            )

    def test_row_count_checked(self):
        with pytest.raises(ValidationError):
            LinearProgram(
                objective=np.zeros(2), a_eq=sp.eye(2), b_eq=np.zeros(3)
            )

    def test_bounds_broadcast(self):
        lp = LinearProgram(objective=np.ones(3), lower=1.0, upper=2.0)
        lo, hi = lp.bounds_arrays()
        assert lo.tolist() == [1.0, 1.0, 1.0]
        assert hi.tolist() == [2.0, 2.0, 2.0]

    def test_crossed_bounds_rejected(self):
        lp = LinearProgram(objective=np.ones(2), lower=3.0, upper=1.0)
        with pytest.raises(ValidationError):
            lp.bounds_arrays()

    def test_scalar_rhs_accepted_for_single_row(self):
        # Regression: a 0-d rhs used to die with a bare IndexError.
        lp = LinearProgram(
            objective=np.ones(2),
            a_ub=sp.csr_matrix(np.array([[1.0, 1.0]])),
            b_ub=4.0,
        )
        assert lp.b_ub.shape == (1,)
        assert solve_lp(lp).objective == pytest.approx(0.0)

    def test_scalar_rhs_shape_mismatch_is_validation_error(self):
        with pytest.raises(ValidationError):
            LinearProgram(objective=np.ones(2), a_ub=sp.eye(2), b_ub=4.0)
        with pytest.raises(ValidationError):
            LinearProgram(objective=np.ones(2), a_eq=sp.eye(2), b_eq=1.0)

    def test_matrix_rhs_rejected(self):
        with pytest.raises(ValidationError):
            LinearProgram(
                objective=np.ones(2),
                a_ub=sp.eye(2),
                b_ub=np.ones((2, 1)),
            )


class TestNonFiniteRejection:
    """NaN/inf coefficients fail construction, not solve time."""

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_objective_must_be_finite(self, bad):
        with pytest.raises(ValidationError, match="objective"):
            LinearProgram(objective=np.array([1.0, bad]))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_b_ub_must_be_finite(self, bad):
        with pytest.raises(ValidationError, match="a_ub's rhs"):
            LinearProgram(
                objective=np.ones(2), a_ub=sp.eye(2),
                b_ub=np.array([1.0, bad]),
            )

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_b_eq_must_be_finite(self, bad):
        with pytest.raises(ValidationError, match="a_eq's rhs"):
            LinearProgram(
                objective=np.ones(2), a_eq=sp.eye(2),
                b_eq=np.array([bad, 1.0]),
            )

    def test_nan_bound_rejected(self):
        with pytest.raises(ValidationError, match="NaN"):
            LinearProgram(
                objective=np.ones(2), lower=np.array([0.0, np.nan])
            )
        with pytest.raises(ValidationError, match="NaN"):
            LinearProgram(
                objective=np.ones(2), upper=np.array([np.nan, 1.0])
            )

    def test_infinite_bounds_still_legal(self):
        # Unbounded-above variables are expressed with +inf on purpose.
        lp = LinearProgram(
            objective=np.ones(2),
            lower=np.array([0.0, -np.inf]),
            upper=np.array([np.inf, 5.0]),
        )
        lo, hi = lp.bounds_arrays()
        assert lo[1] == -np.inf and hi[0] == np.inf

    def test_inverted_infinite_bounds_rejected(self):
        with pytest.raises(ValidationError, match="lower bound"):
            LinearProgram(objective=np.ones(2), lower=np.array([0.0, np.inf]))
        with pytest.raises(ValidationError, match="upper bound"):
            LinearProgram(objective=np.ones(2), upper=np.array([-np.inf, 1.0]))


class TestSolveLP:
    def test_simple_minimize(self):
        # min x0 + x1 s.t. x0 + x1 >= 2 (as -x0 - x1 <= -2), x >= 0.
        lp = LinearProgram(
            objective=np.ones(2),
            a_ub=sp.csr_matrix(np.array([[-1.0, -1.0]])),
            b_ub=np.array([-2.0]),
        )
        sol = solve_lp(lp)
        assert sol.objective == pytest.approx(2.0)
        assert sol.x.sum() == pytest.approx(2.0)

    def test_simple_maximize(self):
        # max x0 + 2 x1 s.t. x0 + x1 <= 4, x <= 3.
        lp = LinearProgram(
            objective=np.array([1.0, 2.0]),
            a_ub=sp.csr_matrix(np.array([[1.0, 1.0]])),
            b_ub=np.array([4.0]),
            upper=3.0,
            maximize=True,
        )
        sol = solve_lp(lp)
        assert sol.objective == pytest.approx(7.0)
        assert sol.x == pytest.approx([1.0, 3.0])

    def test_equality_constraints(self):
        lp = LinearProgram(
            objective=np.array([1.0, 1.0]),
            a_eq=sp.csr_matrix(np.array([[1.0, -1.0]])),
            b_eq=np.array([1.0]),
        )
        sol = solve_lp(lp)
        assert sol.x[0] - sol.x[1] == pytest.approx(1.0)
        assert sol.objective == pytest.approx(1.0)

    def test_infeasible_raises(self):
        lp = LinearProgram(
            objective=np.ones(1),
            a_ub=sp.csr_matrix(np.array([[1.0]])),
            b_ub=np.array([-1.0]),  # x <= -1 with x >= 0
        )
        with pytest.raises(InfeasibleProblemError):
            solve_lp(lp)

    def test_unbounded_raises(self):
        lp = LinearProgram(objective=np.ones(1), maximize=True)
        with pytest.raises(UnboundedProblemError):
            solve_lp(lp)

    def test_solution_clamped_to_bounds(self):
        lp = LinearProgram(
            objective=np.ones(2),
            a_ub=sp.csr_matrix(np.array([[-1.0, -1.0]])),
            b_ub=np.array([-2.0]),
        )
        sol = solve_lp(lp)
        assert np.all(sol.x >= 0.0)

    def test_solution_clamped_to_upper_bound(self):
        # Optimum sits exactly on the upper bound; round-off above hi
        # must never leak into downstream capacity checks.
        lp = LinearProgram(
            objective=np.ones(3),
            a_ub=sp.csr_matrix(-np.eye(3)),
            b_ub=-np.full(3, 2.0),
            upper=2.0,
            maximize=False,
        )
        sol = solve_lp(lp)
        assert np.all(sol.x <= 2.0)
        assert sol.x == pytest.approx([2.0, 2.0, 2.0])

    def test_iterations_reported(self):
        lp = LinearProgram(
            objective=np.ones(2),
            a_ub=sp.csr_matrix(np.array([[-1.0, -1.0]])),
            b_ub=np.array([-2.0]),
        )
        assert solve_lp(lp).iterations >= 0
