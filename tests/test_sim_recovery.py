"""Epoch-boundary fault recovery in the periodic controller.

The acceptance scenario for the fault-tolerance work: a link fails in
the middle of a simulation, the in-flight volume riding it is voided,
the controller detects the failure at the next epoch boundary, replans
the surviving jobs around the dead link (or extends deadlines via RET
when the residual capacity cannot meet them), and the run completes
with a reproducible event log and sensible resilience metrics.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import (
    CapacityProfile,
    Job,
    JobSet,
    Simulation,
    TimeGrid,
    ValidationError,
    resilience_report,
)
from repro.faults import FaultSchedule, LinkDown, LinkUp
from repro.network import topologies
from repro.sim import (
    DeliveryLost,
    JobCompleted,
    JobDeadlineExtended,
    JobRescheduled,
    LinkFailed,
    LinkRestored,
    SchedulingPass,
)


@pytest.fixture
def diamond():
    """Two disjoint 2-hop paths 0->3 (via 1 and via 2), 1 wavelength each."""
    from repro import Network

    net = Network(wavelength_rate=1.0, name="diamond")
    net.add_link_pair(0, 1, 1)
    net.add_link_pair(1, 3, 1)
    net.add_link_pair(0, 2, 1)
    net.add_link_pair(2, 3, 1)
    return net


def normalized(events):
    """Event log with wall-clock solve times zeroed (the only
    non-deterministic field)."""
    return [
        dataclasses.replace(e, solve_seconds=0.0)
        if isinstance(e, SchedulingPass)
        else e
        for e in events
    ]


class TestAcceptanceScenario:
    """Link fails mid-simulation; the job reroutes and still completes."""

    @pytest.fixture
    def run(self, diamond):
        jobs = JobSet([Job(id="bulk", source=0, dest=3, size=8.0, start=0.0, end=8.0)])
        faults = FaultSchedule(diamond, [LinkDown(1.5, 1, 3), LinkUp(50.0, 1, 3)])
        sim = Simulation(diamond, tau=1.0, slice_length=1.0, policy="reduce",
                         fault_schedule=faults)
        return sim.run(jobs, horizon=12.0)

    def test_failure_detected_at_next_epoch_boundary(self, run):
        failures = [e for e in run.events if isinstance(e, LinkFailed)]
        assert len(failures) == 1
        # Struck at 1.5, noticed at the t=2 boundary.
        assert failures[0].failed_at == 1.5
        assert failures[0].time == 2.0
        assert (failures[0].source, failures[0].target) == (1, 3)

    def test_in_flight_volume_voided(self, run):
        lost = [e for e in run.events if isinstance(e, DeliveryLost)]
        # The epoch-1 plan split the job over both paths; the half on
        # 0-1-3 never arrived once the link died at t=1.5.
        assert len(lost) == 1
        assert lost[0].job_id == "bulk"
        assert lost[0].volume == pytest.approx(1.0, abs=1e-6)

    def test_job_rescheduled_around_failure(self, run):
        rescheduled = [e for e in run.events if isinstance(e, JobRescheduled)]
        assert [e.job_id for e in rescheduled] == ["bulk"]
        assert rescheduled[0].time == 2.0

    def test_job_completes_on_surviving_path(self, run):
        (record,) = run.records
        assert record.status == "completed"
        assert record.remaining == 0.0
        # 2 volume before the cut + 1 voided + 1/slice after: lands at
        # t=7, still inside the requested window.
        completed = [e for e in run.events if isinstance(e, JobCompleted)]
        assert completed[0].met_deadline
        assert record.completion_time == pytest.approx(7.0)

    def test_event_log_is_time_ordered(self, run):
        times = [e.time for e in run.events]
        assert times == sorted(times)

    def test_resilience_report(self, run, diamond):
        jobs = JobSet([Job(id="bulk", source=0, dest=3, size=8.0, start=0.0, end=8.0)])
        baseline = Simulation(diamond, tau=1.0, slice_length=1.0,
                              policy="reduce").run(jobs, horizon=12.0)
        report = resilience_report(run, baseline)
        assert report.num_failures == 1
        assert report.num_reschedules == 1
        assert report.volume_lost == pytest.approx(1.0, abs=1e-6)
        assert report.completion_rate == 1.0
        assert report.baseline_completion_rate == 1.0
        # Fault at 1.5, replanned in the pass at t=2 (plus solve time).
        assert len(report.recovery_latencies) == 1
        assert report.recovery_latencies[0] == pytest.approx(0.5, abs=0.2)
        rendered = report.table().render()
        assert "volume lost in flight" in rendered

    def test_baseline_with_faults_rejected(self, run):
        with pytest.raises(ValidationError):
            resilience_report(run, baseline=run)


class TestDeterminism:
    def test_same_fault_seed_identical_event_log(self, diamond):
        jobs = JobSet([
            Job(id=0, source=0, dest=3, size=6.0, start=0.0, end=10.0),
            Job(id=1, source=1, dest=2, size=4.0, start=1.0, end=9.0),
        ])

        def one_run():
            faults = FaultSchedule.random(
                diamond, horizon=30, mtbf=6, mttr=2, seed=11, degrade_prob=0.3
            )
            sim = Simulation(diamond, tau=1.0, slice_length=1.0,
                             fault_schedule=faults)
            return sim.run(jobs, horizon=30.0)

        a, b = one_run(), one_run()
        assert normalized(a.events) == normalized(b.events)
        assert [r.remaining for r in a.records] == [r.remaining for r in b.records]


class TestDisconnection:
    def test_cut_off_job_waits_for_repair(self):
        # On a line, cutting 1-2 strands a 0->2 job entirely: no reroute
        # exists, so the job holds (delivering nothing) until the repair.
        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet([Job(id="j", source=0, dest=2, size=8.0, start=0.0, end=12.0)])
        faults = FaultSchedule(net, [LinkDown(1.0, 1, 2), LinkUp(4.0, 1, 2)])
        sim = Simulation(net, tau=1.0, slice_length=1.0, fault_schedule=faults)
        result = sim.run(jobs, horizon=16.0)
        (record,) = result.records
        assert record.status == "completed"
        restored = [e for e in result.events if isinstance(e, LinkRestored)]
        assert restored[0].time == 4.0
        # No volume lands while the link is down: every pass between
        # detection (t=1) and repair (t=4) schedules nothing for the job.
        progress_times = [
            e.time for e in result.events
            if type(e).__name__ == "JobProgress" and e.job_id == "j"
        ]
        assert all(t <= 2.0 or t >= 5.0 for t in progress_times)

    def test_never_repaired_job_expires(self):
        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet([Job(id="j", source=0, dest=2, size=8.0, start=0.0, end=6.0)])
        faults = FaultSchedule(net, [LinkDown(1.0, 1, 2)])
        sim = Simulation(net, tau=1.0, slice_length=1.0, fault_schedule=faults)
        result = sim.run(jobs, horizon=10.0)
        (record,) = result.records
        assert record.status == "expired"
        assert 0.0 < record.remaining <= 8.0


class TestExtendPolicyUnderFaults:
    def test_ret_extends_deadline_when_survivor_capacity_is_short(self, diamond):
        # Needs 8 volume by t=6: fine at 2/slice on two paths, impossible
        # at 1/slice once 1-3 dies.  RET must stretch the deadline.
        jobs = JobSet([Job(id="bulk", source=0, dest=3, size=8.0, start=0.0, end=6.0)])
        faults = FaultSchedule(diamond, [LinkDown(1.5, 1, 3)])
        sim = Simulation(diamond, tau=1.0, slice_length=1.0, policy="extend",
                         fault_schedule=faults)
        result = sim.run(jobs, horizon=20.0)
        (record,) = result.records
        extensions = [e for e in result.events if isinstance(e, JobDeadlineExtended)]
        assert extensions, "RET never extended the deadline"
        assert record.status == "completed"
        assert not record.met_deadline  # finished, but late


class TestPoliciesUnderCapacityDrop:
    """Mid-horizon capacity drop via CapacityProfile: no crash, no
    physically impossible delivery, under all three policies."""

    @pytest.mark.parametrize("policy", ["reject", "reduce", "extend"])
    def test_capacity_drop_respected(self, policy):
        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        grid = TimeGrid.uniform(12)
        # Link 0-1 drops to a single wavelength for t in [2, 6).
        profile = CapacityProfile.with_maintenance(
            net, grid, [(0, 1, 2.0, 6.0, 1)]
        )
        jobs = JobSet([
            Job(id=0, source=0, dest=2, size=10.0, start=0.0, end=10.0),
            Job(id=1, source=1, dest=2, size=6.0, start=0.0, end=9.0),
        ])
        sim = Simulation(net, tau=1.0, slice_length=1.0, policy=policy,
                         capacity_profile=profile, keep_schedules=True)
        result = sim.run(jobs, horizon=12.0)

        # Every epoch's schedule honours the reduced capacities on every
        # (edge, slice) cell — delivered volume can never exceed what the
        # drained link physically carries.
        assert result.schedules, "keep_schedules did not retain any passes"
        for _, sched in result.schedules:
            loads = sched.structure.link_loads(sched.x)
            caps = sched.structure.capacity_grid()
            assert (loads <= caps + 1e-6).all()
        # The drop costs throughput but must not crash or strand jobs
        # forever: total delivered volume stays physically plausible.
        assert 0.0 < result.delivered_volume <= 16.0 + 1e-6
