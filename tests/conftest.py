"""Shared fixtures: small hand-checkable instances used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Job, JobSet, ProblemStructure, TimeGrid
from repro.network import topologies


@pytest.fixture
def line3():
    """0 - 1 - 2 line, 2 wavelengths per link, unit rate."""
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


@pytest.fixture
def diamond():
    """Two disjoint 2-hop paths from 0 to 3 (via 1 and via 2), cap 1.

    The canonical multipath instance: a 0->3 job can use both paths
    simultaneously for 2 wavelengths of aggregate rate.
    """
    from repro import Network

    net = Network(wavelength_rate=1.0, name="diamond")
    net.add_link_pair(0, 1, 1)
    net.add_link_pair(1, 3, 1)
    net.add_link_pair(0, 2, 1)
    net.add_link_pair(2, 3, 1)
    return net


@pytest.fixture
def grid4():
    """Uniform 4-slice grid of unit slices."""
    return TimeGrid.uniform(4)


@pytest.fixture
def line3_jobs():
    """Two opposing transfers on the line, each saturating at Z = 2."""
    return JobSet(
        [
            Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0),
            Job(id=1, source=2, dest=0, size=3.0, start=0.0, end=3.0),
        ]
    )


@pytest.fixture
def line3_structure(line3, line3_jobs, grid4):
    return ProblemStructure(line3, line3_jobs, grid4, k_paths=2)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
