"""Unit tests for stage 1 (maximum concurrent throughput)."""

import numpy as np
import pytest

from repro import Job, JobSet, ProblemStructure, TimeGrid, solve_stage1
from repro.core.throughput import build_stage1_lp


class TestStage1HandChecked:
    def test_line_two_opposing_jobs(self, line3_structure):
        """Each direction has its own capacity-2 links: Z* = 2 exactly."""
        result = solve_stage1(line3_structure)
        assert result.zstar == pytest.approx(2.0)
        assert not result.overloaded

    def test_diamond_multipath(self, diamond, grid4):
        """Two disjoint unit paths x 4 slices = 8 volume; size 8 -> Z* = 1."""
        jobs = JobSet([Job(id=0, source=0, dest=3, size=8.0, start=0.0, end=4.0)])
        s = ProblemStructure(diamond, jobs, grid4, k_paths=2)
        assert solve_stage1(s).zstar == pytest.approx(1.0)

    def test_diamond_single_path_halves(self, diamond, grid4):
        """Restricting to k=1 path halves the achievable throughput."""
        jobs = JobSet([Job(id=0, source=0, dest=3, size=8.0, start=0.0, end=4.0)])
        s = ProblemStructure(diamond, jobs, grid4, k_paths=1)
        assert solve_stage1(s).zstar == pytest.approx(0.5)

    def test_overloaded_flag(self, diamond, grid4):
        jobs = JobSet([Job(id=0, source=0, dest=3, size=16.0, start=0.0, end=4.0)])
        s = ProblemStructure(diamond, jobs, grid4, k_paths=2)
        result = solve_stage1(s)
        assert result.zstar == pytest.approx(0.5)
        assert result.overloaded

    def test_window_restriction_binds(self, line3, grid4):
        """A 2-slice window on a capacity-2 link caps delivery at 4."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=2.0, end=4.0)])
        s = ProblemStructure(line3, jobs, grid4)
        assert solve_stage1(s).zstar == pytest.approx(1.0)

    def test_scale_invariance(self, line3, line3_jobs, grid4):
        """Doubling every demand halves Z*."""
        s1 = ProblemStructure(line3, line3_jobs, grid4)
        s2 = ProblemStructure(line3, line3_jobs.scaled(2.0), grid4)
        z1 = solve_stage1(s1).zstar
        z2 = solve_stage1(s2).zstar
        assert z2 == pytest.approx(z1 / 2.0)

    def test_rate_normalization_equivalence(self, line3_jobs, grid4):
        """Doubling the wavelength rate doubles Z* (demand normalization)."""
        from repro.network import topologies

        s1 = ProblemStructure(
            topologies.line(3, capacity=2, wavelength_rate=1.0), line3_jobs, grid4
        )
        s2 = ProblemStructure(
            topologies.line(3, capacity=2, wavelength_rate=2.0), line3_jobs, grid4
        )
        assert solve_stage1(s2).zstar == pytest.approx(2 * solve_stage1(s1).zstar)


class TestStage1Solution:
    def test_solution_satisfies_capacity(self, line3_structure):
        result = solve_stage1(line3_structure)
        assert line3_structure.capacity_violation(result.x) <= 1e-7

    def test_solution_achieves_zstar_per_job(self, line3_structure):
        result = solve_stage1(line3_structure)
        z = line3_structure.throughputs(result.x)
        assert np.allclose(z, result.zstar, atol=1e-7)

    def test_lp_shape(self, line3_structure):
        lp = build_stage1_lp(line3_structure)
        assert lp.num_vars == line3_structure.num_cols + 1
        assert lp.maximize
        assert lp.a_eq.shape[0] == 2
        assert lp.objective[-1] == 1.0
        assert np.all(lp.objective[:-1] == 0.0)

    def test_sharing_bottleneck_fair_split(self, line3, grid4):
        """Two identical jobs on one link: each achieves Z* = capacity/size."""
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0),
                Job(id=1, source=0, dest=2, size=4.0, start=0.0, end=4.0),
            ]
        )
        s = ProblemStructure(line3, jobs, grid4)
        result = solve_stage1(s)
        assert result.zstar == pytest.approx(1.0)  # 8 volume over cap 2 * 4
