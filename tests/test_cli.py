"""Unit tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro.serialization import load_json


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    assert (
        main(
            [
                "topology", "waxman", "--nodes", "20", "--capacity", "2",
                "--rate", "10", "--seed", "5", "-o", str(path),
            ]
        )
        == 0
    )
    return path


@pytest.fixture
def jobs_file(tmp_path, net_file):
    path = tmp_path / "jobs.json"
    assert (
        main(
            [
                "workload", "--network", str(net_file), "--jobs", "6",
                "--seed", "2", "-o", str(path),
            ]
        )
        == 0
    )
    return path


class TestTopologyCommand:
    def test_abilene(self, tmp_path, capsys):
        path = tmp_path / "abilene.json"
        assert main(["topology", "abilene", "-o", str(path)]) == 0
        data = load_json(path)
        assert len(data["nodes"]) == 11
        assert "wrote" in capsys.readouterr().out

    def test_wavelength_split(self, tmp_path):
        path = tmp_path / "net.json"
        main(
            [
                "topology", "abilene", "--rate", "20", "--wavelengths", "4",
                "-o", str(path),
            ]
        )
        data = load_json(path)
        assert data["wavelength_rate"] == 5.0
        assert data["edges"][0]["capacity"] == 4

    def test_line_and_ring_and_mesh(self, tmp_path):
        for kind, nodes in (("line", 4), ("ring", 5), ("mesh", 4)):
            path = tmp_path / f"{kind}.json"
            assert main(["topology", kind, "--nodes", str(nodes), "-o", str(path)]) == 0
            assert len(load_json(path)["nodes"]) == nodes


class TestWorkloadCommand:
    def test_batch(self, jobs_file):
        data = load_json(jobs_file)
        assert len(data["jobs"]) == 6

    def test_arrival_stream(self, tmp_path, net_file):
        path = tmp_path / "stream.json"
        assert (
            main(
                [
                    "workload", "--network", str(net_file),
                    "--arrival-rate", "1.0", "--horizon", "8",
                    "--seed", "1", "-o", str(path),
                ]
            )
            == 0
        )
        data = load_json(path)
        arrivals = [j["arrival"] for j in data["jobs"]]
        assert arrivals == sorted(arrivals)


class TestScheduleCommand:
    def test_summary_and_export(self, tmp_path, net_file, jobs_file, capsys):
        out = tmp_path / "sched.json"
        code = main(
            [
                "schedule", "--network", str(net_file), "--jobs", str(jobs_file),
                "-o", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Z* (stage 1)" in printed
        data = load_json(out)
        assert data["algorithm"] == "lpdar"
        assert len(data["job_throughputs"]) == 6

    def test_profile_flag(self, net_file, jobs_file, capsys):
        assert (
            main(
                [
                    "schedule", "--network", str(net_file),
                    "--jobs", str(jobs_file), "--profile",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "telemetry — spans" in printed
        assert "telemetry — LP solves" in printed
        assert "stage1" in printed and "stage2" in printed

    def test_gantt_flag(self, net_file, jobs_file, capsys):
        assert (
            main(
                [
                    "schedule", "--network", str(net_file),
                    "--jobs", str(jobs_file), "--gantt",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "job" in printed and "link" in printed


class TestRetCommand:
    def test_ret_summary(self, net_file, jobs_file, capsys):
        assert (
            main(["ret", "--network", str(net_file), "--jobs", str(jobs_file)])
            == 0
        )
        printed = capsys.readouterr().out
        assert "b_final" in printed
        assert "jobs finished" in printed

    def test_ret_profile_prints_search_trace(self, net_file, jobs_file, capsys):
        assert (
            main(
                [
                    "ret", "--network", str(net_file), "--jobs", str(jobs_file),
                    "--profile",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "RET binary-search trace" in printed
        assert "feasible" in printed

    def test_ret_no_warm_start(self, net_file, jobs_file, capsys):
        assert (
            main(
                [
                    "ret", "--network", str(net_file), "--jobs", str(jobs_file),
                    "--no-warm-start",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "b_final" in printed
        assert "jobs finished" in printed

    def test_interval_mode(self, net_file, jobs_file, capsys):
        assert (
            main(
                [
                    "ret", "--network", str(net_file), "--jobs", str(jobs_file),
                    "--mode", "interval",
                ]
            )
            == 0
        )
        assert "interval" in capsys.readouterr().out


class TestSimulateCommand:
    @pytest.mark.parametrize("policy", ["reject", "reduce", "extend"])
    def test_policies(self, net_file, jobs_file, capsys, policy):
        assert (
            main(
                [
                    "simulate", "--network", str(net_file),
                    "--jobs", str(jobs_file), "--policy", policy,
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "num_completed" in printed

    def test_simulate_no_warm_start(self, net_file, jobs_file, capsys):
        assert (
            main(
                [
                    "simulate", "--network", str(net_file),
                    "--jobs", str(jobs_file), "--no-warm-start",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "num_completed" in printed


class TestResumeCommand:
    def test_journal_then_resume(self, tmp_path, net_file, jobs_file, capsys):
        journal = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "simulate", "--network", str(net_file),
                    "--jobs", str(jobs_file), "--journal", str(journal),
                ]
            )
            == 0
        )
        assert journal.exists()
        capsys.readouterr()
        assert main(["resume", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "resumed simulation" in out
        assert "num_completed" in out

    def test_solve_budget_flag(self, net_file, jobs_file, capsys):
        assert (
            main(
                [
                    "simulate", "--network", str(net_file),
                    "--jobs", str(jobs_file), "--solve-budget", "30",
                ]
            )
            == 0
        )
        assert "num_completed" in capsys.readouterr().out

    def test_resume_missing_journal_is_clean_error(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestFaultSpecErrors:
    """Malformed --faults files fail with error messages, not tracebacks."""

    def _simulate(self, net_file, jobs_file, spec):
        return main(
            [
                "simulate", "--network", str(net_file),
                "--jobs", str(jobs_file), "--faults", str(spec),
            ]
        )

    def test_nonexistent_fault_file(self, tmp_path, net_file, jobs_file, capsys):
        code = self._simulate(net_file, jobs_file, tmp_path / "missing.json")
        assert code == 1
        assert "error: no such file" in capsys.readouterr().err

    def test_fault_file_not_an_object(self, tmp_path, net_file, jobs_file, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps([1, 2, 3]))
        assert self._simulate(net_file, jobs_file, spec) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "'events' list" in err

    def test_non_numeric_time(self, tmp_path, net_file, jobs_file, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({
            "events": [
                {"kind": "down", "source": 0, "target": 1, "time": "soon"},
            ],
        }))
        assert self._simulate(net_file, jobs_file, spec) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "non-numeric time" in err and "'soon'" in err

    def test_bad_degrade_remaining(self, tmp_path, net_file, jobs_file, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({
            "events": [
                {"kind": "degrade", "source": 0, "target": 1,
                 "time": 1.0, "remaining": "lots"},
            ],
        }))
        assert self._simulate(net_file, jobs_file, spec) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "non-integer" in err

    def test_non_scalar_endpoint(self, tmp_path, net_file, jobs_file, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({
            "events": [
                {"kind": "down", "source": [0, 1], "target": 1, "time": 1.0},
            ],
        }))
        assert self._simulate(net_file, jobs_file, spec) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "non-scalar source" in err


class TestErrorHandling:
    def test_missing_file_is_clean_error(self, capsys):
        code = main(["schedule", "--network", "/nope.json", "--jobs", "/nope.json"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestRejectionFlag:
    def test_greedy_rejection_accepted(self, net_file, jobs_file, capsys):
        assert (
            main(
                [
                    "simulate", "--network", str(net_file),
                    "--jobs", str(jobs_file), "--policy", "reject",
                    "--rejection", "greedy",
                ]
            )
            == 0
        )
        assert "num_completed" in capsys.readouterr().out


class TestExperimentCommand:
    def test_quick_fig2(self, capsys):
        assert main(["experiment", "fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "FIG2" in out and "LPDAR/LP" in out


class TestExports:
    def test_ret_output(self, tmp_path, net_file, jobs_file):
        out = tmp_path / "ret.json"
        assert (
            main(
                [
                    "ret", "--network", str(net_file), "--jobs", str(jobs_file),
                    "-o", str(out),
                ]
            )
            == 0
        )
        data = load_json(out)
        assert "b_final" in data
        assert data["grants"]
        assert len(data["extended_ends"]) == 6

    def test_simulate_output(self, tmp_path, net_file, jobs_file):
        out = tmp_path / "run.json"
        assert (
            main(
                [
                    "simulate", "--network", str(net_file),
                    "--jobs", str(jobs_file), "-o", str(out),
                ]
            )
            == 0
        )
        data = load_json(out)
        assert len(data["records"]) == 6
        assert data["events"]


class TestCsvTraces:
    def test_workload_csv_output_and_schedule_input(self, tmp_path, net_file, capsys):
        trace = tmp_path / "jobs.csv"
        assert (
            main(
                [
                    "workload", "--network", str(net_file), "--jobs", "5",
                    "--seed", "9", "-o", str(trace),
                ]
            )
            == 0
        )
        first_line = trace.read_text().splitlines()[0]
        assert first_line.startswith("id,source,dest")
        assert (
            main(["schedule", "--network", str(net_file), "--jobs", str(trace)])
            == 0
        )
        assert "Z* (stage 1)" in capsys.readouterr().out


class TestExperimentMarkdown:
    def test_markdown_flag(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert (
            main(["experiment", "fig2", "--quick", "--markdown", str(out)])
            == 0
        )
        assert "## FIG2" in out.read_text()
        assert "wrote markdown report" in capsys.readouterr().out
