"""Differential oracles: LPDAR vs the exact MILP, highs vs simplex."""

import numpy as np
import pytest

from repro import Job, JobSet, ProblemStructure, TimeGrid, ValidationError
from repro.network import topologies
from repro.verify.oracles import (
    DEFAULT_GAP_BOUND,
    backend_cross_check,
    lpdar_vs_exact,
)


def _instance(seed: int, num_jobs: int = 3) -> ProblemStructure:
    rng = np.random.default_rng(seed)
    net = topologies.ring(6, capacity=int(rng.integers(1, 3)))
    num_slices = int(rng.integers(3, 5))
    grid = TimeGrid.uniform(num_slices)
    jobs = []
    for i in range(num_jobs):
        src, dst = rng.choice(6, size=2, replace=False)
        first = int(rng.integers(0, num_slices))
        last = int(rng.integers(first + 1, num_slices + 1))
        jobs.append(
            Job(
                id=i,
                source=int(src),
                dest=int(dst),
                size=float(rng.uniform(0.5, 6.0)),
                start=float(first),
                end=float(last),
            )
        )
    return ProblemStructure(net, JobSet(jobs), grid, k_paths=2)


class TestLpdarVsExact:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_gap_within_documented_bound(self, seed):
        outcome = lpdar_vs_exact(_instance(seed))
        assert outcome.ok, (
            outcome.lpdar_report.explain() + outcome.exact_report.explain()
        )
        assert outcome.within(DEFAULT_GAP_BOUND)
        assert outcome.gap >= 0.0

    def test_exact_bounded_by_lp_at_same_alpha(self):
        outcome = lpdar_vs_exact(_instance(11))
        if outcome.exact_alpha == outcome.alpha:
            # The MILP optimum can never beat its own LP relaxation.
            assert outcome.exact_objective <= outcome.lp_objective + 1e-6

    def test_alpha_escalation_never_decreases(self):
        outcome = lpdar_vs_exact(_instance(5), alpha=0.05, alpha_step=0.2)
        assert outcome.exact_alpha >= outcome.alpha

    def test_invalid_alpha_rejected(self):
        structure = _instance(0)
        with pytest.raises(ValidationError):
            lpdar_vs_exact(structure, alpha=1.5)
        with pytest.raises(ValidationError):
            lpdar_vs_exact(structure, alpha_step=0.0)

    def test_reports_cover_core_invariants(self):
        outcome = lpdar_vs_exact(_instance(7))
        for report in (outcome.lpdar_report, outcome.exact_report):
            for check in ("capacity", "integrality", "nonnegativity"):
                assert check in report.checks


class TestBackendCrossCheck:
    @pytest.mark.parametrize("seed", [0, 3, 8, 13])
    def test_backends_agree(self, seed):
        result = backend_cross_check(_instance(seed, num_jobs=2))
        assert result.agree, (
            f"highs={result.highs_objective} simplex={result.simplex_objective}"
        )
        assert result.difference >= 0.0

    def test_loose_tolerance_always_agrees(self):
        result = backend_cross_check(_instance(2, num_jobs=2), tol=1e6)
        assert result.agree
