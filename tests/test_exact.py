"""Tests certifying LPDAR against true integer optima (small instances).

The paper could only compare LPDAR to the LP upper bound; these tests use
HiGHS-MIP to compute the actual integer optimum on instances small enough
to solve, closing the loop: LPD <= LPDAR <= MILP <= LP.
"""

import numpy as np
import pytest

from repro import (
    InfeasibleProblemError,
    Job,
    JobSet,
    ProblemStructure,
    TimeGrid,
    lpdar,
    solve_stage1,
    solve_stage2_exact,
    solve_stage2_lp,
    solve_subret_exact,
    solve_subret_lp,
)


@pytest.fixture
def small_contended(diamond):
    jobs = JobSet(
        [
            Job(id=0, source=0, dest=3, size=5.0, start=0.0, end=3.0),
            Job(id=1, source=1, dest=2, size=3.0, start=0.0, end=3.0),
            Job(id=2, source=0, dest=2, size=2.0, start=1.0, end=3.0),
        ]
    )
    return ProblemStructure(diamond, jobs, TimeGrid.uniform(3), k_paths=2)


class TestStage2Exact:
    def test_sandwich_ordering(self, small_contended):
        s = small_contended
        zstar = solve_stage1(s).zstar
        stage2 = solve_stage2_lp(s, zstar, alpha=0.2)
        heuristic = lpdar(s, stage2.x)
        exact = solve_stage2_exact(s, zstar, alpha=0.2)
        wt = s.weighted_throughput
        assert wt(heuristic.x_lpd) <= wt(heuristic.x_lpdar) + 1e-9
        assert wt(heuristic.x_lpdar) <= wt(exact.x) + 1e-9
        assert wt(exact.x) <= stage2.objective + 1e-7

    def test_lpdar_close_to_exact(self, small_contended):
        s = small_contended
        zstar = solve_stage1(s).zstar
        stage2 = solve_stage2_lp(s, zstar, alpha=0.2)
        heuristic = lpdar(s, stage2.x)
        exact = solve_stage2_exact(s, zstar, alpha=0.2)
        ratio = s.weighted_throughput(heuristic.x_lpdar) / s.weighted_throughput(
            exact.x
        )
        assert ratio >= 0.8  # the paper's "small loss of optimality"

    def test_exact_respects_fairness(self, small_contended):
        s = small_contended
        zstar = solve_stage1(s).zstar
        exact = solve_stage2_exact(s, zstar, alpha=0.2)
        z = s.throughputs(exact.x)
        assert np.all(z >= (1 - 0.2) * zstar - 1e-7)

    def test_integer_infeasibility_remark1(self, line3):
        """Remark 1's motivating case: fractional floor, integral wavelengths.

        Two jobs share one slice of a capacity-1 link; Z* = 0.5 each.  With
        alpha = 0 the integer program must give each job >= 0.5 wavelength,
        i.e. 1 each — over capacity.  Infeasible, until alpha is raised.
        """
        from repro.network import topologies

        net = topologies.line(2, capacity=1)
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=1, size=1.0, start=0.0, end=1.0),
                Job(id=1, source=0, dest=1, size=1.0, start=0.0, end=1.0),
            ]
        )
        s = ProblemStructure(net, jobs, TimeGrid.uniform(1))
        zstar = solve_stage1(s).zstar
        assert zstar == pytest.approx(0.5)
        with pytest.raises(InfeasibleProblemError):
            solve_stage2_exact(s, zstar, alpha=0.0)
        # Raising alpha to 1.0 drops the floor to zero: now feasible.
        exact = solve_stage2_exact(s, zstar, alpha=1.0)
        assert s.weighted_throughput(exact.x) == pytest.approx(0.5)


@pytest.fixture
def small_feasible(diamond):
    """Like small_contended but light enough for SUB-RET to be feasible."""
    jobs = JobSet(
        [
            Job(id=0, source=0, dest=3, size=3.0, start=0.0, end=3.0),
            Job(id=1, source=1, dest=2, size=2.0, start=0.0, end=3.0),
            Job(id=2, source=0, dest=2, size=1.0, start=1.0, end=3.0),
        ]
    )
    return ProblemStructure(diamond, jobs, TimeGrid.uniform(3), k_paths=2)


class TestSubRetExact:
    def test_exact_matches_lp_when_integral(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, TimeGrid.uniform(4))
        lp = solve_subret_lp(s)
        exact = solve_subret_exact(s)
        assert exact.objective == pytest.approx(lp.objective)

    def test_exact_at_least_lp(self, small_feasible):
        lp = solve_subret_lp(small_feasible)
        exact = solve_subret_exact(small_feasible)
        assert exact.objective >= lp.objective - 1e-7
        delivered = small_feasible.delivered(exact.x)
        assert np.all(delivered >= small_feasible.demands - 1e-7)

    def test_exact_infeasible_when_lp_is(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=50.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, TimeGrid.uniform(4))
        with pytest.raises(InfeasibleProblemError):
            solve_subret_exact(s)
