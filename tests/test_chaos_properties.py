"""Chaos determinism properties.

Satellite: the chaos report is a pure function of ``(seed, spec,
targets)`` — two runs of the same campaign must render **byte-identical**
canonical JSON, even though each run uses fresh temp dirs, fresh
process pools, and a full crash → resume chain.  This is what makes a
chaos failure reportable: the seed alone reproduces the exact timeline.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import generate_chaos, run_chaos
from repro.network import topologies

CHAOS_SETTINGS = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def test_same_seed_byte_identical_across_all_targets():
    first = run_chaos(seed=3)
    second = run_chaos(seed=3)
    assert first.to_json() == second.to_json()
    assert first.ok == second.ok


def test_same_spec_byte_identical():
    spec = "journal:torn@1;backend:raise@0;crash:pre-commit@1"
    first = run_chaos(seed=2, spec=spec, targets=("sim",))
    second = run_chaos(seed=2, spec=spec, targets=("sim",))
    assert first.to_json() == second.to_json()


@CHAOS_SETTINGS
@given(seed=st.integers(min_value=0, max_value=20))
def test_seeded_campaign_is_reproducible(seed):
    # The fleet target is exercised by the plain tests above; the
    # solver-and-journal targets are where nondeterminism (retry
    # perturbations, resume re-execution, dict ordering) would hide.
    first = run_chaos(seed=seed, targets=("sim", "serve"))
    second = run_chaos(seed=seed, targets=("sim", "serve"))
    assert first.to_json() == second.to_json()


@CHAOS_SETTINGS
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_generated_timeline_is_a_pure_function_of_the_seed(seed):
    net = topologies.ring(4, capacity=2)
    assert (
        generate_chaos(seed, net, 12.0).to_dict()
        == generate_chaos(seed, net, 12.0).to_dict()
    )
