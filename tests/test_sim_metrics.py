"""Unit tests for simulation summaries."""

import numpy as np
import pytest

from repro import Job, JobSet, Simulation, summarize
from repro.network import topologies


@pytest.fixture
def net():
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


class TestSummarize:
    def test_clean_run(self, net):
        jobs = JobSet(
            [
                Job(id="a", source=0, dest=2, size=4.0, start=0.0, end=4.0),
                Job(id="b", source=2, dest=0, size=2.0, start=0.0, end=3.0),
            ]
        )
        summary = summarize(Simulation(net, policy="reduce").run(jobs))
        assert summary.num_jobs == 2
        assert summary.num_completed == 2
        assert summary.num_rejected == 0
        assert summary.completion_rate == 1.0
        assert summary.deadline_rate == 1.0
        assert summary.delivered_volume == pytest.approx(6.0)
        assert summary.offered_volume == pytest.approx(6.0)
        assert summary.mean_lateness == 0.0
        assert summary.mean_response_time > 0.0
        assert summary.num_scheduling_passes >= 1
        assert summary.mean_solve_seconds > 0.0
        assert summary.mean_zstar >= 1.0

    def test_overloaded_extend_run_counts_extensions(self, net):
        jobs = JobSet(
            [
                Job(id="a", source=0, dest=2, size=10.0, start=0.0, end=3.0),
                Job(id="b", source=0, dest=2, size=8.0, start=0.0, end=3.0),
            ]
        )
        summary = summarize(Simulation(net, policy="extend").run(jobs))
        assert summary.num_deadline_extensions >= 1
        assert summary.completion_rate == 1.0
        assert summary.mean_lateness > 0.0

    def test_expired_jobs_counted(self, net):
        jobs = JobSet(
            [Job(id="a", source=0, dest=2, size=50.0, start=0.0, end=2.0)]
        )
        summary = summarize(Simulation(net, policy="reduce").run(jobs, horizon=4.0))
        assert summary.num_expired == 1
        assert summary.num_completed == 0
        assert np.isnan(summary.mean_response_time)
        assert summary.delivered_volume == pytest.approx(4.0)


class TestUtilizationTracking:
    def test_mean_utilization_reported(self, net):
        jobs = JobSet(
            [Job(id="a", source=0, dest=2, size=4.0, start=0.0, end=4.0)]
        )
        summary = summarize(Simulation(net, policy="reduce").run(jobs))
        assert 0.0 < summary.mean_utilization <= 1.0

    def test_heavier_load_higher_utilization(self, net):
        light = JobSet(
            [Job(id="a", source=0, dest=2, size=2.0, start=0.0, end=4.0)]
        )
        heavy = JobSet(
            [
                Job(id=i, source=0, dest=2, size=6.0, start=0.0, end=4.0)
                for i in range(3)
            ]
        )
        s_light = summarize(Simulation(net, policy="reduce").run(light))
        s_heavy = summarize(Simulation(net, policy="reduce").run(heavy))
        assert s_heavy.mean_utilization >= s_light.mean_utilization
