"""Unit tests for wavelength realization (lambda index assignment)."""

import numpy as np
import pytest

from repro import Job, JobSet, ProblemStructure, Scheduler, TimeGrid, ValidationError
from repro.core.realization import realize_schedule
from repro.network import topologies


@pytest.fixture
def two_hop(line3):
    jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
    return ProblemStructure(line3, jobs, TimeGrid.uniform(4))


class TestConverterMode:
    def test_counts_preserved(self, two_hop):
        x = np.array([2.0, 1.0, 0.0, 2.0])
        result = realize_schedule(two_hop, x, continuity="converters")
        assert result.fully_realized
        assert sum(g.wavelengths for g in result.grants) == 5
        assert {g.slice_index for g in result.grants} == {0, 1, 3}

    def test_no_lambda_reuse_per_edge_slice(self, line3):
        """Two jobs sharing the 0->1 edge must get disjoint lambdas."""
        jobs = JobSet(
            [
                Job(id="a", source=0, dest=1, size=1.0, start=0.0, end=1.0),
                Job(id="b", source=0, dest=2, size=1.0, start=0.0, end=1.0),
            ]
        )
        s = ProblemStructure(line3, jobs, TimeGrid.uniform(1))
        x = np.ones(s.num_cols)
        result = realize_schedule(s, x)
        used: dict[tuple, list] = {}
        for grant in result.grants:
            for hop, lams in enumerate(grant.lambdas_per_edge):
                u, v = grant.path[hop], grant.path[hop + 1]
                key = (u, v, grant.slice_index)
                for lam in lams:
                    assert lam not in used.get(key, []), "lambda reused"
                    used.setdefault(key, []).append(lam)

    def test_lambda_indices_within_capacity(self, two_hop):
        x = np.array([2.0, 2.0, 2.0, 2.0])
        result = realize_schedule(two_hop, x)
        for grant in result.grants:
            for lams in grant.lambdas_per_edge:
                assert all(0 <= lam < 2 for lam in lams)

    def test_single_link_grants_always_continuous(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=1, size=1.0, start=0.0, end=1.0)])
        s = ProblemStructure(line3, jobs, TimeGrid.uniform(1))
        result = realize_schedule(s, np.array([2.0]))
        assert result.continuity_rate() == 1.0


class TestStrictContinuity:
    def test_idle_network_is_continuous(self, two_hop):
        x = np.array([2.0, 0.0, 0.0, 0.0])
        result = realize_schedule(two_hop, x, continuity="strict")
        assert result.fully_realized
        assert all(g.is_continuous for g in result.grants)

    def test_fragmentation_causes_failure(self):
        """Count-feasible but continuity-infeasible: the classic case.

        Path a-b-c with 2 lambdas per link.  Job1 takes lambda 0 on a-b;
        job2 takes lambda 1 on b-c (via single-hop grants).  A 1-wave
        grant on a-b-c then has lambda 1 free on a-b but only lambda 0
        free on b-c: no common lambda, despite one free on each hop.
        """
        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id="ab", source=0, dest=1, size=1.0, start=0.0, end=1.0),
                Job(id="bc", source=1, dest=2, size=1.0, start=0.0, end=1.0),
                Job(id="abc", source=0, dest=2, size=1.0, start=0.0, end=1.0),
            ]
        )
        s = ProblemStructure(net, jobs, TimeGrid.uniform(1))
        x = np.ones(s.num_cols)
        # Force fragmentation: manually take lambda 0 on (0,1) and we
        # need the through-grant processed last (job order does that).
        result = realize_schedule(s, x, continuity="strict")
        # Jobs ab and bc realize; first-fit gives both lambda 0, so the
        # through path sees lambda 1 free on both hops -> succeeds.
        # (First-fit from the bottom is exactly why operators like it.)
        assert result.fully_realized

    def test_true_fragmentation_failure(self, line3):
        """Make the middle link's only free lambda differ across hops."""
        net = topologies.line(3, capacity=1, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id="ab", source=0, dest=1, size=1.0, start=0.0, end=1.0),
                Job(id="abc", source=0, dest=2, size=1.0, start=0.0, end=2.0),
            ]
        )
        s = ProblemStructure(net, jobs, TimeGrid.uniform(2))
        x = np.zeros(s.num_cols)
        x[s.column(0, 0, 0)] = 1.0  # ab takes (0,1) lambda 0 on slice 0
        x[s.column(1, 0, 0)] = 0.0
        x[s.column(1, 0, 1)] = 1.0  # abc rides slice 1: free everywhere
        result = realize_schedule(s, x, continuity="strict")
        assert result.fully_realized  # different slices never conflict

    def test_strict_failure_recorded(self):
        """Capacity 1: two single-hop takers block a through grant."""
        net = topologies.line(3, capacity=1, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id="ab", source=0, dest=1, size=1.0, start=0.0, end=1.0),
                Job(id="abc", source=0, dest=2, size=1.0, start=0.0, end=1.0),
            ]
        )
        s = ProblemStructure(net, jobs, TimeGrid.uniform(1))
        x = np.ones(s.num_cols)
        # Count check: (0,1) carries ab + abc = 2 > capacity 1 -> reject.
        with pytest.raises(ValidationError, match="violates capacity"):
            realize_schedule(s, x, continuity="strict")

    def test_strict_on_real_schedule(self):
        """A full LPDAR schedule realizes (mostly) even without converters."""
        net = topologies.abilene().with_wavelengths(4, 20.0)
        from repro import WorkloadGenerator

        jobs = WorkloadGenerator(net, seed=3).jobs(10)
        result = Scheduler(net).schedule(jobs)
        strict = realize_schedule(result.structure, result.x, "strict")
        converters = realize_schedule(result.structure, result.x, "converters")
        assert converters.fully_realized
        total = len(strict.grants) + len(strict.failures)
        assert len(converters.grants) == total
        # Strict mode realizes the large majority of grants first-fit.
        assert len(strict.grants) >= 0.7 * total


class TestValidation:
    def test_fractional_rejected(self, two_hop):
        with pytest.raises(ValidationError, match="integer"):
            realize_schedule(two_hop, np.full(4, 0.5))

    def test_negative_rejected(self, two_hop):
        x = np.zeros(4)
        x[0] = -1.0
        with pytest.raises(ValidationError):
            realize_schedule(two_hop, x)

    def test_capacity_violation_rejected(self, two_hop):
        x = np.zeros(4)
        x[0] = 99.0
        with pytest.raises(ValidationError, match="capacity"):
            realize_schedule(two_hop, x)

    def test_unknown_mode_rejected(self, two_hop):
        with pytest.raises(ValidationError, match="continuity"):
            realize_schedule(two_hop, np.zeros(4), continuity="psychic")

    def test_wrong_shape_rejected(self, two_hop):
        with pytest.raises(ValidationError):
            realize_schedule(two_hop, np.zeros(2))

    def test_empty_schedule(self, two_hop):
        result = realize_schedule(two_hop, np.zeros(4))
        assert result.grants == ()
        assert np.isnan(result.continuity_rate())
