"""Property-based tests (hypothesis) for the core invariants.

These encode the structural guarantees the algorithms rest on:

* flooring never raises a value; Algorithm 1 never lowers one;
* no algorithm ever violates a link capacity;
* the LPD <= LPDAR <= LP objective sandwich;
* ``Z*`` scale invariance;
* time-grid window arithmetic.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    TimeGrid,
    discretize,
    greedy_adjust,
    lpdar,
    solve_stage1,
    solve_stage2_lp,
    verify_assignment,
)
from repro.network import topologies

# Keep solver-backed examples modest: each example solves LPs.
SOLVER_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Pure-array properties
# ----------------------------------------------------------------------
class TestDiscretizeProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_floor_bounds(self, values):
        x = np.array(values)
        out = discretize(x)
        assert np.all(out <= x + 1e-6)
        assert np.all(out >= x - 1.0)
        assert np.array_equal(out, np.rint(out))

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100
        )
    )
    def test_integers_are_fixed_points(self, values):
        x = np.array(values, dtype=float)
        assert np.array_equal(discretize(x), x)


class TestTimeGridProperties:
    @given(
        num=st.integers(min_value=1, max_value=50),
        length=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    )
    def test_lengths_sum_to_horizon(self, num, length):
        grid = TimeGrid.uniform(num, length)
        assert grid.lengths.sum() == pytest.approx(grid.horizon)

    @given(
        num=st.integers(min_value=1, max_value=30),
        data=st.data(),
    )
    def test_slice_of_is_consistent(self, num, data):
        grid = TimeGrid.uniform(num)
        t = data.draw(
            st.floats(min_value=0.0, max_value=float(num), allow_nan=False)
        )
        j = grid.slice_of(t)
        assert grid.slice_start(j) <= t <= grid.slice_end(j) + 1e-12

    @given(
        num=st.integers(min_value=1, max_value=30),
        a=st.integers(min_value=0, max_value=29),
        b=st.integers(min_value=0, max_value=29),
    )
    def test_aligned_windows_exact(self, num, a, b):
        lo, hi = sorted((min(a, num), min(b, num)))
        grid = TimeGrid.uniform(num)
        window = grid.window_slices(float(lo), float(hi))
        assert window == range(lo, hi)

    @given(
        num=st.integers(min_value=1, max_value=20),
        extra=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    )
    def test_extended_preserves_prefix(self, num, extra):
        grid = TimeGrid.uniform(num)
        bigger = grid.extended(grid.end + extra)
        assert np.allclose(bigger.boundaries[: num + 1], grid.boundaries)
        assert bigger.end >= grid.end + extra


# ----------------------------------------------------------------------
# Solver-backed properties on random small instances
# ----------------------------------------------------------------------
def _random_instance(seed: int, num_jobs: int):
    """A random contended instance on a 6-node ring (always has 2 paths)."""
    rng = np.random.default_rng(seed)
    net = topologies.ring(6, capacity=int(rng.integers(1, 4)))
    num_slices = int(rng.integers(2, 6))
    grid = TimeGrid.uniform(num_slices)
    jobs = []
    for i in range(num_jobs):
        src, dst = rng.choice(6, size=2, replace=False)
        first = int(rng.integers(0, num_slices))
        last = int(rng.integers(first + 1, num_slices + 1))
        jobs.append(
            Job(
                id=i,
                source=int(src),
                dest=int(dst),
                size=float(rng.uniform(0.5, 8.0)),
                start=float(first),
                end=float(last),
            )
        )
    return ProblemStructure(net, JobSet(jobs), grid, k_paths=2)


@st.composite
def instances(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_jobs = draw(st.integers(min_value=1, max_value=5))
    return _random_instance(seed, num_jobs)


class TestPipelineProperties:
    @SOLVER_SETTINGS
    @given(instances())
    def test_lpdar_sandwich_and_feasibility(self, structure):
        zstar = solve_stage1(structure).zstar
        stage2 = solve_stage2_lp(structure, zstar, alpha=0.1)
        result = lpdar(structure, stage2.x)

        # Feasibility and integrality via the shared invariant checker
        # (capacity, integrality where claimed, and non-negativity).
        assert verify_assignment(structure, result.x_lp, integral=False).ok
        assert verify_assignment(structure, result.x_lpd).ok
        assert verify_assignment(structure, result.x_lpdar).ok

        # Monotonicity of the pipeline.
        assert np.all(result.x_lpd <= result.x_lp + 1e-6)
        assert np.all(result.x_lpdar >= result.x_lpd)

        # Objective sandwich.  Note LPDAR may exceed the *fairness-
        # constrained* LP (Algorithm 1 packs residuals without honouring
        # constraint (9)), so the upper bound is the fairness-free LP
        # (alpha = 1), which is capacity-limited only.
        wt = structure.weighted_throughput
        assert wt(result.x_lpd) <= wt(result.x_lpdar) + 1e-9
        unconstrained = solve_stage2_lp(structure, zstar, alpha=1.0)
        assert wt(result.x_lpdar) <= wt(unconstrained.x) + 1e-6
        assert wt(result.x_lpd) <= wt(result.x_lp) + 1e-6

    @SOLVER_SETTINGS
    @given(instances())
    def test_stage1_scale_invariance(self, structure):
        z1 = solve_stage1(structure).zstar
        scaled = ProblemStructure(
            structure.network,
            structure.jobs.scaled(2.0),
            structure.grid,
            k_paths=2,
        )
        z2 = solve_stage1(scaled).zstar
        assert z2 == pytest.approx(z1 / 2.0, rel=1e-6, abs=1e-9)

    @SOLVER_SETTINGS
    @given(instances())
    def test_stage1_solution_uniform_throughput(self, structure):
        result = solve_stage1(structure)
        z = structure.throughputs(result.x)
        assert np.allclose(z, result.zstar, atol=1e-6)

    @SOLVER_SETTINGS
    @given(instances(), st.sampled_from(["paper", "deficit_first"]))
    def test_greedy_saturates_or_respects_capacity(self, structure, order):
        x0 = np.zeros(structure.num_cols)
        x = greedy_adjust(structure, x0, order=order)
        residual = structure.residual_capacity(x)
        assert residual.min() >= -1e-9
        # After the paper's greedy pass, no path with a column on a slice
        # may still have leftover bandwidth along its whole length
        # (cap_at_target=False grants everything available).
        for i in range(len(structure.jobs)):
            for p, path in enumerate(structure.paths[i]):
                edges = np.asarray(path.edge_ids)
                for j in structure.allowed_slices(i):
                    assert residual[edges, j].min() <= 1e-9

    @SOLVER_SETTINGS
    @given(instances())
    def test_greedy_with_cap_never_overshoots_demand_from_zero(self, structure):
        """With cap_at_target, delivery exceeds demand by < one slice grant."""
        x = greedy_adjust(
            structure,
            np.zeros(structure.num_cols),
            cap_at_target=True,
        )
        delivered = structure.delivered(x)
        max_len = structure.grid.lengths.max()
        caps = structure.network.capacities().max()
        assert np.all(delivered <= structure.demands + max_len * caps + 1e-9)
