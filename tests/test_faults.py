"""Unit tests for the fault-injection package (repro.faults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TimeGrid, ValidationError
from repro.faults import (
    FaultSchedule,
    LinkDown,
    LinkUp,
    WavelengthDegrade,
    parse_fault_spec,
)
from repro.network import topologies
from repro.serialization import save_json


@pytest.fixture
def line3():
    """0 - 1 - 2 line, 2 wavelengths per link, unit rate."""
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


class TestFaultEvents:
    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            LinkDown(-1.0, 0, 1)

    def test_non_finite_time_rejected(self):
        with pytest.raises(ValidationError):
            LinkUp(float("nan"), 0, 1)

    def test_identical_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            LinkDown(1.0, 0, 0)

    def test_degrade_remaining_must_be_whole_and_nonnegative(self):
        with pytest.raises(ValidationError):
            WavelengthDegrade(1.0, 0, 1, -1)
        with pytest.raises(ValidationError):
            WavelengthDegrade(1.0, 0, 1, 1.5)
        assert WavelengthDegrade(1.0, 0, 1, 1.0).remaining == 1


class TestFaultSchedule:
    def test_unknown_edge_rejected(self, line3):
        with pytest.raises(ValidationError):
            FaultSchedule(line3, [LinkDown(1.0, 0, 2)])  # 0-2 is two hops

    def test_events_sorted_by_time(self, line3):
        fs = FaultSchedule(
            line3, [LinkUp(5.0, 0, 1), LinkDown(2.0, 0, 1)]
        )
        assert [e.time for e in fs.events] == [2.0, 5.0]
        assert fs.horizon == 5.0
        assert len(fs) == 2

    def test_capacity_at_tracks_down_and_up(self, line3):
        fs = FaultSchedule(line3, [LinkDown(2.0, 0, 1), LinkUp(5.0, 0, 1)])
        e01 = line3.edge_id(0, 1)
        e10 = line3.edge_id(1, 0)
        assert fs.capacity_at(0.0)[e01] == 2
        # Bidirectional by default: both fiber directions fail.
        assert fs.capacity_at(3.0)[e01] == 0
        assert fs.capacity_at(3.0)[e10] == 0
        assert fs.capacity_at(5.0)[e01] == 2

    def test_unidirectional_event_spares_reverse_edge(self, line3):
        fs = FaultSchedule(line3, [LinkDown(1.0, 0, 1, bidirectional=False)])
        assert fs.capacity_at(2.0)[line3.edge_id(0, 1)] == 0
        assert fs.capacity_at(2.0)[line3.edge_id(1, 0)] == 2

    def test_degrade_clamped_to_installed(self, line3):
        fs = FaultSchedule(line3, [WavelengthDegrade(1.0, 0, 1, 99)])
        assert fs.capacity_at(2.0)[line3.edge_id(0, 1)] == 2

    def test_min_capacity_over_sees_mid_interval_fault(self, line3):
        fs = FaultSchedule(line3, [LinkDown(2.5, 0, 1), LinkUp(2.8, 0, 1)])
        e01 = line3.edge_id(0, 1)
        # Fault strikes and heals inside [2, 3): the slice minimum is 0
        # even though both endpoints of the interval are healthy.
        assert fs.min_capacity_over(2.0, 3.0)[e01] == 0
        assert fs.min_capacity_over(3.0, 4.0)[e01] == 2
        with pytest.raises(ValidationError):
            fs.min_capacity_over(3.0, 3.0)

    def test_failed_edges_at(self, line3):
        fs = FaultSchedule(line3, [LinkDown(1.0, 1, 2)])
        failed = fs.failed_edges_at(2.0)
        assert failed == {line3.edge_id(1, 2), line3.edge_id(2, 1)}
        assert fs.failed_edges_at(0.5) == frozenset()

    def test_compile_matches_manual_minimum(self, line3):
        fs = FaultSchedule(line3, [LinkDown(1.5, 0, 1), LinkUp(3.0, 0, 1)])
        profile = fs.compile(TimeGrid.uniform(5))
        e01 = line3.edge_id(0, 1)
        # Slice 1 ([1,2)) catches the failure mid-slice; slice 3 is the
        # first fully healthy one again (repair lands exactly at 3.0).
        assert profile.matrix[e01].tolist() == [2, 0, 0, 2, 2]
        untouched = line3.edge_id(1, 2)
        assert profile.matrix[untouched].tolist() == [2, 2, 2, 2, 2]

    def test_snapshot_profile_is_constant_over_grid(self, line3):
        fs = FaultSchedule(line3, [LinkDown(1.0, 0, 1), LinkUp(4.0, 0, 1)])
        snap = fs.snapshot_profile(TimeGrid.uniform(6), 2.0)
        e01 = line3.edge_id(0, 1)
        # The controller cannot see the repair at t=4: the snapshot holds
        # the failed state across every slice.
        assert (snap.matrix[e01] == 0).all()
        assert (snap.matrix[line3.edge_id(1, 2)] == 2).all()

    def test_events_between_is_half_open(self, line3):
        fs = FaultSchedule(line3, [LinkDown(1.0, 0, 1), LinkUp(2.0, 0, 1)])
        assert [type(e) for e in fs.events_between(0.0, 1.0)] == [LinkDown]
        assert [type(e) for e in fs.events_between(1.0, 2.0)] == [LinkUp]

    def test_edges_of_rejects_foreign_event(self, line3):
        fs = FaultSchedule(line3, [LinkDown(1.0, 0, 1)])
        assert set(fs.edges_of(fs.events[0])) == {
            line3.edge_id(0, 1),
            line3.edge_id(1, 0),
        }
        with pytest.raises(ValidationError):
            fs.edges_of(LinkDown(9.0, 1, 2))


class TestRandomSchedules:
    def test_same_seed_same_events(self, line3):
        a = FaultSchedule.random(line3, horizon=100, mtbf=10, mttr=2, seed=5)
        b = FaultSchedule.random(line3, horizon=100, mtbf=10, mttr=2, seed=5)
        assert a.events == b.events

    def test_different_seeds_differ(self, line3):
        a = FaultSchedule.random(line3, horizon=200, mtbf=5, mttr=2, seed=1)
        b = FaultSchedule.random(line3, horizon=200, mtbf=5, mttr=2, seed=2)
        assert a.events != b.events

    def test_downs_and_ups_pair_up(self, line3):
        fs = FaultSchedule.random(line3, horizon=100, mtbf=10, mttr=1, seed=3)
        downs = sum(isinstance(e, LinkDown) for e in fs.events)
        ups = sum(isinstance(e, LinkUp) for e in fs.events)
        assert downs > 0 and downs == ups
        # Every outage eventually heals: at the horizon's far side all
        # links are back at installed capacity.
        assert (fs.capacity_at(fs.horizon + 1.0) == line3.capacities()).all()

    def test_degrade_prob_draws_degrades(self, line3):
        fs = FaultSchedule.random(
            line3, horizon=500, mtbf=5, mttr=1, seed=0, degrade_prob=1.0
        )
        kinds = {type(e) for e in fs.events}
        assert LinkDown not in kinds and WavelengthDegrade in kinds

    def test_parameter_validation(self, line3):
        with pytest.raises(ValidationError):
            FaultSchedule.random(line3, horizon=0, mtbf=1, mttr=1)
        with pytest.raises(ValidationError):
            FaultSchedule.random(line3, horizon=10, mtbf=0, mttr=1)
        with pytest.raises(ValidationError):
            FaultSchedule.random(line3, horizon=10, mtbf=1, mttr=1, degrade_prob=2.0)


class TestFaultSpecs:
    def test_inline_spec(self, line3):
        fs = parse_fault_spec("down:0-1@2; up:0-1@5; degrade:1-2@3=1", line3)
        assert fs.events == (
            LinkDown(2.0, 0, 1),
            WavelengthDegrade(3.0, 1, 2, 1),
            LinkUp(5.0, 0, 1),
        )

    def test_inline_unidirectional_marker(self, line3):
        fs = parse_fault_spec("down:0-1@2!", line3)
        assert fs.events[0].bidirectional is False

    def test_inline_rejects_malformed(self, line3):
        for bad in ("down:0-1", "flip:0-1@2", "down:0@2", "degrade:0-1@2", ""):
            with pytest.raises(ValidationError):
                parse_fault_spec(bad, line3)

    def test_random_spec_requires_horizon(self, line3):
        with pytest.raises(ValidationError):
            parse_fault_spec("random:mtbf=10,mttr=2", line3)

    def test_random_spec_matches_direct_call(self, line3):
        fs = parse_fault_spec(
            "random:mtbf=10,mttr=2,degrade_prob=0.5", line3, seed=9, horizon=50
        )
        direct = FaultSchedule.random(
            line3, horizon=50, mtbf=10, mttr=2, seed=9, degrade_prob=0.5
        )
        assert fs.events == direct.events

    def test_random_spec_rejects_unknown_keys(self, line3):
        with pytest.raises(ValidationError):
            parse_fault_spec("random:mtbf=10,mttr=2,mojo=1", line3, horizon=50)

    def test_json_file_spec(self, line3, tmp_path):
        path = tmp_path / "faults.json"
        save_json(
            {
                "events": [
                    {"kind": "down", "source": 0, "target": 1, "time": 2.0},
                    {"kind": "up", "source": 0, "target": 1, "time": 4.0},
                    {
                        "kind": "degrade",
                        "source": 1,
                        "target": 2,
                        "time": 1.0,
                        "remaining": 1,
                        "bidirectional": False,
                    },
                ]
            },
            path,
        )
        fs = parse_fault_spec(str(path), line3)
        assert len(fs) == 3
        assert fs.events[0] == WavelengthDegrade(1.0, 1, 2, 1, bidirectional=False)

    def test_json_file_spec_rejects_bad_payload(self, line3, tmp_path):
        path = tmp_path / "faults.json"
        save_json({"events": [{"kind": "down", "source": 0, "target": 1}]}, path)
        with pytest.raises(ValidationError):
            parse_fault_spec(str(path), line3)
