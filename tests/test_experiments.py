"""Tests for the programmatic paper-figure experiments (quick mode)."""

import pytest

from repro import ValidationError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    fig1_random_throughput,
    fig2_abilene_throughput,
    fig3_computation_time,
    fig4_ret_end_time,
    jobs_finished,
    run_experiment,
)


class TestExperimentResult:
    @pytest.fixture(scope="class")
    def fig2(self):
        return fig2_abilene_throughput(quick=True)

    def test_structure(self, fig2):
        assert isinstance(fig2, ExperimentResult)
        assert fig2.experiment_id == "FIG2"
        assert len(fig2.rows) == 3  # quick sweep
        assert all(len(r) == len(fig2.columns) for r in fig2.rows)
        assert fig2.seconds > 0

    def test_table_renders(self, fig2):
        out = fig2.table().render()
        assert "FIG2" in out
        assert "LPDAR/LP" in out

    def test_column_accessor(self, fig2):
        ws = fig2.column("wavelengths/link")
        assert ws == [2, 4, 8]
        with pytest.raises(ValidationError):
            fig2.column("nope")

    def test_fig2_shape(self, fig2):
        lpd = fig2.column("LPD/LP")
        lpdar = fig2.column("LPDAR/LP")
        assert lpd == sorted(lpd)  # improves with W
        assert all(r >= 0.9 for r in lpdar)
        assert lpd[0] < lpdar[0]


class TestQuickRuns:
    def test_fig1_quick_preserves_shape(self):
        result = fig1_random_throughput(quick=True)
        lpd = result.column("LPD/LP")
        lpdar = result.column("LPDAR/LP")
        assert lpd[0] < lpdar[0]
        assert all(a <= b + 1e-9 for a, b in zip(lpd, lpd[1:]))

    def test_fig3_quick_lp_dominates(self):
        result = fig3_computation_time(quick=True)
        ratios = result.column("LPDAR/LP time")
        assert all(r < 2.0 for r in ratios)

    def test_fig4_quick_lp_not_slower(self):
        result = fig4_ret_end_time(quick=True)
        lp = result.column("avg end LP")
        lpdar = result.column("avg end LPDAR")
        for a, b in zip(lp, lpdar):
            assert a <= b + 1e-9
        assert all(f == 1.0 for f in result.column("LPDAR finished"))

    def test_jobs_finished_quick(self):
        result = jobs_finished(quick=True)
        assert all(f == 1.0 for f in result.column("LP finished"))
        assert all(f == 1.0 for f in result.column("LPDAR finished"))
        assert all(f <= 0.25 for f in result.column("LPD finished"))


class TestRegistry:
    def test_all_registered(self):
        assert set(EXPERIMENTS) >= {
            "fig1", "fig2", "fig3", "fig4", "jobs-finished",
            "ablation-alpha", "ablation-paths", "ablation-continuity",
        }

    def test_run_experiment_dispatch(self):
        result = run_experiment("fig2", quick=True)
        assert result.experiment_id == "FIG2"

    def test_unknown_experiment(self):
        with pytest.raises(ValidationError, match="unknown experiment"):
            run_experiment("fig99")


class TestAblationExperiments:
    def test_registered(self):
        for name in ("ablation-alpha", "ablation-paths", "ablation-continuity"):
            assert name in EXPERIMENTS

    def test_ablation_alpha_quick(self):
        result = run_experiment("ablation-alpha", quick=True)
        objectives = result.column("LP objective")
        assert objectives == sorted(objectives)  # relaxing helps

    def test_ablation_paths_quick(self):
        result = run_experiment("ablation-paths", quick=True)
        aggregates = result.column("aggregate throughput")
        assert aggregates == sorted(aggregates)  # more paths never hurt

    def test_ablation_continuity_quick(self):
        result = run_experiment("ablation-continuity", quick=True)
        rates = result.column("strict first-fit ok")
        assert all(0.0 <= r <= 1.0 for r in rates)


class TestMarkdownReport:
    def test_write_report_quick(self, tmp_path):
        from repro.experiments import write_report

        path = tmp_path / "report.md"
        results = write_report(path, names=["fig2"], quick=True)
        assert len(results) == 1
        text = path.read_text()
        assert text.startswith("# Reproduction report")
        assert "## FIG2" in text
        assert "| wavelengths/link |" in text

    def test_render_report_empty_rejected(self):
        from repro.experiments import render_report

        with pytest.raises(ValidationError):
            render_report([])
