"""The invariant checker: report mechanics, mutation coverage, wiring.

The heart of this file is the 7-way mutation test: a known-good
serialized schedule is corrupted in one way per invariant class, and
the checker must flag exactly that class (and flag *nothing* on the
clean schedule).  A checker that can't tell its seven invariants apart
would pass tests while verifying nothing.
"""

import copy
import json

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    ScheduleError,
    Scheduler,
    TimeGrid,
    ValidationError,
    solve_ret,
    verify_assignment,
    verify_grants,
    verify_schedule,
)
from repro.faults import FaultSchedule, LinkDown, LinkUp
from repro.network import topologies
from repro.serialization import report_to_dict, schedule_to_dict
from repro.sim.simulator import Simulation
from repro.verify import CHECKS, VerificationReport, Violation


@pytest.fixture(scope="module")
def good():
    """A deterministic schedule that is fair, complete and feasible."""
    net = topologies.ring(6, capacity=2)
    jobs = JobSet(
        [
            Job(id="a", source=0, dest=2, size=2.0, start=0.0, end=3.0),
            Job(id="b", source=1, dest=4, size=1.5, start=1.0, end=4.0),
            Job(id="c", source=5, dest=3, size=1.0, start=0.0, end=2.0),
        ]
    )
    grid = TimeGrid.uniform(4)
    result = Scheduler(net, k_paths=2, alpha_max=1.0).schedule(jobs, grid)
    assert result.meets_fairness() and result.fraction_finished() == 1.0
    return net, jobs, grid, result, schedule_to_dict(result)


def _check(net, jobs, grid, schedule, **kw):
    return verify_schedule(net, schedule, jobs=jobs, grid=grid, **kw)


# ----------------------------------------------------------------------
# Clean schedules
# ----------------------------------------------------------------------
class TestCleanSchedule:
    def test_live_result_passes(self, good):
        _, _, _, result, _ = good
        report = verify_schedule(None, result)
        assert report.ok
        assert not report.violations

    def test_serialized_passes_with_no_violations(self, good):
        net, jobs, grid, _, data = good
        report = _check(net, jobs, grid, data)
        assert report.ok
        assert not report.violations  # not even warnings

    def test_serialized_passes_complete_mode(self, good):
        net, jobs, grid, _, data = good
        report = _check(net, jobs, grid, data, require_complete=True)
        assert report.ok

    def test_result_verify_hook(self, good):
        _, _, _, result, _ = good
        assert result.verify().ok
        assert result.verify("lp").ok

    def test_json_round_trip_same_report(self, good, tmp_path):
        net, jobs, grid, _, data = good
        before = _check(net, jobs, grid, data)
        path = tmp_path / "sched.json"
        path.write_text(json.dumps(data))
        after = _check(net, jobs, grid, json.loads(path.read_text()))
        assert before == after


# ----------------------------------------------------------------------
# The 7-way mutation test (acceptance criterion)
# ----------------------------------------------------------------------
def _error_codes(report):
    return {v.code for v in report.errors}


class TestMutations:
    def test_capacity_mutation(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        bad["grants"][0]["wavelengths"] += 50
        assert "capacity" in _error_codes(_check(net, jobs, grid, bad))

    def test_integrality_mutation(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        bad["grants"][0]["wavelengths"] = 0.5
        assert "integrality" in _error_codes(_check(net, jobs, grid, bad))

    def test_window_mutation(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        # Job "c"'s window is [0, 2); slice 3 exists but is outside it.
        grant = next(g for g in bad["grants"] if g["job"] == "c")
        grant["slice"] = 3
        assert "window" in _error_codes(_check(net, jobs, grid, bad))

    def test_demand_mutation(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        bad["fairness_met"] = False  # isolate the demand check
        bad["grants"] = [g for g in bad["grants"] if g["job"] != "a"]
        report = _check(net, jobs, grid, bad, require_complete=True)
        assert "demand" in _error_codes(report)

    def test_continuity_mutation(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        # Nodes 0 and 3 both exist but are not adjacent on the ring.
        bad["grants"][0]["path"] = [0, 3]
        assert "continuity" in _error_codes(_check(net, jobs, grid, bad))

    def test_fairness_mutation(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        # Starve job "a" while the schedule still claims the floor holds.
        bad["grants"] = [g for g in bad["grants"] if g["job"] != "a"]
        assert "fairness" in _error_codes(_check(net, jobs, grid, bad))

    def test_nonnegativity_mutation(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        bad["grants"][0]["wavelengths"] = -1
        assert "nonnegativity" in _error_codes(_check(net, jobs, grid, bad))


# ----------------------------------------------------------------------
# Stale / malformed schedules must report, never crash (satellite fix)
# ----------------------------------------------------------------------
class TestStaleSchedules:
    def test_unknown_node_reports_reference(self, good):
        net, jobs, grid, _, data = good
        # Verify a ring(6) schedule against a shrunken ring(5): any
        # grant touching node 5 now references a node that is gone.
        small = topologies.ring(5, capacity=2)
        stale_jobs = JobSet(
            [
                Job(id="a", source=0, dest=2, size=2.0, start=0.0, end=3.0),
                Job(id="b", source=1, dest=4, size=1.5, start=1.0, end=4.0),
                Job(id="c", source=4, dest=3, size=1.0, start=0.0, end=2.0),
            ]
        )
        report = verify_schedule(small, data, jobs=stale_jobs, grid=grid)
        assert not report.ok
        codes = {v.code for v in report.violations}
        assert codes <= {"reference", "continuity", "fairness", "demand"}
        assert "reference" in codes or "continuity" in codes

    def test_unknown_job_reports_reference(self, good):
        net, jobs, grid, _, data = good
        fewer = JobSet([j for j in jobs if j.id != "b"])
        report = verify_schedule(net, data, jobs=fewer, grid=grid)
        assert not report.ok
        assert "reference" in _error_codes(report)

    def test_garbage_grants_do_not_crash(self, good):
        net, jobs, grid, _, _ = good
        report = verify_grants(
            net,
            jobs,
            grid,
            [
                {"job": "nope", "path": None, "slice": "x", "wavelengths": 1},
                {"job": "a"},
                "not even a dict",
            ],
        )
        assert not report.ok

    def test_out_of_grid_slice_is_window(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        bad["grants"][0]["slice"] = 99
        assert "window" in _error_codes(_check(net, jobs, grid, bad))


# ----------------------------------------------------------------------
# Vector engine details
# ----------------------------------------------------------------------
class TestVerifyAssignment:
    def test_corrupted_vector_capacity(self, good):
        _, _, _, result, _ = good
        x = result.x.copy()
        x[np.argmax(x)] += 100
        report = verify_assignment(result.structure, x)
        assert "capacity" in _error_codes(report)

    def test_fractional_vector_integrality(self, good):
        _, _, _, result, _ = good
        x = result.x.astype(float).copy()
        x[int(np.argmax(x))] += 0.25
        report = verify_assignment(result.structure, x)
        assert "integrality" in _error_codes(report)
        # The same vector is fine when declared fractional (LP mode) —
        # unless it also broke capacity.
        relaxed = verify_assignment(result.structure, x, integral=False)
        assert "integrality" not in {v.code for v in relaxed.violations}

    def test_negative_vector(self, good):
        _, _, _, result, _ = good
        x = result.x.copy().astype(float)
        x[0] = -1.0
        report = verify_assignment(result.structure, x)
        assert "nonnegativity" in _error_codes(report)

    def test_fairness_armed_by_zstar_alpha(self, good):
        _, _, _, result, _ = good
        x = np.zeros_like(result.x, dtype=float)
        report = verify_assignment(
            result.structure, x, zstar=result.zstar, alpha=0.1
        )
        assert "fairness" in _error_codes(report)
        unarmed = verify_assignment(result.structure, x)
        assert "fairness" not in {v.code for v in unarmed.violations}

    def test_wrong_shape_raises(self, good):
        _, _, _, result, _ = good
        with pytest.raises(ValidationError):
            verify_assignment(result.structure, np.zeros(3))


# ----------------------------------------------------------------------
# Report object
# ----------------------------------------------------------------------
class TestReportObject:
    def test_render_marks_skipped_checks(self, good):
        _, _, _, result, _ = good
        text = verify_schedule(None, result).render()
        assert "skipped" in text
        assert "capacity" in text

    def test_by_code_validates(self, good):
        _, _, _, result, _ = good
        report = verify_schedule(None, result)
        assert report.by_code("capacity") == ()
        with pytest.raises(ValidationError):
            report.by_code("not-a-check")

    def test_raise_if_failed(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        bad["grants"][0]["wavelengths"] = -2
        report = _check(net, jobs, grid, bad)
        with pytest.raises(ScheduleError):
            report.raise_if_failed()

    def test_violation_str_mentions_location(self):
        v = Violation(
            code="capacity",
            severity="error",
            message="too many wavelengths",
            edge=(0, 1),
            slice_index=2,
        )
        text = str(v)
        assert "capacity" in text and "2" in text

    def test_checks_catalogue_is_stable(self):
        assert CHECKS == (
            "nonnegativity",
            "integrality",
            "capacity",
            "window",
            "continuity",
            "demand",
            "fairness",
            "reference",
        )

    def test_report_to_dict_is_json_ready(self, good):
        net, jobs, grid, _, data = good
        bad = copy.deepcopy(data)
        bad["grants"][0]["wavelengths"] += 50
        report = _check(net, jobs, grid, bad)
        doc = report_to_dict(report)
        json.dumps(doc)  # must not raise
        assert doc["ok"] is False
        assert doc["violations"][0]["code"] == "capacity"
        with pytest.raises(ValidationError):
            report_to_dict({"not": "a report"})


# ----------------------------------------------------------------------
# RET hook
# ----------------------------------------------------------------------
class TestRetVerify:
    def test_ret_result_completes_and_verifies(self):
        net = topologies.line(4, capacity=1)
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=3, size=4.0, start=0.0, end=2.0),
                Job(id=1, source=1, dest=3, size=2.0, start=0.0, end=2.0),
            ]
        )
        result = solve_ret(net, jobs, k_paths=1)
        report = result.verify()
        assert "demand" in report.checks
        assert report.ok

    def test_ret_dispatcher_defaults_complete(self):
        net = topologies.line(3, capacity=1)
        jobs = JobSet([Job(id=0, source=0, dest=2, size=2.0, start=0.0, end=2.0)])
        result = solve_ret(net, jobs, k_paths=1)
        report = verify_schedule(None, result)
        assert report.ok  # demand check armed and satisfied


# ----------------------------------------------------------------------
# Simulation verify_epochs
# ----------------------------------------------------------------------
class TestSimulationVerification:
    def _net_jobs(self):
        net = topologies.ring(6, capacity=2)
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=3, size=3.0, start=0.0, end=4.0),
                Job(id=1, source=2, dest=5, size=2.0, start=0.0, end=3.0),
            ]
        )
        return net, jobs

    def test_off_by_default(self):
        net, jobs = self._net_jobs()
        result = Simulation(net, k_paths=2).run(jobs)
        assert result.verification == ()

    def test_collects_reports_fault_free(self):
        net, jobs = self._net_jobs()
        result = Simulation(net, k_paths=2, verify_epochs=True).run(jobs)
        assert len(result.verification) >= 1
        assert all(isinstance(r, VerificationReport) for r in result.verification)
        assert all(r.ok for r in result.verification)

    def test_verifies_fault_voided_epochs(self):
        net, jobs = self._net_jobs()
        # A mid-epoch cut (t=0.5) voids in-flight volume; the realized
        # allocation must then be re-verified against fault capacities.
        fs = FaultSchedule(
            net,
            [
                LinkDown(time=0.5, source=0, target=1),
                LinkDown(time=0.5, source=2, target=3),
                LinkUp(time=2.5, source=0, target=1),
                LinkUp(time=2.5, source=2, target=3),
            ],
        )
        result = Simulation(
            net, k_paths=2, fault_schedule=fs, verify_epochs=True
        ).run(jobs)
        assert len(result.verification) >= 1
        assert all(r.ok for r in result.verification)
        # At least one report is the fractional realized-allocation kind
        # (integrality deliberately not among its checks).
        assert any("integrality" not in r.checks for r in result.verification)

    def test_matches_unverified_run(self):
        net, jobs = self._net_jobs()
        plain = Simulation(net, k_paths=2).run(jobs)
        checked = Simulation(net, k_paths=2, verify_epochs=True).run(jobs)
        assert plain.num_completed == checked.num_completed
        assert plain.delivered_volume == pytest.approx(checked.delivered_volume)
