"""Unit tests for reconfiguration churn."""

import pytest

from repro import Job, JobSet, Scheduler, TimeGrid, ValidationError
from repro.analysis import reconfiguration_churn
from repro.network import topologies


@pytest.fixture
def net():
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


def schedule(net, jobs, grid=None):
    return Scheduler(net).schedule(jobs, grid)


class TestChurn:
    def test_identical_schedules_have_zero_churn(self, net, line3_jobs):
        a = schedule(net, line3_jobs)
        b = schedule(net, line3_jobs)
        report = reconfiguration_churn(a, b)
        assert report.churn_fraction == 0.0
        assert report.retention == 1.0
        assert report.added == 0.0

    def test_disjoint_jobs_full_churn(self, net):
        grid = TimeGrid.uniform(4)
        a = schedule(net, JobSet(
            [Job(id="a", source=0, dest=2, size=4.0, start=0.0, end=4.0)]
        ), grid)
        b = schedule(net, JobSet(
            [Job(id="b", source=2, dest=0, size=4.0, start=0.0, end=4.0)]
        ), grid)
        report = reconfiguration_churn(a, b)
        assert report.kept == 0.0
        assert report.churn_fraction == 1.0
        assert report.added > 0

    def test_partial_overlap(self, net):
        grid = TimeGrid.uniform(4)
        shared = Job(id="keep", source=0, dest=2, size=8.0, start=0.0, end=4.0)
        a = schedule(net, JobSet([shared]), grid)
        b = schedule(
            net,
            JobSet([shared, Job(id="new", source=2, dest=0, size=4.0,
                                start=0.0, end=4.0)]),
            grid,
        )
        report = reconfiguration_churn(a, b)
        # The kept job's grants ride different directions than the new
        # job's, so the old configuration survives entirely.
        assert report.retention == pytest.approx(1.0)
        assert report.added > 0

    def test_overlap_window_respected(self, net):
        """Grants outside the common time range are ignored."""
        a = schedule(net, JobSet(
            [Job(id="a", source=0, dest=2, size=4.0, start=0.0, end=4.0)]
        ), TimeGrid.uniform(4))
        b = schedule(net, JobSet(
            [Job(id="a", source=0, dest=2, size=2.0, start=2.0, end=6.0)]
        ), TimeGrid([2.0, 3.0, 4.0, 5.0, 6.0]))
        report = reconfiguration_churn(a, b)
        # Only slices [2, 4) are comparable.
        assert report.old_total <= 2 * 2  # at most 2 slices x 2 wavelengths

    def test_no_overlap_raises(self, net):
        a = schedule(net, JobSet(
            [Job(id="a", source=0, dest=2, size=2.0, start=0.0, end=2.0)]
        ), TimeGrid.uniform(2))
        b = schedule(net, JobSet(
            [Job(id="a", source=0, dest=2, size=2.0, start=5.0, end=7.0)]
        ), TimeGrid([5.0, 6.0, 7.0]))
        with pytest.raises(ValidationError, match="overlap"):
            reconfiguration_churn(a, b)

    def test_empty_old_schedule_nan(self, net):
        grid = TimeGrid.uniform(2)
        tiny = JobSet([Job(id="a", source=0, dest=2, size=0.1, start=0.0, end=2.0)])
        a = schedule(net, tiny, grid)
        b = schedule(net, tiny, grid)
        report = reconfiguration_churn(a, b)
        # Both schedules exist; totals may be small but well-defined.
        assert report.kept >= 0
