"""Smoke-run every example script.

The examples are part of the public deliverable; each must run to
completion from a clean interpreter.  They are executed as subprocesses
so import-time and ``__main__`` behaviour are exercised exactly as a
user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

ALL_SCRIPTS = sorted(p.name for p in EXAMPLES.glob("*.py"))


def test_every_example_is_covered():
    """Keep this list in sync with the examples directory."""
    assert ALL_SCRIPTS == sorted(
        [
            "quickstart.py",
            "abilene_hep_campaign.py",
            "ret_negotiation.py",
            "online_controller.py",
            "maintenance_window.py",
            "nsfnet_deployment.py",
            "upgrade_advisor.py",
            "negotiation_rounds.py",
        ]
    )


@pytest.mark.parametrize("script", ALL_SCRIPTS)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
