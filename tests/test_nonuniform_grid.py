"""Correctness on non-uniform time grids.

Most tests use unit slices, where several distinct quantities coincide
(wavelengths == volume per slice, slice index == time).  These tests use
irregular slice lengths to pin down that every ``LEN(j)`` factor sits in
the right place: constraint (2)'s volume accounting, the objective
weights, Quick-Finish costs, and the metrics.
"""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    TimeGrid,
    greedy_adjust,
    lpdar,
    solve_stage1,
    solve_stage2_lp,
    solve_subret_lp,
)
from repro.core.metrics import average_end_time, per_slice_delivery
from repro.network import topologies


@pytest.fixture
def net():
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


@pytest.fixture
def grid():
    # Slices of lengths 0.5, 1.5, 2.0 covering [0, 4].
    return TimeGrid([0.0, 0.5, 2.0, 4.0])


class TestStage1NonUniform:
    def test_zstar_accounts_for_slice_lengths(self, net, grid):
        """Capacity 2 x total length 4 = 8 volume; size 4 -> Z* = 2."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        assert solve_stage1(s).zstar == pytest.approx(2.0)

    def test_partial_window_uses_contained_slices_only(self, net, grid):
        """Window [0.5, 4.0] contains slices 1 and 2: 3.5 time units."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=7.0, start=0.5, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        assert s.allowed_slices(0) == range(1, 3)
        assert solve_stage1(s).zstar == pytest.approx(2 * 3.5 / 7.0)

    def test_col_len_matches_grid(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        assert s.col_len.tolist() == [0.5, 1.5, 2.0]


class TestStage2NonUniform:
    def test_objective_counts_volume_not_wavelengths(self, net, grid):
        """One wavelength on the long slice beats one on the short slice."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=8.0, start=0.0, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        zstar = solve_stage1(s).zstar
        result = solve_stage2_lp(s, zstar, alpha=0.1)
        # Full pipe: 2 wavelengths x 4 time = 8 volume = exactly the demand.
        assert result.objective == pytest.approx(1.0)
        assert s.delivered(result.x)[0] == pytest.approx(8.0)

    def test_lpdar_keeps_volume_accounting(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=5.0, start=0.0, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        zstar = solve_stage1(s).zstar
        stage2 = solve_stage2_lp(s, zstar, alpha=0.1)
        rounded = lpdar(s, stage2.x)
        assert s.capacity_violation(rounded.x_lpdar) == 0.0
        # Greedy fills every wavelength-slice: delivered = 8 regardless
        # of slice lengths.
        assert s.delivered(rounded.x_lpdar)[0] == pytest.approx(8.0)


class TestSubRetNonUniform:
    def test_quick_finish_weighs_wavelengths_not_volume(self, net, grid):
        """The QF cost gamma(j) * x prices *wavelength counts*.

        Moving 1 volume costs: slice 0 (len 0.5): x=2, cost 2*1 = 2;
        slice 1 (len 1.5): x=2/3, cost (2/3)*2 = 4/3; slice 2 (len 2):
        x=0.5, cost 0.5*3 = 1.5.  The optimum is the *longer, later*
        slice 1 — on non-uniform grids Quick-Finish is about cheap
        wavelength usage, not strictly earliest volume.
        """
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        sol = solve_subret_lp(s)
        assert sol.x[1] == pytest.approx(2.0 / 3.0)
        assert sol.x[0] == pytest.approx(0.0)
        assert sol.x[2] == pytest.approx(0.0)
        assert sol.objective == pytest.approx(4.0 / 3.0)

    def test_demand_met_exactly_with_lengths(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=3.0, start=0.0, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        sol = solve_subret_lp(s)
        assert s.delivered(sol.x)[0] >= 3.0 - 1e-9


class TestMetricsNonUniform:
    def test_per_slice_delivery_scales_by_length(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=8.0, start=0.0, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        x = np.array([2.0, 1.0, 1.0])
        assert per_slice_delivery(s, x)[0].tolist() == [1.0, 1.5, 2.0]

    def test_average_end_time_in_slice_counts(self, net, grid):
        """Completion is measured in slices even when lengths differ."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=2.5, start=0.0, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        x = np.array([2.0, 1.0, 0.0])  # cumulative volume 1.0, 2.5
        assert average_end_time(s, x) == pytest.approx(2.0)

    def test_greedy_on_nonuniform_targets(self, net, grid):
        """cap_at_target needs ceil(deficit / LEN(j)) wavelengths."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=3.0, start=0.0, end=4.0)])
        s = ProblemStructure(net, jobs, grid)
        x = greedy_adjust(s, np.zeros(3), cap_at_target=True)
        delivered = s.delivered(x)[0]
        assert delivered >= 3.0 - 1e-9
        # Overshoot bounded by one slice-grant.
        assert delivered <= 3.0 + 2 * 2.0


class TestSimulatorNonUniformTau:
    def test_tau_spanning_multiple_slices(self):
        """tau = 2 slices: execution windows cover two slices per epoch."""
        from repro import Simulation

        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet([Job(id=0, source=0, dest=2, size=6.0, start=0.0, end=4.0)])
        result = Simulation(net, tau=2.0, slice_length=1.0, policy="reduce").run(jobs)
        rec = result.records[0]
        assert rec.status == "completed"
        assert rec.completion_time <= 4.0

    def test_fractional_slice_length(self):
        from repro import Simulation

        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet([Job(id=0, source=0, dest=2, size=2.0, start=0.0, end=2.0)])
        result = Simulation(
            net, tau=0.5, slice_length=0.5, policy="reduce"
        ).run(jobs)
        assert result.records[0].status == "completed"
