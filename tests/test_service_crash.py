"""Crash-matrix tests for the reservation service.

The acceptance criterion, verbatim: for every service crash point ×
{accept, reject, negotiate} outcome, killing a journaled service there
and resuming it yields a commitment book byte-identical (same digest)
to the uncrashed run's, with no duplicate ledger entries and no
request decided twice.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import (
    SERVICE_CRASH_POINTS,
    CrashInjector,
    Job,
    JobSet,
    SimulatedCrash,
)
from repro.network import topologies
from repro.service import ClosedLoopDriver, ReservationService


def _accept_net():
    return topologies.ring(4, capacity=2)


def _tight_net():
    return topologies.line(2, capacity=1, wavelength_rate=1.0)


def _slow_net():
    """Rate 0.5: size-2 jobs take >= 4 epochs, so crashes late in the
    execution phase have live reservations to threaten."""
    return topologies.ring(4, capacity=1, wavelength_rate=0.5)


def _accept_jobs(net):
    """All admissible: every decision is an accept."""
    return JobSet(
        [
            Job(id=i, source=net.nodes[i % 4], dest=net.nodes[(i + 2) % 4],
                size=2.0, start=float(i % 2), end=float(i % 2) + 6.0)
            for i in range(6)
        ]
    )


def _reject_jobs(net):
    """Hopelessly oversized: rejected even after maximal RET extension."""
    return JobSet(
        [
            Job(id="fits", source=net.nodes[0], dest=net.nodes[1],
                size=1.0, start=0.0, end=4.0),
            Job(id="hopeless", source=net.nodes[0], dest=net.nodes[1],
                size=1000.0, start=1.0, end=3.0),
        ]
    )


def _negotiate_jobs(net):
    """Z* < 1 in the requested window, but a later end time completes."""
    return JobSet(
        [
            Job(id="big", source=net.nodes[0], dest=net.nodes[1],
                size=10.0, start=0.0, end=2.0),
        ]
    )


SCENARIOS = {
    "accept": (_accept_net, _accept_jobs, {}),
    "reject": (_tight_net, _reject_jobs, {"ret_b_max": 2.0}),
    "negotiate": (_tight_net, _negotiate_jobs, {"ret_b_max": 10.0}),
}


def _run(net, jobs, path, crash=None, **kwargs):
    """One driver run; returns (service, report-or-None if crashed)."""
    service = ReservationService(
        net, journal=str(path), crash_injector=crash, **kwargs
    )
    driver = ClosedLoopDriver(service, jobs)
    try:
        report = asyncio.run(driver.run())
    except SimulatedCrash:
        service.close()
        return service, driver, None
    return service, driver, report


@pytest.mark.parametrize("outcome", sorted(SCENARIOS))
@pytest.mark.parametrize("point", SERVICE_CRASH_POINTS)
def test_crash_matrix(tmp_path, point, outcome):
    make_net, make_jobs, kwargs = SCENARIOS[outcome]
    net = make_net()

    clean_svc, _, clean_report = _run(
        net, make_jobs(net), tmp_path / "clean.jsonl", **kwargs
    )
    assert clean_report is not None
    clean_digest = clean_svc.book.digest()
    clean_ledger = dict(clean_svc.book.ledger)
    clean_svc.close()

    # Crash in epoch 1: after the first decisions are journaled, while
    # work is still in flight (renegotiations, executing reservations).
    path = tmp_path / "crash.jsonl"
    crashed_svc, driver, report = _run(
        net, make_jobs(net), path,
        crash=CrashInjector(point, 1), **kwargs
    )
    assert report is None, f"injector at {point}@1 never fired"

    resumed = ReservationService.resume(str(path))
    driver.resume_with(resumed)
    asyncio.run(driver.run())

    assert resumed.book.digest() == clean_digest, (
        f"{outcome} outcome diverged after crash at {point}"
    )
    # No duplicate ledger entries: exactly the clean run's decisions.
    assert resumed.book.ledger == clean_ledger
    resumed.close()


def test_crash_at_epoch_zero_header_only_journal(tmp_path):
    """Pre-batch at epoch 0 leaves a header-only journal; resume works."""
    net = _accept_net()
    path = tmp_path / "early.jsonl"
    _, driver, report = _run(
        net, _accept_jobs(net), path, crash=CrashInjector("pre-batch", 0)
    )
    assert report is None

    clean_svc, _, _ = _run(net, _accept_jobs(net), tmp_path / "clean.jsonl")
    clean_digest = clean_svc.book.digest()
    clean_svc.close()

    resumed = ReservationService.resume(str(path))
    assert resumed.epoch == 0
    assert not resumed.book.ledger
    driver.resume_with(resumed)
    asyncio.run(driver.run())
    assert resumed.book.digest() == clean_digest
    resumed.close()


def test_no_request_responded_twice(tmp_path):
    """Post-crash resubmission replays the ledger; the driver sees each
    origin decided exactly once per run and the ledger never grows a
    duplicate."""
    net = _accept_net()
    jobs = _accept_jobs(net)
    path = tmp_path / "dup.jsonl"
    _, driver, report = _run(
        net, jobs, path, crash=CrashInjector("pre-respond", 1)
    )
    assert report is None

    resumed = ReservationService.resume(str(path))
    driver.resume_with(resumed)
    asyncio.run(driver.run())
    # Every original request decided exactly once in the final ledger.
    origins = {key.split("~", 1)[0] for key in resumed.book.ledger}
    assert origins == {str(j.id) for j in jobs}
    for job in jobs:
        matching = [k for k in resumed.book.ledger if k == str(job.id)]
        assert len(matching) == 1
    # Replayed resubmissions were counted, not re-decided.
    assert resumed.stats.counters["duplicate_submissions"] >= 1
    resumed.close()


def test_double_crash_double_resume(tmp_path):
    """Crash, resume, crash again later, resume again: still identical."""
    net = _slow_net()
    clean_svc, _, _ = _run(net, _accept_jobs(net), tmp_path / "clean.jsonl")
    clean_digest = clean_svc.book.digest()
    clean_svc.close()

    path = tmp_path / "twice.jsonl"
    _, driver, report = _run(
        net, _accept_jobs(net), path, crash=CrashInjector("post-solve", 1)
    )
    assert report is None

    resumed = ReservationService.resume(
        str(path), crash_injector=CrashInjector("pre-respond", 3)
    )
    driver.resume_with(resumed)
    with pytest.raises(SimulatedCrash):
        asyncio.run(driver.run())
    resumed.close()

    final = ReservationService.resume(str(path))
    driver.resume_with(final)
    asyncio.run(driver.run())
    assert final.book.digest() == clean_digest
    final.close()


def test_fault_voiding_survives_crash(tmp_path):
    """A link fault voids affected reservations into renegotiation; the
    void + renegotiation chain replays identically across a crash."""
    from repro.faults.schedule import FaultSchedule
    from repro.faults.events import LinkDown

    net = _slow_net()
    jobs = _accept_jobs(net)
    edge = net.edges[0]
    faults = FaultSchedule(
        net, [LinkDown(time=2.0, source=edge.source, target=edge.target)]
    )

    def run(path, crash=None):
        service = ReservationService(
            net, journal=str(path), fault_schedule=faults,
            crash_injector=crash,
        )
        driver = ClosedLoopDriver(service, jobs)
        try:
            report = asyncio.run(driver.run())
        except SimulatedCrash:
            service.close()
            return service, driver, None
        return service, driver, report

    clean_svc, _, clean_report = run(tmp_path / "clean.jsonl")
    assert clean_report is not None
    clean_digest = clean_svc.book.digest()
    clean_svc.close()

    path = tmp_path / "crash.jsonl"
    _, driver, report = run(path, crash=CrashInjector("post-solve", 3))
    assert report is None

    resumed = ReservationService.resume(str(path))
    driver.resume_with(resumed)
    asyncio.run(driver.run())
    assert resumed.book.digest() == clean_digest
    resumed.close()
