"""Tests for the from-scratch two-phase simplex backend.

The key property is *agreement*: on every instance small enough for the
dense tableau, the simplex backend must report the same status and
optimal objective as HiGHS — including on the paper's own stage-1 and
SUB-RET problems, which doubles as a check that the constraint blocks
are assembled solver-independently.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    InfeasibleProblemError,
    Job,
    JobSet,
    LinearProgram,
    ProblemStructure,
    TimeGrid,
    UnboundedProblemError,
    ValidationError,
    solve_lp,
)
from repro.core.ret import build_subret_lp
from repro.core.stage2 import build_stage2_lp
from repro.core.throughput import build_stage1_lp
from repro.lp.simplex import simplex_solve
from repro.network import topologies


class TestBasics:
    def test_simple_minimize(self):
        lp = LinearProgram(
            objective=np.ones(2),
            a_ub=sp.csr_matrix(np.array([[-1.0, -1.0]])),
            b_ub=np.array([-2.0]),
        )
        sol = simplex_solve(lp)
        assert sol.objective == pytest.approx(2.0)
        assert sol.x.sum() == pytest.approx(2.0)

    def test_simple_maximize_with_upper_bounds(self):
        lp = LinearProgram(
            objective=np.array([1.0, 2.0]),
            a_ub=sp.csr_matrix(np.array([[1.0, 1.0]])),
            b_ub=np.array([4.0]),
            upper=3.0,
            maximize=True,
        )
        sol = simplex_solve(lp)
        assert sol.objective == pytest.approx(7.0)

    def test_equality_constraints(self):
        lp = LinearProgram(
            objective=np.array([2.0, 3.0]),
            a_eq=sp.csr_matrix(np.array([[1.0, 1.0]])),
            b_eq=np.array([5.0]),
        )
        sol = simplex_solve(lp)
        assert sol.objective == pytest.approx(10.0)
        assert sol.x == pytest.approx([5.0, 0.0])

    def test_shifted_lower_bounds(self):
        lp = LinearProgram(
            objective=np.ones(2), lower=np.array([1.0, 2.0]), upper=10.0
        )
        sol = simplex_solve(lp)
        assert sol.x == pytest.approx([1.0, 2.0])
        assert sol.objective == pytest.approx(3.0)

    def test_infeasible(self):
        lp = LinearProgram(
            objective=np.ones(1),
            a_ub=sp.csr_matrix(np.array([[1.0]])),
            b_ub=np.array([-1.0]),
        )
        with pytest.raises(InfeasibleProblemError):
            simplex_solve(lp)

    def test_crossed_bounds_infeasible(self):
        lp = LinearProgram(
            objective=np.ones(1),
            a_eq=sp.csr_matrix(np.array([[1.0]])),
            b_eq=np.array([0.5]),
            lower=1.0,
            upper=2.0,
        )
        with pytest.raises(InfeasibleProblemError):
            simplex_solve(lp)

    def test_unbounded(self):
        lp = LinearProgram(objective=np.ones(1), maximize=True)
        with pytest.raises(UnboundedProblemError):
            simplex_solve(lp)

    def test_degenerate_does_not_cycle(self):
        """A classically degenerate LP (Beale-like) must terminate."""
        lp = LinearProgram(
            objective=np.array([-0.75, 150.0, -0.02, 6.0]),
            a_ub=sp.csr_matrix(
                np.array(
                    [
                        [0.25, -60.0, -0.04, 9.0],
                        [0.5, -90.0, -0.02, 3.0],
                        [0.0, 0.0, 1.0, 0.0],
                    ]
                )
            ),
            b_ub=np.array([0.0, 0.0, 1.0]),
        )
        sol = simplex_solve(lp)
        assert sol.objective == pytest.approx(-0.05)

    def test_size_guard(self):
        lp = LinearProgram(
            objective=np.ones(10),
            a_ub=sp.csr_matrix(np.ones((5, 10))),
            b_ub=np.ones(5),
        )
        with pytest.raises(ValidationError, match="too large"):
            simplex_solve(lp, size_limit=10)

    def test_negative_infinite_lower_rejected(self):
        lp = LinearProgram(objective=np.ones(1), lower=-np.inf, upper=1.0)
        with pytest.raises(ValidationError, match="finite lower"):
            simplex_solve(lp)

    def test_backend_dispatch(self):
        lp = LinearProgram(
            objective=np.ones(1),
            a_ub=sp.csr_matrix(np.array([[-1.0]])),
            b_ub=np.array([-1.0]),
        )
        assert solve_lp(lp, backend="simplex").objective == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            solve_lp(lp, backend="cplex")


class TestAgreementWithHighs:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_lps_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(1, 5))
        lp = LinearProgram(
            objective=rng.normal(size=n),
            a_ub=sp.csr_matrix(rng.normal(size=(m, n))),
            b_ub=rng.uniform(0.5, 3.0, size=m),
            upper=np.where(
                rng.random(n) < 0.5, rng.uniform(1, 5, size=n), np.inf
            ),
            maximize=bool(rng.random() < 0.5),
        )
        try:
            ref = solve_lp(lp).objective
        except UnboundedProblemError:
            with pytest.raises(UnboundedProblemError):
                simplex_solve(lp)
            return
        assert simplex_solve(lp).objective == pytest.approx(ref, abs=1e-7)

    @pytest.fixture
    def small_structure(self, diamond):
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=3, size=5.0, start=0.0, end=3.0),
                Job(id=1, source=1, dest=2, size=2.0, start=0.0, end=2.0),
            ]
        )
        return ProblemStructure(diamond, jobs, TimeGrid.uniform(3), k_paths=2)

    def test_stage1_agrees(self, small_structure):
        lp = build_stage1_lp(small_structure)
        highs = solve_lp(lp)
        mine = simplex_solve(lp)
        assert mine.objective == pytest.approx(highs.objective, abs=1e-7)

    def test_stage2_agrees(self, small_structure):
        lp1 = build_stage1_lp(small_structure)
        zstar = solve_lp(lp1).objective
        lp2 = build_stage2_lp(small_structure, zstar, alpha=0.2)
        assert simplex_solve(lp2).objective == pytest.approx(
            solve_lp(lp2).objective, abs=1e-7
        )

    def test_subret_agrees(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, TimeGrid.uniform(4))
        lp = build_subret_lp(s)
        assert simplex_solve(lp).objective == pytest.approx(
            solve_lp(lp).objective, abs=1e-7
        )

    def test_subret_infeasible_agrees(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=50.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, TimeGrid.uniform(4))
        lp = build_subret_lp(s)
        with pytest.raises(InfeasibleProblemError):
            solve_lp(lp)
        with pytest.raises(InfeasibleProblemError):
            simplex_solve(lp)


class TestHypothesisAgreement:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_random_bounded_lps_agree_with_highs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        m_ub = int(rng.integers(0, 4))
        m_eq = int(rng.integers(0, 2))
        lo = rng.uniform(0.0, 0.5, size=n)
        hi = lo + rng.uniform(0.5, 4.0, size=n)
        kwargs = dict(
            objective=rng.normal(size=n),
            lower=lo,
            upper=hi,
            maximize=bool(rng.random() < 0.5),
        )
        if m_ub:
            kwargs["a_ub"] = sp.csr_matrix(rng.normal(size=(m_ub, n)))
            kwargs["b_ub"] = rng.uniform(0.0, 3.0, size=m_ub)
        if m_eq:
            a_eq = rng.normal(size=(m_eq, n))
            # rhs chosen near a feasible interior point so eq rows are
            # sometimes (not always) satisfiable within bounds.
            kwargs["a_eq"] = sp.csr_matrix(a_eq)
            kwargs["b_eq"] = a_eq @ ((lo + hi) / 2) + rng.normal(
                scale=0.2, size=m_eq
            )
        lp = LinearProgram(**kwargs)
        try:
            ref = ("ok", solve_lp(lp).objective)
        except InfeasibleProblemError:
            ref = ("inf", None)
        except UnboundedProblemError:
            ref = ("unb", None)
        try:
            mine = ("ok", simplex_solve(lp).objective)
        except InfeasibleProblemError:
            mine = ("inf", None)
        except UnboundedProblemError:
            mine = ("unb", None)
        assert ref[0] == mine[0]
        if ref[0] == "ok":
            assert mine[1] == pytest.approx(ref[1], abs=1e-6)
