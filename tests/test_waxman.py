"""Unit tests for the Waxman/BRITE-style random network generator."""

import numpy as np
import pytest

from repro import ValidationError, waxman_network


class TestWaxmanStructure:
    def test_node_and_pair_counts(self):
        net = waxman_network(50, avg_degree=4, seed=7)
        assert net.num_nodes == 50
        # Node 1 attaches once, nodes 2..49 attach twice: 1 + 2*48 pairs.
        assert net.num_link_pairs == 1 + 2 * 48
        assert net.num_edges == 2 * net.num_link_pairs

    def test_average_degree_near_target(self):
        net = waxman_network(100, avg_degree=4, seed=3)
        degrees = [net.degree(n) / 2 for n in net]  # undirected degree
        assert 3.5 <= float(np.mean(degrees)) <= 4.0

    def test_strongly_connected(self):
        for seed in range(5):
            assert waxman_network(40, seed=seed).is_strongly_connected()

    def test_positions_attached(self):
        net = waxman_network(10, seed=0)
        assert set(net.positions) == set(range(10))
        for x, y in net.positions.values():
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_capacity_and_rate_forwarded(self):
        net = waxman_network(10, capacity=8, wavelength_rate=2.5, seed=0)
        assert set(net.capacities().tolist()) == {8}
        assert net.wavelength_rate == 2.5

    def test_higher_avg_degree(self):
        net = waxman_network(30, avg_degree=6, seed=1)
        degrees = [net.degree(n) / 2 for n in net]
        assert float(np.mean(degrees)) > 4.5


class TestWaxmanDeterminism:
    def test_same_seed_same_network(self):
        a = waxman_network(25, seed=42)
        b = waxman_network(25, seed=42)
        assert [(e.source, e.target) for e in a.edges] == [
            (e.source, e.target) for e in b.edges
        ]
        assert a.positions == b.positions

    def test_different_seeds_differ(self):
        a = waxman_network(25, seed=1)
        b = waxman_network(25, seed=2)
        assert [(e.source, e.target) for e in a.edges] != [
            (e.source, e.target) for e in b.edges
        ]

    def test_explicit_rng_accepted(self):
        rng = np.random.default_rng(5)
        net = waxman_network(10, rng=rng)
        assert net.num_nodes == 10

    def test_rng_and_seed_mutually_exclusive(self):
        with pytest.raises(ValidationError):
            waxman_network(10, rng=np.random.default_rng(0), seed=1)


class TestWaxmanLocality:
    def test_links_prefer_short_distances(self):
        """Waxman bias: linked pairs are closer on average than random pairs."""
        net = waxman_network(120, alpha=0.1, seed=9)
        pos = net.positions
        linked = [
            np.hypot(
                pos[e.source][0] - pos[e.target][0],
                pos[e.source][1] - pos[e.target][1],
            )
            for e in net.edges
        ]
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, 120, size=(2000, 2))
        random_d = [
            np.hypot(pos[a][0] - pos[b][0], pos[a][1] - pos[b][1])
            for a, b in pairs
            if a != b
        ]
        assert np.mean(linked) < 0.8 * np.mean(random_d)


class TestWaxmanValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"num_nodes": 10, "avg_degree": 3},
            {"num_nodes": 10, "avg_degree": 0},
            {"num_nodes": 10, "alpha": 0.0},
            {"num_nodes": 10, "beta": 0.0},
            {"num_nodes": 10, "beta": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            waxman_network(**kwargs)
