"""Failure injection: backend failures and degraded-path behaviour.

These tests force the rare failure paths — solver backend returning
unexpected statuses, RET exhausting its budget inside the simulator,
workloads whose every member is unschedulable — and assert the library
degrades with typed errors or best-effort behaviour instead of crashes
or silent corruption.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    Job,
    JobSet,
    LinearProgram,
    ProblemStructure,
    ScheduleError,
    Simulation,
    SolverError,
    TimeGrid,
    ValidationError,
    solve_lp,
    solve_ret,
    solve_stage1,
)
from repro.network import topologies


class _FakeResult:
    """Stand-in for scipy's OptimizeResult with a chosen status."""

    def __init__(self, status, message="injected failure"):
        self.status = status
        self.success = status == 0
        self.message = message
        self.x = None
        self.fun = None
        self.nit = 0


class TestSolverFailurePaths:
    @pytest.fixture
    def lp(self):
        return LinearProgram(
            objective=np.ones(1),
            a_ub=sp.csr_matrix(np.array([[1.0]])),
            b_ub=np.array([1.0]),
        )

    def test_unexpected_status_becomes_solver_error(self, lp, monkeypatch):
        import repro.lp.solver as solver_module

        monkeypatch.setattr(
            solver_module, "linprog", lambda *a, **k: _FakeResult(4)
        )
        with pytest.raises(SolverError) as exc:
            solve_lp(lp)
        assert exc.value.status == 4
        assert "injected" in str(exc.value)

    def test_iteration_limit_status(self, lp, monkeypatch):
        import repro.lp.solver as solver_module

        monkeypatch.setattr(
            solver_module, "linprog", lambda *a, **k: _FakeResult(1)
        )
        with pytest.raises(SolverError):
            solve_lp(lp)

    def test_stage1_propagates_solver_error(self, line3, line3_jobs, monkeypatch):
        import repro.lp.solver as solver_module

        s = ProblemStructure(line3, line3_jobs, TimeGrid.uniform(4))
        monkeypatch.setattr(
            solver_module, "linprog", lambda *a, **k: _FakeResult(4)
        )
        with pytest.raises(SolverError):
            solve_stage1(s)

    def test_simplex_pivot_limit(self):
        from repro.lp.simplex import simplex_solve

        lp = LinearProgram(
            objective=-np.ones(3),
            a_ub=sp.csr_matrix(np.eye(3)),
            b_ub=np.ones(3),
        )
        with pytest.raises(SolverError, match="pivots"):
            simplex_solve(lp, max_pivots=1)


class TestRetBudgetExhaustion:
    def test_extend_policy_survives_ret_failure(self):
        """When RET cannot complete everything within b_max, the extend
        policy must fall back to best-effort service, not crash."""
        net = topologies.line(3, capacity=1, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=50.0, start=0.0, end=2.0),
                Job(id=1, source=0, dest=2, size=50.0, start=0.0, end=2.0),
            ]
        )
        sim = Simulation(net, policy="extend", ret_b_max=0.2)
        result = sim.run(jobs, horizon=6.0)
        # Nothing completed, but the run finished and volume moved.
        assert result.num_completed == 0
        assert result.delivered_volume > 0

    def test_solve_ret_error_is_typed(self):
        net = topologies.line(3, capacity=1, wavelength_rate=1.0)
        jobs = JobSet(
            [Job(id=0, source=0, dest=2, size=100.0, start=0.0, end=2.0)]
        )
        with pytest.raises(ScheduleError):
            solve_ret(net, jobs, b_max=0.5)


class TestDegenerateWorkloads:
    def test_every_job_unschedulable_prefix(self):
        from repro import admit_max_prefix

        net = topologies.line(2, capacity=1)
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=1, size=1.0, start=0.2, end=0.8)
                for i in range(3)
            ]
        )
        decision = admit_max_prefix(net, jobs, TimeGrid.uniform(1))
        assert decision.num_admitted == 0
        assert decision.num_rejected == 3

    def test_simulation_where_everything_expires(self):
        net = topologies.line(3, capacity=1, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=2, size=1000.0, start=0.0, end=1.0)
                for i in range(3)
            ]
        )
        result = Simulation(net, policy="reduce").run(jobs, horizon=3.0)
        assert len(result.by_status("expired")) == 3
        # Progress was still made on the single available slice.
        assert result.delivered_volume > 0

    def test_structure_rejects_all_paths_gone(self):
        """A capacity profile cannot remove paths, but an unreachable
        destination must fail loudly at structure build time."""
        from repro import Network

        net = Network()
        net.add_edge(0, 1, 1)  # one-way only
        jobs = JobSet([Job(id=0, source=1, dest=0, size=1.0, start=0.0, end=1.0)])
        with pytest.raises(ValidationError, match="no path"):
            ProblemStructure(net, jobs, TimeGrid.uniform(1))
