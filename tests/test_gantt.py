"""Unit tests for the ASCII Gantt renderers."""

import numpy as np
import pytest

from repro import Job, JobSet, ProblemStructure, TimeGrid, ValidationError
from repro.analysis import job_gantt, link_gantt
from repro.network import topologies


@pytest.fixture
def scheduled(line3):
    jobs = JobSet(
        [
            Job(id="alpha", source=0, dest=2, size=4.0, start=0.0, end=4.0),
            Job(id="b", source=2, dest=0, size=2.0, start=1.0, end=3.0),
        ]
    )
    s = ProblemStructure(line3, jobs, TimeGrid.uniform(4))
    x = np.zeros(s.num_cols)
    x[s.column(0, 0, 0)] = 2.0
    x[s.column(0, 0, 1)] = 1.0
    x[s.column(1, 0, 1)] = 2.0
    return s, x


class TestJobGantt:
    def test_rows_and_cells(self, scheduled):
        s, x = scheduled
        out = job_gantt(s, x)
        lines = out.splitlines()
        assert lines[0].endswith("0123")
        assert "alpha" in lines[1]
        assert lines[1].endswith("21..")
        assert lines[2].endswith(".2..")

    def test_max_jobs_truncates(self, scheduled):
        s, x = scheduled
        out = job_gantt(s, x, max_jobs=1)
        assert "more jobs" in out
        assert "alpha" in out

    def test_max_jobs_validated(self, scheduled):
        s, x = scheduled
        with pytest.raises(ValidationError):
            job_gantt(s, x, max_jobs=0)

    def test_ten_plus_wavelengths_hash(self):
        net = topologies.line(2, capacity=12, wavelength_rate=1.0)
        jobs = JobSet([Job(id=0, source=0, dest=1, size=12.0, start=0.0, end=1.0)])
        s = ProblemStructure(net, jobs, TimeGrid.uniform(1))
        out = job_gantt(s, np.array([12.0]))
        assert out.splitlines()[1].endswith("#")


class TestLinkGantt:
    def test_saturation_star(self, scheduled):
        s, x = scheduled
        out = link_gantt(s, x)
        lines = out.splitlines()
        # Edge 0->1 carries 2 (its capacity) on slice 0 -> '*'.
        row = next(l for l in lines if l.startswith("0->1"))
        assert row.endswith("*1..")

    def test_only_loaded_filter(self, scheduled):
        s, x = scheduled
        out = link_gantt(s, x, only_loaded=True)
        # Edges 1->0 and 0->2-direction unused edges hidden.
        assert "0->1" in out
        assert out.count("->") == 4  # 4 loaded directed edges

    def test_empty_schedule_message(self, scheduled):
        s, _ = scheduled
        out = link_gantt(s, np.zeros(s.num_cols))
        assert "(no loaded links)" in out

    def test_max_links(self, scheduled):
        s, x = scheduled
        out = link_gantt(s, x, max_links=1)
        assert out.count("->") == 1
        with pytest.raises(ValidationError):
            link_gantt(s, x, max_links=0)

    def test_heaviest_first(self, scheduled):
        s, x = scheduled
        lines = link_gantt(s, x).splitlines()[1:]
        loads = s.link_loads(x).sum(axis=1)
        first_label = lines[0].split()[0]
        heaviest = np.argmax(loads)
        edge = s.network.edge(int(heaviest))
        assert first_label == f"{edge.source!r}->{edge.target!r}"
