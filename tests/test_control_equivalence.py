"""The refactor's central promise: the kernel changed *nothing*.

`Simulation` and `ReservationService` were rebuilt as thin drivers over
the shared :class:`~repro.control.EpochKernel`.  These tests prove the
rebuild is invisible, three ways:

* **Golden byte-identity** — `tests/data/control_golden.json` holds
  journals (and service book digests) captured from the *pre-refactor*
  code over fuzz scenarios spanning every admission policy and fault
  timelines.  The kernel-driven code must reproduce every line
  byte-for-byte, both bare (``control_policy=None``) and with
  :class:`~repro.control.FixedPolicy` attached.
* **Hypothesis property** — over fresh
  :func:`~repro.verify.fuzz.make_scenario` seeds (fault timelines
  included), a ``FixedPolicy`` run produces journals line-identical to
  a bare run, for both drivers; the service's commitment books agree
  digest-for-digest.
* **Crash + resume** — a ``FixedPolicy`` run crashed mid-flight and
  resumed from its journal converges to the same state as the run that
  never crashed, for both drivers.

Normalization strips only ``solve_seconds`` (wall clock) and ``crc``
(which covers it) — everything else must match exactly.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Simulation
from repro.control import FixedPolicy
from repro.recovery import CrashInjector, SimulatedCrash
from repro.service import ReservationService
from repro.service.driver import ClosedLoopDriver
from repro.verify.fuzz import make_scenario

GOLDEN_PATH = Path(__file__).parent / "data" / "control_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

SOLVER_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

seeds = st.integers(min_value=0, max_value=10_000)


def _normalize(line: str) -> str:
    """Canonical journal line with the wall-clock fields stripped."""
    def strip(obj):
        if isinstance(obj, dict):
            return {
                k: strip(v) for k, v in obj.items()
                if k not in ("solve_seconds", "crc")
            }
        if isinstance(obj, list):
            return [strip(v) for v in obj]
        return obj

    return json.dumps(
        strip(json.loads(line)), sort_keys=True, separators=(",", ":")
    )


def _journal_lines(path) -> list[str]:
    return [_normalize(line)
            for line in Path(path).read_text().splitlines()]


def _run_sim_journal(scenario, tmp_path, policy, admission: str):
    path = tmp_path / "sim.jsonl"
    sim = Simulation(
        scenario.network, policy=admission, k_paths=3,
        fault_schedule=scenario.fault_schedule, journal=path,
        control_policy=policy,
    )
    result = sim.run(scenario.jobs, horizon=scenario.grid.end * 3.0)
    return _journal_lines(path), result


def _run_serve_journal(scenario, tmp_path, policy):
    path = tmp_path / "serve.jsonl"
    service = ReservationService(
        scenario.network, journal=str(path),
        fault_schedule=scenario.fault_schedule,
        queue_limit=4096, rate=4096.0, control_policy=policy,
    )
    asyncio.run(ClosedLoopDriver(service, scenario.jobs,
                                 max_epochs=400).run())
    service.close()
    return _journal_lines(path), service.book.digest()


# ----------------------------------------------------------------------
# Golden byte-identity against the pre-refactor implementation
# ----------------------------------------------------------------------
class TestGoldenSimJournals:
    @pytest.mark.parametrize("key", sorted(GOLDEN["sim"]))
    @pytest.mark.parametrize("policy_factory", [
        pytest.param(lambda: None, id="bare"),
        pytest.param(FixedPolicy, id="fixed-policy"),
    ])
    def test_journal_bytes_match_pre_refactor(
            self, key, policy_factory, tmp_path):
        case = GOLDEN["sim"][key]
        scenario = make_scenario(case["seed"])
        assert (scenario.fault_schedule is not None) == case["faults"]
        lines, _result = _run_sim_journal(
            scenario, tmp_path, policy_factory(), case["policy"])
        assert lines == case["lines"]


class TestGoldenServiceJournals:
    @pytest.mark.parametrize("key", sorted(GOLDEN["serve"]))
    @pytest.mark.parametrize("policy_factory", [
        pytest.param(lambda: None, id="bare"),
        pytest.param(FixedPolicy, id="fixed-policy"),
    ])
    def test_journal_and_digest_match_pre_refactor(
            self, key, policy_factory, tmp_path):
        case = GOLDEN["serve"][key]
        scenario = make_scenario(case["seed"])
        lines, digest = _run_serve_journal(
            scenario, tmp_path, policy_factory())
        assert lines == case["lines"]
        assert digest == case["digest"]


# ----------------------------------------------------------------------
# Hypothesis: FixedPolicy is invisible on arbitrary scenarios
# ----------------------------------------------------------------------
class TestFixedPolicyInvisible:
    @SOLVER_SETTINGS
    @given(seed=seeds)
    def test_sim_journals_line_identical(self, seed, tmp_path_factory):
        scenario = make_scenario(seed)  # fault timelines included
        admission = ("reduce", "extend", "reject")[seed % 3]
        bare, bare_result = _run_sim_journal(
            scenario, tmp_path_factory.mktemp("bare"), None, admission)
        fixed, fixed_result = _run_sim_journal(
            scenario, tmp_path_factory.mktemp("fixed"), FixedPolicy(),
            admission)
        assert bare == fixed
        assert ([r.status for r in bare_result.records]
                == [r.status for r in fixed_result.records])
        assert bare_result.delivered_volume == pytest.approx(
            fixed_result.delivered_volume)

    @SOLVER_SETTINGS
    @given(seed=seeds)
    def test_service_journals_and_digests_identical(
            self, seed, tmp_path_factory):
        scenario = make_scenario(seed)
        bare, bare_digest = _run_serve_journal(
            scenario, tmp_path_factory.mktemp("bare"), None)
        fixed, fixed_digest = _run_serve_journal(
            scenario, tmp_path_factory.mktemp("fixed"), FixedPolicy())
        assert bare == fixed
        assert bare_digest == fixed_digest


# ----------------------------------------------------------------------
# Crash + resume under the kernel
# ----------------------------------------------------------------------
class TestResumeDigestsIdentical:
    def test_sim_crash_resume_matches_uncrashed(self, tmp_path):
        scenario = make_scenario(5)
        horizon = scenario.grid.end * 3.0
        clean = Simulation(
            scenario.network, policy="extend", k_paths=3,
            fault_schedule=scenario.fault_schedule,
            journal=tmp_path / "clean.jsonl", control_policy=FixedPolicy(),
        ).run(scenario.jobs, horizon=horizon)

        path = tmp_path / "crash.jsonl"
        sim = Simulation(
            scenario.network, policy="extend", k_paths=3,
            fault_schedule=scenario.fault_schedule, journal=path,
            control_policy=FixedPolicy(),
            crash_injector=CrashInjector("post-commit", epoch=1),
        )
        with pytest.raises(SimulatedCrash):
            sim.run(scenario.jobs, horizon=horizon)
        resumed = Simulation.resume(path)

        assert ([(r.job.id, r.status, r.effective_end)
                 for r in resumed.records]
                == [(r.job.id, r.status, r.effective_end)
                    for r in clean.records])
        assert resumed.delivered_volume == pytest.approx(
            clean.delivered_volume)
        assert _journal_lines(path) == _journal_lines(
            tmp_path / "clean.jsonl")

    def test_service_crash_resume_matches_uncrashed(self, tmp_path):
        scenario = make_scenario(1)

        def run(path, crash_injector=None):
            service = ReservationService(
                scenario.network, journal=str(path),
                fault_schedule=scenario.fault_schedule,
                queue_limit=4096, rate=4096.0,
                control_policy=FixedPolicy(),
                crash_injector=crash_injector,
            )
            driver = ClosedLoopDriver(service, scenario.jobs,
                                      max_epochs=400)
            try:
                asyncio.run(driver.run())
            except SimulatedCrash:
                return service, False
            service.close()
            return service, True

        clean_path = tmp_path / "clean.jsonl"
        clean, finished = run(clean_path)
        assert finished

        crash_path = tmp_path / "crash.jsonl"
        _crashed, finished = run(
            crash_path, CrashInjector("post-journal", epoch=1))
        assert not finished
        resumed = ReservationService.resume(crash_path)
        driver = ClosedLoopDriver(resumed, scenario.jobs, max_epochs=400)
        asyncio.run(driver.run())
        resumed.close()

        assert resumed.book.digest() == clean.book.digest()
        assert _journal_lines(crash_path) == _journal_lines(clean_path)
