"""Cross-module integration tests: full pipelines on realistic topologies."""

import numpy as np
import pytest

from repro import (
    JobSet,
    ProblemStructure,
    Scheduler,
    Simulation,
    TimeGrid,
    WorkloadGenerator,
    fraction_finished,
    solve_ret,
    solve_stage1,
    summarize,
)
from repro.network import abilene, topologies, waxman_network
from repro.workload import WorkloadConfig, hep_tier_trace, mixed_escience_trace


class TestAbilenePipeline:
    @pytest.fixture
    def net(self):
        return abilene().with_wavelengths(4, total_link_rate=20.0)

    def test_random_workload_schedules(self, net):
        gen = WorkloadGenerator(net, seed=11)
        jobs = gen.jobs(20)
        result = Scheduler(net, k_paths=4).schedule(jobs)
        s = result.structure
        assert s.capacity_violation(result.x) == 0.0
        assert np.array_equal(result.x, np.rint(result.x))
        assert result.normalized_throughput("lpdar") > 0.5

    def test_hep_trace_on_abilene(self, net):
        jobs = hep_tier_trace(net, num_tier2=4, transfers_per_site=2, seed=5)
        result = Scheduler(net).schedule(jobs)
        assert result.zstar > 0
        assert len(list(result.grants())) > 0

    def test_lpd_degrades_at_low_wavelength_count(self):
        """The Fig. 2 phenomenon: LPD loses badly at W = 2, LPDAR doesn't."""
        rng_net = abilene().with_wavelengths(2, total_link_rate=20.0)
        gen = WorkloadGenerator(rng_net, seed=23)
        jobs = gen.jobs(24).scaled(4.0)  # push into contention
        result = Scheduler(rng_net).schedule(jobs)
        lpd = result.normalized_throughput("lpd")
        lpdar_ratio = result.normalized_throughput("lpdar")
        assert lpd < lpdar_ratio
        assert lpdar_ratio > 0.8


class TestWaxmanPipeline:
    def test_medium_random_network(self):
        net = waxman_network(40, seed=3).with_wavelengths(4, total_link_rate=20.0)
        gen = WorkloadGenerator(net, seed=4)
        jobs = gen.jobs(15)
        result = Scheduler(net).schedule(jobs)
        assert result.structure.capacity_violation(result.x) == 0.0
        assert result.normalized_throughput("lpdar") > 0.5

    def test_ret_on_random_network(self):
        net = waxman_network(25, seed=8, capacity=2, wavelength_rate=10.0)
        gen = WorkloadGenerator(net, seed=9)
        jobs = gen.jobs(10).scaled(3.0)
        ret = solve_ret(net, jobs, b_max=20.0)
        assert ret.fraction_finished("lpdar") == 1.0
        s = ret.structure
        assert s.capacity_violation(ret.assignments.x_lpdar) == 0.0


class TestRetVsScheduler:
    def test_overload_tradeoff(self):
        """Same overloaded instance: Scheduler reduces sizes, RET extends ends."""
        net = topologies.line(4, capacity=2, wavelength_rate=1.0)
        gen = WorkloadGenerator(
            net, WorkloadConfig(size_low=4.0, size_high=8.0), seed=2
        )
        jobs = gen.jobs(8)
        structure = ProblemStructure(
            net, jobs, TimeGrid.covering(jobs.max_end()), k_paths=2
        )
        zstar = solve_stage1(structure).zstar
        if zstar > 1.0:
            jobs = jobs.scaled(2.0 * zstar)  # force overload

        sched_result = Scheduler(net, k_paths=2).schedule(jobs)
        assert sched_result.overloaded
        # Under strict deadlines, not everything finishes...
        assert sched_result.fraction_finished("lp") < 1.0

        ret_result = solve_ret(net, jobs, k_paths=2, b_max=50.0)
        # ...but RET completes everything at the cost of extended ends.
        assert ret_result.fraction_finished("lpdar") == 1.0
        assert ret_result.b_final > 0.0

    def test_guaranteed_sizes_feasible_after_renegotiation(self):
        """Remark 2 round-trip: re-submitting the reduced sizes fits (Z* >= ~1)."""
        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        gen = WorkloadGenerator(net, seed=31)
        jobs = gen.jobs(5)
        result = Scheduler(net, alpha=0.0, alpha_step=0.0).schedule(jobs)
        if not result.overloaded:
            jobs = jobs.scaled(4.0 / result.zstar)
            result = Scheduler(net, alpha=0.0, alpha_step=0.0).schedule(jobs)
        guaranteed = result.guaranteed_sizes("lpdar")
        kept = [
            job.scaled(g / job.size)
            for job, g in zip(jobs, guaranteed)
            if g > 1e-6
        ]
        renegotiated = JobSet(kept)
        structure = ProblemStructure(
            net, renegotiated, result.structure.grid, k_paths=4
        )
        z = solve_stage1(structure).zstar
        assert z >= 1.0 - 1e-6


class TestSimulationEndToEnd:
    def test_escience_day_on_abilene(self):
        net = abilene().with_wavelengths(4, total_link_rate=20.0)
        jobs = mixed_escience_trace(
            net, num_bulk=3, num_small=6, bulk_size=150.0, seed=17
        )
        result = Simulation(net, tau=2.0, slice_length=1.0, policy="reduce").run(jobs)
        summary = summarize(result)
        assert summary.num_jobs == 9
        assert summary.delivered_volume > 0
        assert summary.num_scheduling_passes >= 2

    def test_policies_rank_as_expected(self):
        """On an overloaded instance: extend completes the most jobs."""
        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        gen = WorkloadGenerator(
            net, WorkloadConfig(size_low=6.0, size_high=10.0), seed=41
        )
        jobs = gen.jobs(6)
        completed = {}
        for policy in ("reduce", "reject", "extend"):
            res = Simulation(net, policy=policy).run(jobs)
            completed[policy] = res.num_completed
        assert completed["extend"] >= completed["reduce"]
        assert completed["extend"] >= completed["reject"]
