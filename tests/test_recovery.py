"""Tests for the durability layer: journal, crash-recovery, solve budgets.

The headline guarantee (ISSUE acceptance criteria): for every named
crash point, killing a journaled run there and resuming it yields the
same per-job delivered volumes and completion statuses as the
uninterrupted run; and under an absurdly small solve budget the
controller still commits a checker-clean assignment every epoch via the
degradation ladder instead of raising.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CRASH_POINTS,
    BudgetExceededError,
    CrashInjector,
    EpochJournal,
    Job,
    JobSet,
    JournalError,
    Scheduler,
    SimulatedCrash,
    Simulation,
    SolveBudget,
    SolverError,
    Telemetry,
    TimeGrid,
    ValidationError,
    read_journal,
    verify_assignment,
)
from repro.network import CapacityProfile, topologies
from repro.serialization import simulation_to_dict


@pytest.fixture
def sim_net():
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


@pytest.fixture
def sim_jobs():
    """Three transfers spread over arrivals, so several epochs schedule."""
    return JobSet(
        [
            Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=6.0,
                arrival=0.0),
            Job(id=1, source=2, dest=0, size=3.0, start=0.0, end=5.0,
                arrival=0.0),
            Job(id=2, source=0, dest=2, size=2.0, start=2.0, end=8.0,
                arrival=2.0),
        ]
    )


def _records_and_event_types(result):
    doc = simulation_to_dict(result)
    return doc["records"], [e["type"] for e in doc["events"]]


# ----------------------------------------------------------------------
# SolveBudget
# ----------------------------------------------------------------------
class TestSolveBudget:
    def test_validation(self):
        with pytest.raises(ValidationError):
            SolveBudget(0.0)
        with pytest.raises(ValidationError):
            SolveBudget(-1.0)
        with pytest.raises(ValidationError):
            SolveBudget(1.0, min_backend_time_s=0.0)

    def test_unstarted_budget_reports_full_allowance(self):
        budget = SolveBudget(5.0)
        assert not budget.started
        assert budget.remaining() == pytest.approx(5.0)
        assert not budget.expired()

    def test_check_raises_on_exhaustion(self):
        budget = SolveBudget(1e-9)
        budget.restart()
        with pytest.raises(BudgetExceededError) as exc:
            # 1 ns is gone by the first cooperative check.
            budget.check("stage2")
        assert exc.value.where == "stage2"
        assert exc.value.wall_time_s == pytest.approx(1e-9)
        assert budget.expired()

    def test_restart_resets_the_clock(self):
        budget = SolveBudget(30.0)
        budget.restart()
        assert budget.started
        assert 0.0 < budget.remaining() <= 30.0
        budget.check("anywhere")  # plenty left

    def test_backend_time_limit_floor(self):
        budget = SolveBudget(1e-9, min_backend_time_s=0.5)
        budget.restart()
        # Even when expired, the backend gets a positive time limit.
        assert budget.backend_time_limit() == pytest.approx(0.5)

    def test_budget_error_is_not_retried_as_solver_error(self):
        """The resilience chain must not swallow budget exhaustion."""
        assert not issubclass(BudgetExceededError, SolverError)


# ----------------------------------------------------------------------
# Journal mechanics
# ----------------------------------------------------------------------
class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EpochJournal.create(path, {"run": "x", "n": 3})
        journal.append({"epoch": 0, "state": [1, 2]})
        journal.append({"epoch": 1, "state": [3]})
        replay = read_journal(path)
        assert replay.header["run"] == "x"
        assert replay.header["schema"] == 1
        assert not replay.truncated
        assert [e["epoch"] for e in replay.entries] == [0, 1]
        assert replay.last_entry["state"] == [3]

    def test_missing_file(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            read_journal(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="empty"):
            read_journal(path)

    def test_not_a_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(JournalError, match="header"):
            read_journal(path)

    def test_unsupported_schema(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EpochJournal.create(path, {"run": "x"})
        # Rewrite the header claiming a future schema version.
        import zlib

        data = dict(read_journal(path).header)
        data["schema"] = 999
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(canonical.encode())
        wrapper = {"v": 1, "crc": crc, "data": data}
        path.write_text(
            json.dumps(wrapper, sort_keys=True, separators=(",", ":")) + "\n"
        )
        with pytest.raises(JournalError, match="schema version"):
            read_journal(path)
        del journal

    def test_torn_tail_recovers_to_last_valid_entry(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EpochJournal.create(path, {"run": "x"})
        journal.append({"epoch": 0})
        journal.append_torn({"epoch": 1})
        replay = read_journal(path)
        assert replay.truncated
        assert [e["epoch"] for e in replay.entries] == [0]

    def test_corrupt_tail_bitflip_recovers(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EpochJournal.create(path, {"run": "x"})
        journal.append({"epoch": 0})
        journal.append({"epoch": 1, "payload": "aaaa"})
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace("aaaa", "aaab")  # CRC now mismatches
        path.write_text("".join(f"{ln}\n" for ln in lines))
        replay = read_journal(path)
        assert replay.truncated
        assert [e["epoch"] for e in replay.entries] == [0]

    def test_open_existing_heals_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EpochJournal.create(path, {"run": "x"})
        journal.append({"epoch": 0})
        journal.append_torn({"epoch": 1})
        healed = EpochJournal.open_existing(path)
        assert healed.num_entries == 1
        healed.append({"epoch": 1})  # first append rewrites a clean file
        replay = read_journal(path)
        assert not replay.truncated
        assert [e["epoch"] for e in replay.entries] == [0, 1]

    json_values = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**31), max_value=2**31)
        | st.floats(allow_nan=False, allow_infinity=False)
        | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=10), children, max_size=4),
        max_leaves=12,
    )

    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        header=st.dictionaries(st.text(max_size=10), json_values, max_size=4),
        entries=st.lists(
            st.dictionaries(st.text(max_size=10), json_values, max_size=4),
            max_size=4,
        ),
    )
    def test_journal_roundtrip_is_identity(self, tmp_path, header, entries):
        """Property: write header + entries, read back, get them verbatim.

        The journal adds its own ``kind``/``schema`` bookkeeping fields,
        so the comparison overlays those onto the inputs.
        """
        path = tmp_path / "prop.jsonl"
        journal = EpochJournal.create(path, header)
        for entry in entries:
            journal.append(entry)
        replay = read_journal(path)
        assert not replay.truncated
        assert replay.header == {**header, "kind": "header", "schema": 1}
        assert list(replay.entries) == [
            {**entry, "kind": "epoch"} for entry in entries
        ]


# ----------------------------------------------------------------------
# Crash injector
# ----------------------------------------------------------------------
class TestJournalLock:
    """Satellite: the append lock keeps two writers off one journal."""

    def test_second_opener_gets_locked_error(self, tmp_path):
        from repro import JournalLockedError

        path = tmp_path / "j.jsonl"
        journal = EpochJournal.create(path, {"run": "x"})
        # Simulate another live process holding the lock: PID 1 is
        # always alive (same-PID locks are stolen by design, so our own
        # PID cannot exercise the contention path in one process).
        lock = tmp_path / "j.jsonl.lock"
        lock.write_text("1\n")
        with pytest.raises(JournalLockedError, match="locked by live"):
            EpochJournal.open_existing(path)
        try:
            EpochJournal.open_existing(path)
        except JournalLockedError as exc:
            assert exc.owner_pid == 1
        journal.close()

    def test_stale_dead_pid_lock_is_stolen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        EpochJournal.create(path, {"run": "x"}).close()
        lock = tmp_path / "j.jsonl.lock"
        # A PID from a crashed writer: far beyond any live process.
        lock.write_text("999999999\n")
        journal = EpochJournal.open_existing(path)
        journal.append({"epoch": 0})
        journal.close()
        assert not lock.exists()

    def test_close_releases_the_lock(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lock = tmp_path / "j.jsonl.lock"
        journal = EpochJournal.create(path, {"run": "x"})
        assert lock.exists()
        assert int(lock.read_text().strip()) == __import__("os").getpid()
        journal.close()
        assert not lock.exists()
        assert journal.closed

    def test_close_is_idempotent(self, tmp_path):
        journal = EpochJournal.create(tmp_path / "j.jsonl", {"run": "x"})
        journal.close()
        journal.close()

    def test_append_after_close_raises(self, tmp_path):
        journal = EpochJournal.create(tmp_path / "j.jsonl", {"run": "x"})
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append({"epoch": 0})

    def test_context_manager_releases(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EpochJournal.create(path, {"run": "x"}) as journal:
            journal.append({"epoch": 0})
        assert not (tmp_path / "j.jsonl.lock").exists()
        assert read_journal(path).last_entry["epoch"] == 0

    def test_same_pid_lock_is_stolen(self, tmp_path):
        """Crash-recovery in-process (tests, single-process restarts):
        our own abandoned lock never blocks us."""
        path = tmp_path / "j.jsonl"
        EpochJournal.create(path, {"run": "x"})  # never closed
        journal = EpochJournal.open_existing(path)
        journal.append({"epoch": 0})
        journal.close()


class TestJournalEntryKinds:
    """Simulator and service journals are distinct record kinds."""

    def test_entries_carry_their_kind(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EpochJournal.create(path, {"x": 1}, entry_kind="batch") as j:
            j.append({"epoch": 0})
        replay = read_journal(path, entry_kind="batch")
        assert [e["epoch"] for e in replay.entries] == [0]

    def test_wrong_kind_truncates_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EpochJournal.create(path, {"x": 1}, entry_kind="batch") as j:
            j.append({"epoch": 0})
        replay = read_journal(path, entry_kind="epoch")
        assert replay.entries == ()
        assert replay.truncated

    def test_simulation_resume_refuses_service_journal(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        EpochJournal.create(
            path, {"service": True}, entry_kind="batch"
        ).close()
        with pytest.raises(ValidationError, match="reservation-service"):
            Simulation.resume(path)


class TestCrashInjector:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValidationError):
            CrashInjector("mid-sandwich")

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValidationError):
            CrashInjector("pre-solve", epoch=-1)

    def test_one_shot(self):
        injector = CrashInjector("pre-solve", epoch=2)
        assert not injector.should_fire("pre-solve", 1)
        assert not injector.should_fire("post-solve", 2)
        assert injector.should_fire("pre-solve", 2)
        with pytest.raises(SimulatedCrash) as exc:
            injector.fire("pre-solve", 2)
        assert exc.value.point == "pre-solve"
        assert exc.value.epoch == 2
        # Once fired, a resumed run sails past the same point.
        assert not injector.should_fire("pre-solve", 2)


# ----------------------------------------------------------------------
# Simulation wiring validation
# ----------------------------------------------------------------------
class TestSimulationJournalValidation:
    def test_journal_with_keep_schedules_rejected(self, sim_net, tmp_path):
        with pytest.raises(ValidationError, match="keep_schedules"):
            Simulation(
                sim_net, journal=tmp_path / "j.jsonl", keep_schedules=True
            )

    def test_journal_with_capacity_profile_rejected(self, sim_net, tmp_path):
        profile = CapacityProfile.constant(sim_net, TimeGrid.uniform(4))
        with pytest.raises(ValidationError, match="capacity_profile"):
            Simulation(
                sim_net,
                journal=tmp_path / "j.jsonl",
                capacity_profile=profile,
            )

    def test_mid_journal_crash_needs_a_journal(self, sim_net):
        with pytest.raises(ValidationError, match="mid-journal"):
            Simulation(sim_net, crash_injector=CrashInjector("mid-journal"))


# ----------------------------------------------------------------------
# The crash matrix: kill at every point, resume, expect identical runs
# ----------------------------------------------------------------------
class TestCrashMatrix:
    @pytest.fixture(scope="class")
    def baselines(self):
        """Uninterrupted reference runs, one per admission policy."""
        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=6.0,
                    arrival=0.0),
                Job(id=1, source=2, dest=0, size=3.0, start=0.0, end=5.0,
                    arrival=0.0),
                Job(id=2, source=0, dest=2, size=2.0, start=2.0, end=8.0,
                    arrival=2.0),
            ]
        )
        out = {}
        for policy in ("reject", "reduce", "extend"):
            result = Simulation(net, policy=policy).run(jobs)
            out[policy] = _records_and_event_types(result)
        return net, jobs, out

    @pytest.mark.parametrize("policy", ["reject", "reduce", "extend"])
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_resume_matches_uninterrupted_run(
        self, tmp_path, baselines, point, policy
    ):
        net, jobs, expected = baselines
        path = tmp_path / "run.jsonl"
        sim = Simulation(
            net,
            policy=policy,
            journal=path,
            crash_injector=CrashInjector(point, epoch=1),
        )
        with pytest.raises(SimulatedCrash):
            sim.run(jobs)
        resumed = Simulation.resume(path)
        records, event_types = _records_and_event_types(resumed)
        want_records, want_events = expected[policy]
        assert records == want_records
        assert event_types == want_events

    def test_journaled_run_matches_plain_run(self, tmp_path, baselines):
        net, jobs, expected = baselines
        result = Simulation(
            net, policy="reduce", journal=tmp_path / "run.jsonl"
        ).run(jobs)
        assert _records_and_event_types(result) == expected["reduce"]

    def test_resume_after_clean_finish_is_identity(self, tmp_path, baselines):
        """Resuming a journal whose run completed replays it verbatim."""
        net, jobs, expected = baselines
        path = tmp_path / "run.jsonl"
        Simulation(net, policy="reduce", journal=path).run(jobs)
        resumed = Simulation.resume(path)
        assert _records_and_event_types(resumed) == expected["reduce"]

    def test_resume_counts_telemetry(self, tmp_path, baselines):
        net, jobs, _ = baselines
        path = tmp_path / "run.jsonl"
        sim = Simulation(
            net,
            journal=path,
            crash_injector=CrashInjector("post-solve", epoch=0),
        )
        with pytest.raises(SimulatedCrash):
            sim.run(jobs)
        telemetry = Telemetry()
        Simulation.resume(path, telemetry=telemetry)
        assert telemetry.counters.get("journal_resumes") == 1
        assert telemetry.counters.get("journal_commits", 0) >= 1


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def test_exhausted_budget_degrades_to_greedy_baseline(
        self, sim_net, sim_jobs
    ):
        telemetry = Telemetry()
        scheduler = Scheduler(sim_net, telemetry=telemetry)
        result = scheduler.schedule(sim_jobs, budget=SolveBudget(1e-9))
        assert result.degraded == "greedy_baseline"
        assert result.degraded_reason
        assert telemetry.counters["degraded_solves"] == 1
        assert telemetry.counters["degraded_solves_greedy_baseline"] == 1
        # The degraded assignment is still feasible end to end.
        report = verify_assignment(result.structure, result.x)
        assert report.ok, report.render()

    def test_stage2_death_degrades_to_lpd_greedy(
        self, sim_net, sim_jobs, monkeypatch
    ):
        import repro.core.scheduler as scheduler_mod

        def dead_stage2(*args, **kwargs):
            raise BudgetExceededError("stage2 out of time", where="stage2")

        monkeypatch.setattr(scheduler_mod, "solve_stage2_lp", dead_stage2)
        result = Scheduler(sim_net).schedule(
            sim_jobs, budget=SolveBudget(60.0)
        )
        assert result.degraded == "lpd_greedy"
        report = verify_assignment(result.structure, result.x)
        assert report.ok, report.render()

    def test_generous_budget_changes_nothing(self, sim_net, sim_jobs):
        plain = Scheduler(sim_net).schedule(sim_jobs)
        budgeted = Scheduler(sim_net).schedule(
            sim_jobs, budget=SolveBudget(300.0)
        )
        assert budgeted.degraded is None
        assert budgeted.zstar == pytest.approx(plain.zstar)
        assert (budgeted.x == plain.x).all()

    @pytest.mark.parametrize("policy", ["reject", "reduce", "extend"])
    def test_tiny_budget_still_commits_every_epoch(
        self, sim_net, sim_jobs, policy
    ):
        """ISSUE acceptance: wall_time_s=0.01 never raises; epochs stay
        feasible (verify_epochs raises on any checker violation)."""
        telemetry = Telemetry()
        result = Simulation(
            sim_net,
            policy=policy,
            solve_budget=SolveBudget(0.01),
            telemetry=telemetry,
            verify_epochs=True,
        ).run(sim_jobs)
        assert result.records  # ran to completion
        assert telemetry.counters.get("schedule_passes", 0) >= 1

    def test_microscopic_budget_forces_full_degradation(
        self, sim_net, sim_jobs
    ):
        telemetry = Telemetry()
        result = Simulation(
            sim_net,
            solve_budget=SolveBudget(1e-9),
            telemetry=telemetry,
            verify_epochs=True,
        ).run(sim_jobs)
        assert result.records
        assert telemetry.counters.get("degraded_solves", 0) >= 1
        from repro.sim import DegradedSolve

        degraded_events = [
            e for e in result.events if isinstance(e, DegradedSolve)
        ]
        assert degraded_events
        assert all(
            e.level in ("lpd_greedy", "greedy_baseline")
            for e in degraded_events
        )
