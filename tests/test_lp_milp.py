"""Unit tests for the exact MILP wrapper."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    InfeasibleProblemError,
    LinearProgram,
    UnboundedProblemError,
    ValidationError,
    solve_milp,
)


class TestSolveMILP:
    def test_integer_optimum_differs_from_lp(self):
        # max x s.t. 2x <= 3: LP optimum 1.5, integer optimum 1.
        lp = LinearProgram(
            objective=np.ones(1),
            a_ub=sp.csr_matrix(np.array([[2.0]])),
            b_ub=np.array([3.0]),
            maximize=True,
        )
        sol = solve_milp(lp)
        assert sol.objective == pytest.approx(1.0)
        assert sol.x == pytest.approx([1.0])

    def test_knapsack(self):
        # max 3a + 2b, a + b <= 2, a,b in {0,1,2,...}, a <= 1.
        lp = LinearProgram(
            objective=np.array([3.0, 2.0]),
            a_ub=sp.csr_matrix(np.array([[1.0, 1.0]])),
            b_ub=np.array([2.0]),
            upper=np.array([1.0, np.inf]),
            maximize=True,
        )
        sol = solve_milp(lp)
        assert sol.objective == pytest.approx(5.0)
        assert sol.x == pytest.approx([1.0, 1.0])

    def test_equality_block(self):
        # min a + b with a + b == 3 integral.
        lp = LinearProgram(
            objective=np.ones(2),
            a_eq=sp.csr_matrix(np.array([[1.0, 1.0]])),
            b_eq=np.array([3.0]),
        )
        sol = solve_milp(lp)
        assert sol.objective == pytest.approx(3.0)
        assert np.allclose(sol.x, np.rint(sol.x))

    def test_infeasible(self):
        # 2x == 1 has no integer solution.
        lp = LinearProgram(
            objective=np.ones(1),
            a_eq=sp.csr_matrix(np.array([[2.0]])),
            b_eq=np.array([1.0]),
        )
        with pytest.raises(InfeasibleProblemError):
            solve_milp(lp)

    def test_unbounded(self):
        lp = LinearProgram(objective=np.ones(1), maximize=True)
        with pytest.raises((UnboundedProblemError, InfeasibleProblemError)):
            # HiGHS may report unbounded MIPs as either status.
            solve_milp(lp)

    def test_size_guard(self):
        lp = LinearProgram(objective=np.ones(50))
        with pytest.raises(ValidationError, match="refusing"):
            solve_milp(lp, size_limit=10)

    def test_solution_is_integral(self):
        lp = LinearProgram(
            objective=np.array([1.0, 1.3]),
            a_ub=sp.csr_matrix(np.array([[1.0, 1.0]])),
            b_ub=np.array([3.7]),
            maximize=True,
        )
        sol = solve_milp(lp)
        assert np.array_equal(sol.x, np.rint(sol.x))
