"""The composed chaos engine: schedules, injectors, monitors, runner.

Tentpole coverage: a seeded :class:`ChaosSchedule` composes every
failure mode the repository can inject (link faults, crashes, journal
write faults, solver-backend faults, fleet worker faults) into one
deterministic timeline; :func:`run_chaos` drives it against the
simulator, the reservation service, and the fleet with every invariant
monitor armed.  The acceptance cases live in
:class:`TestComposedCampaign`: a multi-layer timeline completes on all
three targets with zero violations, and a ``wrong``-mode backend fault
is provably intercepted by ``verify_schedule`` before anything commits.
"""

from __future__ import annotations

import errno
import json

import pytest

from repro import (
    Job,
    JobSet,
    ScheduleError,
    Scheduler,
    Simulation,
    TimeGrid,
    ValidationError,
)
from repro.chaos import (
    BackendFault,
    ChaosSchedule,
    CrashFault,
    JournalFault,
    JournalFaultInjector,
    WorkerFault,
    generate_chaos,
    install_faulty_backend,
    parse_chaos_spec,
    run_chaos,
)
from repro.engine.backend import get_backend
from repro.errors import JournalWriteError
from repro.lp.solver import SolveResilience
from repro.network import topologies
from repro.parallel.fleet import TaskSpec, run_fleet
from repro.recovery.journal import EpochJournal, read_journal

NO_PERTURB = SolveResilience(perturbation=0.0)


@pytest.fixture
def net():
    return topologies.line(3, capacity=2)


@pytest.fixture
def jobs():
    return JobSet(
        [
            Job(id="a", source=0, dest=2, size=2.0, start=0.0, end=4.0),
            Job(id="b", source=2, dest=0, size=1.0, start=0.0, end=4.0),
        ]
    )


# ----------------------------------------------------------------------
# Schedule generation and the spec grammar
# ----------------------------------------------------------------------
class TestChaosSchedule:
    def test_same_seed_same_timeline(self, net):
        first = generate_chaos(7, net, 12.0)
        second = generate_chaos(7, net, 12.0)
        assert first.to_dict() == second.to_dict()
        assert first.num_faults > 0

    def test_every_layer_populated(self, net):
        chaos = generate_chaos(3, net, 12.0)
        assert chaos.crashes
        assert chaos.journal_faults
        assert chaos.backend_faults
        assert chaos.worker_faults
        modes = {f.mode for f in chaos.worker_faults}
        assert modes == {"kill", "hang"}

    def test_generated_backend_faults_are_absorbable(self, net):
        # `wrong` fail-stops at the verify gate, so a generated
        # timeline never uses it — it is opt-in via the spec grammar —
        # and faulted call indices are even so retries cannot cascade
        # into the fallback backend.
        for seed in range(20):
            chaos = generate_chaos(seed, net, 12.0)
            for fault in chaos.backend_faults:
                assert fault.mode in ("raise", "timeout")
                assert fault.call % 2 == 0

    def test_crashes_for_filters_and_orders(self):
        chaos = ChaosSchedule(
            crashes=(
                CrashFault("pre-commit", 3),
                CrashFault("pre-batch", 0),
                CrashFault("pre-solve", 1),
            )
        )
        sim_points = ("pre-solve", "post-solve", "pre-commit",
                      "post-commit", "mid-journal")
        assert chaos.crashes_for(sim_points) == [
            CrashFault("pre-solve", 1),
            CrashFault("pre-commit", 3),
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: CrashFault("pre-lunch", 0),
            lambda: CrashFault("pre-commit", -1),
            lambda: JournalFault("full", 0),
            lambda: JournalFault("enospc", -2),
            lambda: BackendFault("explode", 0),
            lambda: WorkerFault("nap", 0),
        ],
    )
    def test_fault_validation(self, bad):
        with pytest.raises(ValidationError):
            bad()


class TestChaosSpecGrammar:
    def test_inline_entries(self, net):
        chaos = parse_chaos_spec(
            "down:0-1@2.0; crash:pre-commit@1; journal:enospc@0; "
            "backend:wrong@2; worker:hang@3",
            net,
        )
        assert len(chaos.link_events) == 1
        assert chaos.crashes == (CrashFault("pre-commit", 1),)
        assert chaos.journal_faults == (JournalFault("enospc", 0),)
        assert chaos.backend_faults == (BackendFault("wrong", 2),)
        assert chaos.worker_faults == (WorkerFault("hang", 3),)

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "crash:pre-commit",          # missing @epoch
            "journal:enospc@1.5",        # non-integer index
            "teleport:somewhere@1",      # unknown kind
            "backend:wrong@-1",          # negative index
        ],
    )
    def test_bad_specs_rejected(self, net, spec):
        with pytest.raises(ValidationError):
            parse_chaos_spec(spec, net)

    def test_random_spec_needs_horizon(self, net):
        with pytest.raises(ValidationError, match="horizon"):
            parse_chaos_spec("random:", net, seed=1)
        with pytest.raises(ValidationError, match="unknown random"):
            parse_chaos_spec("random:typo=1", net, seed=1, horizon=10.0)

    def test_random_spec_matches_generate(self, net):
        parsed = parse_chaos_spec("random:", net, seed=5, horizon=12.0)
        generated = generate_chaos(5, net, 12.0)
        expect = generated.to_dict()
        expect["spec"] = "random:"
        assert parsed.to_dict() == expect

    def test_json_file_round_trip(self, net, tmp_path):
        chaos = generate_chaos(4, net, 12.0)
        payload = chaos.to_dict()
        del payload["seed"], payload["spec"]
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(payload))
        parsed = parse_chaos_spec(str(path), net, seed=4)
        body = parsed.to_dict()
        assert body["crashes"] == chaos.to_dict()["crashes"]
        assert body["journal"] == chaos.to_dict()["journal"]
        assert body["backend"] == chaos.to_dict()["backend"]
        assert body["workers"] == chaos.to_dict()["workers"]
        assert body["link_events"] == chaos.to_dict()["link_events"]

    def test_json_file_unknown_key_rejected(self, net, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({"crashes": [], "typo": []}))
        with pytest.raises(ValidationError, match="unknown key"):
            parse_chaos_spec(str(path), net)


# ----------------------------------------------------------------------
# The faulty solver backend
# ----------------------------------------------------------------------
class TestFaultyBackend:
    def test_raise_and_timeout_absorbed_by_resilience(self, net, jobs):
        grid = TimeGrid.uniform(4)
        clean = Scheduler(net).schedule(jobs, grid)
        faults = (BackendFault("raise", 0), BackendFault("timeout", 2))
        with install_faulty_backend(faults) as backend:
            result = Scheduler(net, resilience=NO_PERTURB).schedule(
                jobs, grid
            )
        assert backend.injected == 2
        assert backend.calls > 2
        # Zero-perturbation retries heal to the identical solution.
        assert result.stage1.zstar == pytest.approx(clean.stage1.zstar)
        assert result.x == pytest.approx(clean.x)

    def test_wrong_solution_intercepted_before_commit(self, net, jobs):
        with install_faulty_backend((BackendFault("wrong", 0),)):
            scheduler = Scheduler(net, verify_solutions=True)
            with pytest.raises(
                ScheduleError, match="rejected by verify_schedule"
            ):
                scheduler.schedule(jobs, TimeGrid.uniform(4))

    def test_wrong_solution_never_reaches_the_journal(
        self, net, jobs, tmp_path
    ):
        # Acceptance: the interception happens before commit.  Run the
        # full simulator with a journal armed: the ScheduleError must
        # propagate and the journal must hold zero epoch entries —
        # nothing downstream ever saw the corrupt solution.
        path = tmp_path / "wrong.journal"
        with install_faulty_backend((BackendFault("wrong", 0),)):
            sim = Simulation(net, verify_solutions=True, journal=path)
            with pytest.raises(
                ScheduleError, match="rejected by verify_schedule"
            ):
                sim.run(jobs, horizon=4.0)
        replay = read_journal(path)
        assert len(replay.entries) == 0

    def test_registry_restored_after_context(self):
        original = get_backend("highs")
        with install_faulty_backend((BackendFault("raise", 0),)):
            assert get_backend("highs") is not original
        assert get_backend("highs") is original


# ----------------------------------------------------------------------
# Journal write faults
# ----------------------------------------------------------------------
class TestJournalFaultInjector:
    @pytest.mark.parametrize("mode", ["enospc", "eio", "torn"])
    def test_failed_append_is_typed_and_prior_state_intact(
        self, tmp_path, mode
    ):
        path = tmp_path / "chaos.journal"
        journal = EpochJournal.create(path, {"run": 1})
        journal.fault_injector = JournalFaultInjector(
            (JournalFault(mode, 1),)
        )
        journal.append({"epoch": 0})
        with pytest.raises(JournalWriteError) as excinfo:
            journal.append({"epoch": 1})
        assert excinfo.value.path == str(path)
        # Fail-stop contract: everything previously committed reads
        # back; at worst the torn tail is dropped.
        replay = read_journal(path)
        assert replay.header["run"] == 1
        assert [e["epoch"] for e in replay.entries] == [0]
        # The journal heals on the next successful append.
        journal.append({"epoch": 1})
        journal.close()
        replay = read_journal(path)
        assert [e["epoch"] for e in replay.entries] == [0, 1]

    def test_enospc_and_eio_raise_before_any_byte(self, tmp_path):
        injector = JournalFaultInjector(
            (JournalFault("enospc", 0), JournalFault("eio", 1))
        )
        with pytest.raises(OSError) as excinfo:
            injector(tmp_path / "j", "header\nentry")
        assert excinfo.value.errno == errno.ENOSPC
        with pytest.raises(OSError) as excinfo:
            injector(tmp_path / "j", "header\nentry")
        assert excinfo.value.errno == errno.EIO
        assert injector.exhausted

    def test_torn_header_degrades_to_eio(self, tmp_path):
        # Tearing the only line would make the file unreadable, which
        # is not what a torn *append* means.
        injector = JournalFaultInjector((JournalFault("torn", 0),))
        with pytest.raises(OSError) as excinfo:
            injector(tmp_path / "j", "just-a-header")
        assert excinfo.value.errno == errno.EIO

    def test_torn_append_cuts_only_the_new_line(self, tmp_path):
        injector = JournalFaultInjector((JournalFault("torn", 0),))
        content = injector(tmp_path / "j", "committed-1\ncommitted-2\nfresh")
        lines = content.splitlines()
        assert lines[:2] == ["committed-1", "committed-2"]
        assert lines[2] == "fr"


# ----------------------------------------------------------------------
# Fleet worker faults
# ----------------------------------------------------------------------
class TestFleetChaos:
    def test_hung_worker_reclaimed_and_reported(self):
        specs = [
            TaskSpec("chaos_probe", {"seed": 1, "mode": None}, label="ok"),
            TaskSpec(
                "chaos_probe",
                {"seed": 2, "mode": "hang", "hang_seconds": 60.0},
                label="hung",
            ),
        ]
        results = run_fleet(specs, jobs=2, retries=1, task_timeout=0.5)
        by_label = {r.label: r for r in results}
        assert by_label["ok"].ok
        assert by_label["ok"].value == {"seed": 1, "mode": None}
        assert not by_label["hung"].ok
        assert by_label["hung"].error_type == "WorkerHung"

    @pytest.mark.parametrize("timeout", [0.0, -1.0])
    def test_task_timeout_must_be_positive(self, timeout):
        specs = [TaskSpec("chaos_probe", {"seed": 1}, label="t")]
        with pytest.raises(ValidationError, match="task_timeout"):
            run_fleet(specs, task_timeout=timeout)


# ----------------------------------------------------------------------
# The composed campaign (acceptance)
# ----------------------------------------------------------------------
class TestComposedCampaign:
    def test_generated_timeline_all_targets_zero_violations(self):
        # One seeded timeline composing link faults, process crashes, a
        # journal write fault, backend faults, and both worker fault
        # modes — driven against all three targets with every monitor
        # armed.
        report = run_chaos(seed=1)
        assert report.ok, report.render()
        assert set(report.targets) == {"sim", "serve", "fleet"}
        for layer in ("crashes", "journal", "backend", "workers"):
            assert report.chaos[layer], layer
        fired = (
            report.targets["sim"]["crashes_fired"]
            + report.targets["serve"]["crashes_fired"]
        )
        assert fired >= 1
        assert (
            report.targets["sim"]["backend_faults_fired"]
            + report.targets["serve"]["backend_faults_fired"]
        ) >= 1
        assert report.targets["fleet"]["kill_faults"] == 1
        assert report.targets["fleet"]["hang_faults"] == 1
        assert "chaos seed=1" in report.render()

    def test_wrong_mode_intercepted_through_the_runner(self):
        report = run_chaos(seed=0, spec="backend:wrong@0", targets=("sim",))
        assert report.ok, report.render()
        assert report.targets["sim"]["intercepted"] is True
        assert report.targets["sim"]["backend_faults_fired"] == 1

    def test_unknown_target_rejected(self):
        with pytest.raises(ValidationError, match="unknown chaos target"):
            run_chaos(seed=0, targets=("simulator",))

    def test_report_json_is_canonical(self):
        report = run_chaos(seed=0, targets=("fleet",))
        body = json.loads(report.to_json())
        assert body["seed"] == 0
        assert body["ok"] == report.ok
        assert report.to_json() == json.dumps(
            body, sort_keys=True, separators=(",", ":")
        )


class TestChaosCli:
    def test_cli_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(
            ["chaos", "--seed", "1", "--target", "fleet", "-o", str(out)]
        )
        assert code == 0
        assert "chaos seed=1" in capsys.readouterr().out
        body = json.loads(out.read_text())
        assert body["ok"] is True
        assert set(body["targets"]) == {"fleet"}
