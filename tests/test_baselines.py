"""Unit tests for the related-work baseline schedulers."""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    TimeGrid,
    ValidationError,
    average_rate_reservation,
    malleable_reservation,
)
from repro.network import topologies
from repro.network.capacity import CapacityProfile


@pytest.fixture
def net():
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


@pytest.fixture
def grid():
    return TimeGrid.uniform(4)


class TestMalleableReservation:
    def test_single_job_admitted(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        result = malleable_reservation(net, jobs, grid)
        assert result.num_admitted == 1
        grant = result.grants[0]
        assert grant.wavelengths * grant.num_slices >= 4

    def test_prefers_earliest_finish(self, net, grid):
        """A 2-volume job on an empty network should finish on slice 0."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=2.0, start=0.0, end=4.0)])
        result = malleable_reservation(net, jobs, grid)
        grant = result.grants[0]
        assert grant.first_slice == 0
        assert grant.last_slice == 0
        assert grant.wavelengths == 2

    def test_fcfs_blocks_later_jobs(self, net, grid):
        """Unlike the LP framework, earlier reservations are never moved."""
        jobs = JobSet(
            [
                Job(id="first", source=0, dest=2, size=2.0, start=0.0, end=4.0,
                    arrival=-2.0),
                Job(id="second", source=0, dest=2, size=8.0, start=0.0, end=4.0,
                    arrival=-1.0),
            ]
        )
        result = malleable_reservation(net, jobs, grid)
        admitted = {g.job_id for g in result.grants}
        # "first" grabs slice 0; "second" needs all 4 slices x 2 wavelengths.
        assert "first" in admitted
        assert "second" not in admitted

    def test_loads_respect_capacity(self, net, grid):
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=2, size=3.0, start=0.0, end=4.0)
                for i in range(4)
            ]
        )
        result = malleable_reservation(net, jobs, grid)
        caps = np.repeat(net.capacities()[:, None], 4, axis=1)
        assert np.all(result.loads <= caps)
        assert np.all(result.loads >= 0)

    def test_unroutable_job_rejected(self, grid):
        from repro import Network

        net = Network()
        net.add_link_pair(0, 1, 2)
        net.add_node(9)
        jobs = JobSet([Job(id=0, source=0, dest=9, size=1.0, start=0.0, end=4.0)])
        result = malleable_reservation(net, jobs, grid)
        assert result.num_rejected == 1

    def test_window_outside_grid_rejected(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.1, end=0.9)])
        result = malleable_reservation(net, jobs, grid)
        assert result.num_rejected == 1

    def test_multipath_fallback(self, diamond, grid):
        """If the first path is full, the next k-shortest path is tried."""
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=3, size=4.0, start=0.0, end=4.0),
                Job(id=1, source=0, dest=3, size=4.0, start=0.0, end=4.0),
            ]
        )
        result = malleable_reservation(diamond, jobs, grid, k_paths=2)
        assert result.num_admitted == 2
        paths = {g.path.nodes for g in result.grants}
        assert len(paths) == 2  # forced onto disjoint paths

    def test_capacity_profile_respected(self, net, grid):
        prof = CapacityProfile.with_maintenance(net, grid, [(0, 1, 0.0, 4.0, 0)])
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        result = malleable_reservation(net, jobs, grid, capacity_profile=prof)
        assert result.num_rejected == 1

    def test_completion_slice(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        result = malleable_reservation(net, jobs, grid)
        k = result.completion_slice(jobs[0], net.wavelength_rate)
        grant = result.grants[0]
        assert grant.first_slice <= k <= grant.last_slice

    def test_completion_slice_unadmitted_raises(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=400.0, start=0.0, end=4.0)])
        result = malleable_reservation(net, jobs, grid)
        with pytest.raises(ValidationError):
            result.completion_slice(jobs[0], net.wavelength_rate)

    def test_acceptance_and_volume(self, net, grid):
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0),
                Job(id=1, source=0, dest=2, size=400.0, start=0.0, end=4.0),
            ]
        )
        result = malleable_reservation(net, jobs, grid)
        assert result.acceptance_rate() == pytest.approx(0.5)
        assert result.delivered_volume(jobs, net.wavelength_rate) == pytest.approx(4.0)


class TestAverageRateReservation:
    def test_reserves_whole_window(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        result = average_rate_reservation(net, jobs, grid)
        grant = result.grants[0]
        assert (grant.first_slice, grant.last_slice) == (0, 3)
        assert grant.wavelengths == 1  # ceil(4 / 4)

    def test_ceil_rounds_up(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=5.0, start=0.0, end=4.0)])
        result = average_rate_reservation(net, jobs, grid)
        assert result.grants[0].wavelengths == 2

    def test_single_path_only(self, diamond, grid):
        """No multipath: two whole-window jobs oversubscribe one path."""
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=3, size=4.0, start=0.0, end=4.0),
                Job(id=1, source=0, dest=3, size=4.0, start=0.0, end=4.0),
            ]
        )
        result = average_rate_reservation(diamond, jobs, grid)
        # Shortest path has capacity 1 per slice; job 0 takes it all.
        assert result.num_admitted == 1

    def test_wastes_capacity_vs_malleable(self, net, grid):
        """Average-rate blocks the whole window even for a short burst,
        so a workload malleable reservations can pack gets rejections."""
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=2, size=2.0, start=0.0, end=4.0,
                    arrival=float(i) - 10.0)
                for i in range(8)
            ]
        )
        avg = average_rate_reservation(net, jobs, grid)
        mall = malleable_reservation(net, jobs, grid)
        assert mall.num_admitted >= avg.num_admitted
        assert mall.num_admitted == 4  # 4 slices x 2 wavelengths / 2 each

    def test_loads_respect_capacity(self, net, grid):
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=2, size=6.0, start=0.0, end=4.0)
                for i in range(4)
            ]
        )
        result = average_rate_reservation(net, jobs, grid)
        caps = np.repeat(net.capacities()[:, None], 4, axis=1)
        assert np.all(result.loads <= caps)

    def test_empty_acceptance_rate_nan(self, net, grid):
        result = average_rate_reservation(net, JobSet([
            Job(id=0, source=0, dest=2, size=1.0, start=0.1, end=0.9)
        ]), grid)
        assert result.acceptance_rate() == 0.0
