"""Property test: crash+resume is invisible in the commitment book.

Satellite of the service PR, verbatim: over ``make_scenario`` arrival
streams, the commitment book after a crash and resume is byte-identical
(same canonical digest) to the uncrashed run's, across all service
crash points and crash epochs — including scenarios with fault
timelines, where voiding and renegotiation must also replay exactly.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SERVICE_CRASH_POINTS, CrashInjector, SimulatedCrash
from repro.service import ClosedLoopDriver, ReservationService
from repro.verify.fuzz import make_scenario


def _run_to_quiescence(scenario, path, crash=None):
    """One journaled driver run; (service, driver, crashed?)."""
    service = ReservationService(
        scenario.network,
        journal=str(path),
        fault_schedule=scenario.fault_schedule,
        crash_injector=crash,
        # Generous bounds: shedding is memoryless (never journaled), so
        # the digest property is cleanest with no sheds in the stream.
        queue_limit=4096,
        rate=4096.0,
    )
    driver = ClosedLoopDriver(service, scenario.jobs, max_epochs=400)
    try:
        asyncio.run(driver.run())
    except SimulatedCrash:
        service.close()
        return service, driver, True
    return service, driver, False


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    print_blob=True,
)
@given(
    seed=st.integers(min_value=0, max_value=400),
    point=st.sampled_from(SERVICE_CRASH_POINTS),
    crash_epoch=st.integers(min_value=0, max_value=3),
)
def test_crash_resume_book_identical(seed, point, crash_epoch):
    scenario = make_scenario(seed)

    with tempfile.TemporaryDirectory() as tmp:
        clean_svc, _, crashed = _run_to_quiescence(
            scenario, Path(tmp) / "clean.jsonl"
        )
        assert not crashed
        clean_digest = clean_svc.book.digest()
        clean_ledger = dict(clean_svc.book.ledger)
        clean_svc.close()

        path = Path(tmp) / "crash.jsonl"
        service, driver, crashed = _run_to_quiescence(
            scenario, path, crash=CrashInjector(point, crash_epoch)
        )
        if not crashed:
            # The run quiesced before the injector's epoch: already a
            # full clean run, which must agree outright.
            assert service.book.digest() == clean_digest
            service.close()
            return

        resumed = ReservationService.resume(str(path))
        driver.resume_with(resumed)
        asyncio.run(driver.run())
        assert resumed.book.digest() == clean_digest, (
            f"scenario seed={seed} diverged after crash at "
            f"{point}@{crash_epoch}: {scenario.description}"
        )
        assert resumed.book.ledger == clean_ledger
        resumed.close()
