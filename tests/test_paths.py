"""Unit tests for Dijkstra and Yen's k-shortest paths.

Where available, results are cross-checked against networkx's
``shortest_simple_paths`` oracle on random graphs.
"""

import numpy as np
import pytest

from repro import Network, Path, ValidationError, k_shortest_paths, shortest_path
from repro.network import topologies, waxman_network
from repro.network.paths import build_path_sets

networkx = pytest.importorskip("networkx")


@pytest.fixture
def diamond_weighted():
    """0->3 via 1 (cost 2) or via 2 (cost 3), plus direct heavy edge."""
    net = Network()
    net.add_edge(0, 1, 1, weight=1.0)
    net.add_edge(1, 3, 1, weight=1.0)
    net.add_edge(0, 2, 1, weight=1.5)
    net.add_edge(2, 3, 1, weight=1.5)
    net.add_edge(0, 3, 1, weight=5.0)
    return net


class TestPathObject:
    def test_from_nodes(self, diamond_weighted):
        p = Path.from_nodes(diamond_weighted, [0, 1, 3])
        assert p.cost == 2.0
        assert p.num_hops == 2
        assert p.source == 0 and p.target == 3
        assert len(p) == 2

    def test_single_node_rejected(self):
        with pytest.raises(ValidationError):
            Path((0,), (), 0.0)

    def test_edge_count_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Path((0, 1, 2), (0,), 1.0)

    def test_loop_rejected(self):
        with pytest.raises(ValidationError):
            Path((0, 1, 0), (0, 1), 2.0)

    def test_from_nodes_missing_edge(self, diamond_weighted):
        with pytest.raises(ValidationError):
            Path.from_nodes(diamond_weighted, [3, 0])


class TestShortestPath:
    def test_picks_cheapest(self, diamond_weighted):
        p = shortest_path(diamond_weighted, 0, 3)
        assert p.nodes == (0, 1, 3)
        assert p.cost == 2.0

    def test_unreachable_returns_none(self):
        net = Network()
        net.add_edge(0, 1, 1)
        net.add_node(2)
        assert shortest_path(net, 0, 2) is None

    def test_respects_direction(self):
        net = Network()
        net.add_edge(0, 1, 1)
        assert shortest_path(net, 1, 0) is None

    def test_same_endpoints_rejected(self, diamond_weighted):
        with pytest.raises(ValidationError):
            shortest_path(diamond_weighted, 0, 0)

    def test_banned_nodes(self, diamond_weighted):
        p = shortest_path(diamond_weighted, 0, 3, banned_nodes=frozenset({1}))
        assert p.nodes == (0, 2, 3)

    def test_banned_edges(self, diamond_weighted):
        eid = diamond_weighted.edge_id(0, 1)
        p = shortest_path(diamond_weighted, 0, 3, banned_edges=frozenset({eid}))
        assert p.nodes == (0, 2, 3)

    def test_all_paths_banned(self, diamond_weighted):
        p = shortest_path(
            diamond_weighted,
            0,
            3,
            banned_nodes=frozenset({1, 2}),
            banned_edges=frozenset({diamond_weighted.edge_id(0, 3)}),
        )
        assert p is None

    def test_unknown_endpoint(self, diamond_weighted):
        with pytest.raises(ValidationError):
            shortest_path(diamond_weighted, 0, 99)

    def test_hashable_noncomparable_nodes(self):
        """Heap ties between str and tuple nodes must not raise."""
        net = Network()
        net.add_link_pair("hub", ("L", 0), 1)
        net.add_link_pair("hub", ("L", 1), 1)
        net.add_link_pair(("L", 0), ("L", 1), 1)
        p = shortest_path(net, ("L", 0), ("L", 1))
        assert p.num_hops == 1


class TestYen:
    def test_orders_by_cost(self, diamond_weighted):
        paths = k_shortest_paths(diamond_weighted, 0, 3, 3)
        assert [p.nodes for p in paths] == [(0, 1, 3), (0, 2, 3), (0, 3)]
        assert [p.cost for p in paths] == [2.0, 3.0, 5.0]

    def test_fewer_paths_than_k(self, diamond_weighted):
        paths = k_shortest_paths(diamond_weighted, 0, 3, 10)
        assert len(paths) == 3

    def test_paths_are_distinct_and_loopless(self):
        net = topologies.grid2d(3, 3)
        paths = k_shortest_paths(net, (0, 0), (2, 2), 8)
        assert len({p.nodes for p in paths}) == len(paths)
        for p in paths:
            assert len(set(p.nodes)) == len(p.nodes)

    def test_unreachable_gives_empty(self):
        net = Network()
        net.add_edge(0, 1, 1)
        net.add_node(2)
        assert k_shortest_paths(net, 0, 2, 4) == []

    def test_k_must_be_positive(self, diamond_weighted):
        with pytest.raises(ValidationError):
            k_shortest_paths(diamond_weighted, 0, 3, 0)

    def test_ring_has_exactly_two_paths(self):
        net = topologies.ring(6)
        paths = k_shortest_paths(net, 0, 3, 5)
        assert len(paths) == 2
        assert paths[0].num_hops == 3 and paths[1].num_hops == 3

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx_oracle(self, seed):
        net = waxman_network(20, seed=seed)
        g = networkx.DiGraph()
        for e in net.edges:
            g.add_edge(e.source, e.target, weight=e.weight)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            s, t = rng.choice(20, size=2, replace=False)
            ours = k_shortest_paths(net, int(s), int(t), 4)
            oracle = []
            gen = networkx.shortest_simple_paths(g, int(s), int(t), weight="weight")
            for _, nodes in zip(range(4), gen):
                oracle.append(tuple(nodes))
            # Costs must match pairwise (node sequences can differ on ties).
            oracle_costs = [
                sum(g[u][v]["weight"] for u, v in zip(p[:-1], p[1:]))
                for p in oracle
            ]
            assert [p.cost for p in ours] == pytest.approx(oracle_costs)


class TestBuildPathSets:
    def test_caches_repeated_pairs(self):
        net = topologies.ring(5)
        sets = build_path_sets(net, [(0, 2), (0, 2), (1, 3)], k=2)
        assert set(sets) == {(0, 2), (1, 3)}
        assert len(sets[(0, 2)]) == 2

    def test_disconnected_pair_empty(self):
        net = Network()
        net.add_edge(0, 1, 1)
        net.add_node(2)
        sets = build_path_sets(net, [(0, 2)], k=3)
        assert sets[(0, 2)] == []


class TestEdgeDisjoint:
    def test_ring_two_disjoint(self):
        from repro import edge_disjoint_paths

        net = topologies.ring(6)
        paths = edge_disjoint_paths(net, 0, 3, 4)
        assert len(paths) == 2
        used = [set(p.edge_ids) for p in paths]
        assert not (used[0] & used[1])

    def test_line_single_path(self):
        from repro import edge_disjoint_paths

        net = topologies.line(4)
        paths = edge_disjoint_paths(net, 0, 3, 4)
        assert len(paths) == 1

    def test_shortest_first(self, diamond_weighted):
        from repro import edge_disjoint_paths

        paths = edge_disjoint_paths(diamond_weighted, 0, 3, 3)
        costs = [p.cost for p in paths]
        assert costs == sorted(costs)
        # All three 0->3 routes are mutually edge-disjoint here.
        assert len(paths) == 3

    def test_pairwise_disjoint_on_grid(self):
        from repro import edge_disjoint_paths

        net = topologies.grid2d(3, 3)
        paths = edge_disjoint_paths(net, (0, 0), (2, 2), 8)
        for i, a in enumerate(paths):
            for b in paths[i + 1:]:
                assert not (set(a.edge_ids) & set(b.edge_ids))

    def test_k_validated(self, diamond_weighted):
        from repro import edge_disjoint_paths
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            edge_disjoint_paths(diamond_weighted, 0, 3, 0)

    def test_unreachable_empty(self):
        from repro import Network, edge_disjoint_paths

        net = Network()
        net.add_edge(0, 1, 1)
        net.add_node(2)
        assert edge_disjoint_paths(net, 0, 2, 3) == []

    def test_build_path_sets_disjoint_flag(self):
        from repro.network.paths import build_path_sets

        net = topologies.ring(6)
        yen = build_path_sets(net, [(0, 3)], k=4)
        disjoint = build_path_sets(net, [(0, 3)], k=4, disjoint=True)
        assert len(disjoint[(0, 3)]) == 2
        assert len(yen[(0, 3)]) == 2  # ring only has 2 simple paths anyway
