"""Round-trip serialization: save → load → verify gives identical reports.

``VerificationReport`` and ``Violation`` are frozen dataclasses of
scalars and tuples, so structural equality is exact — a report computed
before serialization must equal the one computed after the problem and
schedule pass through JSON files, including when the problem carries a
fault-derived capacity profile.
"""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    Scheduler,
    TimeGrid,
    verify_schedule,
)
from repro.faults import FaultSchedule, LinkDown, LinkUp, WavelengthDegrade
from repro.network import topologies
from repro.serialization import (
    jobs_from_dict,
    jobs_to_dict,
    load_json,
    network_from_dict,
    network_to_dict,
    save_json,
    schedule_to_dict,
)


def _jobs():
    return JobSet(
        [
            Job(id="j0", source=0, dest=2, size=2.0, start=0.0, end=3.0),
            Job(id="j1", source=1, dest=4, size=1.5, start=1.0, end=4.0),
            Job(id="j2", source=5, dest=3, size=1.0, start=0.0, end=2.0),
        ]
    )


class TestRoundTrip:
    def test_plain_problem_identical_reports(self, tmp_path):
        net = topologies.ring(6, capacity=2)
        jobs = _jobs()
        grid = TimeGrid.uniform(4)
        result = Scheduler(net, k_paths=2, alpha_max=1.0).schedule(jobs, grid)
        schedule = schedule_to_dict(result)

        before = verify_schedule(net, schedule, jobs=jobs, grid=grid)

        save_json(network_to_dict(net), tmp_path / "net.json")
        save_json(jobs_to_dict(jobs), tmp_path / "jobs.json")
        save_json(schedule, tmp_path / "sched.json")

        net2 = network_from_dict(load_json(tmp_path / "net.json"))
        jobs2 = jobs_from_dict(load_json(tmp_path / "jobs.json"))
        sched2 = load_json(tmp_path / "sched.json")
        grid2 = TimeGrid.uniform(4)

        after = verify_schedule(net2, sched2, jobs=jobs2, grid=grid2)
        assert before == after
        assert before.ok

    def test_fault_profile_problem_identical_reports(self, tmp_path):
        """A fault-bearing problem round-trips to the identical report.

        The compiled fault profile constrains the structure's capacity;
        the serialized schedule is checked against that profile both
        before and after the network/jobs/schedule pass through JSON
        (the profile is recompiled from the same fault events — it is
        deterministic, so the reports must match exactly).
        """
        net = topologies.ring(6, capacity=2)
        jobs = _jobs()
        grid = TimeGrid.uniform(4)
        faults = FaultSchedule(
            net,
            [
                LinkDown(time=1.0, source=0, target=1),
                WavelengthDegrade(time=0.0, source=3, target=4, remaining=1),
                LinkUp(time=3.0, source=0, target=1),
            ],
        )
        profile = faults.compile(grid)
        structure = ProblemStructure(
            net, jobs, grid, k_paths=2, capacity_profile=profile
        )
        scheduler = Scheduler(net, k_paths=2, alpha_max=1.0)
        result = scheduler.schedule(
            jobs, grid, capacity_profile=profile
        )
        schedule = schedule_to_dict(result)

        before = verify_schedule(structure, schedule)
        assert before.ok

        save_json(network_to_dict(net), tmp_path / "net.json")
        save_json(jobs_to_dict(jobs), tmp_path / "jobs.json")
        save_json(schedule, tmp_path / "sched.json")

        net2 = network_from_dict(load_json(tmp_path / "net.json"))
        jobs2 = jobs_from_dict(load_json(tmp_path / "jobs.json"))
        faults2 = FaultSchedule(
            net2,
            [
                LinkDown(time=1.0, source=0, target=1),
                WavelengthDegrade(time=0.0, source=3, target=4, remaining=1),
                LinkUp(time=3.0, source=0, target=1),
            ],
        )
        grid2 = TimeGrid.uniform(4)
        structure2 = ProblemStructure(
            net2, jobs2, grid2, k_paths=2,
            capacity_profile=faults2.compile(grid2),
        )
        after = verify_schedule(structure2, load_json(tmp_path / "sched.json"))
        assert before == after

    def test_fault_capacity_actually_constrains(self):
        """Sanity: the profile-checked verification is not vacuous.

        A schedule planned at installed capacity must *fail* the
        capacity check under a profile that cuts a link it uses.
        """
        net = topologies.line(3, capacity=2)
        jobs = JobSet(
            [Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=2.0)]
        )
        grid = TimeGrid.uniform(2)
        result = Scheduler(net, k_paths=1, alpha_max=1.0).schedule(jobs, grid)
        assert np.sum(result.x) > 0

        faults = FaultSchedule(
            net, [LinkDown(time=0.0, source=0, target=1)]
        )
        structure = ProblemStructure(
            net, jobs, grid, k_paths=1,
            capacity_profile=faults.compile(grid),
        )
        report = verify_schedule(structure, schedule_to_dict(result))
        assert not report.ok
        assert "capacity" in {v.code for v in report.errors}

    def test_tampered_file_changes_report(self, tmp_path):
        net = topologies.ring(6, capacity=2)
        jobs = _jobs()
        grid = TimeGrid.uniform(4)
        result = Scheduler(net, k_paths=2, alpha_max=1.0).schedule(jobs, grid)
        save_json(schedule_to_dict(result), tmp_path / "sched.json")

        data = load_json(tmp_path / "sched.json")
        data["grants"][0]["wavelengths"] += 7
        save_json(data, tmp_path / "sched.json")

        report = verify_schedule(
            net, load_json(tmp_path / "sched.json"), jobs=jobs, grid=grid
        )
        assert not report.ok
