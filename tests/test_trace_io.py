"""Unit tests for CSV job-trace import/export."""

import pytest

from repro import Job, JobSet, ValidationError
from repro.workload import jobs_from_csv, jobs_to_csv


@pytest.fixture
def jobs():
    return JobSet(
        [
            Job(id="hep-1", source="Chicago", dest="Sunnyvale", size=60.0,
                start=0.0, end=4.0),
            Job(id="7", source="A", dest="B", size=12.5, start=1.0, end=3.0,
                arrival=0.5, weight=2.0),
        ]
    )


class TestRoundTrip:
    def test_csv_round_trip(self, tmp_path, jobs):
        path = tmp_path / "trace.csv"
        jobs_to_csv(jobs, path)
        clone = jobs_from_csv(path)
        assert len(clone) == 2
        j = clone.by_id("hep-1")
        assert (j.source, j.dest, j.size, j.start, j.end) == (
            "Chicago", "Sunnyvale", 60.0, 0.0, 4.0,
        )
        assert j.arrival == 0.0  # defaulted from start
        k = clone.by_id("7")
        assert k.arrival == 0.5
        assert k.weight == 2.0

    def test_numeric_coercion(self, tmp_path):
        path = tmp_path / "trace.csv"
        jobs_to_csv(
            JobSet([Job(id=3, source=0, dest=1, size=1.0, start=0.0, end=1.0)]),
            path,
        )
        as_strings = jobs_from_csv(path)
        assert as_strings[0].id == "3"
        coerced = jobs_from_csv(path, coerce_numeric=True)
        assert coerced[0].id == 3
        assert coerced[0].source == 0

    def test_float_precision_survives(self, tmp_path):
        path = tmp_path / "trace.csv"
        original = JobSet(
            [Job(id=0, source="a", dest="b", size=1 / 3, start=0.1, end=0.7)]
        )
        jobs_to_csv(original, path)
        clone = jobs_from_csv(path)
        assert clone[0].size == original[0].size  # repr round-trips exactly


class TestReaderValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no such file"):
            jobs_from_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValidationError, match="empty"):
            jobs_from_csv(path)

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,source,dest\n1,a,b\n")
        with pytest.raises(ValidationError, match="missing required columns"):
            jobs_from_csv(path)

    def test_unparsable_number_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "id,source,dest,size,start,end,arrival,weight\n"
            "1,a,b,not_a_number,0,1,,\n"
        )
        with pytest.raises(ValidationError, match=":2:"):
            jobs_from_csv(path)

    def test_invalid_job_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "id,source,dest,size,start,end,arrival,weight\n"
            "1,a,a,1.0,0,1,,\n"  # source == dest
        )
        with pytest.raises(ValidationError, match=":2:"):
            jobs_from_csv(path)

    def test_blank_rows_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text(
            "id,source,dest,size,start,end,arrival,weight\n"
            "\n"
            "1,a,b,1.0,0,1,,\n"
            ",,,,,,,\n"
        )
        assert len(jobs_from_csv(path)) == 1

    def test_no_rows(self, tmp_path):
        path = tmp_path / "headeronly.csv"
        path.write_text("id,source,dest,size,start,end,arrival,weight\n")
        with pytest.raises(ValidationError, match="no job rows"):
            jobs_from_csv(path)

    def test_header_case_insensitive(self, tmp_path):
        path = tmp_path / "caps.csv"
        path.write_text("ID,Source,Dest,Size,Start,End\n1,a,b,1.0,0,1\n")
        jobs = jobs_from_csv(path)
        assert jobs[0].size == 1.0
