"""More property-based tests: RET, admission, baselines, serialization."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    TimeGrid,
    admit_greedy,
    admit_max_prefix,
    average_rate_reservation,
    malleable_reservation,
    solve_stage1,
)
from repro.errors import InfeasibleProblemError
from repro.core.ret import solve_subret_lp
from repro.network import topologies
from repro.serialization import (
    jobs_from_dict,
    jobs_to_dict,
    network_from_dict,
    network_to_dict,
)

SOLVER_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _jobs_on_ring(seed: int, num_jobs: int, num_slices: int) -> JobSet:
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(num_jobs):
        src, dst = rng.choice(6, size=2, replace=False)
        first = int(rng.integers(0, num_slices))
        last = int(rng.integers(first + 1, num_slices + 1))
        jobs.append(
            Job(
                id=i,
                source=int(src),
                dest=int(dst),
                size=float(rng.uniform(0.5, 6.0)),
                start=float(first),
                end=float(last),
            )
        )
    return JobSet(jobs)


class TestRetMonotonicity:
    @SOLVER_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        b_small=st.floats(min_value=0.0, max_value=2.0),
        b_delta=st.floats(min_value=0.1, max_value=3.0),
    )
    def test_subret_feasibility_monotone_in_b(self, seed, b_small, b_delta):
        """If SUB-RET is LP-feasible at b, it stays feasible at b' > b."""
        net = topologies.ring(6, capacity=1)
        jobs = _jobs_on_ring(seed, 3, 4)

        def feasible(b: float) -> bool:
            extended = jobs.with_extended_ends(b)
            grid = TimeGrid.covering(extended.max_end())
            s = ProblemStructure(net, extended, grid, k_paths=2)
            try:
                solve_subret_lp(s)
                return True
            except InfeasibleProblemError:
                return False

        if feasible(b_small):
            assert feasible(b_small + b_delta)

    @SOLVER_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_interval_and_end_mode_agree_at_zero_start(self, seed):
        """When every job starts at t=0 the two stretch rules coincide."""
        rng = np.random.default_rng(seed)
        jobs = JobSet(
            [
                Job(
                    id=i,
                    source=0,
                    dest=2,
                    size=float(rng.uniform(1.0, 6.0)),
                    start=0.0,
                    end=float(rng.integers(1, 4)),
                )
                for i in range(2)
            ]
        )
        b = float(rng.uniform(0.0, 2.0))
        by_end = jobs.with_extended_ends(b)
        by_interval = jobs.with_extended_intervals(b)
        for j1, j2 in zip(by_end, by_interval):
            assert j1.end == pytest.approx(j2.end)


class TestAdmissionProperties:
    @SOLVER_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_zstar_monotone_in_job_set(self, seed):
        """Adding a job can only lower (or keep) Z*."""
        net = topologies.ring(6, capacity=2)
        jobs = _jobs_on_ring(seed, 4, 4)
        grid = TimeGrid.uniform(4)

        def zstar(js: JobSet) -> float:
            return solve_stage1(ProblemStructure(net, js, grid, 2)).zstar

        values = [zstar(jobs[: k + 1]) for k in range(len(jobs))]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-7

    @SOLVER_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_greedy_admits_superset_of_prefix(self, seed):
        net = topologies.ring(6, capacity=1)
        jobs = _jobs_on_ring(seed, 5, 3)
        grid = TimeGrid.uniform(3)
        from repro.core.admission import by_arrival

        # The superset guarantee only holds under the *same* ordering.
        prefix = admit_max_prefix(net, jobs, grid, k_paths=2, key=by_arrival)
        greedy = admit_greedy(net, jobs, grid, k_paths=2, key=by_arrival)
        assert {j.id for j in prefix.admitted} <= {j.id for j in greedy.admitted}
        # Both admitted sets are actually feasible.
        for decision in (prefix, greedy):
            if decision.num_admitted:
                assert decision.zstar >= 1.0 - 1e-7


class TestBaselineProperties:
    @SOLVER_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        num_jobs=st.integers(min_value=1, max_value=8),
    )
    def test_baselines_respect_capacity_and_partition_jobs(self, seed, num_jobs):
        net = topologies.ring(6, capacity=2)
        jobs = _jobs_on_ring(seed, num_jobs, 4)
        grid = TimeGrid.uniform(4)
        for algo in (malleable_reservation, average_rate_reservation):
            result = algo(net, jobs, grid)
            caps = np.repeat(net.capacities()[:, None], 4, axis=1)
            assert np.all(result.loads <= caps + 1e-9)
            assert np.all(result.loads >= -1e-9)
            admitted = {g.job_id for g in result.grants}
            rejected = {j.id for j in result.rejected}
            assert admitted | rejected == {j.id for j in jobs}
            assert not admitted & rejected

    @SOLVER_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_admitted_grants_cover_demand(self, seed):
        net = topologies.ring(6, capacity=2)
        jobs = _jobs_on_ring(seed, 4, 4)
        grid = TimeGrid.uniform(4)
        result = malleable_reservation(net, jobs, grid)
        for grant in result.grants:
            job = jobs.by_id(grant.job_id)
            volume = grant.wavelengths * float(
                grid.lengths[grant.first_slice : grant.last_slice + 1].sum()
            )
            assert volume * net.wavelength_rate >= job.size - 1e-9
            # Grant stays inside the job's window.
            window = grid.window_slices(job.start, job.end)
            assert window.start <= grant.first_slice
            assert grant.last_slice < window.stop


# Identifier-safe strategies for serialization round trips.
_ids = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
        min_size=1,
        max_size=12,
    ),
)


class TestSerializationProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        starts=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=10,
            max_size=10,
        ),
    )
    def test_jobs_round_trip(self, sizes, starts):
        jobs = JobSet(
            Job(
                id=i,
                source="a",
                dest="b",
                size=size,
                start=start,
                end=start + 1.0 + i,
            )
            for i, (size, start) in enumerate(zip(sizes, starts))
        )
        clone = jobs_from_dict(jobs_to_dict(jobs))
        assert len(clone) == len(jobs)
        for j1, j2 in zip(jobs, clone):
            assert (j1.id, j1.size, j1.start, j1.end, j1.arrival) == (
                j2.id,
                j2.size,
                j2.start,
                j2.end,
                j2.arrival,
            )

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_nodes=st.integers(min_value=2, max_value=20),
    )
    def test_network_round_trip(self, seed, num_nodes):
        from repro import waxman_network

        net = waxman_network(num_nodes, seed=seed, capacity=3)
        clone = network_from_dict(network_to_dict(net))
        assert clone.num_nodes == net.num_nodes
        assert clone.num_edges == net.num_edges
        assert clone.capacities().tolist() == net.capacities().tolist()


class TestRealizationProperties:
    @SOLVER_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_no_lambda_reuse_ever(self, seed):
        """Fundamental physical invariant: on any (edge, slice), every
        lambda index is assigned to at most one grant."""
        from repro import Scheduler, WorkloadGenerator
        from repro.core.realization import realize_schedule

        net = topologies.ring(6, capacity=2)
        rng = np.random.default_rng(seed)
        gen = WorkloadGenerator(net, rng=rng)
        jobs = gen.jobs(int(rng.integers(1, 6)))
        result = Scheduler(net, k_paths=2).schedule(jobs)
        for mode in ("converters", "strict"):
            realized = realize_schedule(result.structure, result.x, mode)
            used: dict[tuple, set] = {}
            for grant in realized.grants:
                hops = list(zip(grant.path[:-1], grant.path[1:]))
                for (u, v), lams in zip(hops, grant.lambdas_per_edge):
                    key = (u, v, grant.slice_index)
                    pool = used.setdefault(key, set())
                    assert not (pool & set(lams)), "lambda assigned twice"
                    pool |= set(lams)

    @SOLVER_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_converter_mode_realizes_everything(self, seed):
        from repro import Scheduler, WorkloadGenerator
        from repro.core.realization import realize_schedule

        net = topologies.ring(6, capacity=2)
        rng = np.random.default_rng(seed)
        gen = WorkloadGenerator(net, rng=rng)
        jobs = gen.jobs(3)
        result = Scheduler(net, k_paths=2).schedule(jobs)
        realized = realize_schedule(result.structure, result.x, "converters")
        assert realized.fully_realized
        counted = sum(g.wavelengths for g in realized.grants)
        assert counted == int(round(result.x.sum()))
