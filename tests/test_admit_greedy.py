"""Unit tests for the greedy (non-prefix) admission policy."""

import pytest

from repro import Job, JobSet, TimeGrid, ValidationError, admit_greedy, admit_max_prefix
from repro.core.admission import by_arrival, by_size_descending
from repro.network import topologies


@pytest.fixture
def net():
    return topologies.line(2, capacity=2)


class TestAdmitGreedy:
    def test_skips_infeasible_and_continues(self, net):
        """The prefix policy stops at the first misfit; greedy skips it."""
        jobs = JobSet(
            [
                Job(id="small1", source=0, dest=1, size=2.0, start=0.0, end=2.0,
                    arrival=-3.0),
                Job(id="huge", source=0, dest=1, size=40.0, start=0.0, end=2.0,
                    arrival=-2.0),
                Job(id="small2", source=0, dest=1, size=2.0, start=0.0, end=2.0,
                    arrival=-1.0),
            ]
        )
        grid = TimeGrid.uniform(2)
        prefix = admit_max_prefix(net, jobs, grid, key=by_arrival)
        greedy = admit_greedy(net, jobs, grid, key=by_arrival)
        assert {j.id for j in prefix.admitted} == {"small1"}
        assert {j.id for j in greedy.admitted} == {"small1", "small2"}
        assert {j.id for j in greedy.rejected} == {"huge"}

    def test_greedy_never_worse_than_prefix_in_count(self, net):
        """Under the same ordering, greedy admits a superset of the prefix."""
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=1, size=float(s), start=0.0, end=2.0,
                    arrival=float(i) - 10.0)
                for i, s in enumerate([1.0, 3.0, 1.0, 2.0, 1.0])
            ]
        )
        grid = TimeGrid.uniform(2)
        prefix = admit_max_prefix(net, jobs, grid, key=by_arrival)
        greedy = admit_greedy(net, jobs, grid, key=by_arrival)
        prefix_ids = {j.id for j in prefix.admitted}
        greedy_ids = {j.id for j in greedy.admitted}
        assert prefix_ids <= greedy_ids

    def test_admitted_set_is_feasible(self, net):
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=1, size=1.5, start=0.0, end=2.0)
                for i in range(6)
            ]
        )
        greedy = admit_greedy(net, jobs, TimeGrid.uniform(2))
        assert greedy.zstar >= 1.0 - 1e-9

    def test_unschedulable_rejected_without_solving(self):
        from repro import Network

        net = Network()
        net.add_link_pair(0, 1, 2)
        net.add_node(9)
        jobs = JobSet(
            [
                Job(id="ok", source=0, dest=1, size=1.0, start=0.0, end=2.0),
                Job(id="nopath", source=0, dest=9, size=1.0, start=0.0, end=2.0),
            ]
        )
        greedy = admit_greedy(net, jobs, TimeGrid.uniform(2))
        assert {j.id for j in greedy.admitted} == {"ok"}

    def test_threshold_validation(self, net):
        jobs = JobSet([Job(id=0, source=0, dest=1, size=1.0, start=0.0, end=2.0)])
        with pytest.raises(ValidationError):
            admit_greedy(net, jobs, TimeGrid.uniform(2), threshold=0.0)

    def test_empty_admission_zstar_is_inf(self, net):
        jobs = JobSet(
            [Job(id=0, source=0, dest=1, size=1000.0, start=0.0, end=2.0)]
        )
        greedy = admit_greedy(net, jobs, TimeGrid.uniform(2))
        assert greedy.num_admitted == 0
        assert greedy.zstar == float("inf")

    def test_value_ordering_admits_big_jobs_first(self, net):
        jobs = JobSet(
            [
                Job(id="big", source=0, dest=1, size=4.0, start=0.0, end=2.0),
                Job(id="s1", source=0, dest=1, size=2.0, start=0.0, end=2.0),
                Job(id="s2", source=0, dest=1, size=2.0, start=0.0, end=2.0),
            ]
        )
        greedy = admit_greedy(
            net, jobs, TimeGrid.uniform(2), key=by_size_descending
        )
        assert {j.id for j in greedy.admitted} == {"big"}
