"""Tests for the observability layer (repro.obs) and its pipeline hooks."""

import json

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    Scheduler,
    Simulation,
    Telemetry,
    TimeGrid,
    solve_lp,
    solve_ret,
)
from repro.core.ret import build_subret_lp, solve_subret_lp
from repro.core.throughput import build_stage1_lp, solve_stage1
from repro.obs import NULL_TELEMETRY, NullTelemetry


@pytest.fixture
def overloaded_jobs():
    """Jobs the line3 network cannot finish on time (forces RET work)."""
    return JobSet(
        [
            Job(id=0, source=0, dest=2, size=10.0, start=0.0, end=3.0),
            Job(id=1, source=2, dest=0, size=6.0, start=0.0, end=2.0),
        ]
    )


class TestTelemetryObject:
    def test_spans_nest_with_dotted_paths(self):
        t = Telemetry()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        assert t.span_stats["outer"].calls == 1
        assert t.span_stats["outer.inner"].calls == 2
        assert t.span_stats["outer"].total >= t.span_stats["outer.inner"].total

    def test_span_elapsed_readable_after_block(self):
        t = Telemetry()
        with t.span("work") as span:
            pass
        assert span.elapsed >= 0.0
        assert t.seconds("work") == pytest.approx(span.elapsed)

    def test_counters_accumulate(self):
        t = Telemetry()
        t.count("things")
        t.count("things", 4)
        assert t.counters["things"] == 5

    def test_records_filtered_by_kind(self):
        t = Telemetry()
        t.record("a", value=1)
        t.record("b", value=2)
        t.record("a", value=3)
        assert [r["value"] for r in t.records_of("a")] == [1, 3]

    def test_as_dict_round_trips_through_json(self):
        t = Telemetry()
        with t.span("s"):
            t.count("c", 2)
            t.record("r", x=1.5)
        data = json.loads(t.to_json())
        assert data["counters"] == {"c": 2}
        assert data["spans"]["s"]["calls"] == 1
        assert data["records"] == [{"kind": "r", "x": 1.5}]

    def test_exception_inside_span_still_closes_it(self):
        t = Telemetry()
        with pytest.raises(RuntimeError):
            with t.span("broken"):
                raise RuntimeError("boom")
        assert t.span_stats["broken"].calls == 1
        # The stack unwound: a new span is top-level again.
        with t.span("after"):
            pass
        assert "after" in t.span_stats

    def test_render_empty_and_populated(self):
        t = Telemetry()
        assert "empty" in t.render()
        with t.span("s"):
            pass
        assert "s" in t.render()

    def test_null_telemetry_stores_nothing_but_times(self):
        with NULL_TELEMETRY.span("x") as span:
            pass
        assert span.elapsed >= 0.0
        NULL_TELEMETRY.count("x")
        NULL_TELEMETRY.record("x", a=1)
        assert NULL_TELEMETRY.counters == {}
        assert NULL_TELEMETRY.records == []
        assert not NullTelemetry.enabled and Telemetry.enabled


class TestPipelineHooks:
    def test_structure_and_lp_records(self, line3_structure):
        t = Telemetry()
        solution = solve_lp(build_stage1_lp(line3_structure), telemetry=t,
                            label="stage1")
        (record,) = t.records_of("lp_solve")
        assert record["label"] == "stage1"
        assert record["backend"] == "highs"
        assert record["num_vars"] == line3_structure.num_cols + 1
        assert record["nnz"] > 0
        assert record["iterations"] == solution.iterations
        assert record["seconds"] >= 0.0
        assert t.counters["lp_solves"] == 1

    def test_structure_build_recorded(self, line3, line3_jobs, grid4):
        t = Telemetry()
        structure = ProblemStructure(line3, line3_jobs, grid4, 2, telemetry=t)
        (record,) = t.records_of("structure")
        assert record["num_cols"] == structure.num_cols
        assert t.span_stats["structure_build"].calls == 1

    def test_scheduler_spans_and_counters(self, line3, line3_jobs):
        t = Telemetry()
        Scheduler(line3, k_paths=2, telemetry=t).schedule(line3_jobs)
        assert t.span_stats["schedule"].calls == 1
        assert t.seconds("schedule.stage1") > 0.0
        assert t.seconds("schedule.stage2") > 0.0
        assert t.counters["schedule_passes"] == 1
        assert t.records_of("greedy_adjust")

    def test_ret_trace_recorded(self, line3, overloaded_jobs):
        t = Telemetry()
        result = solve_ret(line3, overloaded_jobs, k_paths=2, telemetry=t)
        probes = t.records_of("ret_probe")
        assert probes, "binary search left no trace"
        assert probes[0]["phase"] == "bounds"
        assert any(not p["feasible"] for p in probes), (
            "an overloaded instance must probe at least one infeasible b"
        )
        (final,) = t.records_of("ret_result")
        assert final["b_final"] == pytest.approx(result.b_final)
        assert final["delta_steps"] == result.delta_steps
        assert t.span_stats["ret"].calls == 1

    def test_simulation_scheduling_pass_span(self, line3, line3_jobs):
        t = Telemetry()
        Simulation(line3, k_paths=2, telemetry=t).run(line3_jobs)
        assert t.span_stats["scheduling_pass"].calls >= 1


class TestTelemetryIsPassive:
    """Telemetry-enabled and default runs must match bit for bit."""

    def test_scheduler_assignments_identical(self, line3, line3_jobs):
        plain = Scheduler(line3, k_paths=2).schedule(line3_jobs)
        measured = Scheduler(
            line3, k_paths=2, telemetry=Telemetry()
        ).schedule(line3_jobs)
        assert np.array_equal(
            plain.assignments.x_lpdar, measured.assignments.x_lpdar
        )
        assert np.array_equal(plain.assignments.x_lp, measured.assignments.x_lp)
        assert plain.alpha == measured.alpha
        assert plain.zstar == measured.zstar

    def test_ret_assignments_identical(self, line3, overloaded_jobs):
        plain = solve_ret(line3, overloaded_jobs, k_paths=2)
        measured = solve_ret(
            line3, overloaded_jobs, k_paths=2, telemetry=Telemetry()
        )
        assert plain.b_final == measured.b_final
        assert plain.delta_steps == measured.delta_steps
        assert np.array_equal(
            plain.assignments.x_lpdar, measured.assignments.x_lpdar
        )

    def test_simulation_outcomes_identical(self, line3, line3_jobs):
        plain = Simulation(line3, k_paths=2).run(line3_jobs)
        measured = Simulation(line3, k_paths=2, telemetry=Telemetry()).run(
            line3_jobs
        )
        assert [r.status for r in plain.records] == [
            r.status for r in measured.records
        ]
        assert plain.delivered_volume == measured.delivered_volume


class TestBackendParity:
    """The auditable simplex and HiGHS must agree on small instances."""

    def test_stage1_objective_parity(self, line3_structure):
        problem = build_stage1_lp(line3_structure)
        highs = solve_lp(problem, backend="highs")
        simplex = solve_lp(problem, backend="simplex")
        assert simplex.objective == pytest.approx(highs.objective, abs=1e-6)
        zstar = solve_stage1(line3_structure).zstar
        assert simplex.x[-1] == pytest.approx(zstar, abs=1e-6)

    def test_subret_objective_parity(self, line3, overloaded_jobs):
        # Extend ends enough that SUB-RET is feasible, then compare.
        extended = overloaded_jobs.with_extended_ends(1.0)
        grid = TimeGrid.covering(extended.max_end())
        structure = ProblemStructure(line3, extended, grid, 2)
        problem = build_subret_lp(structure)
        highs = solve_lp(problem, backend="highs")
        simplex = solve_lp(problem, backend="simplex")
        assert simplex.objective == pytest.approx(highs.objective, abs=1e-6)
        # Front-end route agrees too.
        front = solve_subret_lp(structure)
        assert front.objective == pytest.approx(highs.objective, abs=1e-6)

    def test_simplex_backend_records_telemetry(self, line3_structure):
        t = Telemetry()
        solve_lp(build_stage1_lp(line3_structure), backend="simplex",
                 telemetry=t)
        (record,) = t.records_of("lp_solve")
        assert record["backend"] == "simplex"
        assert record["iterations"] >= 0
