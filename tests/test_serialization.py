"""Unit tests for JSON serialization round-trips."""

import pytest

from repro import Job, JobSet, Scheduler, ValidationError
from repro.network import topologies
from repro.serialization import (
    jobs_from_dict,
    jobs_to_dict,
    load_json,
    network_from_dict,
    network_to_dict,
    save_json,
    schedule_to_dict,
)


@pytest.fixture
def net():
    return topologies.abilene(capacity=4, wavelength_rate=5.0)


class TestNetworkRoundTrip:
    def test_round_trip_preserves_structure(self, net):
        clone = network_from_dict(network_to_dict(net))
        assert clone.num_nodes == net.num_nodes
        assert clone.num_edges == net.num_edges
        assert clone.wavelength_rate == net.wavelength_rate
        assert clone.name == net.name
        for e1, e2 in zip(net.edges, clone.edges):
            assert (e1.source, e1.target, e1.capacity, e1.weight) == (
                e2.source,
                e2.target,
                e2.capacity,
                e2.weight,
            )

    def test_isolated_nodes_survive(self):
        from repro import Network

        net = Network()
        net.add_link_pair("a", "b", 1)
        net.add_node("lonely")
        clone = network_from_dict(network_to_dict(net))
        assert "lonely" in clone

    def test_tuple_nodes_rejected(self):
        net = topologies.grid2d(2, 2)
        with pytest.raises(ValidationError, match="JSON-serializable"):
            network_to_dict(net)

    def test_missing_fields_rejected(self):
        with pytest.raises(ValidationError):
            network_from_dict({"nodes": []})
        with pytest.raises(ValidationError):
            network_from_dict({"edges": [{"source": "a"}]})


class TestJobsRoundTrip:
    def test_round_trip(self):
        jobs = JobSet(
            [
                Job(id="x", source="a", dest="b", size=5.0, start=1.0, end=3.0,
                    arrival=0.5, weight=2.0),
                Job(id=7, source="b", dest="a", size=1.0, start=0.0, end=2.0),
            ]
        )
        clone = jobs_from_dict(jobs_to_dict(jobs))
        assert len(clone) == 2
        j = clone.by_id("x")
        assert (j.source, j.dest, j.size, j.start, j.end, j.arrival, j.weight) == (
            "a", "b", 5.0, 1.0, 3.0, 0.5, 2.0,
        )
        assert clone.by_id(7).weight is None

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            jobs_from_dict({"not_jobs": []})
        with pytest.raises(ValidationError):
            jobs_from_dict({"jobs": [{"id": 1, "source": "a"}]})

    def test_invalid_job_values_propagate(self):
        with pytest.raises(ValidationError):
            jobs_from_dict(
                {"jobs": [{"id": 1, "source": "a", "dest": "a",
                           "size": 1.0, "start": 0.0, "end": 1.0}]}
            )


class TestScheduleExport:
    def test_schedule_to_dict(self, net):
        jobs = JobSet(
            [Job(id="t", source="Chicago", dest="Denver", size=20.0,
                 start=0.0, end=4.0)]
        )
        result = Scheduler(net).schedule(jobs)
        data = schedule_to_dict(result)
        assert data["algorithm"] == "lpdar"
        assert data["zstar"] == result.zstar
        assert "t" in data["job_throughputs"]
        assert data["grants"]
        for grant in data["grants"]:
            assert grant["wavelengths"] >= 1
            assert grant["path"][0] == "Chicago"


class TestFiles:
    def test_save_and_load(self, tmp_path, net):
        path = tmp_path / "net.json"
        save_json(network_to_dict(net), path)
        clone = network_from_dict(load_json(path))
        assert clone.num_edges == net.num_edges

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no such file"):
            load_json(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="invalid JSON"):
            load_json(path)


class TestSimulationExport:
    def test_simulation_to_dict(self):
        import json

        from repro import Simulation
        from repro.network import topologies
        from repro.serialization import simulation_to_dict

        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet(
            [Job(id="a", source=0, dest=2, size=4.0, start=0.0, end=4.0)]
        )
        result = Simulation(net, policy="reduce").run(jobs)
        data = simulation_to_dict(result)
        # Must be JSON-encodable end to end.
        json.dumps(data)
        assert data["records"][0]["status"] == "completed"
        assert data["records"][0]["met_deadline"] is True
        types = {e["type"] for e in data["events"]}
        assert "JobArrived" in types
        assert "JobCompleted" in types

    def test_wrong_type_rejected(self):
        from repro.serialization import simulation_to_dict

        with pytest.raises(ValidationError):
            simulation_to_dict({"not": "a result"})
