"""Unit tests for time-varying link capacities (C_e(j))."""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    TimeGrid,
    ValidationError,
    greedy_adjust,
    solve_stage1,
)
from repro.core.metrics import mean_link_utilization
from repro.network import topologies
from repro.network.capacity import CapacityProfile


@pytest.fixture
def net():
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


@pytest.fixture
def grid():
    return TimeGrid.uniform(4)


class TestProfileConstruction:
    def test_constant(self, net, grid):
        prof = CapacityProfile.constant(net, grid)
        assert prof.matrix.shape == (4, 4)
        assert np.all(prof.matrix == 2)
        assert prof.outage_fraction() == 0.0
        assert prof.total_wavelength_slices() == 32

    def test_shape_checked(self, net, grid):
        with pytest.raises(ValidationError):
            CapacityProfile(net, grid, np.zeros((2, 4)))

    def test_negative_rejected(self, net, grid):
        m = np.full((4, 4), 2)
        m[0, 0] = -1
        with pytest.raises(ValidationError):
            CapacityProfile(net, grid, m)

    def test_fractional_rejected(self, net, grid):
        m = np.full((4, 4), 1.5)
        with pytest.raises(ValidationError):
            CapacityProfile(net, grid, m)

    def test_exceeding_installed_rejected(self, net, grid):
        m = np.full((4, 4), 5)
        with pytest.raises(ValidationError, match="installed"):
            CapacityProfile(net, grid, m)

    def test_maintenance_window(self, net, grid):
        prof = CapacityProfile.with_maintenance(net, grid, [(0, 1, 1.0, 3.0, 1)])
        eid = net.edge_id(0, 1)
        rid = net.edge_id(1, 0)
        assert prof.matrix[eid].tolist() == [2, 1, 1, 2]
        assert prof.matrix[rid].tolist() == [2, 1, 1, 2]  # bidirectional
        assert prof.outage_fraction() == pytest.approx(4 / 16)

    def test_maintenance_negative_remaining_rejected(self, net, grid):
        with pytest.raises(ValidationError):
            CapacityProfile.with_maintenance(net, grid, [(0, 1, 1.0, 3.0, -1)])

    def test_background_load_negative_rejected(self, net, grid):
        load = np.zeros((net.num_edges, grid.num_slices), dtype=int)
        load[0, 0] = -1
        with pytest.raises(ValidationError):
            CapacityProfile.with_background_load(net, grid, load)

    def test_maintenance_unidirectional(self, net, grid):
        prof = CapacityProfile.with_maintenance(
            net, grid, [(0, 1, 0.0, 4.0, 0)], bidirectional=False
        )
        assert np.all(prof.matrix[net.edge_id(0, 1)] == 0)
        assert np.all(prof.matrix[net.edge_id(1, 0)] == 2)

    def test_overlapping_windows_take_min(self, net, grid):
        prof = CapacityProfile.with_maintenance(
            net, grid, [(0, 1, 0.0, 2.0, 1), (0, 1, 1.0, 3.0, 0)]
        )
        assert prof.matrix[net.edge_id(0, 1)].tolist() == [1, 0, 0, 2]

    def test_empty_window_rejected(self, net, grid):
        with pytest.raises(ValidationError):
            CapacityProfile.with_maintenance(net, grid, [(0, 1, 2.0, 2.0, 1)])

    def test_partial_slice_overlap_hits_whole_slice(self, net, grid):
        prof = CapacityProfile.with_maintenance(net, grid, [(0, 1, 0.5, 1.5, 0)])
        assert prof.matrix[net.edge_id(0, 1)].tolist() == [0, 0, 2, 2]

    def test_background_load(self, net, grid):
        load = np.zeros((4, 4), dtype=int)
        load[net.edge_id(0, 1), :] = 1
        prof = CapacityProfile.with_background_load(net, grid, load)
        assert np.all(prof.matrix[net.edge_id(0, 1)] == 1)
        assert np.all(prof.matrix[net.edge_id(1, 0)] == 2)

    def test_background_load_floors_at_zero(self, net, grid):
        load = np.full((4, 4), 10)
        prof = CapacityProfile.with_background_load(net, grid, load)
        assert np.all(prof.matrix == 0)

    def test_repr(self, net, grid):
        assert "outage" in repr(CapacityProfile.constant(net, grid))


class TestProfileInOptimization:
    def test_structure_validates_profile_origin(self, net, grid):
        other = topologies.line(3, capacity=2)
        prof = CapacityProfile.constant(other, grid)
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        with pytest.raises(ValidationError, match="different network"):
            ProblemStructure(net, jobs, grid, capacity_profile=prof)

    def test_structure_validates_profile_grid(self, net, grid):
        prof = CapacityProfile.constant(net, TimeGrid.uniform(8))
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        with pytest.raises(ValidationError, match="different time grid"):
            ProblemStructure(net, jobs, grid, capacity_profile=prof)

    def test_constant_profile_matches_no_profile(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        plain = ProblemStructure(net, jobs, grid)
        with_prof = ProblemStructure(
            net, jobs, grid, capacity_profile=CapacityProfile.constant(net, grid)
        )
        assert solve_stage1(plain).zstar == pytest.approx(
            solve_stage1(with_prof).zstar
        )

    def test_outage_reduces_zstar(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        prof = CapacityProfile.with_maintenance(net, grid, [(0, 1, 1.0, 3.0, 0)])
        s = ProblemStructure(net, jobs, grid, capacity_profile=prof)
        # Only slices 0 and 3 usable at capacity 2: deliver 4 of 4 -> Z* = 1.
        assert solve_stage1(s).zstar == pytest.approx(1.0)

    def test_greedy_respects_outage(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        prof = CapacityProfile.with_maintenance(net, grid, [(0, 1, 1.0, 3.0, 0)])
        s = ProblemStructure(net, jobs, grid, capacity_profile=prof)
        x = greedy_adjust(s, np.zeros(s.num_cols))
        loads = s.link_loads(x)
        assert loads[net.edge_id(0, 1)].tolist() == [2.0, 0.0, 0.0, 2.0]
        assert s.capacity_violation(x) == 0.0

    def test_capacity_grid(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        prof = CapacityProfile.with_maintenance(net, grid, [(0, 1, 0.0, 4.0, 1)])
        s = ProblemStructure(net, jobs, grid, capacity_profile=prof)
        cg = s.capacity_grid()
        assert cg[net.edge_id(0, 1)].tolist() == [1.0, 1.0, 1.0, 1.0]
        assert cg[net.edge_id(1, 2)].tolist() == [2.0, 2.0, 2.0, 2.0]

    def test_utilization_excludes_dead_cells(self, net, grid):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=2.0, start=0.0, end=4.0)])
        matrix = np.full((4, 4), 0)
        eid01, eid12 = net.edge_id(0, 1), net.edge_id(1, 2)
        matrix[eid01, 0] = 2
        matrix[eid12, 0] = 2
        prof = CapacityProfile(net, grid, matrix)
        s = ProblemStructure(net, jobs, grid, capacity_profile=prof)
        x = greedy_adjust(s, np.zeros(s.num_cols))
        # The two live cells are fully used; dead cells excluded.
        assert mean_link_utilization(s, x) == pytest.approx(1.0)


class TestRetIntervalMode:
    def test_interval_mode_completes_jobs(self, net):
        from repro import solve_ret

        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=10.0, start=0.0, end=3.0),
                Job(id=1, source=0, dest=2, size=8.0, start=0.0, end=3.0),
            ]
        )
        result = solve_ret(net, jobs, mode="interval")
        assert result.mode == "interval"
        assert result.fraction_finished("lpdar") == 1.0
        # Start at 0: interval mode coincides with end-time mode here.
        assert result.b_final == pytest.approx(2.0, abs=0.11)

    def test_interval_mode_fairer_to_late_jobs(self, net):
        """A late-starting job's grant grows with its window, not its end.

        Under end-time mode a job with window [4, 5] gains (1+b)*5 - 5 =
        5b of extra time; under interval mode it gains only b.  The
        late job's extension is proportional to what it asked for.
        """
        jobs = JobSet([Job(id=0, source=0, dest=2, size=6.0, start=4.0, end=5.0)])
        from repro import solve_ret

        end_mode = solve_ret(net, jobs, mode="end_time", search_tol=1e-4)
        intv_mode = solve_ret(net, jobs, mode="interval", search_tol=1e-4)
        # Needs 3 slices at cap 2; window has 1.
        # end_time: (1+b)*5 >= 7  -> b >= 0.4; interval: 1+b >= 3 -> b >= 2.
        assert end_mode.b_final == pytest.approx(0.4, abs=0.11)
        assert intv_mode.b_final == pytest.approx(2.0, abs=0.11)
        ext_job = intv_mode.structure.jobs[0]
        assert ext_job.start == 4.0  # start preserved

    def test_unknown_mode_rejected(self, net):
        from repro import solve_ret
        from repro.errors import ValidationError

        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=2.0)])
        with pytest.raises(ValidationError):
            solve_ret(net, jobs, mode="bogus")

    def test_job_with_extended_interval(self):
        j = Job(id=0, source=0, dest=1, size=1.0, start=2.0, end=4.0)
        j2 = j.with_extended_interval(0.5)
        assert j2.start == 2.0
        assert j2.end == pytest.approx(5.0)
        with pytest.raises(ValidationError):
            j.with_extended_interval(-0.1)

    def test_jobset_with_extended_intervals(self):
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=1, size=1.0, start=0.0, end=2.0),
                Job(id=1, source=0, dest=1, size=1.0, start=1.0, end=2.0),
            ]
        )
        ext = jobs.with_extended_intervals(1.0)
        assert [j.end for j in ext] == [4.0, 3.0]


class TestSchedulerWithProfile:
    def test_scheduler_accepts_profile(self, net, grid):
        from repro import Scheduler

        prof = CapacityProfile.with_maintenance(net, grid, [(0, 1, 1.0, 3.0, 0)])
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        result = Scheduler(net).schedule(jobs, grid, capacity_profile=prof)
        assert result.zstar == pytest.approx(1.0)
        loads = result.structure.link_loads(result.x)
        assert loads[net.edge_id(0, 1), 1] == 0.0
        assert loads[net.edge_id(0, 1), 2] == 0.0

    def test_profile_grid_mismatch_raises(self, net, grid):
        from repro import Scheduler, TimeGrid

        prof = CapacityProfile.constant(net, TimeGrid.uniform(8))
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        with pytest.raises(ValidationError):
            Scheduler(net).schedule(jobs, grid, capacity_profile=prof)


class TestProfileForGrid:
    def test_identity_when_grids_match(self, net, grid):
        prof = CapacityProfile.constant(net, grid)
        assert prof.for_grid(grid) is prof

    def test_suffix_grid_rebased(self, net, grid):
        prof = CapacityProfile.with_maintenance(net, grid, [(0, 1, 1.0, 3.0, 0)])
        suffix = TimeGrid.uniform(3, start=1.0)
        rebased = prof.for_grid(suffix)
        eid = net.edge_id(0, 1)
        assert rebased.matrix[eid].tolist() == [0, 0, 2]

    def test_beyond_horizon_uses_installed(self, net, grid):
        prof = CapacityProfile.with_maintenance(net, grid, [(0, 1, 0.0, 4.0, 0)])
        longer = TimeGrid.uniform(6)
        rebased = prof.for_grid(longer)
        eid = net.edge_id(0, 1)
        assert rebased.matrix[eid].tolist() == [0, 0, 0, 0, 2, 2]

    def test_misaligned_grid_rejected(self, net, grid):
        prof = CapacityProfile.constant(net, grid)
        shifted = TimeGrid.uniform(4, start=0.5)
        with pytest.raises(ValidationError, match="align"):
            prof.for_grid(shifted)


class TestSimulationWithProfile:
    def test_online_scheduling_around_maintenance(self, net):
        """A job whose window straddles an outage is delayed, not lost."""
        from repro import Simulation

        horizon_grid = TimeGrid.uniform(8)
        prof = CapacityProfile.with_maintenance(
            net, horizon_grid, [(0, 1, 0.0, 2.0, 0), (1, 2, 0.0, 2.0, 0)]
        )
        jobs = JobSet(
            [Job(id="a", source=0, dest=2, size=4.0, start=0.0, end=6.0)]
        )
        sim = Simulation(net, policy="reduce", capacity_profile=prof)
        result = sim.run(jobs)
        rec = result.records[0]
        assert rec.status == "completed"
        # Nothing could move before t = 2.
        assert rec.completion_time >= 3.0

    def test_profile_network_mismatch(self, net, grid):
        from repro import Simulation
        from repro.network import topologies

        other = topologies.line(3, capacity=2)
        prof = CapacityProfile.constant(other, grid)
        with pytest.raises(ValidationError, match="different network"):
            Simulation(net, capacity_profile=prof)


class TestRetWithProfile:
    def test_maintenance_forces_larger_extension(self, net):
        """Draining the early slices pushes RET's b up."""
        from repro import solve_ret

        jobs = JobSet(
            [Job(id=0, source=0, dest=2, size=8.0, start=0.0, end=4.0)]
        )
        clean = solve_ret(net, jobs, search_tol=1e-4)
        assert clean.b_final == pytest.approx(0.0, abs=1e-6)

        # The profile must cover the largest horizon RET may try.
        big_grid = TimeGrid.uniform(50)
        prof = CapacityProfile.with_maintenance(
            net, big_grid, [(0, 1, 0.0, 4.0, 0), (1, 2, 0.0, 4.0, 0)]
        )
        drained = solve_ret(
            net, jobs, search_tol=1e-4, capacity_profile=prof
        )
        # 8 volume at 2/slice needs 4 usable slices, first usable at t=4:
        # (1+b)*4 >= 8 -> b >= 1.
        assert drained.b_final >= 1.0 - 1e-3
        assert drained.fraction_finished("lpdar") == 1.0
        # The schedule never uses drained slices.
        loads = drained.structure.link_loads(drained.assignments.x_lpdar)
        assert loads[net.edge_id(0, 1), :4].sum() == 0.0
