"""Unit tests for the ASCII table renderer."""

import pytest

from repro import ValidationError
from repro.analysis import Table, format_value


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(0.123456, precision=3) == "0.123"

    def test_whole_float(self):
        assert format_value(2.0) == "2.0"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_int_and_str(self):
        assert format_value(7) == "7"
        assert format_value("abc") == "abc"

    def test_bool(self):
        assert format_value(True) == "True"


class TestTable:
    def test_render_alignment(self):
        t = Table(["W", "ratio"], title="Fig. X")
        t.add_row([2, 0.5])
        t.add_row([32, 0.995])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "Fig. X"
        assert "W" in lines[1] and "ratio" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # All rows equal width.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_row_width_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValidationError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValidationError):
            Table([])

    def test_render_without_rows(self):
        t = Table(["only", "header"])
        out = t.render()
        assert "only" in out

    def test_print_goes_to_stdout(self, capsys):
        t = Table(["x"])
        t.add_row([1])
        t.print()
        captured = capsys.readouterr()
        assert "x" in captured.out
        assert "1" in captured.out


class TestExports:
    @pytest.fixture
    def table(self):
        t = Table(["W", "ratio"], title="Fig. X")
        t.add_row([2, 0.5])
        t.add_row(["a|b", 0.99])
        return t

    def test_to_markdown(self, table):
        md = table.to_markdown()
        lines = md.splitlines()
        assert lines[0] == "**Fig. X**"
        assert lines[2] == "| W | ratio |"
        assert lines[3] == "|---|---|"
        assert "a\\|b" in md  # pipes escaped

    def test_to_markdown_without_title(self):
        t = Table(["x"])
        t.add_row([1])
        assert t.to_markdown().splitlines()[0] == "| x |"

    def test_to_csv(self, table):
        import csv
        import io

        rows = list(csv.reader(io.StringIO(table.to_csv())))
        assert rows[0] == ["W", "ratio"]
        assert rows[1] == ["2", "0.5"]
        assert rows[2] == ["a|b", "0.99"]
