"""Property tests: the engine's incremental path must be invisible.

Every reuse level the layered model engine adds — cached paths, cached
structures, per-job fragments, memoized solves — is an optimization of a
pure function, so a warm engine must produce outputs *identical* to a
cold, from-scratch build on the same instance.  These tests drive both
paths over :func:`repro.verify.fuzz.make_scenario` seeds and compare the
results bit-for-bit (schedules, RET extensions, simulation records and
journal entries).
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import serialization
from repro.core.ret import solve_ret
from repro.core.scheduler import Scheduler
from repro.engine import ModelEngine, build_structure
from repro.errors import ReproError
from repro.lp.model import ProblemStructure
from repro.sim.simulator import Simulation
from repro.verify.checker import verify_schedule
from repro.verify.fuzz import make_scenario

SOLVER_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

seeds = st.integers(min_value=0, max_value=10_000)


def _strip_timings(obj):
    """Drop wall-clock fields (and the crc that covers them).

    ``SchedulingPass`` events record ``solve_seconds``; it is the one
    legitimately nondeterministic value in a journal or simulation dump,
    so equivalence is checked on everything else.
    """
    if isinstance(obj, dict):
        return {
            k: _strip_timings(v)
            for k, v in obj.items()
            if k not in ("solve_seconds", "crc")
        }
    if isinstance(obj, list):
        return [_strip_timings(v) for v in obj]
    return obj


def _matrices_equal(left, right):
    return (
        (left.capacity_matrix != right.capacity_matrix).nnz == 0
        and (left.demand_matrix != right.demand_matrix).nnz == 0
        and np.array_equal(left.cap_rhs, right.cap_rhs)
        and left.num_cols == right.num_cols
    )


@SOLVER_SETTINGS
@given(seed=seeds)
def test_engine_structure_matches_cold_build(seed):
    """Engine-built structures are bit-identical to direct construction."""
    sc = make_scenario(seed, allow_faults=False)
    engine = ModelEngine(sc.network, k_paths=3)
    warm = engine.structure(sc.jobs, sc.grid)
    cold = ProblemStructure(
        sc.network,
        sc.jobs,
        sc.grid,
        3,
        path_sets=engine.topology.path_sets(sc.jobs.od_pairs()),
    )
    assert _matrices_equal(warm, cold)
    # The module-level factory (used by experiments/analysis/verify call
    # sites) goes through the same layers.
    via_factory = build_structure(sc.network, sc.jobs, sc.grid, 3)
    assert _matrices_equal(via_factory, cold)


@SOLVER_SETTINGS
@given(seed=seeds)
def test_scheduler_warm_equals_cold(seed):
    """A warm engine changes nothing about the schedule or its report."""
    sc = make_scenario(seed, allow_faults=False)
    warm_sched = Scheduler(sc.network, k_paths=3)
    cold_sched = Scheduler(
        sc.network, k_paths=3, engine=ModelEngine.cold(sc.network, 3)
    )
    try:
        warm = warm_sched.schedule(sc.jobs, sc.grid)
    except ReproError as exc:
        with pytest.raises(type(exc)):
            cold_sched.schedule(sc.jobs, sc.grid)
        return
    cold = cold_sched.schedule(sc.jobs, sc.grid)
    assert warm.zstar == pytest.approx(cold.zstar)
    assert np.array_equal(warm.assignments.x_lpdar, cold.assignments.x_lpdar)
    warm_report = verify_schedule(warm.structure, warm.assignments.x_lpdar)
    cold_report = verify_schedule(cold.structure, cold.assignments.x_lpdar)
    assert warm_report.ok == cold_report.ok
    assert len(warm_report.violations) == len(cold_report.violations)
    # Scheduling the same jobs again through the warm scheduler is a
    # pure cache hit and must replay the identical assignment.
    again = warm_sched.schedule(sc.jobs, sc.grid)
    assert np.array_equal(again.assignments.x_lpdar, warm.assignments.x_lpdar)


@SOLVER_SETTINGS
@given(seed=seeds)
def test_solve_ret_warm_equals_cold(seed):
    """RET with memoized probes finds the same extension as without."""
    sc = make_scenario(seed, allow_faults=False)
    try:
        warm = solve_ret(sc.network, sc.jobs, k_paths=3, warm_start=True)
    except ReproError as exc:
        with pytest.raises(type(exc)):
            solve_ret(sc.network, sc.jobs, k_paths=3, warm_start=False)
        return
    cold = solve_ret(sc.network, sc.jobs, k_paths=3, warm_start=False)
    assert warm.b_hat == pytest.approx(cold.b_hat)
    assert warm.b_final == pytest.approx(cold.b_final)
    assert warm.delta_steps == cold.delta_steps
    assert np.array_equal(warm.assignments.x_lpdar, cold.assignments.x_lpdar)


@SOLVER_SETTINGS
@given(seed=seeds)
def test_simulation_warm_equals_cold(seed):
    """Multi-epoch controller runs are identical with and without reuse."""
    sc = make_scenario(seed, allow_faults=True)
    kwargs = dict(k_paths=3, fault_schedule=sc.fault_schedule)
    warm = Simulation(sc.network, warm_start=True, **kwargs).run(sc.jobs)
    cold = Simulation(sc.network, warm_start=False, **kwargs).run(sc.jobs)
    assert _strip_timings(serialization.simulation_to_dict(warm)) == (
        _strip_timings(serialization.simulation_to_dict(cold))
    )


@SOLVER_SETTINGS
@given(seed=seeds)
def test_fault_journal_identical_warm_vs_cold(seed, tmp_path):
    """Faults mid-run never let carried state leak into the journal.

    Fault epochs are where the delta layer is most dangerous: a carried
    plan or patched structure built before an edge went down must be
    invalidated, not silently reused.  This drives fuzz scenarios that
    actually carry a :class:`FaultSchedule` through the extend policy
    (the policy that re-plans hardest around outages) and demands the
    committed journal lines match a cold run byte-for-byte.
    """
    sc = make_scenario(seed, allow_faults=True)
    assume(sc.fault_schedule is not None)
    # The journal rewrites the whole file per commit, so reusing the
    # same paths across hypothesis examples is safe.
    paths = {True: tmp_path / "warm.jsonl", False: tmp_path / "cold.jsonl"}
    for flag, path in paths.items():
        Simulation(
            sc.network,
            policy="extend",
            k_paths=3,
            warm_start=flag,
            fault_schedule=sc.fault_schedule,
            journal=path,
        ).run(sc.jobs)
    warm_lines = paths[True].read_text().splitlines()
    cold_lines = paths[False].read_text().splitlines()
    warm_entries = [_strip_timings(json.loads(l)) for l in warm_lines[1:]]
    cold_entries = [_strip_timings(json.loads(l)) for l in cold_lines[1:]]
    assert warm_entries == cold_entries


@pytest.mark.parametrize("seed", [3, 11, 27])
def test_journal_epoch_entries_identical_warm_vs_cold(seed, tmp_path):
    """Warm starts never leak into the journal's committed state.

    The header records the ``warm_start`` flag (so ``resume`` rebuilds
    the same engine configuration); every line after it — the committed
    epoch records — must be byte-identical.
    """
    sc = make_scenario(seed, allow_faults=False)
    paths = {True: tmp_path / "warm.jsonl", False: tmp_path / "cold.jsonl"}
    for flag, path in paths.items():
        Simulation(
            sc.network, k_paths=3, warm_start=flag, journal=path
        ).run(sc.jobs)
    warm_lines = paths[True].read_text().splitlines()
    cold_lines = paths[False].read_text().splitlines()
    warm_entries = [_strip_timings(json.loads(l)) for l in warm_lines[1:]]
    cold_entries = [_strip_timings(json.loads(l)) for l in cold_lines[1:]]
    assert warm_entries == cold_entries
    warm_header = _strip_timings(json.loads(warm_lines[0]))
    cold_header = _strip_timings(json.loads(cold_lines[0]))
    assert warm_header["data"]["config"].pop("warm_start") is True
    assert cold_header["data"]["config"].pop("warm_start") is False
    assert warm_header == cold_header
