"""Unit tests for the capacity-upgrade planner."""

import pytest

from repro import Job, JobSet, TimeGrid, ValidationError
from repro.analysis import plan_upgrades
from repro.network import topologies


@pytest.fixture
def bottlenecked():
    """Dumbbell: everything crosses the single hub-hub link pair."""
    net = topologies.dumbbell(2, capacity=4, bottleneck_capacity=1)
    jobs = JobSet(
        [
            Job(id=0, source=("L", 0), dest=("R", 0), size=8.0, start=0.0, end=4.0),
            Job(id=1, source=("L", 1), dest=("R", 1), size=8.0, start=0.0, end=4.0),
        ]
    )
    return net, jobs


class TestPlanUpgrades:
    def test_upgrades_target_the_bottleneck(self, bottlenecked):
        net, jobs = bottlenecked
        plan = plan_upgrades(net, jobs, budget=2)
        assert plan.num_upgrades >= 1
        for step in plan.steps:
            assert {step.source, step.target} == {"hubL", "hubR"}

    def test_throughput_improves_overall(self, bottlenecked):
        """The end state improves.  (Individual steps may dip: more
        capacity raises Z*, tightening the fairness floor.)"""
        net, jobs = bottlenecked
        plan = plan_upgrades(net, jobs, budget=3)
        assert plan.throughput_gain() > 0
        assert plan.throughput_after > plan.throughput_before

    def test_original_network_untouched(self, bottlenecked):
        net, jobs = bottlenecked
        before = net.capacities().tolist()
        plan_upgrades(net, jobs, budget=2)
        assert net.capacities().tolist() == before

    def test_upgraded_network_has_more_wavelengths(self, bottlenecked):
        net, jobs = bottlenecked
        plan = plan_upgrades(net, jobs, budget=2)
        eid = plan.network.edge_id("hubL", "hubR")
        assert plan.network.edge(eid).capacity == 1 + plan.num_upgrades

    def test_min_price_stops_early(self, bottlenecked):
        """Because stage 2 has no per-job throughput cap, *some* link is
        always binding; the stop criterion is the price threshold."""
        net, jobs = bottlenecked
        plan = plan_upgrades(net, jobs, budget=5, min_price=1e9)
        assert plan.num_upgrades == 0
        assert plan.throughput_after == plan.throughput_before

    def test_budget_validated(self, bottlenecked):
        net, jobs = bottlenecked
        with pytest.raises(ValidationError):
            plan_upgrades(net, jobs, budget=0)

    def test_explicit_grid(self, bottlenecked):
        net, jobs = bottlenecked
        plan = plan_upgrades(net, jobs, grid=TimeGrid.uniform(4), budget=1)
        assert plan.num_upgrades == 1
