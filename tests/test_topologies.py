"""Unit tests for repro.network.topologies."""

import pytest

from repro import ValidationError
from repro.network import topologies


class TestAbilene:
    def test_paper_variant_has_20_link_pairs(self):
        net = topologies.abilene()
        assert net.num_nodes == 11
        assert net.num_link_pairs == 20
        assert net.num_edges == 40

    def test_historical_variant_has_14_link_pairs(self):
        net = topologies.abilene(extended=False)
        assert net.num_nodes == 11
        assert net.num_link_pairs == 14

    def test_strongly_connected(self):
        assert topologies.abilene().is_strongly_connected()
        assert topologies.abilene(extended=False).is_strongly_connected()

    def test_default_rate_is_20gbps(self):
        net = topologies.abilene()
        assert net.wavelength_rate == 20.0
        assert net.link_rate(0) == 20.0

    def test_wavelength_split_keeps_total_rate(self):
        net = topologies.abilene().with_wavelengths(4, total_link_rate=20.0)
        assert net.capacities().tolist() == [4] * 40
        assert net.link_rate(0) == pytest.approx(20.0)

    def test_known_cities_present(self):
        net = topologies.abilene()
        for city in ("Seattle", "Chicago", "Atlanta", "NewYork"):
            assert city in net


class TestSyntheticFamilies:
    def test_line(self):
        net = topologies.line(4, capacity=3)
        assert net.num_nodes == 4
        assert net.num_link_pairs == 3
        assert net.is_strongly_connected()

    def test_ring(self):
        net = topologies.ring(5)
        assert net.num_nodes == 5
        assert net.num_link_pairs == 5
        assert all(net.degree(n) == 4 for n in net)

    def test_star(self):
        net = topologies.star(4)
        assert net.num_nodes == 5
        assert net.degree(0) == 8
        assert all(net.degree(i) == 2 for i in range(1, 5))

    def test_grid2d(self):
        net = topologies.grid2d(2, 3)
        assert net.num_nodes == 6
        assert net.num_link_pairs == 7  # 2*2 vertical + 3*1... (r*(c-1)+c*(r-1))
        assert net.is_strongly_connected()

    def test_full_mesh(self):
        net = topologies.full_mesh(4)
        assert net.num_link_pairs == 6
        assert all(net.degree(n) == 6 for n in net)

    def test_dumbbell_bottleneck(self):
        net = topologies.dumbbell(2, capacity=4, bottleneck_capacity=1)
        eid = net.edge_id("hubL", "hubR")
        assert net.edge(eid).capacity == 1
        assert net.edge(net.edge_id(("L", 0), "hubL")).capacity == 4
        assert net.is_strongly_connected()

    def test_dumbbell_default_bottleneck_matches_capacity(self):
        net = topologies.dumbbell(1, capacity=3)
        assert net.edge(net.edge_id("hubL", "hubR")).capacity == 3

    @pytest.mark.parametrize(
        "factory,args",
        [
            (topologies.line, (1,)),
            (topologies.ring, (2,)),
            (topologies.star, (0,)),
            (topologies.grid2d, (1, 1)),
            (topologies.full_mesh, (1,)),
            (topologies.dumbbell, (0,)),
        ],
    )
    def test_too_small_rejected(self, factory, args):
        with pytest.raises(ValidationError):
            factory(*args)


class TestNsfnet:
    def test_structure(self):
        net = topologies.nsfnet()
        assert net.num_nodes == 14
        assert net.num_link_pairs == 21
        assert net.is_strongly_connected()

    def test_average_degree_three(self):
        import numpy as np

        net = topologies.nsfnet()
        degrees = [net.degree(n) / 2 for n in net]
        assert np.mean(degrees) == pytest.approx(3.0)

    def test_schedulable(self):
        from repro import Scheduler, WorkloadGenerator

        net = topologies.nsfnet().with_wavelengths(4, total_link_rate=20.0)
        jobs = WorkloadGenerator(net, seed=2).jobs(8)
        result = Scheduler(net).schedule(jobs)
        assert result.structure.capacity_violation(result.x) == 0.0
