"""Unit tests for repro.timegrid.TimeGrid."""

import numpy as np
import pytest

from repro import TimeGrid, ValidationError


class TestConstruction:
    def test_uniform_boundaries(self):
        grid = TimeGrid.uniform(num_slices=3, slice_length=2.0, start=1.0)
        assert np.allclose(grid.boundaries, [1.0, 3.0, 5.0, 7.0])
        assert grid.num_slices == 3
        assert grid.start == 1.0
        assert grid.end == 7.0
        assert grid.horizon == 6.0

    def test_explicit_nonuniform(self):
        grid = TimeGrid([0.0, 1.0, 3.0, 3.5])
        assert grid.num_slices == 3
        assert grid.length(0) == 1.0
        assert grid.length(1) == 2.0
        assert grid.length(2) == 0.5

    def test_covering_reaches_horizon(self):
        grid = TimeGrid.covering(horizon=7.3, slice_length=2.0)
        assert grid.end >= 7.3
        assert grid.num_slices == 4

    def test_covering_exact_multiple_has_no_extra_slice(self):
        grid = TimeGrid.covering(horizon=6.0, slice_length=2.0)
        assert grid.num_slices == 3
        assert grid.end == 6.0

    @pytest.mark.parametrize(
        "boundaries",
        [[0.0], [], [0.0, 1.0, 1.0], [0.0, 2.0, 1.0], [0.0, np.inf]],
    )
    def test_invalid_boundaries_rejected(self, boundaries):
        with pytest.raises(ValidationError):
            TimeGrid(boundaries)

    def test_zero_slices_rejected(self):
        with pytest.raises(ValidationError):
            TimeGrid.uniform(0)

    def test_negative_slice_length_rejected(self):
        with pytest.raises(ValidationError):
            TimeGrid.uniform(3, slice_length=-1.0)

    def test_covering_empty_horizon_rejected(self):
        with pytest.raises(ValidationError):
            TimeGrid.covering(horizon=0.0, slice_length=1.0, start=0.0)

    def test_boundaries_are_immutable(self):
        grid = TimeGrid.uniform(3)
        with pytest.raises(ValueError):
            grid.boundaries[0] = 99.0


class TestSliceGeometry:
    def test_slice_start_end(self):
        grid = TimeGrid.uniform(4, slice_length=0.5)
        assert grid.slice_start(2) == 1.0
        assert grid.slice_end(2) == 1.5

    def test_length_out_of_range(self):
        grid = TimeGrid.uniform(2)
        with pytest.raises(ValidationError):
            grid.length(2)
        with pytest.raises(ValidationError):
            grid.length(-1)

    def test_iteration_and_len(self):
        grid = TimeGrid.uniform(5)
        assert len(grid) == 5
        assert list(grid) == [0, 1, 2, 3, 4]

    def test_equality_and_hash(self):
        a = TimeGrid.uniform(3)
        b = TimeGrid([0.0, 1.0, 2.0, 3.0])
        c = TimeGrid.uniform(3, slice_length=2.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a grid"


class TestSliceOf:
    def test_interior_points(self):
        grid = TimeGrid.uniform(4)
        assert grid.slice_of(0.0) == 0
        assert grid.slice_of(0.5) == 0
        assert grid.slice_of(1.0) == 1
        assert grid.slice_of(3.999) == 3

    def test_final_boundary_maps_to_last_slice(self):
        grid = TimeGrid.uniform(4)
        assert grid.slice_of(4.0) == 3

    def test_outside_raises(self):
        grid = TimeGrid.uniform(4)
        with pytest.raises(ValidationError):
            grid.slice_of(-0.1)
        with pytest.raises(ValidationError):
            grid.slice_of(4.1)


class TestWindowSlices:
    def test_aligned_window(self):
        grid = TimeGrid.uniform(6)
        assert grid.window_slices(1.0, 4.0) == range(1, 4)

    def test_full_grid_window(self):
        grid = TimeGrid.uniform(4)
        assert grid.window_slices(0.0, 4.0) == range(0, 4)

    def test_unaligned_window_rounds_inward(self):
        grid = TimeGrid.uniform(6)
        # [0.5, 3.5] fully contains only slices 1 and 2.
        assert grid.window_slices(0.5, 3.5) == range(1, 3)

    def test_window_smaller_than_slice_is_empty(self):
        grid = TimeGrid.uniform(4)
        assert len(grid.window_slices(0.25, 0.75)) == 0

    def test_window_clipped_to_grid(self):
        grid = TimeGrid.uniform(4)
        assert grid.window_slices(-5.0, 100.0) == range(0, 4)

    def test_backwards_window_raises(self):
        grid = TimeGrid.uniform(4)
        with pytest.raises(ValidationError):
            grid.window_slices(2.0, 1.0)

    def test_window_mask_matches_range(self):
        grid = TimeGrid.uniform(6)
        mask = grid.window_mask(1.0, 4.0)
        assert mask.tolist() == [False, True, True, True, False, False]

    def test_degenerate_point_window_is_empty(self):
        grid = TimeGrid.uniform(4)
        assert len(grid.window_slices(2.0, 2.0)) == 0

    def test_float_noise_on_boundaries(self):
        # Boundaries computed via repeated addition must still align.
        grid = TimeGrid.uniform(10, slice_length=0.1)
        window = grid.window_slices(0.3, 0.7)
        assert window == range(3, 7)


class TestDerivedGrids:
    def test_extended_covers_horizon(self):
        grid = TimeGrid.uniform(3)
        bigger = grid.extended(7.5)
        assert bigger.end >= 7.5
        assert bigger.num_slices == 8
        assert np.allclose(bigger.boundaries[:4], grid.boundaries)

    def test_extended_noop_when_covered(self):
        grid = TimeGrid.uniform(5)
        assert grid.extended(4.0) is grid

    def test_extended_copies_last_slice_length(self):
        grid = TimeGrid([0.0, 1.0, 3.0])
        bigger = grid.extended(8.0)
        assert np.allclose(np.diff(bigger.boundaries)[1:], 2.0)

    def test_prefix(self):
        grid = TimeGrid.uniform(5)
        assert grid.prefix(2) == TimeGrid.uniform(2)

    def test_prefix_bounds(self):
        grid = TimeGrid.uniform(3)
        with pytest.raises(ValidationError):
            grid.prefix(0)
        with pytest.raises(ValidationError):
            grid.prefix(4)

    def test_repr_mentions_size(self):
        assert "num_slices=3" in repr(TimeGrid.uniform(3))
