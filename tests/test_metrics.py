"""Unit tests for schedule-level metrics."""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    TimeGrid,
    ValidationError,
    average_end_time,
    completion_slices,
    fraction_finished,
)
from repro.core.metrics import (
    mean_link_utilization,
    normalized_throughput,
    per_slice_delivery,
)


@pytest.fixture
def single_job(line3):
    jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
    return ProblemStructure(line3, jobs, TimeGrid.uniform(4))


class TestPerSliceDelivery:
    def test_shape_and_values(self, single_job):
        x = np.array([2.0, 1.0, 0.0, 1.0])
        d = per_slice_delivery(single_job, x)
        assert d.shape == (1, 4)
        assert d[0].tolist() == [2.0, 1.0, 0.0, 1.0]

    def test_multi_path_sums(self, diamond, grid4):
        jobs = JobSet([Job(id=0, source=0, dest=3, size=4.0, start=0.0, end=4.0)])
        s = ProblemStructure(diamond, jobs, grid4, k_paths=2)
        x = np.zeros(s.num_cols)
        x[s.column(0, 0, 0)] = 1.0
        x[s.column(0, 1, 0)] = 1.0
        d = per_slice_delivery(s, x)
        assert d[0, 0] == 2.0

    def test_slice_length_scales_volume(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, TimeGrid.uniform(2, slice_length=2.0))
        x = np.array([1.0, 0.0])
        assert per_slice_delivery(s, x)[0].tolist() == [2.0, 0.0]


class TestCompletion:
    def test_completion_slice(self, single_job):
        x = np.array([2.0, 1.0, 1.0, 0.0])  # cumulative 2, 3, 4 -> done at 2
        assert completion_slices(single_job, x).tolist() == [2]

    def test_unfinished_is_minus_one(self, single_job):
        x = np.array([1.0, 1.0, 0.0, 0.0])
        assert completion_slices(single_job, x).tolist() == [-1]

    def test_fraction_finished(self, line3_structure):
        x = np.zeros(line3_structure.num_cols)
        x[:4] = 1.0  # job 0 delivers 4 == its demand; job 1 nothing
        assert fraction_finished(line3_structure, x) == pytest.approx(0.5)

    def test_fraction_finished_tolerance(self, single_job):
        x = np.array([2.0, 2.0 - 1e-9, 0.0, 0.0])
        assert fraction_finished(single_job, x) == 1.0


class TestAverageEndTime:
    def test_unit_is_slice_count(self, single_job):
        x = np.array([2.0, 2.0, 0.0, 0.0])  # finishes on slice 1 -> end time 2
        assert average_end_time(single_job, x) == pytest.approx(2.0)

    def test_averages_only_finished(self, line3_structure):
        x = np.zeros(line3_structure.num_cols)
        x[:4] = 1.0  # job 0 finishes on slice 3; job 1 unfinished
        assert average_end_time(line3_structure, x) == pytest.approx(4.0)

    def test_require_all_finished_raises(self, line3_structure):
        x = np.zeros(line3_structure.num_cols)
        x[:4] = 1.0
        with pytest.raises(ValidationError, match="not finished"):
            average_end_time(line3_structure, x, require_all_finished=True)

    def test_nan_when_none_finished(self, single_job):
        assert np.isnan(average_end_time(single_job, np.zeros(4)))


class TestNormalizedThroughput:
    def test_identity_reference(self, single_job):
        x = np.array([1.0, 1.0, 0.0, 0.0])
        assert normalized_throughput(single_job, x, x) == pytest.approx(1.0)

    def test_half_reference(self, single_job):
        x = np.array([1.0, 0.0, 0.0, 0.0])
        ref = np.array([2.0, 0.0, 0.0, 0.0])
        assert normalized_throughput(single_job, x, ref) == pytest.approx(0.5)

    def test_zero_reference_rejected(self, single_job):
        with pytest.raises(ValidationError):
            normalized_throughput(single_job, np.zeros(4), np.zeros(4))


class TestUtilization:
    def test_full_saturation(self, line3_structure):
        from repro import greedy_adjust

        x = greedy_adjust(line3_structure, np.zeros(line3_structure.num_cols))
        # Only the two forward/backward directions the jobs use are loaded;
        # utilization averages over all four directed edges and four slices.
        util = mean_link_utilization(line3_structure, x)
        # Job windows: 0->2 over slices 0-3 saturated, 2->0 over 0-2.
        # Loaded edge-slices: 2 edges * 4 + 2 edges * 3 = 14 of 16 at cap.
        assert util == pytest.approx(14 / 16)

    def test_empty_schedule(self, single_job):
        assert mean_link_utilization(single_job, np.zeros(4)) == 0.0


class TestJainsFairness:
    def test_equal_shares_are_one(self):
        from repro.core.metrics import jains_fairness_index

        assert jains_fairness_index(np.array([2.0, 2.0, 2.0])) == pytest.approx(1.0)

    def test_single_taker_is_one_over_n(self):
        from repro.core.metrics import jains_fairness_index

        assert jains_fairness_index(np.array([5.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_all_zero_is_nan(self):
        from repro.core.metrics import jains_fairness_index

        assert np.isnan(jains_fairness_index(np.zeros(3)))

    def test_validation(self):
        from repro.core.metrics import jains_fairness_index

        with pytest.raises(ValidationError):
            jains_fairness_index(np.array([]))
        with pytest.raises(ValidationError):
            jains_fairness_index(np.array([-1.0, 2.0]))

    def test_alpha_raises_fairness(self, line3, grid4):
        """Lower alpha (tighter floor) -> higher Jain index of LP Z_i."""
        from repro import Job, JobSet, ProblemStructure, solve_stage1, solve_stage2_lp
        from repro.core.metrics import jains_fairness_index

        jobs = JobSet(
            [
                Job(id="big", source=0, dest=2, size=7.0, start=0.0, end=4.0),
                Job(id="small", source=0, dest=2, size=1.0, start=0.0, end=2.0),
            ]
        )
        s = ProblemStructure(line3, jobs, grid4)
        zstar = solve_stage1(s).zstar
        tight = solve_stage2_lp(s, zstar, alpha=0.0)
        loose = solve_stage2_lp(s, zstar, alpha=1.0)
        fair_tight = jains_fairness_index(s.throughputs(tight.x))
        fair_loose = jains_fairness_index(s.throughputs(loose.x))
        assert fair_tight >= fair_loose - 1e-9
