"""Unit tests for the synthetic e-science traces."""

import numpy as np
import pytest

from repro import (
    ValidationError,
    climate_ensemble_trace,
    hep_tier_trace,
    mixed_escience_trace,
)
from repro.network import topologies


@pytest.fixture
def net():
    return topologies.abilene()


class TestHepTierTrace:
    def test_single_source_fanout(self, net):
        jobs = hep_tier_trace(net, num_tier2=3, transfers_per_site=2, seed=0)
        assert len(jobs) == 6
        sources = {j.source for j in jobs}
        assert len(sources) == 1  # one Tier-1 archive
        assert len({j.dest for j in jobs}) == 3

    def test_sizes_are_large(self, net):
        jobs = hep_tier_trace(net, dataset_size=500.0, seed=1)
        assert jobs.sizes().min() > 100.0

    def test_windows_respect_span(self, net):
        jobs = hep_tier_trace(net, window_slices=10, slice_length=2.0, seed=2)
        for j in jobs:
            assert j.end - j.start == pytest.approx(20.0)

    def test_needs_enough_nodes(self):
        net = topologies.line(3)
        with pytest.raises(ValidationError):
            hep_tier_trace(net, num_tier2=5)

    def test_deterministic(self, net):
        a = hep_tier_trace(net, seed=5)
        b = hep_tier_trace(net, seed=5)
        assert [(j.source, j.dest, j.size) for j in a] == [
            (j.source, j.dest, j.size) for j in b
        ]


class TestClimateTrace:
    def test_all_to_one_per_round(self, net):
        jobs = climate_ensemble_trace(net, num_sites=4, rounds=3, seed=0)
        assert len(jobs) == 12
        assert len({j.dest for j in jobs}) == 1

    def test_round_windows_are_periodic(self, net):
        jobs = climate_ensemble_trace(
            net, num_sites=2, rounds=2, round_slices=3, slice_length=1.0, seed=1
        )
        starts = sorted({j.start for j in jobs})
        assert starts == [0.0, 3.0]
        for j in jobs:
            assert j.end - j.start == pytest.approx(3.0)

    def test_arrival_matches_round(self, net):
        jobs = climate_ensemble_trace(net, rounds=2, seed=2)
        for j in jobs:
            assert j.arrival == j.start

    def test_rounds_validation(self, net):
        with pytest.raises(ValidationError):
            climate_ensemble_trace(net, rounds=0)


class TestMixedTrace:
    def test_composition(self, net):
        jobs = mixed_escience_trace(net, num_bulk=4, num_small=10, seed=0)
        bulk = [j for j in jobs if str(j.id).startswith("bulk")]
        small = [j for j in jobs if str(j.id).startswith("small")]
        assert len(bulk) == 4 and len(small) == 10

    def test_heavy_tail(self, net):
        jobs = mixed_escience_trace(net, seed=1)
        bulk_sizes = [j.size for j in jobs if str(j.id).startswith("bulk")]
        small_sizes = [j.size for j in jobs if str(j.id).startswith("small")]
        assert min(bulk_sizes) > max(small_sizes)

    def test_windows_inside_horizon(self, net):
        jobs = mixed_escience_trace(net, horizon_slices=12, seed=2)
        for j in jobs:
            assert j.start >= 0.0
            assert j.end <= 12.0 + 1e-9

    def test_rng_seed_exclusive(self, net):
        with pytest.raises(ValidationError):
            mixed_escience_trace(net, rng=np.random.default_rng(0), seed=1)
