"""Unit tests for stage 2 (weighted throughput with fairness floor)."""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    ValidationError,
    solve_stage1,
    solve_stage2_lp,
)
from repro.core.stage2 import build_stage2_lp, objective_weights


@pytest.fixture
def contended(line3, grid4):
    """Two jobs sharing the 0->2 direction; sizes 6 and 2."""
    jobs = JobSet(
        [
            Job(id="big", source=0, dest=2, size=6.0, start=0.0, end=4.0),
            Job(id="small", source=0, dest=2, size=2.0, start=0.0, end=2.0),
        ]
    )
    return ProblemStructure(line3, jobs, grid4)


class TestObjectiveWeights:
    def test_size_weights_reduce_to_volume(self, contended):
        """With w_i = D_i / sum D the coefficient is LEN / sum d for all."""
        coeffs = objective_weights(contended)
        expected = contended.col_len / contended.demands.sum()
        assert np.allclose(coeffs, expected)

    def test_custom_weights(self, contended):
        coeffs = objective_weights(contended, np.array([1.0, 3.0]))
        # job "small" columns get 3 / d_small = 1.5 per unit length.
        small_cols = contended.job_columns(1)
        assert np.allclose(coeffs[small_cols], 3.0 / 2.0)

    def test_weight_validation(self, contended):
        with pytest.raises(ValidationError):
            objective_weights(contended, np.array([1.0]))
        with pytest.raises(ValidationError):
            objective_weights(contended, np.array([1.0, 0.0]))


class TestStage2LP:
    def test_objective_at_least_zstar(self, contended):
        """Stage-1's solution is stage-2 feasible, so objective >= Z*."""
        zstar = solve_stage1(contended).zstar
        result = solve_stage2_lp(contended, zstar, alpha=0.1)
        assert result.objective >= zstar - 1e-7

    def test_fairness_floor_respected(self, contended):
        zstar = solve_stage1(contended).zstar
        for alpha in (0.0, 0.1, 0.5):
            result = solve_stage2_lp(contended, zstar, alpha=alpha)
            z = contended.throughputs(result.x)
            assert np.all(z >= (1 - alpha) * zstar - 1e-7)

    def test_capacity_respected(self, contended):
        zstar = solve_stage1(contended).zstar
        result = solve_stage2_lp(contended, zstar, alpha=0.1)
        assert contended.capacity_violation(result.x) <= 1e-7

    def test_alpha_one_unconstrains_fairness(self, line3, grid4):
        """With alpha = 1 the floor is 0; big job can take everything."""
        jobs = JobSet(
            [
                Job(id="a", source=0, dest=2, size=8.0, start=0.0, end=4.0),
                Job(id="b", source=0, dest=2, size=8.0, start=0.0, end=4.0),
            ]
        )
        s = ProblemStructure(line3, jobs, grid4)
        zstar = solve_stage1(s).zstar  # 0.5: overloaded
        r = solve_stage2_lp(s, zstar, alpha=1.0)
        # Total weighted throughput = delivered / 16 = 8/16 regardless of split.
        assert r.objective == pytest.approx(0.5)

    def test_inverse_size_weights_favor_small_job(self, line3, grid4):
        """Overloaded link: inverse-size weights push service to the small job."""
        jobs = JobSet(
            [
                Job(id="big", source=0, dest=2, size=8.0, start=0.0, end=4.0),
                Job(id="small", source=0, dest=2, size=2.0, start=0.0, end=4.0),
            ]
        )
        s = ProblemStructure(line3, jobs, grid4)
        zstar = solve_stage1(s).zstar
        inverse = 1.0 / s.jobs.sizes()
        r = solve_stage2_lp(s, zstar, alpha=0.5, weights=inverse)
        z = s.throughputs(r.x)
        assert z[1] > z[0]  # small job served at a higher fraction

    def test_objective_matches_weighted_throughput(self, contended):
        zstar = solve_stage1(contended).zstar
        r = solve_stage2_lp(contended, zstar, alpha=0.1)
        assert r.objective == pytest.approx(
            contended.weighted_throughput(r.x), abs=1e-8
        )

    def test_fairness_floor_accessor(self, contended):
        r = solve_stage2_lp(contended, zstar=0.4, alpha=0.25)
        assert r.fairness_floor() == pytest.approx(0.3)

    def test_parameter_validation(self, contended):
        with pytest.raises(ValidationError):
            build_stage2_lp(contended, zstar=1.0, alpha=-0.1)
        with pytest.raises(ValidationError):
            build_stage2_lp(contended, zstar=1.0, alpha=1.5)
        with pytest.raises(ValidationError):
            build_stage2_lp(contended, zstar=-1.0)

    def test_underloaded_network_overdelivers(self, line3, grid4):
        """A single small job: stage 2 fills the pipe far beyond Z_i = 1."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, grid4)
        zstar = solve_stage1(s).zstar  # 8
        r = solve_stage2_lp(s, zstar, alpha=0.1)
        assert r.objective == pytest.approx(8.0)
