"""Unit tests for the controller-user negotiation session."""

import pytest

from repro import Job, JobSet, ValidationError
from repro.core.negotiation import NegotiationSession
from repro.network import topologies


@pytest.fixture
def net():
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


@pytest.fixture
def overloaded_jobs():
    """16 volume over an 8-volume window: Z* = 0.5."""
    return JobSet(
        [
            Job(id="a", source=0, dest=2, size=10.0, start=0.0, end=4.0),
            Job(id="b", source=0, dest=2, size=6.0, start=0.0, end=4.0),
        ]
    )


class TestSizeReductionRound:
    def test_full_round_reaches_admissibility(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        assert not session.admissible()

        round_ = session.propose_size_reduction()
        assert round_.kind == "reduce_size"
        for job in overloaded_jobs:
            assert round_.proposals[job.id].size <= job.size + 1e-9

        session.apply_responses()  # everyone accepts
        assert session.admissible()
        assert len(session.rounds) == 1
        assert session.rounds[0].applied

    def test_decline_keeps_original_request(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        session.propose_size_reduction()
        session.respond("a", accept=False)
        jobs = session.apply_responses()
        assert jobs.by_id("a").size == 10.0  # unchanged
        assert jobs.by_id("b").size < 6.0  # accepted (default)

    def test_counter_offer(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        session.propose_size_reduction()
        session.respond("a", accept=False, counter_size=4.0)
        jobs = session.apply_responses()
        assert jobs.by_id("a").size == 4.0

    def test_withdrawal(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        session.propose_size_reduction()
        session.respond("a", withdraw=True)
        session.respond("b", accept=False)
        jobs = session.apply_responses()
        assert "a" not in jobs
        assert [j.id for j in session.withdrawn] == ["a"]
        # b alone at original size fits (6 <= 8).
        assert session.admissible()

    def test_zero_size_proposal_counts_as_withdrawal(self, net):
        """A job the network cannot serve at all drops out on accept."""
        from repro import Network

        isolated_net = topologies.line(3, capacity=1, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id="big", source=0, dest=2, size=100.0, start=0.0, end=1.0),
                Job(id="ok", source=0, dest=2, size=1.0, start=1.0, end=4.0),
            ]
        )
        session = NegotiationSession(isolated_net, jobs)
        session.propose_size_reduction()
        new = session.apply_responses()
        # "big" gets a near-zero guarantee in a 1-slice window shared
        # with nothing; it may survive tiny — verify consistency either way.
        assert session.admissible() or len(new) < 2


class TestDeadlineExtensionRound:
    def test_extension_round(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        round_ = session.propose_deadline_extension(b_max=10.0)
        assert round_.kind == "extend_end"
        for job in overloaded_jobs:
            proposal = round_.proposals[job.id]
            assert proposal.end >= job.end
            assert proposal.size == job.size  # sizes untouched
        session.apply_responses()
        assert session.admissible()

    def test_interval_mode_forwarded(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        round_ = session.propose_deadline_extension(mode="interval")
        assert all(p.end >= 4.0 for p in round_.proposals.values())


class TestMultiRound:
    def test_repeated_negotiation(self, net, overloaded_jobs):
        """Round 1 declined by one user; round 2 converges — the paper's
        'this negotiation process can be further repeated'."""
        session = NegotiationSession(net, overloaded_jobs)
        session.propose_size_reduction()
        session.respond("a", accept=False)  # a insists on 10 GB
        session.apply_responses()
        if session.admissible():
            pytest.skip("instance converged in one round")
        session.propose_deadline_extension()
        session.apply_responses()
        assert session.admissible()
        assert len(session.rounds) == 2


class TestProtocolErrors:
    def test_empty_jobs_rejected(self, net):
        with pytest.raises(ValidationError):
            NegotiationSession(net, JobSet())

    def test_respond_without_round(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        with pytest.raises(ValidationError, match="no open round"):
            session.respond("a")

    def test_double_proposal_rejected(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        session.propose_size_reduction()
        with pytest.raises(ValidationError, match="still open"):
            session.propose_size_reduction()

    def test_double_response_rejected(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        session.propose_size_reduction()
        session.respond("a")
        with pytest.raises(ValidationError, match="already responded"):
            session.respond("a")

    def test_unknown_job_rejected(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        session.propose_size_reduction()
        with pytest.raises(ValidationError, match="no proposal"):
            session.respond("zzz")

    def test_withdraw_with_terms_rejected(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        session.propose_size_reduction()
        with pytest.raises(ValidationError, match="withdrawal"):
            session.respond("a", withdraw=True, counter_size=3.0)
        # Plain withdraw (accept left at its default) is fine.
        session.respond("a", withdraw=True)

    def test_apply_without_round(self, net, overloaded_jobs):
        session = NegotiationSession(net, overloaded_jobs)
        with pytest.raises(ValidationError, match="no open round"):
            session.apply_responses()
