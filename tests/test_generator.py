"""Unit tests for the random workload generator."""

import numpy as np
import pytest

from repro import ValidationError, WorkloadConfig, WorkloadGenerator
from repro.network import topologies
from repro.workload.generator import poisson_arrivals


@pytest.fixture
def net():
    return topologies.ring(8, capacity=2)


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        cfg = WorkloadConfig()
        assert cfg.size_low == 1.0
        assert cfg.size_high == 100.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_low": 0.0},
            {"size_low": 10.0, "size_high": 5.0},
            {"window_slices_low": 0},
            {"window_slices_low": 5, "window_slices_high": 2},
            {"start_slack_slices": -1},
            {"slice_length": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            WorkloadConfig(**kwargs)

    def test_horizon_slices(self):
        cfg = WorkloadConfig(start_slack_slices=3, window_slices_high=6)
        assert cfg.horizon_slices == 9


class TestGenerator:
    def test_sizes_in_range(self, net):
        gen = WorkloadGenerator(net, seed=0)
        jobs = gen.jobs(200)
        sizes = jobs.sizes()
        assert sizes.min() >= 1.0
        assert sizes.max() <= 100.0

    def test_endpoints_distinct_and_in_network(self, net):
        gen = WorkloadGenerator(net, seed=1)
        for job in gen.jobs(50):
            assert job.source != job.dest
            assert job.source in net and job.dest in net

    def test_windows_slice_aligned(self, net):
        cfg = WorkloadConfig(slice_length=0.5)
        gen = WorkloadGenerator(net, cfg, seed=2)
        for job in gen.jobs(50):
            assert (job.start / 0.5) == pytest.approx(round(job.start / 0.5))
            assert (job.end / 0.5) == pytest.approx(round(job.end / 0.5))

    def test_window_spans_in_range(self, net):
        cfg = WorkloadConfig(window_slices_low=3, window_slices_high=5)
        gen = WorkloadGenerator(net, cfg, seed=3)
        for job in gen.jobs(50):
            span = round(job.end - job.start)
            assert 3 <= span <= 5

    def test_jobs_after_arrival(self, net):
        gen = WorkloadGenerator(net, seed=4)
        job = gen.job("x", arrival=2.3)
        assert job.arrival == 2.3
        assert job.start >= 2.3

    def test_deterministic_with_seed(self, net):
        a = WorkloadGenerator(net, seed=9).jobs(10)
        b = WorkloadGenerator(net, seed=9).jobs(10)
        assert [(j.source, j.dest, j.size, j.start, j.end) for j in a] == [
            (j.source, j.dest, j.size, j.start, j.end) for j in b
        ]

    def test_num_jobs_validation(self, net):
        with pytest.raises(ValidationError):
            WorkloadGenerator(net, seed=0).jobs(0)

    def test_needs_two_nodes(self):
        from repro import Network

        net = Network()
        net.add_node(0)
        with pytest.raises(ValidationError):
            WorkloadGenerator(net, seed=0)

    def test_rng_seed_exclusive(self, net):
        with pytest.raises(ValidationError):
            WorkloadGenerator(net, rng=np.random.default_rng(0), seed=1)

    def test_arrival_stream_ids_and_order(self, net):
        gen = WorkloadGenerator(net, seed=5)
        jobs = gen.arrival_stream(rate=2.0, horizon=10.0)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert all(str(j.id).startswith("job-") for j in jobs)

    def test_scaled_to_load(self, net):
        gen = WorkloadGenerator(net, seed=6)
        # Fake solver: Z* = 10 / total_size (scales inversely with demand).
        jobs = gen.scaled_to_load(
            5, target_zstar=0.5, solve_zstar=lambda js: 10.0 / js.total_size()
        )
        assert 10.0 / jobs.total_size() == pytest.approx(0.5)

    def test_scaled_to_load_validation(self, net):
        gen = WorkloadGenerator(net, seed=6)
        with pytest.raises(ValidationError):
            gen.scaled_to_load(5, target_zstar=0.0, solve_zstar=lambda js: 1.0)
        with pytest.raises(ValidationError):
            gen.scaled_to_load(5, target_zstar=1.0, solve_zstar=lambda js: 0.0)


class TestPoissonArrivals:
    def test_times_sorted_in_range(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(5.0, 20.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.min(initial=0.0) >= 0.0
        assert times.max(initial=0.0) < 20.0

    def test_count_near_expectation(self):
        rng = np.random.default_rng(1)
        counts = [len(poisson_arrivals(3.0, 10.0, rng)) for _ in range(200)]
        assert 25 <= float(np.mean(counts)) <= 35  # expect 30

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            poisson_arrivals(0.0, 1.0, rng)
        with pytest.raises(ValidationError):
            poisson_arrivals(1.0, 0.0, rng)


class TestDiurnalArrivals:
    def test_times_in_range_sorted(self):
        from repro.workload import diurnal_arrivals

        rng = np.random.default_rng(0)
        times = diurnal_arrivals(2.0, 48.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.min(initial=0.0) >= 0.0
        assert times.max(initial=0.0) < 48.0

    def test_mean_rate_preserved(self):
        from repro.workload import diurnal_arrivals

        rng = np.random.default_rng(1)
        counts = [len(diurnal_arrivals(3.0, 24.0, rng)) for _ in range(100)]
        # Expect ~72 per day over whole periods.
        assert 62 <= float(np.mean(counts)) <= 82

    def test_peak_hours_busier(self):
        from repro.workload import diurnal_arrivals

        rng = np.random.default_rng(2)
        all_times = np.concatenate(
            [diurnal_arrivals(3.0, 24.0, rng, peak_time=14.0,
                              peak_to_trough=6.0) for _ in range(60)]
        )
        hours = all_times % 24.0
        peak = np.sum((hours >= 10) & (hours < 18))
        trough = np.sum((hours >= 22) | (hours < 6))
        assert peak > 2.0 * trough

    def test_peak_to_trough_one_is_homogeneous(self):
        from repro.workload import diurnal_arrivals

        rng = np.random.default_rng(3)
        times = diurnal_arrivals(2.0, 24.0, rng, peak_to_trough=1.0)
        assert len(times) > 0  # no thinning rejections at amplitude 0

    def test_validation(self):
        from repro.workload import diurnal_arrivals

        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            diurnal_arrivals(0.0, 10.0, rng)
        with pytest.raises(ValidationError):
            diurnal_arrivals(1.0, 10.0, rng, peak_to_trough=0.5)
