"""Unit tests for the shared epoch-control kernel and policy surface.

Covers the kernel primitives (`window_closed`, the fault cursor,
`used_edges`, action validation, budget splits), the reconciled
`_expire_stale` semantics of each caller (the satellite task: the sim
expires against the RET-extended *effective* deadline with a final
sweep; the service against the *committed* end, no sweep), the three
baseline policies, the gym-style :class:`SchedulingEnv`, and the
checker-clean comparison harness behind ``repro policy compare``.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace

import pytest

from repro import Job, JobSet, Network, Simulation, ValidationError
from repro.control import (
    AlphaBanditPolicy,
    ControlPolicy,
    EpochAction,
    EpochKernel,
    EpochObservation,
    EpochOutcome,
    FixedPolicy,
    LoadReactivePathsPolicy,
    POLICY_NAMES,
    SchedulingEnv,
    base_action_for,
    compare_policies,
    make_policy,
    window_closed,
)
from repro.control.kernel import advance_fault_cursor
from repro.faults import FaultSchedule, LinkDown, LinkUp, WavelengthDegrade
from repro.network import topologies
from repro.service import ReservationService
from repro.sim import JobExpired
from repro.sim.simulator import JobRecord
from repro.verify.fuzz import make_scenario


def _line2():
    net = Network(wavelength_rate=1.0, name="line2")
    net.add_link_pair(0, 1, 1)
    return net


def _obs(base: EpochAction, backlog: int = 0) -> EpochObservation:
    return EpochObservation(
        now=0.0, epoch=0, backlog=backlog, total_remaining=float(backlog),
        queue_depth=0, delivered_volume=0.0, fault_idx=0,
        failed_edges=frozenset(), overloaded=None, last_zstar=None,
        budget_wall_s=None, cache={}, base=base,
    )


class TestEpochAction:
    def test_validate_returns_self_when_legal(self):
        action = base_action_for(alpha=0.1, k_paths=4)
        assert action.validate() is action

    @pytest.mark.parametrize("bad", [
        {"alpha": -0.1}, {"alpha": 1.5},
        {"alpha": 0.8},            # above alpha_max=0.5
        {"alpha_max": 1.2},
        {"k_paths": 0},
        {"admission_policy": "panic"},
        {"rejection": "random"},
        {"budget_scale": 0.0},
    ])
    def test_validate_rejects_out_of_range(self, bad):
        action = replace(base_action_for(alpha=0.1, k_paths=4), **bad)
        with pytest.raises(ValidationError):
            action.validate()

    def test_base_action_matches_scheduler_defaults(self):
        """The base action mirrors Scheduler's default escalation knobs."""
        action = base_action_for(alpha=0.1, k_paths=4)
        assert action.alpha_step == 0.1
        assert action.alpha_max == 0.5
        assert action.budget_scale == 1.0


class TestWindowClosed:
    def test_open_window(self):
        assert not window_closed(0.0, 5.0, now=3.0, slice_length=1.0)

    def test_closed_window(self):
        assert window_closed(0.0, 5.0, now=4.5, slice_length=1.0)

    def test_exactly_one_slice_left_is_open(self):
        assert not window_closed(0.0, 5.0, now=4.0, slice_length=1.0)

    def test_future_start_counts_from_start(self):
        # Window [10, 11] holds one slice regardless of how early now is.
        assert not window_closed(10.0, 11.0, now=0.0, slice_length=1.0)
        assert window_closed(10.0, 10.5, now=0.0, slice_length=1.0)


class TestFaultCursor:
    def test_advances_past_due_events_only(self):
        net = topologies.ring(4)
        sched = FaultSchedule(net, [
            LinkDown(1.0, 0, 1), LinkUp(3.0, 0, 1), LinkDown(5.0, 1, 2),
        ])
        idx, det = advance_fault_cursor(sched, 0, now=3.5)
        assert idx == 2
        assert len(det.events) == 2
        assert det.affected  # the LinkDown's edges

    def test_link_up_alone_affects_nothing(self):
        net = topologies.ring(4)
        sched = FaultSchedule(net, [LinkDown(1.0, 0, 1), LinkUp(2.0, 0, 1)])
        idx, det = advance_fault_cursor(sched, 1, now=2.5)
        assert idx == 2
        assert det.affected == frozenset()

    def test_degrade_counts_as_affected(self):
        net = topologies.ring(4)
        sched = FaultSchedule(net, [WavelengthDegrade(1.0, 0, 1, 0)])
        _idx, det = advance_fault_cursor(sched, 0, now=1.5)
        assert det.affected


class TestKernel:
    def _kernel(self, policy=None, **kw):
        return EpochKernel(
            tau=1.0, slice_length=1.0,
            base_action=base_action_for(alpha=0.1, k_paths=4),
            policy=policy, **kw,
        )

    def test_no_policy_means_no_observation(self):
        kernel = self._kernel()
        assert not kernel.wants_observation
        assert kernel.observe(backlog=3, total_remaining=1.0,
                              queue_depth=0) is None
        assert kernel.decide(None) is kernel.base_action

    def test_fixed_policy_decides_base(self):
        kernel = self._kernel(policy=FixedPolicy())
        obs = kernel.observe(backlog=3, total_remaining=1.0, queue_depth=0)
        assert obs is not None and obs.base == kernel.base_action
        assert kernel.decide(obs) == kernel.base_action

    def test_advance_steps_tau(self):
        kernel = self._kernel()
        kernel.advance()
        kernel.advance()
        assert kernel.now == pytest.approx(2.0)
        assert kernel.epoch == 2

    def test_advance_to_jumps(self):
        kernel = self._kernel()
        kernel.advance(to=5.0)
        assert kernel.now == pytest.approx(5.0)
        assert kernel.epoch == 5

    def test_budget_for_identity_scale_returns_configured(self):
        from repro.lp.solver import SolveBudget

        budget = SolveBudget(2.0)
        kernel = self._kernel(solve_budget=budget)
        assert kernel.budget_for(kernel.base_action) is budget

    def test_budget_for_scaled_is_fresh_and_started(self):
        from repro.lp.solver import SolveBudget

        budget = SolveBudget(2.0)
        kernel = self._kernel(solve_budget=budget)
        scaled = kernel.budget_for(replace(kernel.base_action,
                                           budget_scale=1.5))
        assert scaled is not budget
        assert scaled.wall_time_s == pytest.approx(3.0)
        assert scaled.remaining() > 0.0  # restarted, usable immediately

    def test_budget_for_without_budget_is_none(self):
        kernel = self._kernel()
        scaled = kernel.budget_for(replace(kernel.base_action,
                                           budget_scale=2.0))
        assert scaled is None

    def test_feedback_accumulates_delivered(self):
        kernel = self._kernel()
        outcome = EpochOutcome(epoch=0, delivered=2.5, completed=1)
        kernel.feedback(None, kernel.base_action, outcome)
        kernel.feedback(None, kernel.base_action,
                        EpochOutcome(epoch=1, delivered=1.5))
        assert kernel.delivered_volume == pytest.approx(4.0)


class TestExpireStaleSemantics:
    """Pin the reconciled per-caller expiry semantics (satellite task)."""

    def test_sim_expires_on_effective_end_not_committed_end(self):
        """A RET-extended record lives past its original deadline."""
        sim = Simulation(_line2(), policy="extend")
        job = Job(id="j", source=0, dest=1, size=1.0, start=0.0, end=2.0)
        rec = JobRecord(job, effective_end=6.0, remaining=0.5,
                        status="active")
        records, events = {"j": rec}, []
        sim._expire_stale(records, now=3.0, events=events)  # past job.end
        assert rec.status == "active"  # effective window still open
        sim._expire_stale(records, now=5.5, events=events)
        assert rec.status == "expired"
        assert isinstance(events[0], JobExpired)

    def test_sim_final_sweep_expires_everything_active(self):
        sim = Simulation(_line2())
        job = Job(id="j", source=0, dest=1, size=1.0, start=0.0, end=100.0)
        rec = JobRecord(job, effective_end=100.0, remaining=1.0,
                        status="active")
        sim._expire_stale({"j": rec}, now=1.0, events=[], final=True)
        assert rec.status == "expired"

    def test_service_expires_on_committed_end(self):
        """The service has no effective-end: committed end is the law."""
        from repro.service.book import Reservation

        service = ReservationService(_line2())
        job = Job(id="j", source=0, dest=1, size=4.0, start=0.0, end=2.0)
        service.book.reservations["j"] = Reservation(job=job, remaining=2.0)
        transitions: list = []
        service._expire_stale(1.0, transitions)
        assert service.book.reservations["j"].status == "accepted"
        service._expire_stale(1.5, transitions)
        assert service.book.reservations["j"].status == "expired"
        assert transitions == [{"id": "j", "status": "expired"}]

    def test_service_has_no_final_sweep_parameter(self):
        import inspect

        params = inspect.signature(
            ReservationService._expire_stale).parameters
        assert "final" not in params


class TestPolicies:
    def test_fixed_is_journal_safe_identity(self):
        pol = FixedPolicy()
        assert pol.journal_safe
        base = base_action_for(alpha=0.1, k_paths=4)
        assert pol.decide(_obs(base)) == base

    def test_base_policy_defers(self):
        assert ControlPolicy().decide(_obs(base_action_for(
            alpha=0.1, k_paths=4))) is None
        assert not ControlPolicy().journal_safe

    def test_bandit_is_deterministic_per_seed(self):
        base = base_action_for(alpha=0.1, k_paths=4)

        def trajectory(seed):
            pol = AlphaBanditPolicy(seed=seed)
            picks = []
            for i in range(10):
                action = pol.decide(_obs(base))
                picks.append(action.alpha)
                pol.feedback(_obs(base), action,
                             EpochOutcome(epoch=i, delivered=float(i)))
            return picks

        assert trajectory(7) == trajectory(7)
        assert trajectory(7) != trajectory(8) or True  # seeds may collide

    def test_bandit_actions_always_validate(self):
        pol = AlphaBanditPolicy(seed=3)
        base = base_action_for(alpha=0.1, k_paths=4)
        for i in range(20):
            action = pol.decide(_obs(base))
            assert action.validate() is action
            pol.feedback(_obs(base), action, EpochOutcome(epoch=i))

    def test_bandit_rejects_bad_arms(self):
        with pytest.raises(ValidationError):
            AlphaBanditPolicy(arms=(0.1, 1.5))
        with pytest.raises(ValidationError):
            AlphaBanditPolicy(arms=())
        with pytest.raises(ValidationError):
            AlphaBanditPolicy(epsilon=2.0)

    def test_load_reactive_widens_and_narrows(self):
        pol = LoadReactivePathsPolicy(low_backlog=2, high_backlog=6)
        base = base_action_for(alpha=0.1, k_paths=4)
        deep = pol.decide(_obs(base, backlog=10))
        assert deep.k_paths == 6 and deep.budget_scale == pytest.approx(1.5)
        shallow = pol.decide(_obs(base, backlog=1))
        assert shallow.k_paths == 3 and shallow.budget_scale == 1.0
        assert pol.decide(_obs(base, backlog=4)) == base

    def test_load_reactive_never_drops_below_one_path(self):
        pol = LoadReactivePathsPolicy(low_backlog=2, high_backlog=6)
        base = base_action_for(alpha=0.1, k_paths=1)
        assert pol.decide(_obs(base, backlog=0)).k_paths == 1

    def test_make_policy_names(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name
        with pytest.raises(ValidationError):
            make_policy("nonsense")


class TestJournalSafetyGate:
    def test_sim_rejects_adaptive_policy_with_journal(self, tmp_path):
        with pytest.raises(ValidationError, match="journal-safe"):
            Simulation(_line2(), journal=tmp_path / "j.jsonl",
                       control_policy=AlphaBanditPolicy())

    def test_sim_accepts_fixed_policy_with_journal(self, tmp_path):
        Simulation(_line2(), journal=tmp_path / "j.jsonl",
                   control_policy=FixedPolicy())

    def test_service_rejects_adaptive_policy_with_journal(self, tmp_path):
        with pytest.raises(ValidationError, match="journal-safe"):
            ReservationService(_line2(), journal=str(tmp_path / "j.jsonl"),
                               control_policy=LoadReactivePathsPolicy())


class TestSchedulingEnv:
    @pytest.fixture
    def scenario(self):
        return make_scenario(2)

    def test_episode_with_none_actions_matches_plain_run(self, scenario):
        env = SchedulingEnv(scenario.network, scenario.jobs,
                            horizon=scenario.grid.end * 3.0, k_paths=3,
                            fault_schedule=scenario.fault_schedule)
        obs = env.reset()
        while obs is not None:
            obs, _reward, _done, _info = env.step(None)
        assert env.done
        plain = Simulation(
            scenario.network, k_paths=3,
            fault_schedule=scenario.fault_schedule,
        ).run(scenario.jobs, horizon=scenario.grid.end * 3.0)
        assert ([r.status for r in env.result.records]
                == [r.status for r in plain.records])
        assert env.result.delivered_volume == pytest.approx(
            plain.delivered_volume)

    def test_rewards_sum_to_delivered_plus_deadline_bonus(self, scenario):
        env = SchedulingEnv(scenario.network, scenario.jobs,
                            horizon=scenario.grid.end * 3.0, k_paths=3,
                            deadline_weight=2.0)
        obs = env.reset()
        total = 0.0
        while obs is not None:
            obs, reward, _done, _info = env.step(None)
            total += reward
        expected = env.result.delivered_volume
        if not math.isnan(env.result.deadline_rate):
            expected += 2.0 * env.result.deadline_rate
        assert total == pytest.approx(expected)

    def test_explicit_actions_flow_through(self, scenario):
        env = SchedulingEnv(scenario.network, scenario.jobs,
                            horizon=scenario.grid.end * 3.0, k_paths=3)
        obs = env.reset()
        saw_decision = obs is not None
        while obs is not None:
            action = replace(env.base_action, alpha=0.2)
            obs, _r, _d, info = env.step(action)
            assert isinstance(info["outcome"], EpochOutcome)
        assert saw_decision
        assert env.result is not None

    def test_invalid_action_raises(self, scenario):
        env = SchedulingEnv(scenario.network, scenario.jobs,
                            horizon=scenario.grid.end * 3.0, k_paths=3)
        obs = env.reset()
        if obs is None:
            pytest.skip("scenario schedules nothing")
        with pytest.raises(ValidationError):
            env.step(replace(env.base_action, alpha=-1.0))

    def test_step_after_done_raises(self, scenario):
        env = SchedulingEnv(scenario.network, scenario.jobs,
                            horizon=scenario.grid.end * 3.0, k_paths=3)
        obs = env.reset()
        while obs is not None:
            obs, *_ = env.step(None)
        with pytest.raises(ValidationError):
            env.step(None)

    def test_reset_restarts_identically(self, scenario):
        env = SchedulingEnv(scenario.network, scenario.jobs,
                            horizon=scenario.grid.end * 3.0, k_paths=3)
        env.reset()
        while not env.done:
            env.step(None)
        first = env.result.delivered_volume
        env.reset()
        while not env.done:
            env.step(None)
        assert env.result.delivered_volume == pytest.approx(first)

    def test_rejects_control_policy_kwarg(self, scenario):
        with pytest.raises(ValidationError, match="policy"):
            SchedulingEnv(scenario.network, scenario.jobs,
                          control_policy=FixedPolicy())


class TestCompareHarness:
    def test_three_policies_two_seeds(self):
        cmp = compare_policies(("fixed", "bandit", "load-reactive"), seeds=2)
        assert len(cmp.runs) == 6
        agg = cmp.aggregate()
        assert set(agg) == {"fixed", "bandit", "load-reactive"}
        for stats in agg.values():
            assert stats["runs"] == 2
            assert stats["delivered_total"] >= 0.0
        # verify_epochs=True by default: every run was checker-verified.
        assert all(r.epochs_verified >= 1 for r in cmp.runs)

    def test_report_roundtrips_through_json(self):
        cmp = compare_policies(("fixed",), seeds=(1,))
        blob = json.loads(json.dumps(cmp.to_dict()))
        assert blob["runs"][0]["policy"] == "fixed"
        assert "fixed" in blob["aggregate"]

    def test_render_mentions_every_policy(self):
        cmp = compare_policies(("fixed", "bandit"), seeds=1)
        text = cmp.render()
        assert "fixed" in text and "bandit" in text

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValidationError):
            compare_policies((), seeds=1)
        with pytest.raises(ValidationError):
            compare_policies(("fixed",), seeds=0)


class TestPolicyCLI:
    def test_compare_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        rc = main(["policy", "compare", "--policies", "fixed,load-reactive",
                   "--seeds", "1", "-o", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert {r["policy"] for r in report["runs"]} == {
            "fixed", "load-reactive"}
        assert "checker-verified" in capsys.readouterr().out

    def test_compare_rejects_unknown_policy(self, capsys):
        from repro.cli import main

        assert main(["policy", "compare", "--policies", "nope"]) == 1
        assert "unknown policy" in capsys.readouterr().err

    def test_simulate_control_policy_flag(self, tmp_path, capsys):
        from repro import serialization
        from repro.cli import main

        sc = make_scenario(1, allow_faults=False)
        net_path = tmp_path / "net.json"
        jobs_path = tmp_path / "jobs.json"
        serialization.save_json(
            serialization.network_to_dict(sc.network), net_path)
        serialization.save_json(
            serialization.jobs_to_dict(sc.jobs), jobs_path)
        rc = main(["simulate", "--network", str(net_path),
                   "--jobs", str(jobs_path), "--control-policy", "bandit"])
        assert rc == 0

    def test_simulate_adaptive_policy_plus_journal_errors(
            self, tmp_path, capsys):
        from repro import serialization
        from repro.cli import main

        sc = make_scenario(1, allow_faults=False)
        net_path = tmp_path / "net.json"
        jobs_path = tmp_path / "jobs.json"
        serialization.save_json(
            serialization.network_to_dict(sc.network), net_path)
        serialization.save_json(
            serialization.jobs_to_dict(sc.jobs), jobs_path)
        rc = main(["simulate", "--network", str(net_path),
                   "--jobs", str(jobs_path), "--control-policy", "bandit",
                   "--journal", str(tmp_path / "j.jsonl")])
        assert rc == 1
        assert "journal-safe" in capsys.readouterr().err
