"""Run the doctest examples embedded in module/class docstrings."""

import doctest

import pytest

import repro
import repro.analysis.reporting
import repro.network.graph
import repro.timegrid


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.timegrid,
        repro.network.graph,
        repro.analysis.reporting,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    failures, tested = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    )
    assert failures == 0
    assert tested > 0, f"{module.__name__} has no doctest examples"
