"""Unit tests for SUB-RET and Algorithm 2 (Relaxing End Times)."""

import numpy as np
import pytest

from repro import (
    InfeasibleProblemError,
    Job,
    JobSet,
    ProblemStructure,
    ScheduleError,
    TimeGrid,
    ValidationError,
    solve_ret,
    solve_subret_lp,
)
from repro.core.ret import build_subret_lp, quick_finish_gamma


class TestQuickFinishGamma:
    def test_values(self):
        assert quick_finish_gamma(np.array([0, 1, 5])).tolist() == [1.0, 2.0, 6.0]


class TestSubRetLP:
    def test_feasible_instance_completes_all(self, line3, grid4):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, grid4)
        sol = solve_subret_lp(s)
        assert np.all(s.delivered(sol.x) >= s.demands - 1e-7)
        assert s.capacity_violation(sol.x) <= 1e-7

    def test_infeasible_raises(self, line3, grid4):
        # 20 volume through capacity 2 * 4 slices = 8 max.
        jobs = JobSet([Job(id=0, source=0, dest=2, size=20.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, grid4)
        with pytest.raises(InfeasibleProblemError):
            solve_subret_lp(s)

    def test_quick_finish_packs_early(self, line3, grid4):
        """QF cost strictly increasing => delivery fills earliest slices."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, grid4)
        sol = solve_subret_lp(s)
        # Demand 4 at 2/slice: exactly slices 0 and 1 carry 2 each.
        assert sol.x == pytest.approx([2.0, 2.0, 0.0, 0.0])

    def test_constant_gamma_allows_late_packing(self, line3, grid4):
        """With flat costs the LP has no early-packing incentive."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, grid4)
        lp = build_subret_lp(s, gamma=lambda j: np.ones_like(j, dtype=float))
        # Objective counts total wavelength-slices, identical for any packing.
        assert np.allclose(lp.objective, 1.0)

    def test_gamma_must_be_positive(self, line3, grid4):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        s = ProblemStructure(line3, jobs, grid4)
        with pytest.raises(ValidationError):
            build_subret_lp(s, gamma=lambda j: np.zeros_like(j, dtype=float))


class TestAlgorithm2:
    def test_underloaded_returns_zero_extension(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=0.0, end=4.0)])
        result = solve_ret(line3, jobs)
        assert result.b_hat == 0.0
        assert result.b_final == 0.0
        assert result.fraction_finished("lpdar") == 1.0

    def test_overloaded_finds_minimal_extension(self, line3):
        """18 volume at 2/slice needs 9 slices; end 3 -> b = 2 exactly."""
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=10.0, start=0.0, end=3.0),
                Job(id=1, source=0, dest=2, size=8.0, start=0.0, end=3.0),
            ]
        )
        result = solve_ret(line3, jobs, search_tol=1e-4)
        assert result.b_hat == pytest.approx(2.0, abs=1e-3)
        assert result.b_final == pytest.approx(2.0, abs=1e-3)
        assert result.fraction_finished("lpdar") == 1.0

    def test_all_jobs_complete_under_lpdar(self, diamond):
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=3, size=9.0, start=0.0, end=3.0),
                Job(id=1, source=1, dest=2, size=5.0, start=0.0, end=2.0),
            ]
        )
        result = solve_ret(diamond, jobs, k_paths=2)
        s = result.structure
        delivered = s.delivered(result.assignments.x_lpdar)
        assert np.all(delivered >= s.demands - 1e-6)
        assert s.capacity_violation(result.assignments.x_lpdar) == 0.0

    def test_monotone_feasibility_of_binary_search(self, line3):
        """b_final never below b_hat; both within [0, b_max]."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=12.0, start=0.0, end=2.0)])
        result = solve_ret(line3, jobs, b_max=5.0)
        assert 0.0 <= result.b_hat <= result.b_final <= 5.0 + result.delta_steps * 0.1 + 1e-9

    def test_infeasible_at_bmax_raises(self, line3):
        """Extension capped below the required b = 2."""
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=10.0, start=0.0, end=3.0),
                Job(id=1, source=0, dest=2, size=8.0, start=0.0, end=3.0),
            ]
        )
        with pytest.raises(ScheduleError, match="infeasible"):
            solve_ret(line3, jobs, b_max=0.5)

    def test_parameter_validation(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=2.0)])
        with pytest.raises(ValidationError):
            solve_ret(line3, jobs, b_max=0.0)
        with pytest.raises(ValidationError):
            solve_ret(line3, jobs, delta=0.0)
        with pytest.raises(ValidationError):
            solve_ret(line3, jobs, search_tol=0.0)

    def test_average_end_time_accessors(self, line3):
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=10.0, start=0.0, end=3.0),
                Job(id=1, source=0, dest=2, size=8.0, start=0.0, end=3.0),
            ]
        )
        result = solve_ret(line3, jobs)
        lp_end = result.average_end_time("lp")
        lpdar_end = result.average_end_time("lpdar")
        assert lp_end <= lpdar_end + 1e-9  # LP at least as fast (Fig. 4)
        assert lpdar_end <= 9.0 + 1e-9

    def test_unknown_assignment_name_rejected(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=2.0)])
        result = solve_ret(line3, jobs)
        with pytest.raises(ValidationError):
            result.fraction_finished("bogus")

    def test_paper_order_uncapped_variant_also_completes(self, line3):
        """The paper-literal greedy (no demand cap) still finishes all jobs
        here, possibly at a larger b."""
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=10.0, start=0.0, end=3.0),
                Job(id=1, source=0, dest=2, size=8.0, start=0.0, end=3.0),
            ]
        )
        result = solve_ret(line3, jobs, cap_at_target=False, order="paper")
        assert result.fraction_finished("lpdar") == 1.0

    def test_staggered_windows(self, line3):
        """Jobs with different windows extend proportionally to their own end."""
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=6.0, start=0.0, end=2.0),
                Job(id=1, source=0, dest=2, size=6.0, start=2.0, end=4.0),
            ]
        )
        result = solve_ret(line3, jobs)
        assert result.fraction_finished("lpdar") == 1.0
        # Job 0 needs 3 slices alone (cap 2): (1+b)*2 >= 3 -> b >= 0.5.
        assert result.b_final >= 0.5 - 1e-3
