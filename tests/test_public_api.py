"""Smoke tests for the public API surface."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ names missing attr {name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        subs = (
            "core", "network", "workload", "lp", "sim",
            "analysis", "faults", "verify", "recovery", "parallel",
            "control",
        )
        for sub in subs:
            mod = importlib.import_module(f"repro.{sub}")
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"repro.{sub} missing {name}"

    def test_verify_names_exported_at_top_level(self):
        """The verification entry points are part of the top-level API."""
        for name in (
            "VerificationReport",
            "Violation",
            "verify_schedule",
            "verify_assignment",
            "verify_grants",
        ):
            assert name in repro.__all__, f"{name} missing from repro.__all__"
            assert getattr(repro, name) is getattr(repro.verify, name)

    def test_engine_names_exported_at_top_level(self):
        """The model engine and backend registry are top-level API."""
        for name in (
            "ModelEngine",
            "build_structure",
            "TopologyLayer",
            "LayoutLayer",
            "SolverBackend",
            "WarmStart",
            "HighsBackend",
            "SimplexBackend",
            "register_backend",
            "get_backend",
            "available_backends",
        ):
            assert name in repro.__all__, f"{name} missing from repro.__all__"
            assert getattr(repro, name) is getattr(repro.engine, name)

    def test_recovery_names_exported_at_top_level(self):
        """The durability entry points are part of the top-level API."""
        for name in (
            "EpochJournal",
            "JournalReplay",
            "read_journal",
            "SCHEMA_VERSION",
            "CRASH_POINTS",
            "CrashInjector",
            "SimulatedCrash",
            "SolveBudget",
        ):
            assert name in repro.__all__, f"{name} missing from repro.__all__"
            assert getattr(repro, name) is getattr(repro.recovery, name)

    def test_parallel_names_exported_at_top_level(self):
        """Fleet mode and decomposed solves are part of the top-level API."""
        for name in (
            "TaskSpec",
            "TaskResult",
            "register_task",
            "run_fleet",
            "Shard",
            "partition_structure",
            "ShardedScheduler",
        ):
            assert name in repro.__all__, f"{name} missing from repro.__all__"
            assert getattr(repro, name) is getattr(repro.parallel, name)

    def test_control_names_exported_at_top_level(self):
        """The epoch-control kernel and policy surface are top-level API."""
        for name in (
            "EpochKernel",
            "EpochAction",
            "EpochObservation",
            "EpochOutcome",
            "ControlPolicy",
            "FixedPolicy",
            "AlphaBanditPolicy",
            "LoadReactivePathsPolicy",
            "POLICY_NAMES",
            "make_policy",
            "SchedulingEnv",
            "PolicyRunResult",
            "PolicyComparison",
            "compare_policies",
        ):
            assert name in repro.__all__, f"{name} missing from repro.__all__"
            assert getattr(repro, name) is getattr(repro.control, name)

    def test_solve_budget_shared_with_lp_layer(self):
        """repro.recovery re-exports the lp layer's SolveBudget, not a copy."""
        assert repro.recovery.SolveBudget is repro.lp.SolveBudget

    def test_all_errors_exported_at_top_level(self):
        """Every error type is catchable from the top-level namespace.

        Callers handle failures with ``except repro.SolverError`` etc.;
        an error class reachable only via ``repro.errors`` would force
        them to know the internal module layout.
        """
        from repro import errors

        missing = set(errors.__all__) - set(repro.__all__)
        assert not missing, f"errors not re-exported at top level: {missing}"
        for name in errors.__all__:
            assert getattr(repro, name) is getattr(errors, name)

    def test_module_docstring_quickstart_runs(self):
        """The doctest in the package docstring must actually work."""
        from repro import Job, JobSet, Scheduler, topologies

        net = topologies.abilene().with_wavelengths(4, total_link_rate=20.0)
        jobs = JobSet(
            [
                Job(
                    id="hep",
                    source="Chicago",
                    dest="Sunnyvale",
                    size=120.0,
                    start=0.0,
                    end=4.0,
                )
            ]
        )
        result = Scheduler(net).schedule(jobs)
        assert result.zstar > 1.0

    def test_public_items_documented(self):
        """Every public class/function exposed at top level has a docstring."""
        import inspect

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"
