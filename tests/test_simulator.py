"""Unit tests for the periodic AC/scheduling simulator."""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    Simulation,
    ValidationError,
)
from repro.network import topologies
from repro.sim.events import (
    JobArrived,
    JobCompleted,
    JobDeadlineExtended,
    JobExpired,
    JobProgress,
    JobRejected,
    SchedulingPass,
)


@pytest.fixture
def net():
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


def job(jid, size, start, end, arrival=None, src=0, dst=2):
    return Job(
        id=jid, source=src, dest=dst, size=size, start=start, end=end, arrival=arrival
    )


class TestConstruction:
    def test_tau_must_align_with_slices(self, net):
        with pytest.raises(ValidationError):
            Simulation(net, tau=1.5, slice_length=1.0)
        with pytest.raises(ValidationError):
            Simulation(net, tau=0.0)
        Simulation(net, tau=3.0, slice_length=1.0)  # fine

    def test_unknown_policy_rejected(self, net):
        with pytest.raises(ValidationError):
            Simulation(net, policy="evict")

    def test_empty_jobs_rejected(self, net):
        with pytest.raises(ValidationError):
            Simulation(net).run(JobSet())


class TestReducePolicy:
    def test_feasible_job_completes_on_time(self, net):
        jobs = JobSet([job("a", size=4.0, start=0.0, end=4.0)])
        result = Simulation(net, policy="reduce").run(jobs)
        rec = result.records[0]
        assert rec.status == "completed"
        assert rec.met_deadline
        assert rec.remaining == 0.0
        assert result.completion_rate == 1.0
        assert result.deadline_rate == 1.0

    def test_quick_finish_effect_completes_early(self, net):
        """A small job on an idle network finishes in the first slices."""
        jobs = JobSet([job("a", size=2.0, start=0.0, end=10.0)])
        result = Simulation(net, policy="reduce").run(jobs)
        rec = result.records[0]
        assert rec.status == "completed"
        assert rec.completion_time <= 2.0

    def test_overload_leads_to_partial_service(self, net):
        """Two 8-volume jobs over a 2x2-capacity window: some volume undone."""
        jobs = JobSet(
            [job("a", 8.0, 0.0, 2.0), job("b", 8.0, 0.0, 2.0)]
        )
        result = Simulation(net, policy="reduce").run(jobs, horizon=4.0)
        assert result.num_completed == 0
        assert result.delivered_volume == pytest.approx(4.0)
        expired = result.by_status("expired")
        assert len(expired) == 2

    def test_late_arrival_waits_for_epoch(self, net):
        jobs = JobSet([job("late", 2.0, 3.0, 6.0, arrival=2.5)])
        result = Simulation(net, policy="reduce").run(jobs)
        arrived = [e for e in result.events if isinstance(e, JobArrived)]
        assert arrived[0].time == pytest.approx(3.0)  # next epoch boundary
        assert result.records[0].status == "completed"

    def test_progress_events_conserve_volume(self, net):
        jobs = JobSet([job("a", 4.0, 0.0, 4.0)])
        result = Simulation(net, policy="reduce").run(jobs)
        progress = [e for e in result.events if isinstance(e, JobProgress)]
        assert sum(p.delivered for p in progress) == pytest.approx(4.0)

    def test_rescheduling_each_epoch(self, net):
        jobs = JobSet([job("a", 8.0, 0.0, 4.0)])
        result = Simulation(net, tau=1.0, policy="reduce").run(jobs)
        passes = [e for e in result.events if isinstance(e, SchedulingPass)]
        assert len(passes) >= 4


class TestRejectPolicy:
    def test_excess_jobs_rejected(self, net):
        jobs = JobSet(
            [
                job("a", 4.0, 0.0, 2.0, arrival=0.0),
                job("b", 4.0, 0.0, 2.0, arrival=0.0),
            ]
        )
        result = Simulation(net, policy="reject").run(jobs, horizon=4.0)
        assert result.num_rejected == 1
        rejections = [e for e in result.events if isinstance(e, JobRejected)]
        assert len(rejections) == 1

    def test_admitted_job_completes(self, net):
        jobs = JobSet(
            [
                job("a", 4.0, 0.0, 2.0, arrival=0.0),
                job("b", 4.0, 0.0, 2.0, arrival=0.0),
            ]
        )
        result = Simulation(net, policy="reject").run(jobs, horizon=4.0)
        completed = result.by_status("completed")
        assert len(completed) == 1
        assert completed[0].met_deadline

    def test_acceptance_rate(self, net):
        jobs = JobSet(
            [
                job("a", 4.0, 0.0, 2.0, arrival=0.0),
                job("b", 4.0, 0.0, 2.0, arrival=0.0),
            ]
        )
        result = Simulation(net, policy="reject").run(jobs, horizon=4.0)
        assert result.acceptance_rate == pytest.approx(0.5)


class TestExtendPolicy:
    def test_deadlines_stretched_until_completion(self, net):
        jobs = JobSet(
            [
                job("a", 10.0, 0.0, 3.0),
                job("b", 8.0, 0.0, 3.0),
            ]
        )
        result = Simulation(net, policy="extend").run(jobs)
        assert result.completion_rate == 1.0
        extensions = [e for e in result.events if isinstance(e, JobDeadlineExtended)]
        assert extensions  # overload forced at least one extension
        # Deadlines were NOT met in the original sense, but jobs completed.
        assert result.deadline_rate < 1.0

    def test_underloaded_extend_behaves_like_reduce(self, net):
        jobs = JobSet([job("a", 4.0, 0.0, 4.0)])
        result = Simulation(net, policy="extend").run(jobs)
        assert result.records[0].met_deadline
        assert not [e for e in result.events if isinstance(e, JobDeadlineExtended)]


class TestLifecycleInvariants:
    def test_no_negative_remaining(self, net, rng):
        from repro import WorkloadGenerator

        gen = WorkloadGenerator(net, rng=rng)
        jobs = gen.jobs(8)
        result = Simulation(net, policy="reduce").run(jobs, horizon=30.0)
        for rec in result.records:
            assert rec.remaining >= 0.0
            assert rec.remaining <= rec.job.size + 1e-9

    def test_every_job_reaches_terminal_state(self, net, rng):
        from repro import WorkloadGenerator

        gen = WorkloadGenerator(net, rng=rng)
        jobs = gen.jobs(6)
        result = Simulation(net, policy="reduce").run(jobs)
        for rec in result.records:
            assert rec.status in ("completed", "expired", "rejected")

    def test_completion_time_within_effective_deadline(self, net):
        jobs = JobSet([job("a", 4.0, 0.0, 4.0)])
        result = Simulation(net, policy="reduce").run(jobs)
        rec = result.records[0]
        assert rec.completion_time <= rec.effective_end + 1e-9

    def test_events_time_ordered_per_type(self, net):
        jobs = JobSet([job("a", 6.0, 0.0, 4.0), job("b", 3.0, 1.0, 5.0)])
        result = Simulation(net, policy="reduce").run(jobs)
        passes = [e.time for e in result.events if isinstance(e, SchedulingPass)]
        assert passes == sorted(passes)


class TestGreedyRejection:
    def test_greedy_variant_admits_at_least_prefix(self, net):
        jobs = JobSet(
            [
                job("small1", 2.0, 0.0, 2.0, arrival=-3.0),
                job("huge", 40.0, 0.0, 2.0, arrival=-2.0),
                job("small2", 2.0, 0.0, 2.0, arrival=-1.0),
            ]
        )
        prefix = Simulation(net, policy="reject", rejection="prefix").run(
            jobs, horizon=4.0
        )
        greedy = Simulation(net, policy="reject", rejection="greedy").run(
            jobs, horizon=4.0
        )
        assert greedy.num_rejected <= prefix.num_rejected
        assert greedy.num_completed >= prefix.num_completed

    def test_unknown_rejection_variant(self, net):
        with pytest.raises(ValidationError):
            Simulation(net, policy="reject", rejection="bogus")


class TestKeepSchedules:
    def test_schedules_retained_and_churn_measurable(self, net):
        from repro.analysis import reconfiguration_churn

        jobs = JobSet(
            [
                job("a", 6.0, 0.0, 4.0),
                job("b", 4.0, 1.0, 5.0),
            ]
        )
        sim = Simulation(net, tau=1.0, policy="reduce", keep_schedules=True)
        result = sim.run(jobs)
        assert len(result.schedules) >= 2
        epochs = [e for e, _ in result.schedules]
        assert epochs == sorted(epochs)
        (_, first), (_, second) = result.schedules[0], result.schedules[1]
        report = reconfiguration_churn(first, second)
        assert 0.0 <= report.churn_fraction <= 1.0 or report.old_total == 0

    def test_off_by_default(self, net):
        jobs = JobSet([job("a", 4.0, 0.0, 4.0)])
        result = Simulation(net, policy="reduce").run(jobs)
        assert result.schedules == ()
