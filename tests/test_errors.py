"""Unit tests for the exception hierarchy."""

import pytest

from repro import (
    InfeasibleProblemError,
    ReproError,
    ScheduleError,
    SolverError,
    UnboundedProblemError,
    ValidationError,
)


class TestHierarchy:
    def test_all_root_at_repro_error(self):
        for exc in (
            ValidationError,
            SolverError,
            InfeasibleProblemError,
            UnboundedProblemError,
            ScheduleError,
        ):
            assert issubclass(exc, ReproError)

    def test_validation_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_solver_errors_are_runtime_errors(self):
        assert issubclass(SolverError, RuntimeError)
        assert issubclass(ScheduleError, RuntimeError)

    def test_infeasible_and_unbounded_are_solver_errors(self):
        assert issubclass(InfeasibleProblemError, SolverError)
        assert issubclass(UnboundedProblemError, SolverError)

    def test_status_attribute(self):
        assert SolverError("x", status=7).status == 7
        assert InfeasibleProblemError().status == 2
        assert UnboundedProblemError().status == 3

    def test_default_messages(self):
        assert "infeasible" in str(InfeasibleProblemError())
        assert "unbounded" in str(UnboundedProblemError())

    def test_catch_all_pattern(self):
        """Library consumers can catch ReproError for any library failure."""
        with pytest.raises(ReproError):
            raise InfeasibleProblemError()
        with pytest.raises(ReproError):
            raise ValidationError("bad input")
