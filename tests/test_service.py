"""Unit tests for the online reservation service front-end.

Covers the request schema validation (satellite: typed rejections for
malformed input), the accept/reject/negotiate decision protocol,
idempotent resubmission, the decision lifecycle, and the closed-loop
driver's reactions.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import (
    Job,
    JobSet,
    ValidationError,
)
from repro.network import topologies
from repro.service import (
    REASON_OVERLOAD,
    Accepted,
    ClosedLoopDriver,
    Negotiated,
    Rejected,
    ReservationRequest,
    ReservationService,
    decision_from_dict,
    decision_to_dict,
    drive,
    parse_request,
    parse_request_json,
    request_to_job,
)


@pytest.fixture
def net():
    return topologies.ring(4, capacity=2)


@pytest.fixture
def tight_net():
    """One link, one wavelength, rate 1: easy to saturate."""
    return topologies.line(2, capacity=1, wavelength_rate=1.0)


def _request(net, rid="r1", size=2.0, start=0.0, end=6.0, arrival=None):
    return {
        "id": rid,
        "source": net.nodes[0],
        "dest": net.nodes[2] if len(net.nodes) > 2 else net.nodes[1],
        "size": size,
        "start": start,
        "end": end,
        **({"arrival": arrival} if arrival is not None else {}),
    }


def _tick(service):
    return asyncio.run(service.tick())


class TestRequestValidation:
    def test_valid_record_parses(self, net):
        req = parse_request(_request(net), net)
        assert req.key == "r1"
        assert req.arrival == 0.0  # defaults to start

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"size": -1.0}, "must be positive"),
            ({"size": 0.0}, "must be positive"),
            ({"size": float("nan")}, "must be finite"),
            ({"size": "big"}, "must be a number"),
            ({"start": 6.0, "end": 2.0}, "is not after release time"),
            ({"end": 6.0, "arrival": 7.0}, "after the deadline"),
            ({"id": None}, "must be a string or integer"),
            ({"id": True}, "must be a string or integer"),
        ],
    )
    def test_malformed_fields(self, net, mutation, fragment):
        record = {**_request(net), **mutation}
        with pytest.raises(ValidationError, match=fragment):
            parse_request(record, net)

    def test_missing_fields_named(self, net):
        with pytest.raises(ValidationError, match="size, start"):
            parse_request({"id": 1, "source": 0, "dest": 1, "end": 2.0})

    def test_non_dict_rejected(self):
        with pytest.raises(ValidationError, match="JSON object"):
            parse_request(["not", "a", "dict"])

    def test_loopback_rejected(self, net):
        record = _request(net)
        record["dest"] = record["source"]
        with pytest.raises(ValidationError, match="must differ"):
            parse_request(record, net)

    def test_unknown_node_rejected(self, net):
        record = {**_request(net), "source": "nowhere"}
        with pytest.raises(ValidationError, match="not a node"):
            parse_request(record, net)

    def test_malformed_json_rejected(self, net):
        with pytest.raises(ValidationError, match="malformed request JSON"):
            parse_request_json("{not json", net)

    def test_late_submission_allowed(self, net):
        # Unlike Job, arrival may exceed start (a late submission).
        req = parse_request(_request(net, start=0.0, end=6.0, arrival=3.0))
        job = request_to_job(req, now=3.0)
        assert job.start == 3.0  # clamped to now; window remainder kept
        assert job.end == 6.0


class TestSubmitProtocol:
    def test_invalid_submission_rejected_not_raised(self, net):
        service = ReservationService(net)
        handle = service.submit({**_request(net), "size": -5.0})
        assert handle.done
        assert isinstance(handle.decision, Rejected)
        assert handle.decision.reason.startswith("invalid request")
        assert service.stats.counters["invalid"] == 1
        service.close()

    def test_accept_lifecycle(self, net):
        service = ReservationService(net)
        handle = service.submit(_request(net))
        assert not handle.done  # decisions land at epoch boundaries
        decisions = _tick(service)
        assert len(decisions) == 1
        decision = handle.decision
        assert isinstance(decision, Accepted)
        assert decision.request_id == "r1"
        assert handle.latency is not None
        # Drive to completion: the reservation delivers and completes.
        while not service.idle:
            _tick(service)
        res = service.book.reservations["r1"]
        assert res.status == "completed"
        assert res.remaining == 0.0
        assert service.book.num_lost == 0
        service.close()

    def test_duplicate_pending_returns_same_handle(self, net):
        service = ReservationService(net)
        h1 = service.submit(_request(net))
        h2 = service.submit(_request(net))
        assert h1 is h2
        assert service.stats.counters["duplicate_submissions"] == 1
        service.close()

    def test_decided_id_replays_recorded_decision(self, net):
        service = ReservationService(net)
        h1 = service.submit(_request(net))
        _tick(service)
        h2 = service.submit(_request(net))
        assert h2.done
        assert h2.decision == h1.decision
        # No second ledger entry: the book still has exactly one record.
        assert len(service.book.ledger) == 1
        service.close()

    def test_dead_window_rejected(self, net):
        # Window shorter than one slice can never be scheduled.
        service = ReservationService(net, slice_length=1.0)
        handle = service.submit(_request(net, start=0.0, end=0.5))
        _tick(service)
        assert isinstance(handle.decision, Rejected)
        assert "window expired" in handle.decision.reason
        service.close()

    def test_await_decision(self, net):
        service = ReservationService(net)

        async def scenario():
            handle = service.submit(_request(net))
            tick = asyncio.ensure_future(service.tick())
            decision = await handle.wait()
            await tick
            return decision

        decision = asyncio.run(scenario())
        assert isinstance(decision, Accepted)
        service.close()


class TestNegotiation:
    def test_infeasible_window_gets_counter_offer(self, tight_net):
        # 10 volume through a rate-1 link in a 2-long window: Z* < 1,
        # but RET finds a completing extension, so the service counters.
        service = ReservationService(tight_net, ret_b_max=10.0)
        handle = service.submit(_request(tight_net, size=10.0, end=2.0))
        _tick(service)
        decision = handle.decision
        assert isinstance(decision, Negotiated)
        assert decision.proposed_end > 2.0
        assert service.stats.counters["negotiated"] == 1
        service.close()

    def test_hopeless_request_rejected(self, tight_net):
        # Even the maximal RET extension cannot deliver this volume.
        service = ReservationService(tight_net, ret_b_max=2.0)
        handle = service.submit(_request(tight_net, size=1000.0, end=2.0))
        _tick(service)
        decision = handle.decision
        assert isinstance(decision, Rejected)
        assert "insufficient capacity" in decision.reason
        service.close()

    def test_counter_offer_is_acceptable(self, tight_net):
        # Resubmitting with the proposed window must be accepted.
        service = ReservationService(tight_net, ret_b_max=10.0)
        handle = service.submit(_request(tight_net, size=10.0, end=2.0))
        _tick(service)
        offer = handle.decision
        assert isinstance(offer, Negotiated)
        follow_up = service.submit(
            _request(
                tight_net, rid="r1~r1", size=10.0,
                start=max(offer.proposed_start, service.now),
                end=offer.proposed_end, arrival=service.now,
            )
        )
        _tick(service)
        assert isinstance(follow_up.decision, Accepted)
        service.close()


class TestRenegotiationExhaustion:
    """The renegotiation hop limit always ends in a recorded decision.

    A voided commitment re-enters the batch as an internal entry; each
    failed fit yields a ``Negotiated`` counter-offer and — while
    ``attempt < renegotiate_limit`` — a re-enqueued hop.  Once the limit
    is reached the offer is still *recorded* in the ledger but no hop
    follows: the requester holds a terminal answer, and nothing is ever
    dropped silently.  These tests seed ``_internal`` directly, exactly
    as a resumed journal does, to pin the boundary cases.
    """

    @staticmethod
    def _seed(service, net, attempt, size=10.0, end=2.0):
        service._internal.append({
            "id": f"r1~v{attempt}",
            "origin": "r1",
            "source": net.nodes[0],
            "dest": net.nodes[1],
            "size": size,
            "start": 0.0,
            "end": end,
            "attempt": attempt,
        })

    @pytest.mark.parametrize("attempt,limit", [(1, 0), (1, 1), (3, 3)])
    def test_exhausted_hop_terminal_never_silent(
        self, tight_net, attempt, limit
    ):
        # 10 volume through a rate-1 link in a 2-long window: Z* < 1,
        # so the entry draws a counter-offer.  At the hop limit that
        # offer must be the end of the line: recorded, not re-enqueued.
        service = ReservationService(
            tight_net, ret_b_max=10.0, renegotiate_limit=limit
        )
        self._seed(service, tight_net, attempt)
        _tick(service)
        recorded = service.book.decided(f"r1~v{attempt}")
        assert recorded is not None
        assert recorded["kind"] == "negotiate"
        assert service._internal == []
        assert service.idle
        service.close()

    def test_below_limit_hop_re_enqueues_with_offer_window(self, tight_net):
        service = ReservationService(
            tight_net, ret_b_max=10.0, renegotiate_limit=3
        )
        self._seed(service, tight_net, attempt=1)
        _tick(service)
        assert service.book.decided("r1~v1")["kind"] == "negotiate"
        assert len(service._internal) == 1
        hop = service._internal[0]
        assert hop["attempt"] == 2
        assert hop["origin"] == "r1"
        assert hop["id"] == "r1~v2"
        assert hop["end"] > 2.0  # carries the counter-offer's window
        service.close()

    def test_hop_chain_drains_to_recorded_terminal_state(self, tight_net):
        # Left to run, the chain converges: the RET-extended window is
        # feasible on the next hop, so the derived request is accepted
        # and delivered.  Every hop id must appear in the ledger.
        service = ReservationService(
            tight_net, ret_b_max=10.0, renegotiate_limit=3
        )
        self._seed(service, tight_net, attempt=1)
        ticks = 0
        while not service.idle and ticks < 40:
            _tick(service)
            ticks += 1
        assert service.idle
        assert service._internal == []
        kinds = {
            key: entry["kind"]
            for key, entry in service.book.ledger.items()
            if key.startswith("r1~v")
        }
        assert kinds["r1~v1"] == "negotiate"
        assert "accept" in kinds.values()
        assert set(kinds.values()) <= {"accept", "negotiate", "reject"}
        service.close()


class TestClosedLoopDriver:
    def test_drives_trace_to_quiescence(self, net):
        jobs = JobSet(
            [
                Job(id=i, source=net.nodes[i % 4], dest=net.nodes[(i + 2) % 4],
                    size=2.0, start=float(i % 2), end=float(i % 2) + 6.0)
                for i in range(6)
            ]
        )
        service = ReservationService(net)
        report = drive(service, jobs)
        assert report.accepted == 6
        assert report.rejected == 0
        assert service.book.num_lost == 0
        assert service.idle
        service.close()

    def test_negotiated_offers_resubmitted(self, tight_net):
        jobs = JobSet(
            [Job(id="big", source=tight_net.nodes[0], dest=tight_net.nodes[1],
                 size=10.0, start=0.0, end=2.0)]
        )
        service = ReservationService(tight_net, ret_b_max=10.0)
        report = drive(service, jobs)
        assert report.renegotiated >= 1
        assert isinstance(report.decisions["big"], Accepted)
        # The accepted derived request carries the ~r suffix.
        accepted_keys = list(service.book.reservations)
        assert any("~r" in key for key in accepted_keys)
        service.close()

    def test_overload_sheds_retried_with_backoff(self, net):
        jobs = JobSet(
            [
                Job(id=i, source=net.nodes[i % 4], dest=net.nodes[(i + 2) % 4],
                    size=1.0, start=0.0, end=20.0)
                for i in range(8)
            ]
        )
        # Rate 2/epoch: most of the burst is shed, then retried later.
        service = ReservationService(net, rate=2.0, burst=2.0)
        report = drive(service, jobs, retry_limit=5)
        assert report.shed_retries > 0
        assert report.accepted == 8
        service.close()


class TestDecisionSerialization:
    @pytest.mark.parametrize(
        "decision",
        [
            Accepted("a", 3, 1.0, 7.5),
            Rejected(17, 0, REASON_OVERLOAD),
            Negotiated("n", 2, 4.0, 11.0, "Z* < 1"),
        ],
    )
    def test_round_trip(self, decision):
        assert decision_from_dict(decision_to_dict(decision)) == decision

    def test_malformed_decision_record(self):
        with pytest.raises(ValidationError, match="malformed decision"):
            decision_from_dict({"kind": "accept", "id": 1})


class TestConstructorValidation:
    def test_bad_parameters_rejected(self, net):
        with pytest.raises(ValidationError):
            ReservationService(net, tau=0.0)
        with pytest.raises(ValidationError):
            ReservationService(net, queue_limit=0)
        with pytest.raises(ValidationError):
            ReservationService(net, rate=0.0)

    def test_driver_rejects_bad_backoff(self, net):
        service = ReservationService(net)
        with pytest.raises(ValidationError, match="backoff_base"):
            ClosedLoopDriver(service, JobSet(), backoff_base=0)
        service.close()
