"""CLI tests for ``repro serve``: smoke, validation, crash/resume."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.serialization import load_json


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    assert (
        main(
            [
                "topology", "ring", "--nodes", "4", "--capacity", "2",
                "-o", str(path),
            ]
        )
        == 0
    )
    return path


@pytest.fixture
def trace_file(tmp_path, net_file):
    path = tmp_path / "trace.json"
    assert (
        main(
            [
                "workload", "--network", str(net_file), "--jobs", "6",
                "--seed", "3", "--arrival-rate", "1.0", "--horizon", "5",
                "-o", str(path),
            ]
        )
        == 0
    )
    return path


class TestServeSmoke:
    def test_trace_run_prints_slos_and_writes_report(
        self, tmp_path, net_file, trace_file, capsys
    ):
        out_file = tmp_path / "report.json"
        code = main(
            [
                "serve", "--network", str(net_file), "--trace",
                str(trace_file), "-o", str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reservation service SLOs" in out
        assert "commitment book:" in out
        report = load_json(out_file)
        assert report["slo"]["decided"] >= 1
        assert report["book"]["ledger"]
        assert len(report["digest"]) == 64

    def test_missing_network_is_an_error(self, capsys):
        assert main(["serve", "--trace", "nope.json"]) == 2
        assert "--network" in capsys.readouterr().err

    def test_bad_crash_spec_rejected(self, net_file, capsys):
        assert (
            main(["serve", "--network", str(net_file), "--crash", "bogus"])
            == 1
        )
        assert "crash spec" in capsys.readouterr().err


class TestServeValidation:
    """Satellite: request-schema validation surfaces typed rejections."""

    def test_malformed_records_rejected_not_crashed(
        self, tmp_path, net_file, capsys
    ):
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps([
            {"id": "ok", "source": 0, "dest": 2, "size": 4.0,
             "start": 0.0, "end": 6.0},
            {"id": "neg-size", "source": 0, "dest": 2, "size": -2.0,
             "start": 0.0, "end": 6.0},
            {"id": "backwards", "source": 0, "dest": 2, "size": 4.0,
             "start": 6.0, "end": 2.0},
            {"id": "loop", "source": 1, "dest": 1, "size": 4.0,
             "start": 0.0, "end": 6.0},
            {"id": "ghost", "source": "nowhere", "dest": 2, "size": 4.0,
             "start": 0.0, "end": 6.0},
            {"source": 0, "dest": 2, "size": 4.0, "start": 0.0, "end": 6.0},
            "not-even-an-object",
        ]))
        code = main(
            ["serve", "--network", str(net_file), "--requests",
             str(requests)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok: accept" in out
        assert "must be positive" in out
        assert "is not after release time" in out
        assert "must differ" in out
        assert "not a node" in out
        assert "missing field" in out
        assert "must be a JSON object" in out

    def test_malformed_json_file_is_clean_error(self, net_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{this is not json")
        code = main(
            ["serve", "--network", str(net_file), "--requests", str(bad)]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestServeCrashResume:
    def test_crash_then_resume_reproduces_clean_digest(
        self, tmp_path, net_file, trace_file, capsys
    ):
        clean_out = tmp_path / "clean.json"
        assert (
            main(
                ["serve", "--network", str(net_file), "--trace",
                 str(trace_file), "--journal",
                 str(tmp_path / "clean.jsonl"), "-o", str(clean_out)]
            )
            == 0
        )
        clean_digest = load_json(clean_out)["digest"]
        capsys.readouterr()

        journal = tmp_path / "crashed.jsonl"
        code = main(
            ["serve", "--network", str(net_file), "--trace",
             str(trace_file), "--journal", str(journal),
             "--crash", "pre-respond@1"]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "simulated crash" in err
        assert "--resume" in err

        resumed_out = tmp_path / "resumed.json"
        code = main(
            ["serve", "--resume", str(journal), "--trace",
             str(trace_file), "-o", str(resumed_out)]
        )
        assert code == 0
        assert "recovered service" in capsys.readouterr().out
        assert load_json(resumed_out)["digest"] == clean_digest

    def test_resume_rejects_simulator_journal(self, tmp_path, capsys):
        journal = tmp_path / "sim.jsonl"
        net = tmp_path / "line.json"
        jobs = tmp_path / "jobs.json"
        assert main(["topology", "line", "--nodes", "3", "-o", str(net)]) == 0
        assert (
            main(["workload", "--network", str(net), "--jobs", "2",
                  "-o", str(jobs)]) == 0
        )
        assert (
            main(["simulate", "--network", str(net), "--jobs", str(jobs),
                  "--journal", str(journal)]) == 0
        )
        assert main(["serve", "--resume", str(journal)]) == 1
        assert "simulator journal" in capsys.readouterr().err


class TestServeFaults:
    def test_fault_spec_voids_into_renegotiation(
        self, tmp_path, net_file, capsys
    ):
        # A long transfer whose path dies mid-flight: the reservation is
        # voided and renegotiated, never silently lost.
        trace = tmp_path / "long.json"
        trace.write_text(json.dumps({
            "jobs": [
                {"id": "long", "source": 0, "dest": 1, "size": 200.0,
                 "start": 0.0, "end": 10.0},
            ]
        }))
        code = main(
            ["serve", "--network", str(net_file), "--trace", str(trace),
             "--faults", "down:0-1@2", "-o", str(tmp_path / "out.json")]
        )
        assert code == 0
        report = load_json(tmp_path / "out.json")
        statuses = {
            r["status"] for r in report["book"]["reservations"].values()
        }
        # Either the re-route absorbed the fault or the void/renegotiate
        # chain ran; in both cases nothing is silently dropped.
        assert report["slo"]["decided"] >= 1
        assert statuses <= {"accepted", "completed", "voided", "expired"}
