"""The seeded scenario fuzzer: determinism, and the 25-scenario sweep.

The sweep (``@pytest.mark.fuzz``) is the acceptance criterion: every
scenario derived from base seed 7 must pass all invariants, the
differential oracle within the documented gap bound, and — for fault
scenarios — per-epoch verification inside the simulator.  The same
scenarios back the CI job ``repro verify --fuzz 25 --seed 7``.
"""

import pytest

from repro.verify.fuzz import (
    SEED_STRIDE,
    FuzzSummary,
    make_scenario,
    run_scenario,
    scenarios,
)

BASE_SEED = 7
SWEEP = scenarios(25, seed=BASE_SEED)


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        a = make_scenario(12345)
        b = make_scenario(12345)
        assert a.description == b.description
        assert [j.size for j in a.jobs] == [j.size for j in b.jobs]
        assert [(j.source, j.dest) for j in a.jobs] == [
            (j.source, j.dest) for j in b.jobs
        ]
        if a.fault_schedule is not None:
            assert b.fault_schedule is not None
            assert a.fault_schedule.events == b.fault_schedule.events

    def test_seed_derivation_is_arithmetic(self):
        scs = scenarios(3, seed=9)
        assert [s.seed for s in scs] == [
            9 * SEED_STRIDE,
            9 * SEED_STRIDE + 1,
            9 * SEED_STRIDE + 2,
        ]

    def test_allow_faults_off(self):
        for sc in scenarios(10, seed=3, allow_faults=False):
            assert sc.fault_schedule is None

    def test_small_instance_bias(self):
        sizes = [len(sc.jobs) for sc in scenarios(40, seed=1)]
        assert max(sizes) <= 5
        assert sum(1 for n in sizes if n <= 3) > len(sizes) / 2


class TestSummary:
    def test_render_mentions_every_scenario(self):
        outcomes = tuple(
            run_scenario(sc, oracle=False) for sc in scenarios(2, seed=4)
        )
        summary = FuzzSummary(outcomes=outcomes)
        text = summary.render()
        for o in outcomes:
            assert f"seed={o.scenario.seed}" in text
        assert "2 scenarios" in text


@pytest.mark.fuzz
@pytest.mark.parametrize(
    "scenario", SWEEP, ids=[f"seed{sc.seed}" for sc in SWEEP]
)
def test_fuzz_sweep(scenario):
    outcome = run_scenario(scenario)
    assert outcome.ok, "\n\n".join(outcome.failures)
