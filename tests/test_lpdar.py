"""Unit tests for the LPDAR heuristic (discretize + Algorithm 1)."""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    ValidationError,
    discretize,
    greedy_adjust,
    lpdar,
    solve_stage1,
    solve_stage2_lp,
)


class TestDiscretize:
    def test_floors_fractions(self):
        assert discretize(np.array([0.0, 0.4, 1.9, 2.5])).tolist() == [0, 0, 1, 2]

    def test_near_integer_rounds_up(self):
        x = np.array([2.9999999995, 1.0000000001])
        assert discretize(x).tolist() == [3.0, 1.0]

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            discretize(np.array([-0.5]))

    def test_tiny_negative_noise_clamped(self):
        assert discretize(np.array([-1e-12])).tolist() == [0.0]

    def test_never_exceeds_input(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=100)
        assert np.all(discretize(x) <= x + 1e-6)


class TestGreedyAdjust:
    def test_recovers_truncated_bandwidth(self, diamond):
        """LPD of an all-0.5 solution is 0; Algorithm 1 refills both paths."""
        from repro import TimeGrid

        jobs = JobSet([Job(id=0, source=0, dest=3, size=2.0, start=0.0, end=1.0)])
        s = ProblemStructure(diamond, jobs, TimeGrid.uniform(1), k_paths=2)
        x_frac = np.array([0.5, 0.5])
        x_lpd = discretize(x_frac)
        assert x_lpd.tolist() == [0.0, 0.0]
        x_adj = greedy_adjust(s, x_lpd)
        assert x_adj.tolist() == [1.0, 1.0]

    def test_never_decreases(self, line3_structure, rng):
        x = np.zeros(line3_structure.num_cols)
        x[0] = 1.0
        adjusted = greedy_adjust(line3_structure, x)
        assert np.all(adjusted >= x)

    def test_capacity_never_violated(self, line3_structure):
        x = np.zeros(line3_structure.num_cols)
        adjusted = greedy_adjust(line3_structure, x)
        assert line3_structure.capacity_violation(adjusted) == 0.0
        # Greedy should saturate the line fully (each job has its own direction).
        loads = line3_structure.link_loads(adjusted)
        assert loads[line3_structure.network.edge_id(0, 1), :].tolist() == [
            2.0,
            2.0,
            2.0,
            2.0,
        ]

    def test_result_is_integral(self, line3_structure):
        x = np.zeros(line3_structure.num_cols)
        adjusted = greedy_adjust(line3_structure, x)
        assert np.array_equal(adjusted, np.rint(adjusted))

    def test_rejects_fractional_input(self, line3_structure):
        x = np.full(line3_structure.num_cols, 0.5)
        with pytest.raises(ValidationError, match="integer"):
            greedy_adjust(line3_structure, x)

    def test_rejects_capacity_violating_input(self, line3_structure):
        x = np.zeros(line3_structure.num_cols)
        x[0] = 99.0
        with pytest.raises(ValidationError, match="violates capacity"):
            greedy_adjust(line3_structure, x)

    def test_rejects_wrong_shape(self, line3_structure):
        with pytest.raises(ValidationError):
            greedy_adjust(line3_structure, np.zeros(2))

    def test_random_order_needs_rng(self, line3_structure):
        x = np.zeros(line3_structure.num_cols)
        with pytest.raises(ValidationError):
            greedy_adjust(line3_structure, x, order="random")

    def test_unknown_order_rejected(self, line3_structure):
        with pytest.raises(ValidationError):
            greedy_adjust(line3_structure, np.zeros(line3_structure.num_cols), order="bogus")

    def test_random_order_still_feasible(self, line3_structure, rng):
        x = np.zeros(line3_structure.num_cols)
        adjusted = greedy_adjust(line3_structure, x, order="random", rng=rng)
        assert line3_structure.capacity_violation(adjusted) == 0.0

    def test_window_respected(self, line3, grid4):
        """Greedy must not grant slices outside a job's window."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=4.0, start=1.0, end=3.0)])
        s = ProblemStructure(line3, jobs, grid4)
        adjusted = greedy_adjust(s, np.zeros(s.num_cols))
        # Columns exist only for slices 1, 2 — all may be filled to cap 2.
        assert s.col_slice.tolist() == [1, 2]
        assert adjusted.tolist() == [2.0, 2.0]


class TestDeficitFirstAndCapping:
    @pytest.fixture
    def shared_link(self, line3):
        """Two jobs on the same 1-slice window; deficits differ."""
        from repro import TimeGrid

        jobs = JobSet(
            [
                Job(id="sated", source=0, dest=2, size=1.0, start=0.0, end=1.0),
                Job(id="needy", source=0, dest=2, size=2.0, start=0.0, end=1.0),
            ]
        )
        return ProblemStructure(line3, jobs, TimeGrid.uniform(1))

    def test_paper_order_serves_first_job_first(self, shared_link):
        x = greedy_adjust(shared_link, np.zeros(2), order="paper")
        assert x.tolist() == [2.0, 0.0]

    def test_deficit_first_serves_needy_job(self, shared_link):
        x = greedy_adjust(shared_link, np.zeros(2), order="deficit_first")
        assert x.tolist() == [0.0, 2.0]

    def test_cap_at_target_leaves_surplus(self, shared_link):
        x = greedy_adjust(
            shared_link, np.zeros(2), order="paper", cap_at_target=True
        )
        # Job "sated" needs only 1 wavelength-slice; job "needy" gets the rest.
        assert x.tolist() == [1.0, 1.0]

    def test_cap_with_explicit_targets(self, shared_link):
        x = greedy_adjust(
            shared_link,
            np.zeros(2),
            order="paper",
            targets=np.array([0.0, 2.0]),
            cap_at_target=True,
        )
        assert x.tolist() == [0.0, 2.0]

    def test_targets_shape_validated(self, shared_link):
        with pytest.raises(ValidationError):
            greedy_adjust(shared_link, np.zeros(2), targets=np.array([1.0]))


class TestLpdarPipeline:
    def test_objective_ordering_lpd_lpdar_lp(self, line3, grid4):
        """Weighted throughput: LPD <= LPDAR <= LP on a contended instance."""
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=5.0, start=0.0, end=4.0),
                Job(id=1, source=0, dest=2, size=3.0, start=0.0, end=3.0),
            ]
        )
        s = ProblemStructure(line3, jobs, grid4)
        zstar = solve_stage1(s).zstar
        stage2 = solve_stage2_lp(s, zstar, alpha=0.1)
        result = lpdar(s, stage2.x)
        wt = s.weighted_throughput
        assert wt(result.x_lpd) <= wt(result.x_lpdar) + 1e-9
        assert wt(result.x_lpdar) <= wt(result.x_lp) + 1e-9

    def test_lpdar_output_feasible_and_integral(self, line3_structure):
        zstar = solve_stage1(line3_structure).zstar
        stage2 = solve_stage2_lp(line3_structure, zstar, alpha=0.1)
        result = lpdar(line3_structure, stage2.x)
        assert line3_structure.capacity_violation(result.x_lpdar) == 0.0
        assert np.array_equal(result.x_lpdar, np.rint(result.x_lpdar))
        assert np.all(result.x_lpdar >= result.x_lpd)

    def test_lp_field_preserves_input(self, line3_structure):
        x = np.zeros(line3_structure.num_cols)
        x[0] = 1.3
        result = lpdar(line3_structure, x)
        assert result.x_lp[0] == pytest.approx(1.3)
