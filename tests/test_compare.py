"""Unit tests for comparison tables and the auto-negotiation driver."""

import pytest

from repro import Job, JobSet, Scheduler, Simulation, ValidationError, summarize
from repro.analysis import compare_schedules, compare_simulations
from repro.core.negotiation import NegotiationSession, auto_negotiate
from repro.network import topologies


@pytest.fixture
def net():
    return topologies.line(3, capacity=2, wavelength_rate=1.0)


@pytest.fixture
def jobs():
    return JobSet(
        [
            Job(id="a", source=0, dest=2, size=6.0, start=0.0, end=4.0),
            Job(id="b", source=2, dest=0, size=4.0, start=0.0, end=4.0),
        ]
    )


class TestCompareSchedules:
    def test_columns_per_label(self, net, jobs):
        results = {
            "alpha=0.1": Scheduler(net, alpha=0.1).schedule(jobs),
            "alpha=0.5": Scheduler(net, alpha=0.5).schedule(jobs),
        }
        table = compare_schedules(results)
        out = table.render()
        assert "alpha=0.1" in out and "alpha=0.5" in out
        assert "Z* (stage 1)" in out
        assert "Jain fairness" in out

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            compare_schedules({})


class TestCompareSimulations:
    def test_policy_columns(self, net, jobs):
        summaries = {
            policy: summarize(Simulation(net, policy=policy).run(jobs))
            for policy in ("reduce", "extend")
        }
        table = compare_simulations(summaries)
        out = table.render()
        assert "reduce" in out and "extend" in out
        assert "completion_rate" in out

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            compare_simulations({})


class TestAutoNegotiate:
    @pytest.fixture
    def overloaded(self, net):
        return JobSet(
            [
                Job(id="a", source=0, dest=2, size=10.0, start=0.0, end=4.0),
                Job(id="b", source=0, dest=2, size=6.0, start=0.0, end=4.0),
            ]
        )

    def test_reduce_then_extend_converges(self, net, overloaded):
        session = NegotiationSession(net, overloaded)
        final = auto_negotiate(session, "reduce_then_extend")
        assert session.admissible()
        assert len(final) == 2

    def test_extend_only_converges(self, net, overloaded):
        session = NegotiationSession(net, overloaded)
        final = auto_negotiate(session, "extend")
        assert session.admissible()
        # Sizes untouched by extension rounds.
        assert final.by_id("a").size == 10.0

    def test_already_admissible_is_noop(self, net, jobs):
        session = NegotiationSession(net, jobs)
        final = auto_negotiate(session)
        assert len(session.rounds) == 0
        assert final is session.current_jobs

    def test_unknown_strategy(self, net, overloaded):
        session = NegotiationSession(net, overloaded)
        with pytest.raises(ValidationError, match="strategy"):
            auto_negotiate(session, "bribe")

    def test_infeasible_extension_propagates_schedule_error(self, net):
        """When even b_max cannot fit the demand, solve_ret's typed
        error surfaces (and no half-open round is left behind)."""
        from repro import ScheduleError

        impossible = JobSet(
            [Job(id="x", source=0, dest=2, size=1000.0, start=0.0, end=4.0)]
        )
        session = NegotiationSession(net, impossible)
        with pytest.raises(ScheduleError):
            auto_negotiate(session, "extend", max_rounds=1, b_max=0.5)
        assert session.rounds == []  # nothing dangling
