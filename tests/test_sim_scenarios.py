"""Scenario tests for the online controller: richer traces and invariants."""

import numpy as np
import pytest

from repro import Job, JobSet, Simulation, WorkloadGenerator, summarize
from repro.network import topologies, waxman_network
from repro.workload import WorkloadConfig, diurnal_arrivals


class TestDiurnalDay:
    def test_day_of_diurnal_traffic(self):
        """A 24-hour diurnal trace through the controller: conservation
        and lifecycle invariants hold; peak-hour passes carry more jobs."""
        net = topologies.abilene().with_wavelengths(4, total_link_rate=20.0)
        rng = np.random.default_rng(77)
        times = diurnal_arrivals(0.7, 24.0, rng, peak_to_trough=5.0)
        gen = WorkloadGenerator(
            net,
            WorkloadConfig(size_low=10.0, size_high=80.0,
                           window_slices_high=6),
            rng=rng,
        )
        jobs = JobSet(
            gen.job(f"d-{k}", arrival=float(t)) for k, t in enumerate(times)
        )
        if len(jobs) == 0:
            pytest.skip("empty trace draw")
        sim = Simulation(net, tau=2.0, slice_length=1.0, policy="reduce")
        result = sim.run(jobs, horizon=60.0)
        summary = summarize(result)
        assert summary.num_jobs == len(jobs)
        assert summary.delivered_volume <= summary.offered_volume + 1e-6
        for rec in result.records:
            assert rec.status in ("completed", "expired", "rejected")
            assert 0.0 <= rec.remaining <= rec.job.size + 1e-9

    def test_conservation_across_policies(self):
        """Delivered volume never exceeds offered, under every policy."""
        net = waxman_network(20, capacity=2, wavelength_rate=10.0, seed=3)
        gen = WorkloadGenerator(net, seed=4)
        jobs = gen.arrival_stream(rate=1.0, horizon=6.0)
        if len(jobs) == 0:
            pytest.skip("empty trace draw")
        offered = jobs.total_size()
        for policy in ("reject", "reduce", "extend"):
            result = Simulation(net, policy=policy).run(jobs, horizon=60.0)
            assert result.delivered_volume <= offered + 1e-6
            # Completed jobs are exactly the zero-remaining ones.
            for rec in result.by_status("completed"):
                assert rec.remaining == 0.0
                assert rec.completion_time is not None

    def test_progress_events_match_record_totals(self):
        from repro.sim.events import JobProgress

        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id="a", source=0, dest=2, size=5.0, start=0.0, end=4.0),
                Job(id="b", source=2, dest=0, size=3.0, start=1.0, end=5.0),
            ]
        )
        result = Simulation(net, policy="reduce").run(jobs)
        per_job: dict = {}
        for event in result.events:
            if isinstance(event, JobProgress):
                per_job[event.job_id] = per_job.get(event.job_id, 0.0) + event.delivered
        for rec in result.records:
            delivered = rec.job.size - rec.remaining
            assert per_job.get(rec.job.id, 0.0) == pytest.approx(delivered)

    def test_rejected_jobs_receive_nothing(self):
        from repro.sim.events import JobProgress

        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=2, size=8.0, start=0.0, end=2.0,
                    arrival=float(i) - 10.0)
                for i in range(3)
            ]
        )
        result = Simulation(net, policy="reject").run(jobs, horizon=4.0)
        rejected_ids = {r.job.id for r in result.by_status("rejected")}
        progressed = {
            e.job_id for e in result.events if isinstance(e, JobProgress)
        }
        assert not rejected_ids & progressed
