"""Unit tests for the shared experimental recipe (repro.experiments.setup)."""

import pytest

from repro.experiments import (
    TOTAL_LINK_RATE,
    WAVELENGTH_SWEEP,
    abilene_network,
    calibrated_jobs,
    random_network,
    shared_path_sets,
    throughput_pipeline,
)
from repro.workload import WorkloadConfig


class TestNetworkBuilders:
    def test_random_network_matches_paper_recipe(self):
        net = random_network(num_nodes=50, seed=1)
        assert net.num_nodes == 50
        assert net.wavelength_rate == TOTAL_LINK_RATE
        assert net.is_strongly_connected()

    def test_abilene_network(self):
        net = abilene_network()
        assert net.num_nodes == 11
        assert net.num_link_pairs == 20
        assert net.wavelength_rate == TOTAL_LINK_RATE


class TestCalibration:
    @pytest.mark.parametrize("target", [0.5, 0.9, 1.5])
    def test_calibrated_jobs_hit_target(self, target):
        from repro import ProblemStructure, TimeGrid, solve_stage1

        net = random_network(num_nodes=30, seed=2)
        jobs = calibrated_jobs(net, 20, seed=3, target_zstar=target)
        grid = TimeGrid.covering(jobs.max_end())
        structure = ProblemStructure(net, jobs, grid, 4)
        assert solve_stage1(structure).zstar == pytest.approx(target, rel=1e-6)

    def test_calibration_invariant_to_wavelength_split(self):
        """Constant total rate means one calibration serves the sweep."""
        net = random_network(num_nodes=30, seed=4)
        jobs = calibrated_jobs(net, 15, seed=5, target_zstar=0.8)
        paths = shared_path_sets(net, jobs)
        zs = [
            throughput_pipeline(net, jobs, w, path_sets=paths).zstar
            for w in WAVELENGTH_SWEEP[:3]
        ]
        assert max(zs) - min(zs) < 1e-6


class TestThroughputPipeline:
    def test_point_fields_consistent(self):
        net = random_network(num_nodes=20, seed=6)
        cfg = WorkloadConfig(window_slices_low=2, window_slices_high=3)
        jobs = calibrated_jobs(net, 15, seed=7, target_zstar=0.9, config=cfg)
        point = throughput_pipeline(net, jobs, 4)
        assert point.wavelengths == 4
        assert point.lpd <= point.lpdar + 1e-9
        assert 0.0 < point.lpd_ratio <= point.lpdar_ratio + 1e-9
        # Ratios are the reported normalized metrics.
        assert point.lpd_ratio == pytest.approx(point.lpd / point.lp)
        assert point.lpdar_ratio == pytest.approx(point.lpdar / point.lp)
