"""Overload and load-shedding tests for the reservation service.

Acceptance criterion: under a 10x burst the arrival queue stays
bounded (no unbounded memory), the excess gets explicit
``Rejected(reason="overload")`` responses (never silence), and the
token-bucket guard caps how many decisions one epoch attempts.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import Job, JobSet
from repro.network import topologies
from repro.service import (
    REASON_OVERLOAD,
    Accepted,
    Rejected,
    ReservationService,
    drive,
)


@pytest.fixture
def net():
    return topologies.ring(4, capacity=2)


def _request(net, rid, start=0.0, end=30.0):
    return {
        "id": rid,
        "source": net.nodes[rid % 4],
        "dest": net.nodes[(rid + 2) % 4],
        "size": 1.0,
        "start": start,
        "end": end,
    }


def test_queue_stays_bounded_under_10x_burst(net):
    queue_limit = 16
    burst = 10 * queue_limit
    service = ReservationService(net, queue_limit=queue_limit, rate=8.0)
    handles = [service.submit(_request(net, i)) for i in range(burst)]

    # The queue never exceeded its bound; everything beyond it was shed
    # immediately with an explicit overload rejection.
    assert service.queue_depth <= queue_limit
    shed = [h for h in handles if h.done]
    assert len(shed) == burst - queue_limit
    for handle in shed:
        assert isinstance(handle.decision, Rejected)
        assert handle.decision.reason == REASON_OVERLOAD
    assert service.stats.counters["shed"] == burst - queue_limit
    service.close()


def test_token_bucket_caps_decisions_per_epoch(net):
    service = ReservationService(net, queue_limit=64, rate=4.0, burst=4.0)
    handles = [service.submit(_request(net, i)) for i in range(12)]
    decisions = asyncio.run(service.tick())

    # Exactly `burst` admission probes ran; the rest were shed, not
    # silently deferred (memoryless shedding keeps the journal and the
    # queue from growing with offered load).
    assert len(decisions) == 4
    resolved = [h.decision for h in handles if h.done]
    assert len(resolved) == 12
    overloaded = [
        d for d in resolved
        if isinstance(d, Rejected) and d.reason == REASON_OVERLOAD
    ]
    assert len(overloaded) == 8
    service.close()


def test_every_submission_gets_exactly_one_response(net):
    """No request is ever silently dropped, even at 10x overload."""
    queue_limit = 8
    service = ReservationService(
        net, queue_limit=queue_limit, rate=4.0, burst=4.0
    )
    handles = [service.submit(_request(net, i)) for i in range(80)]
    for _ in range(3):
        asyncio.run(service.tick())
    assert all(h.done for h in handles)
    kinds = [h.decision.kind for h in handles]
    assert kinds.count("accept") + kinds.count("reject") == 80
    service.close()


def test_bucket_refills_across_epochs(net):
    service = ReservationService(net, queue_limit=4, rate=2.0, burst=2.0)
    first = service.submit(_request(net, 0))
    second = service.submit(_request(net, 1))
    third = service.submit(_request(net, 2))
    asyncio.run(service.tick())
    # Two tokens: first two decided, third shed.
    assert isinstance(first.decision, Accepted)
    assert isinstance(second.decision, Accepted)
    assert isinstance(third.decision, Rejected)
    assert third.decision.reason == REASON_OVERLOAD

    # Next epoch the bucket has refilled: a retry goes through.
    retry = service.submit(
        {**_request(net, 2), "arrival": service.now}
    )
    asyncio.run(service.tick())
    assert isinstance(retry.decision, Accepted)
    service.close()


def test_closed_loop_burst_eventually_admits_everything(net):
    """With retrying clients, a 10x burst drains over multiple epochs:
    every request is eventually decided on capacity, not on luck."""
    jobs = JobSet(
        [
            # Windows long enough that capped-backoff retries land
            # before the deadline (a short window turns the final
            # retry into a correct, explicit rejection instead).
            Job(id=i, source=net.nodes[i % 4], dest=net.nodes[(i + 2) % 4],
                size=0.5, start=0.0, end=200.0)
            for i in range(40)
        ]
    )
    service = ReservationService(net, queue_limit=64, rate=4.0, burst=4.0)
    report = drive(service, jobs, retry_limit=20)
    assert report.shed_retries > 0
    assert report.accepted == 40
    assert service.stats.counters["shed"] > 0
    service.close()


def test_journal_does_not_grow_with_shed_load(net, tmp_path):
    """Memoryless shedding: overload responses are never journaled, so
    journal size tracks decisions, not offered load."""
    path = tmp_path / "svc.jsonl"
    service = ReservationService(
        net, queue_limit=4, rate=2.0, burst=2.0, journal=str(path)
    )
    for i in range(50):
        service.submit(_request(net, i))
    asyncio.run(service.tick())
    service.close()

    lines = path.read_text().strip().splitlines()
    # Header + one tick entry, regardless of the 48 sheds.
    assert len(lines) == 2
    assert service.stats.counters["shed"] == 48
