"""Unit tests for the parallel layer: fleet runner, partition, sharding.

The equivalence-oracle and determinism properties live in
``test_parallel_equivalence.py``; this file pins the mechanics — spec
ordering, failure envelopes, crash retries, partition shapes, merge
plumbing, and the picklability contract fleet mode depends on
(satellite 1).
"""

import os
import pickle

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    Scheduler,
    ValidationError,
)
from repro.faults import FaultSchedule
from repro.network import topologies
from repro.network.graph import Network
from repro.parallel import (
    Shard,
    ShardedScheduler,
    TaskResult,
    TaskSpec,
    partition_structure,
    register_task,
    run_fleet,
)
from repro.parallel.fleet import default_jobs, get_task, task_names
from repro.parallel.sharded import ShardSolveSpec, fleet_shard_solve
from repro.recovery import SolveBudget
from repro.timegrid import TimeGrid
from repro.verify.fuzz import make_scenario, run_scenario


# ---------------------------------------------------------------------------
# Fleet task functions.  Module-level so fork/spawn workers can import
# them by qualified name; registered under stable test-local names.
# ---------------------------------------------------------------------------
@register_task("test-square")
def _square(n):
    return n * n


@register_task("test-boom")
def _boom(message):
    raise ValueError(message)


@register_task("test-crash-once")
def _crash_once(sentinel):
    """Dies hard on the first call, succeeds once ``sentinel`` exists."""
    if os.path.exists(sentinel):
        return "recovered"
    with open(sentinel, "w") as fh:
        fh.write("seen")
    os._exit(13)


class TestFleetRunner:
    def test_results_in_spec_order(self):
        specs = [TaskSpec("test-square", {"n": n}) for n in range(8)]
        for jobs in (1, 3):
            results = run_fleet(specs, jobs=jobs)
            assert [r.value for r in results] == [n * n for n in range(8)]
            assert [r.index for r in results] == list(range(8))
            assert all(r.ok for r in results)

    def test_inline_and_pooled_runs_agree(self):
        specs = [
            TaskSpec("test-square", {"n": n}, label=f"sq[{n}]") for n in range(5)
        ]
        inline = run_fleet(specs, jobs=1)
        pooled = run_fleet(specs, jobs=2)
        assert [(r.ok, r.value, r.label) for r in inline] == [
            (r.ok, r.value, r.label) for r in pooled
        ]

    def test_raising_task_is_contained(self):
        specs = [
            TaskSpec("test-square", {"n": 3}),
            TaskSpec("test-boom", {"message": "kaboom"}),
            TaskSpec("test-square", {"n": 4}),
        ]
        for jobs in (1, 2):
            results = run_fleet(specs, jobs=jobs)
            assert [r.ok for r in results] == [True, False, True]
            failed = results[1]
            assert failed.error_type == "ValueError"
            assert "kaboom" in failed.error
            assert failed.traceback and "ValueError" in failed.traceback

    def test_worker_crash_is_retried_then_succeeds(self, tmp_path):
        sentinel = str(tmp_path / "crash-once")
        results = run_fleet(
            [TaskSpec("test-crash-once", {"sentinel": sentinel})],
            jobs=2,
            retries=1,
        )
        assert results[0].ok
        assert results[0].value == "recovered"
        assert results[0].attempts == 2

    def test_worker_crash_without_retries_is_reported(self, tmp_path):
        sentinel = str(tmp_path / "crash-hard")
        results = run_fleet(
            [TaskSpec("test-crash-once", {"sentinel": sentinel})],
            jobs=2,
            retries=0,
        )
        assert not results[0].ok
        assert results[0].error_type == "WorkerCrashed"

    def test_unknown_task_rejected(self):
        with pytest.raises(ValidationError, match="unknown fleet task"):
            run_fleet([TaskSpec("no-such-task")], jobs=1)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValidationError, match="jobs"):
            run_fleet([], jobs=0)
        with pytest.raises(ValidationError, match="retries"):
            run_fleet([], jobs=1, retries=-1)
        with pytest.raises(ValidationError, match="TaskSpec"):
            run_fleet(["not a spec"], jobs=1)

    def test_empty_specs(self):
        assert run_fleet([], jobs=4) == []

    def test_dotted_path_and_builtin_names_resolve(self):
        assert get_task("os:getpid") is os.getpid
        # Built-ins resolve lazily and land in task_names().
        assert get_task("fuzz_scenario").__name__ == "fleet_fuzz_scenario"
        for name in ("fuzz_scenario", "experiment", "shard_solve"):
            assert name in task_names()
        assert "test-square" in task_names()

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


# ---------------------------------------------------------------------------
# Satellite 1: picklability of everything fleet mode ships to workers.
# ---------------------------------------------------------------------------
class TestPicklability:
    def test_scenario_roundtrip_offline(self):
        # Seed 0 is an offline (schedule + oracle) scenario.
        scenario = make_scenario(0)
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone.seed == scenario.seed
        assert clone.description == scenario.description
        assert [j.id for j in clone.jobs] == [j.id for j in scenario.jobs]
        original = run_scenario(scenario)
        replayed = run_scenario(clone)
        assert replayed.failures == original.failures
        assert replayed.gap == original.gap
        assert (replayed.report is None) == (original.report is None)
        if original.report is not None:
            assert replayed.report.ok == original.report.ok

    def test_fault_schedule_roundtrip(self):
        network = topologies.ring(5, capacity=2)
        schedule = FaultSchedule.random(
            network, horizon=10.0, mtbf=4.0, mttr=1.0, seed=7
        )
        clone = pickle.loads(pickle.dumps(schedule))
        assert len(clone) == len(schedule)
        assert list(clone) == list(schedule)

    def test_scenario_with_faults_roundtrip(self):
        scenario = next(
            s
            for s in (make_scenario(seed) for seed in range(64))
            if s.fault_schedule is not None
        )
        clone = pickle.loads(pickle.dumps(scenario))
        assert list(clone.fault_schedule) == list(scenario.fault_schedule)
        assert run_scenario(clone).failures == run_scenario(scenario).failures

    def test_pickle_to_worker_roundtrip_deterministic(self):
        # The full satellite-1 loop: spec pickles into a worker process,
        # the outcome pickles back, and both match the inline run.
        specs = [
            TaskSpec("fuzz_scenario", {"seed": seed, "oracle": True})
            for seed in (0, 1, 2)
        ]
        inline = run_fleet(specs, jobs=1)
        pooled = run_fleet(specs, jobs=2)
        for a, b in zip(inline, pooled):
            assert a.ok and b.ok
            assert a.value.scenario.description == b.value.scenario.description
            assert a.value.failures == b.value.failures
            assert a.value.gap == b.value.gap

    def test_shard_solve_spec_roundtrip(self):
        network = topologies.line(4, capacity=2)
        jobs = JobSet(
            [Job(id="a", source=0, dest=3, size=3.0, start=0.0, end=4.0)]
        )
        scheduler = ShardedScheduler(network, k_paths=2)
        structure = scheduler.build_structure(jobs)
        spec = ShardSolveSpec(
            network=structure.network,
            jobs=structure.jobs,
            grid=structure.grid,
            k_paths=structure.k_paths,
            paths=tuple(tuple(p) for p in structure.paths),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert fleet_shard_solve(clone)["zstar"] == pytest.approx(
            fleet_shard_solve(spec)["zstar"]
        )


# ---------------------------------------------------------------------------
# Partition shapes.
# ---------------------------------------------------------------------------
def _two_component_network():
    net = Network(wavelength_rate=1.0)
    for c in range(2):
        for i in range(2):
            net.add_link_pair(f"c{c}n{i}", f"c{c}n{i + 1}", capacity=2)
    return net


class TestPartition:
    def test_single_component_single_shard(self):
        network = topologies.line(4, capacity=2)
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=3, size=1.0, start=0.0, end=3.0)
                for i in range(3)
            ]
        )
        structure = Scheduler(network, k_paths=2).build_structure(jobs)
        shards = partition_structure(structure)
        assert len(shards) == 1
        assert shards[0].job_indices == (0, 1, 2)

    def test_disjoint_time_blocks_split(self):
        network = topologies.line(3, capacity=2)
        jobs = JobSet(
            [
                Job(id="early", source=0, dest=2, size=1.0, start=0.0, end=2.0),
                Job(id="late", source=0, dest=2, size=1.0, start=2.0, end=4.0),
            ]
        )
        structure = Scheduler(network, k_paths=2).build_structure(
            jobs, TimeGrid.uniform(4)
        )
        shards = partition_structure(structure)
        assert len(shards) == 2
        # Same edges, but the windows never overlap.
        assert shards[0].edge_ids == shards[1].edge_ids
        assert shards[0].slice_window == (0, 2)
        assert shards[1].slice_window == (2, 4)

    def test_network_components_split(self):
        network = _two_component_network()
        jobs = JobSet(
            [
                Job(id="a", source="c0n0", dest="c0n2", size=1.0, start=0.0, end=3.0),
                Job(id="b", source="c1n0", dest="c1n2", size=1.0, start=0.0, end=3.0),
            ]
        )
        structure = Scheduler(network, k_paths=2).build_structure(jobs)
        shards = partition_structure(structure)
        assert len(shards) == 2
        assert not (shards[0].edge_ids & shards[1].edge_ids)

    def test_every_job_in_exactly_one_nonempty_shard(self):
        scenario = make_scenario(11, allow_faults=False)
        structure = Scheduler(scenario.network, k_paths=2).build_structure(
            scenario.jobs, scenario.grid
        )
        shards = partition_structure(structure)
        assert all(isinstance(s, Shard) for s in shards)
        assert all(s.job_indices for s in shards)
        covered = sorted(i for s in shards for i in s.job_indices)
        assert covered == list(range(len(structure.jobs)))

    def test_chained_overlaps_stay_together(self):
        # a overlaps b, b overlaps c, a never overlaps c: one shard.
        network = topologies.line(3, capacity=2)
        jobs = JobSet(
            [
                Job(id="a", source=0, dest=2, size=1.0, start=0.0, end=2.0),
                Job(id="b", source=0, dest=2, size=1.0, start=1.0, end=4.0),
                Job(id="c", source=0, dest=2, size=1.0, start=3.0, end=5.0),
            ]
        )
        structure = Scheduler(network, k_paths=2).build_structure(
            jobs, TimeGrid.uniform(5)
        )
        assert len(partition_structure(structure)) == 1


# ---------------------------------------------------------------------------
# ShardedScheduler mechanics.
# ---------------------------------------------------------------------------
class TestShardedScheduler:
    def test_single_shard_grant_identical(self):
        network = topologies.line(4, capacity=2)
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=3, size=2.0, start=0.0, end=4.0)
                for i in range(3)
            ]
        )
        mono = Scheduler(network, k_paths=2).schedule(jobs)
        sharded = ShardedScheduler(network, k_paths=2).schedule(jobs)
        assert sharded.alpha == mono.alpha
        assert np.array_equal(sharded.x, mono.x)
        assert np.array_equal(sharded.stage1.x, mono.stage1.x)

    def test_workers_do_not_change_grants(self):
        network = _two_component_network()
        jobs = JobSet(
            [
                Job(id="a", source="c0n0", dest="c0n2", size=3.0, start=0.0, end=3.0),
                Job(id="b", source="c1n0", dest="c1n2", size=2.0, start=0.0, end=3.0),
            ]
        )
        seq = ShardedScheduler(network, k_paths=2, workers=1).schedule(jobs)
        par = ShardedScheduler(network, k_paths=2, workers=2).schedule(jobs)
        assert par.alpha == seq.alpha
        assert np.array_equal(par.x, seq.x)

    def test_partition_method_matches_structure_partition(self):
        network = _two_component_network()
        jobs = JobSet(
            [
                Job(id="a", source="c0n0", dest="c0n2", size=1.0, start=0.0, end=3.0),
                Job(id="b", source="c1n0", dest="c1n2", size=1.0, start=0.0, end=3.0),
            ]
        )
        scheduler = ShardedScheduler(network, k_paths=2)
        shards = scheduler.partition(jobs)
        assert [s.job_indices for s in shards] == [(0,), (1,)]

    def test_budget_delegates_to_monolithic(self):
        network = topologies.line(3, capacity=2)
        jobs = JobSet(
            [Job(id="a", source=0, dest=2, size=1.0, start=0.0, end=3.0)]
        )
        scheduler = ShardedScheduler(network, k_paths=2)
        result = scheduler.schedule(jobs, budget=SolveBudget(wall_time_s=60.0))
        assert result.verify().ok
        # The sharded span/counters never fire on the delegated path.
        assert "sharded_solves" not in scheduler.telemetry.counters

    def test_random_greedy_order_delegates(self):
        network = topologies.line(3, capacity=2)
        jobs = JobSet(
            [Job(id="a", source=0, dest=2, size=1.0, start=0.0, end=3.0)]
        )
        scheduler = ShardedScheduler(
            network,
            k_paths=2,
            greedy_order="random",
            rng=np.random.default_rng(3),
        )
        assert scheduler.schedule(jobs).verify().ok
        assert "sharded_solves" not in scheduler.telemetry.counters

    def test_sharded_telemetry_counters(self):
        network = _two_component_network()
        jobs = JobSet(
            [
                Job(id="a", source="c0n0", dest="c0n2", size=1.0, start=0.0, end=3.0),
                Job(id="b", source="c1n0", dest="c1n2", size=1.0, start=0.0, end=3.0),
            ]
        )
        from repro import Telemetry

        scheduler = ShardedScheduler(network, k_paths=2, telemetry=Telemetry())
        scheduler.schedule(jobs)
        assert scheduler.telemetry.counters["sharded_solves"] == 1
        assert scheduler.telemetry.counters["shard_solves"] == 2

    def test_weighted_jobs_match_monolithic(self):
        network = topologies.line(4, capacity=2)
        jobs = JobSet(
            [
                Job(
                    id=i,
                    source=0,
                    dest=3,
                    size=2.0,
                    start=0.0,
                    end=4.0,
                    weight=float(i + 1),
                )
                for i in range(2)
            ]
        )
        mono = Scheduler(network, k_paths=2).schedule(jobs)
        sharded = ShardedScheduler(network, k_paths=2).schedule(jobs)
        assert np.array_equal(sharded.x, mono.x)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValidationError, match="workers"):
            ShardedScheduler(topologies.line(3), workers=0)

    def test_merge_rejects_mismatched_shard_solution(self):
        network = topologies.line(3, capacity=2)
        jobs = JobSet(
            [Job(id="a", source=0, dest=2, size=1.0, start=0.0, end=3.0)]
        )
        structure = Scheduler(network, k_paths=2).build_structure(jobs)
        (shard,) = partition_structure(structure)
        out = np.zeros(structure.num_cols)
        from repro.errors import SolverError

        with pytest.raises(SolverError, match="columns"):
            ShardedScheduler._merge_into(
                structure, shard, np.zeros(structure.num_cols + 1), out
            )
