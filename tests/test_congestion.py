"""Unit tests for dual values and congestion pricing."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    Job,
    JobSet,
    LinearProgram,
    ProblemStructure,
    TimeGrid,
    ValidationError,
    solve_lp,
    solve_stage1,
)
from repro.analysis import congestion_report
from repro.network import topologies


class TestSolverDuals:
    def test_binding_constraint_has_positive_dual_max(self):
        # max x s.t. x <= 3: dual = 1 (one more unit of rhs -> +1 objective).
        lp = LinearProgram(
            objective=np.ones(1),
            a_ub=sp.csr_matrix(np.array([[1.0]])),
            b_ub=np.array([3.0]),
            maximize=True,
        )
        sol = solve_lp(lp)
        assert sol.ineq_duals is not None
        assert sol.ineq_duals[0] == pytest.approx(1.0)

    def test_slack_constraint_has_zero_dual(self):
        # max x s.t. x <= 3, x <= 10: second row slack.
        lp = LinearProgram(
            objective=np.ones(1),
            a_ub=sp.csr_matrix(np.array([[1.0], [1.0]])),
            b_ub=np.array([3.0, 10.0]),
            maximize=True,
        )
        sol = solve_lp(lp)
        assert sol.ineq_duals[0] == pytest.approx(1.0)
        assert sol.ineq_duals[1] == pytest.approx(0.0)

    def test_minimize_duals_are_improvements(self):
        # min x s.t. x >= 2 (as -x <= -2): relaxing rhs by 1 (to -3 ...)
        # i.e. requiring x >= 3 *worsens*; improvement direction positive.
        lp = LinearProgram(
            objective=np.ones(1),
            a_ub=sp.csr_matrix(np.array([[-1.0]])),
            b_ub=np.array([-2.0]),
        )
        sol = solve_lp(lp)
        # d(min)/d(b) = -1 -> improvement (cost reduction) per unit rhs = +1.
        assert sol.ineq_duals[0] == pytest.approx(1.0)

    def test_equality_duals_present(self):
        lp = LinearProgram(
            objective=np.array([1.0, 2.0]),
            a_eq=sp.csr_matrix(np.array([[1.0, 1.0]])),
            b_eq=np.array([4.0]),
        )
        sol = solve_lp(lp)
        assert sol.eq_duals is not None
        assert sol.eq_duals.shape == (1,)


class TestCongestionReport:
    @pytest.fixture
    def saturated(self):
        """Two jobs fighting over the 0->1 link; 1->2 never binding."""
        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=1, size=20.0, start=0.0, end=4.0),
                Job(id=1, source=0, dest=1, size=20.0, start=0.0, end=4.0),
            ]
        )
        return net, ProblemStructure(net, jobs, TimeGrid.uniform(4))

    def test_bottleneck_identified(self, saturated):
        net, structure = saturated
        zstar = solve_stage1(structure).zstar
        report = congestion_report(structure, zstar, alpha=0.5)
        bottlenecks = report.bottlenecks(top=3)
        assert bottlenecks
        assert (bottlenecks[0][0], bottlenecks[0][1]) == (0, 1)

    def test_prices_nonnegative_and_located(self, saturated):
        net, structure = saturated
        zstar = solve_stage1(structure).zstar
        report = congestion_report(structure, zstar, alpha=0.5)
        assert np.all(report.prices >= 0)
        # Only the 0->1 edge can carry a positive price.
        eid = net.edge_id(0, 1)
        other = [e for e in range(net.num_edges) if e != eid]
        assert np.all(report.prices[other] == 0)
        assert report.prices[eid].sum() > 0

    def test_price_equals_marginal_value(self, saturated):
        """Shadow price == weighted-throughput gain of one more wavelength."""
        net, structure = saturated
        zstar = solve_stage1(structure).zstar
        report = congestion_report(structure, zstar, alpha=1.0)
        # With alpha = 1 the objective is delivered/total = loads/40;
        # one extra wavelength-slice on the bottleneck adds 1/40.
        eid = net.edge_id(0, 1)
        assert report.prices[eid, 0] == pytest.approx(1.0 / 40.0, abs=1e-9)

    def test_uncongested_network_prices_zero(self):
        net = topologies.line(3, capacity=2, wavelength_rate=1.0)
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=4.0)])
        structure = ProblemStructure(net, jobs, TimeGrid.uniform(4))
        zstar = solve_stage1(structure).zstar
        report = congestion_report(structure, zstar, alpha=1.0)
        # The whole pipe is usable by the one job: every added wavelength
        # still helps, so prices are positive; but fairness-slack rows
        # never make them negative.
        assert np.all(report.prices >= 0)

    def test_congested_fraction_and_validation(self, saturated):
        net, structure = saturated
        zstar = solve_stage1(structure).zstar
        report = congestion_report(structure, zstar, alpha=0.5)
        assert 0.0 <= report.congested_fraction() <= 1.0
        with pytest.raises(ValidationError):
            report.bottlenecks(top=0)


class TestComplementarySlackness:
    """LP duality spot checks on the solver wrapper's dual signs."""

    @pytest.mark.parametrize("seed", range(5))
    def test_positive_dual_implies_binding_row(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 4, 3
        lp = LinearProgram(
            objective=rng.uniform(0.5, 2.0, size=n),
            a_ub=sp.csr_matrix(rng.uniform(0.0, 1.0, size=(m, n))),
            b_ub=rng.uniform(1.0, 3.0, size=m),
            upper=5.0,
            maximize=True,
        )
        sol = solve_lp(lp)
        slack = lp.b_ub - lp.a_ub @ sol.x
        for dual, s in zip(sol.ineq_duals, slack):
            if dual > 1e-7:
                assert s == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("seed", range(5))
    def test_duals_predict_rhs_perturbation(self, seed):
        """First-order check: bumping one rhs by eps moves the optimum
        by ~ dual * eps (within second-order effects)."""
        rng = np.random.default_rng(100 + seed)
        n, m = 3, 2
        A = rng.uniform(0.1, 1.0, size=(m, n))
        b = rng.uniform(1.0, 2.0, size=m)
        c = rng.uniform(0.5, 1.5, size=n)
        lp = LinearProgram(
            objective=c, a_ub=sp.csr_matrix(A), b_ub=b, upper=10.0,
            maximize=True,
        )
        base = solve_lp(lp)
        eps = 1e-6
        for row in range(m):
            bumped = b.copy()
            bumped[row] += eps
            lp2 = LinearProgram(
                objective=c, a_ub=sp.csr_matrix(A), b_ub=bumped, upper=10.0,
                maximize=True,
            )
            predicted = base.objective + base.ineq_duals[row] * eps
            assert solve_lp(lp2).objective == pytest.approx(
                predicted, abs=1e-9
            )
