"""The resilient solve chain in repro.lp.solver.

These tests drive the retry / perturbation / backend-fallback machinery
by monkeypatching ``scipy.optimize.linprog`` (via the reference the
solver module holds) to fail in controlled ways, mirroring the style of
``test_failure_injection.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.lp.solver as solver_mod
from repro import (
    DEFAULT_RESILIENCE,
    InfeasibleProblemError,
    LinearProgram,
    SolveResilience,
    SolverError,
    Telemetry,
    ValidationError,
    solve_lp,
)


def tiny_lp() -> LinearProgram:
    """max x0 + x1 s.t. x0 + x1 <= 3, 0 <= x <= 2 — optimum 3."""
    import scipy.sparse as sp

    return LinearProgram(
        objective=np.array([1.0, 1.0]),
        a_ub=sp.csr_matrix(np.array([[1.0, 1.0]])),
        b_ub=np.array([3.0]),
        upper=2.0,
        maximize=True,
    )


class _FlakyLinprog:
    """Delegates to the real linprog after ``failures`` bad statuses."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0
        self.real = solver_mod.linprog

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            class _Bad:
                status = 4
                success = False
                message = "simulated numerical failure"

            return _Bad()
        return self.real(*args, **kwargs)


class TestSolveResilienceValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValidationError):
            SolveResilience(max_retries=-1)
        with pytest.raises(ValidationError):
            SolveResilience(perturbation=-1e-9)
        with pytest.raises(ValidationError):
            SolveResilience(perturbation=0.5)
        with pytest.raises(ValidationError):
            SolveResilience(fallback_max_vars=-1)

    def test_default_policy_is_sane(self):
        assert DEFAULT_RESILIENCE.max_retries == 2
        assert DEFAULT_RESILIENCE.fallback_backend == "simplex"


class TestRetryChain:
    def test_none_resilience_fails_on_first_error(self, monkeypatch):
        flaky = _FlakyLinprog(failures=1)
        monkeypatch.setattr(solver_mod, "linprog", flaky)
        with pytest.raises(SolverError):
            solve_lp(tiny_lp())  # resilience=None: single shot
        assert flaky.calls == 1

    def test_retry_recovers_after_transient_failure(self, monkeypatch):
        flaky = _FlakyLinprog(failures=2)
        monkeypatch.setattr(solver_mod, "linprog", flaky)
        solution = solve_lp(
            tiny_lp(), resilience=SolveResilience(max_retries=2)
        )
        assert flaky.calls == 3
        assert solution.objective == pytest.approx(3.0, abs=1e-6)

    def test_perturbation_moves_optimum_by_noise_only(self, monkeypatch):
        flaky = _FlakyLinprog(failures=1)
        monkeypatch.setattr(solver_mod, "linprog", flaky)
        solution = solve_lp(
            tiny_lp(),
            resilience=SolveResilience(
                max_retries=1, perturbation=1e-9, fallback_backend=None
            ),
        )
        # The retry solved the relaxed problem: optimum within noise of 3.
        assert solution.objective == pytest.approx(3.0, abs=1e-6)

    def test_infeasible_is_never_retried(self, monkeypatch):
        calls = {"n": 0}
        real = solver_mod.linprog

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(solver_mod, "linprog", counting)
        import scipy.sparse as sp

        infeasible = LinearProgram(
            objective=np.array([1.0]),
            a_ub=sp.csr_matrix(np.array([[1.0]])),
            b_ub=np.array([-1.0]),  # x <= -1 with x >= 0
        )
        with pytest.raises(InfeasibleProblemError):
            solve_lp(infeasible, resilience=SolveResilience(max_retries=5))
        assert calls["n"] == 1

    def test_fallback_to_simplex_rescues_small_instance(self, monkeypatch):
        flaky = _FlakyLinprog(failures=99)  # highs never succeeds
        monkeypatch.setattr(solver_mod, "linprog", flaky)
        solution = solve_lp(
            tiny_lp(),
            resilience=SolveResilience(max_retries=1, fallback_backend="simplex"),
        )
        assert flaky.calls == 2  # first try + one retry, then simplex
        assert solution.objective == pytest.approx(3.0, abs=1e-6)

    def test_fallback_skipped_for_large_instances(self, monkeypatch):
        flaky = _FlakyLinprog(failures=99)
        monkeypatch.setattr(solver_mod, "linprog", flaky)
        with pytest.raises(SolverError) as info:
            solve_lp(
                tiny_lp(),
                resilience=SolveResilience(
                    max_retries=0, fallback_backend="simplex", fallback_max_vars=1
                ),
            )
        assert info.value.backends_tried == ("highs",)

    def test_exhausted_chain_carries_context(self, monkeypatch):
        flaky = _FlakyLinprog(failures=99)
        monkeypatch.setattr(solver_mod, "linprog", flaky)

        def broken_simplex(problem):
            raise SolverError("simplex also down", status=7)

        import repro.lp.simplex as simplex_mod

        monkeypatch.setattr(simplex_mod, "simplex_solve", broken_simplex)
        with pytest.raises(SolverError) as info:
            solve_lp(tiny_lp(), resilience=SolveResilience(max_retries=2))
        err = info.value
        assert err.backends_tried == ("highs", "highs", "highs", "simplex")
        assert err.backend == "simplex"
        assert err.retries == 2
        assert err.status == 7
        assert "exhausted" in str(err)

    def test_unknown_backend_rejected_before_any_solve(self):
        with pytest.raises(ValidationError):
            solve_lp(tiny_lp(), backend="cplex", resilience=DEFAULT_RESILIENCE)


class TestRetryTelemetry:
    def test_retries_and_fallbacks_are_counted(self, monkeypatch):
        flaky = _FlakyLinprog(failures=99)
        monkeypatch.setattr(solver_mod, "linprog", flaky)
        telemetry = Telemetry()
        solve_lp(
            tiny_lp(),
            telemetry=telemetry,
            label="stage1",
            resilience=SolveResilience(max_retries=1),
        )
        assert telemetry.counters["lp_retries"] == 2
        assert telemetry.counters["lp_backend_fallbacks"] == 1
        retry_records = telemetry.records_of("solve_retry")
        assert len(retry_records) == 2
        assert retry_records[0]["label"] == "stage1"
        assert retry_records[0]["status"] == 4
        # The successful simplex solve still logs a normal lp_solve record.
        solves = telemetry.records_of("lp_solve")
        assert solves and solves[-1]["backend"] == "simplex"

    def test_clean_solve_records_nothing_extra(self):
        telemetry = Telemetry()
        solve_lp(tiny_lp(), telemetry=telemetry, resilience=DEFAULT_RESILIENCE)
        assert "lp_retries" not in telemetry.counters
        assert "lp_backend_fallbacks" not in telemetry.counters


class TestSolverErrorContext:
    def test_plain_solver_error_defaults(self):
        err = SolverError("boom")
        assert err.status is None
        assert err.backend is None
        assert err.retries == 0
        assert err.backends_tried == ()
