"""Execute the code snippets in docs/tutorial.md.

Documentation that does not run is worse than none: this test extracts
every fenced ``python`` block from the tutorial and executes them in
order in one shared namespace, exactly as a reader following along
would.
"""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "tutorial.md"


def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


@pytest.fixture(scope="module")
def blocks():
    assert TUTORIAL.exists(), "docs/tutorial.md is missing"
    found = _python_blocks(TUTORIAL.read_text())
    assert len(found) >= 6, "tutorial should have at least six python blocks"
    return found


def test_tutorial_snippets_run_in_order(blocks):
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"tutorial-block-{i}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {i} failed: {exc}\n---\n{block}")

    # Spot-check the state the reader ends up with.
    assert namespace["result"].overloaded in (True, False)
    assert namespace["ret"].fraction_finished() == 1.0
    assert 0.0 <= namespace["summary"].completion_rate <= 1.0
