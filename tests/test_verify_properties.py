"""Hypothesis properties for the satellite targets of the verify PR.

Three areas the issue calls out explicitly: ``TimeGrid`` rounding
(``covering`` / ``window_slices`` round inward, never outward),
``FaultSchedule.compile`` (bounded by installed capacity, seed-
deterministic), and LPDAR integrality — the latter asserted through the
shared :func:`repro.verify.verify_assignment` checker rather than
ad-hoc array math.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Job,
    JobSet,
    ProblemStructure,
    TimeGrid,
    lpdar,
    solve_stage1,
    solve_stage2_lp,
    verify_assignment,
)
from repro.faults import FaultSchedule
from repro.network import topologies

SOLVER_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FAST_SETTINGS = settings(max_examples=100, deadline=None)


class TestTimeGridRounding:
    @FAST_SETTINGS
    @given(
        horizon=st.floats(min_value=0.05, max_value=500.0, allow_nan=False),
        length=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    )
    def test_covering_rounds_up_by_less_than_one_slice(self, horizon, length):
        grid = TimeGrid.covering(horizon, length)
        assert grid.end >= horizon - 1e-9 * max(1.0, abs(horizon))
        # Never more than one whole (possibly float-nudged) extra slice.
        assert grid.end - horizon <= length * (1 + 1e-9) + 1e-9
        assert np.allclose(grid.lengths, length)

    @FAST_SETTINGS
    @given(
        num=st.integers(min_value=1, max_value=40),
        data=st.data(),
    )
    def test_window_slices_round_inward(self, num, data):
        grid = TimeGrid.uniform(num)
        a = data.draw(
            st.floats(min_value=-2.0, max_value=num + 2.0, allow_nan=False)
        )
        b = data.draw(
            st.floats(min_value=a, max_value=num + 2.0, allow_nan=False)
        )
        window = grid.window_slices(a, b)
        for j in window:
            # Fully contained: the window never rounds outward.
            assert grid.slice_start(j) >= a - 1e-9
            assert grid.slice_end(j) <= b + 1e-9
        mask = grid.window_mask(a, b)
        assert mask.sum() == len(window)

    @FAST_SETTINGS
    @given(num=st.integers(min_value=1, max_value=40), data=st.data())
    def test_slice_of_inverts_boundaries(self, num, data):
        grid = TimeGrid.uniform(num)
        j = data.draw(st.integers(min_value=0, max_value=num - 1))
        assert grid.slice_of(grid.slice_start(j)) == j
        # The exclusive right boundary belongs to the next slice
        # (except the final boundary, which folds into the last slice).
        assert grid.slice_of(grid.slice_end(j)) == min(j + 1, num - 1)


class TestFaultScheduleCompile:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mtbf=st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
        mttr=st.floats(min_value=0.2, max_value=5.0, allow_nan=False),
        degrade=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_compiled_capacity_bounded_and_deterministic(
        self, seed, mtbf, mttr, degrade
    ):
        net = topologies.ring(5, capacity=3)
        grid = TimeGrid.uniform(6)
        fs = FaultSchedule.random(
            net, horizon=8.0, mtbf=mtbf, mttr=mttr, seed=seed,
            degrade_prob=degrade,
        )
        profile = fs.compile(grid)
        installed = net.capacities()
        assert profile.matrix.shape == (net.num_edges, grid.num_slices)
        assert np.all(profile.matrix >= 0)
        assert np.all(profile.matrix <= installed[:, None])

        again = FaultSchedule.random(
            net, horizon=8.0, mtbf=mtbf, mttr=mttr, seed=seed,
            degrade_prob=degrade,
        )
        assert again.events == fs.events
        assert np.array_equal(again.compile(grid).matrix, profile.matrix)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_compile_is_pointwise_lower_bound_of_snapshots(self, seed):
        """A slice's compiled capacity never exceeds any snapshot in it."""
        net = topologies.line(4, capacity=2)
        grid = TimeGrid.uniform(5)
        fs = FaultSchedule.random(
            net, horizon=6.0, mtbf=3.0, mttr=1.0, seed=seed, degrade_prob=0.3
        )
        compiled = fs.compile(grid).matrix
        for j in range(grid.num_slices):
            snap = fs.snapshot_profile(grid, grid.slice_start(j)).matrix
            assert np.all(compiled[:, j] <= snap[:, j])


def _instance(seed: int, num_jobs: int) -> ProblemStructure:
    rng = np.random.default_rng(seed)
    net = topologies.ring(6, capacity=int(rng.integers(1, 4)))
    num_slices = int(rng.integers(2, 6))
    grid = TimeGrid.uniform(num_slices)
    jobs = []
    for i in range(num_jobs):
        src, dst = rng.choice(6, size=2, replace=False)
        first = int(rng.integers(0, num_slices))
        last = int(rng.integers(first + 1, num_slices + 1))
        jobs.append(
            Job(
                id=i,
                source=int(src),
                dest=int(dst),
                size=float(rng.uniform(0.5, 8.0)),
                start=float(first),
                end=float(last),
            )
        )
    return ProblemStructure(net, JobSet(jobs), grid, k_paths=2)


class TestLpdarIntegralityProperty:
    @SOLVER_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_jobs=st.integers(min_value=1, max_value=5),
    )
    def test_every_pipeline_stage_passes_shared_checker(self, seed, num_jobs):
        structure = _instance(seed, num_jobs)
        zstar = solve_stage1(structure).zstar
        stage2 = solve_stage2_lp(structure, zstar, alpha=0.1)
        result = lpdar(structure, stage2.x)

        # LP relaxation: feasible but fractional.
        assert verify_assignment(structure, result.x_lp, integral=False).ok
        # LPD and LPDAR: integral and feasible, via the shared checker
        # (the old ad-hoc capacity_violation / rint asserts, centralized).
        assert verify_assignment(structure, result.x_lpd).ok
        assert verify_assignment(structure, result.x_lpdar).ok
