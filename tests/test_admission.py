"""Unit tests for admission control (footnote-1 prefix rejection)."""

import pytest

from repro import (
    Job,
    JobSet,
    Network,
    TimeGrid,
    ValidationError,
    admit_max_prefix,
)
from repro.core.admission import (
    by_arrival,
    by_laxity,
    by_size_ascending,
    by_size_descending,
)
from repro.network import topologies


class TestSequencingKeys:
    @pytest.fixture
    def jobs(self):
        return [
            Job(id="a", source=0, dest=1, size=10.0, start=2.0, end=4.0, arrival=1.0),
            Job(id="b", source=0, dest=1, size=2.0, start=0.0, end=4.0, arrival=0.0),
            Job(id="c", source=0, dest=1, size=6.0, start=0.5, end=3.5, arrival=0.5),
        ]

    def test_by_arrival(self, jobs):
        assert [j.id for j in sorted(jobs, key=by_arrival)] == ["b", "c", "a"]

    def test_by_size_descending(self, jobs):
        assert [j.id for j in sorted(jobs, key=by_size_descending)] == ["a", "c", "b"]

    def test_by_size_ascending(self, jobs):
        assert [j.id for j in sorted(jobs, key=by_size_ascending)] == ["b", "c", "a"]

    def test_by_laxity(self, jobs):
        # duration/size: a=0.2, b=2.0, c=0.5 -> a first (tightest).
        assert [j.id for j in sorted(jobs, key=by_laxity)] == ["a", "c", "b"]

    def test_ties_break_deterministically(self):
        twins = [
            Job(id="y", source=0, dest=1, size=1.0, start=0.0, end=1.0),
            Job(id="x", source=0, dest=1, size=1.0, start=0.0, end=1.0),
        ]
        assert [j.id for j in sorted(twins, key=by_arrival)] == ["x", "y"]


class TestAdmitMaxPrefix:
    @pytest.fixture
    def net(self):
        return topologies.line(2, capacity=2)  # single link pair, cap 2

    def test_all_admitted_when_underloaded(self, net):
        jobs = JobSet(
            [Job(id=i, source=0, dest=1, size=1.0, start=0.0, end=4.0) for i in range(3)]
        )
        d = admit_max_prefix(net, jobs, TimeGrid.uniform(4))
        assert d.num_admitted == 3
        assert d.num_rejected == 0
        assert d.zstar >= 1.0

    def test_overload_rejects_suffix(self, net):
        """Capacity 2 * 2 slices = 4 volume; each job needs 3."""
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=1, size=3.0, start=0.0, end=2.0, arrival=float(i) - 10.0)
                for i in range(3)
            ]
        )
        d = admit_max_prefix(net, jobs, TimeGrid.uniform(2), key=by_arrival)
        assert d.num_admitted == 1
        assert [j.id for j in d.admitted] == [0]
        assert {j.id for j in d.rejected} == {1, 2}
        assert d.zstar >= 1.0

    def test_everything_rejected_when_nothing_fits(self, net):
        jobs = JobSet(
            [Job(id=0, source=0, dest=1, size=100.0, start=0.0, end=2.0)]
        )
        d = admit_max_prefix(net, jobs, TimeGrid.uniform(2))
        assert d.num_admitted == 0
        assert d.zstar == float("inf")  # vacuous

    def test_ordering_changes_outcome(self, net):
        """Small-first admits two jobs where large-first admits one."""
        jobs = JobSet(
            [
                Job(id="big", source=0, dest=1, size=4.0, start=0.0, end=2.0),
                Job(id="s1", source=0, dest=1, size=2.0, start=0.0, end=2.0),
                Job(id="s2", source=0, dest=1, size=2.0, start=0.0, end=2.0),
            ]
        )
        grid = TimeGrid.uniform(2)
        small_first = admit_max_prefix(net, jobs, grid, key=by_size_ascending)
        big_first = admit_max_prefix(net, jobs, grid, key=by_size_descending)
        assert {j.id for j in small_first.admitted} == {"s1", "s2"}
        assert {j.id for j in big_first.admitted} == {"big"}

    def test_unschedulable_jobs_rejected_outright(self):
        net = Network()
        net.add_link_pair(0, 1, 2)
        net.add_node(9)  # isolated
        jobs = JobSet(
            [
                Job(id="ok", source=0, dest=1, size=1.0, start=0.0, end=2.0),
                Job(id="nopath", source=0, dest=9, size=1.0, start=0.0, end=2.0),
                Job(id="noslice", source=0, dest=1, size=1.0, start=0.2, end=0.8),
            ]
        )
        d = admit_max_prefix(net, jobs, TimeGrid.uniform(2))
        assert {j.id for j in d.admitted} == {"ok"}
        assert {j.id for j in d.rejected} == {"nopath", "noslice"}

    def test_custom_threshold(self, net):
        """Lower thresholds admit more (partial service acceptable)."""
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=1, size=3.0, start=0.0, end=2.0, arrival=float(i) - 10.0)
                for i in range(3)
            ]
        )
        grid = TimeGrid.uniform(2)
        strict = admit_max_prefix(net, jobs, grid, threshold=1.0)
        loose = admit_max_prefix(net, jobs, grid, threshold=0.5)
        assert loose.num_admitted > strict.num_admitted

    def test_threshold_validation(self, net):
        jobs = JobSet([Job(id=0, source=0, dest=1, size=1.0, start=0.0, end=2.0)])
        with pytest.raises(ValidationError):
            admit_max_prefix(net, jobs, TimeGrid.uniform(2), threshold=0.0)

    def test_prefix_property(self, net):
        """Admitted set is always a prefix of the ordered sequence."""
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=1, size=2.0, start=0.0, end=2.0, arrival=float(i) - 10.0)
                for i in range(4)
            ]
        )
        d = admit_max_prefix(net, jobs, TimeGrid.uniform(2), key=by_arrival)
        admitted_ids = [j.id for j in d.admitted]
        assert admitted_ids == sorted(admitted_ids)
        assert admitted_ids == list(range(len(admitted_ids)))
