"""Unit tests for repro.network.graph."""

import numpy as np
import pytest

from repro import Edge, Network, ValidationError


class TestEdge:
    def test_valid_edge(self):
        e = Edge("a", "b", 3, weight=2.0)
        assert e.capacity == 3
        assert e.weight == 2.0

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            Edge("a", "a", 1)

    @pytest.mark.parametrize("capacity", [0, -1, 1.5])
    def test_bad_capacity_rejected(self, capacity):
        with pytest.raises(ValidationError):
            Edge("a", "b", capacity)

    def test_integer_valued_float_capacity_coerced(self):
        assert Edge("a", "b", 4.0).capacity == 4
        assert isinstance(Edge("a", "b", 4.0).capacity, int)

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("inf")])
    def test_bad_weight_rejected(self, weight):
        with pytest.raises(ValidationError):
            Edge("a", "b", 1, weight=weight)


class TestNetworkConstruction:
    def test_add_edge_registers_nodes(self):
        net = Network()
        idx = net.add_edge("x", "y", 2)
        assert idx == 0
        assert net.num_nodes == 2
        assert net.num_edges == 1
        assert "x" in net and "y" in net

    def test_add_node_idempotent(self):
        net = Network()
        net.add_node("a")
        net.add_node("a")
        assert net.num_nodes == 1

    def test_duplicate_edge_rejected(self):
        net = Network()
        net.add_edge("a", "b", 1)
        with pytest.raises(ValidationError):
            net.add_edge("a", "b", 5)

    def test_link_pair_adds_both_directions(self):
        net = Network()
        fwd, rev = net.add_link_pair("a", "b", 3)
        assert net.edge(fwd).source == "a"
        assert net.edge(rev).source == "b"
        assert net.num_link_pairs == 1

    def test_link_pair_count_ignores_one_way_edges(self):
        net = Network()
        net.add_link_pair(0, 1, 1)
        net.add_edge(1, 2, 1)  # one direction only
        assert net.num_link_pairs == 1

    def test_bad_wavelength_rate_rejected(self):
        with pytest.raises(ValidationError):
            Network(wavelength_rate=0.0)
        with pytest.raises(ValidationError):
            Network(wavelength_rate=-2.0)

    def test_from_link_pairs(self):
        net = Network.from_link_pairs([(0, 1), (1, 2)], capacity=2)
        assert net.num_edges == 4
        assert net.num_link_pairs == 2


class TestNetworkQueries:
    @pytest.fixture
    def net(self):
        net = Network(wavelength_rate=10.0)
        net.add_link_pair("a", "b", 2)
        net.add_link_pair("b", "c", 3)
        return net

    def test_edge_id_lookup(self, net):
        eid = net.edge_id("a", "b")
        assert net.edge(eid).target == "b"

    def test_unknown_edge_raises(self, net):
        with pytest.raises(ValidationError):
            net.edge_id("a", "c")

    def test_edge_index_out_of_range(self, net):
        with pytest.raises(ValidationError):
            net.edge(99)

    def test_node_index_dense(self, net):
        assert [net.node_index(n) for n in net.nodes] == [0, 1, 2]

    def test_unknown_node_raises(self, net):
        with pytest.raises(ValidationError):
            net.node_index("zzz")
        with pytest.raises(ValidationError):
            net.out_edges("zzz")

    def test_out_in_edges(self, net):
        out_b = {net.edge(e).target for e in net.out_edges("b")}
        in_b = {net.edge(e).source for e in net.in_edges("b")}
        assert out_b == {"a", "c"}
        assert in_b == {"a", "c"}

    def test_degree(self, net):
        assert net.degree("b") == 4
        assert net.degree("a") == 2

    def test_capacities_array(self, net):
        caps = net.capacities()
        assert caps.dtype == np.int64
        assert caps.tolist() == [2, 2, 3, 3]

    def test_link_rate(self, net):
        assert net.link_rate(net.edge_id("b", "c")) == 30.0

    def test_iteration(self, net):
        assert list(net) == ["a", "b", "c"]

    def test_repr(self, net):
        assert "nodes=3" in repr(net)


class TestDerivedNetworks:
    def test_with_capacity(self):
        net = Network.from_link_pairs([(0, 1)], capacity=2)
        net8 = net.with_capacity(8)
        assert net8.capacities().tolist() == [8, 8]
        assert net.capacities().tolist() == [2, 2]  # original untouched

    def test_with_wavelengths_preserves_total_rate(self):
        net = Network.from_link_pairs([(0, 1)], capacity=1, wavelength_rate=20.0)
        for w in (1, 2, 4, 8):
            split = net.with_wavelengths(w, total_link_rate=20.0)
            assert split.capacities().tolist() == [w, w]
            assert split.link_rate(0) == pytest.approx(20.0)

    def test_with_wavelengths_validation(self):
        net = Network.from_link_pairs([(0, 1)], capacity=1)
        with pytest.raises(ValidationError):
            net.with_wavelengths(0, 20.0)
        with pytest.raises(ValidationError):
            net.with_wavelengths(4, -1.0)

    def test_copy_is_independent(self):
        net = Network.from_link_pairs([(0, 1)], capacity=2)
        clone = net.copy()
        clone.add_link_pair(1, 2, 1)
        assert net.num_nodes == 2
        assert clone.num_nodes == 3


class TestConnectivity:
    def test_strongly_connected_pair_graph(self):
        net = Network.from_link_pairs([(0, 1), (1, 2)], capacity=1)
        assert net.is_strongly_connected()

    def test_one_way_chain_not_strongly_connected(self):
        net = Network()
        net.add_edge(0, 1, 1)
        net.add_edge(1, 2, 1)
        assert not net.is_strongly_connected()

    def test_disconnected_component(self):
        net = Network.from_link_pairs([(0, 1)], capacity=1)
        net.add_node(99)
        assert not net.is_strongly_connected()

    def test_trivial_graphs_connected(self):
        net = Network()
        assert net.is_strongly_connected()
        net.add_node(0)
        assert net.is_strongly_connected()
