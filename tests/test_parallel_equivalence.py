"""The shard-equivalence oracle and fleet determinism guarantees.

Satellite 3: a hypothesis property over :func:`make_scenario` (fault
timelines included, exercised through the simulator's ``planner``
switch) asserting the decomposed solve is grant-identical — or, for
multi-shard instances, objective-equal within the oracle's bounds — to
the monolithic solve, plus the explicit edge cases the issue names.
Faulted *trajectories* are compared at the invariant level only:
vertex selection decides link placement, and placement decides which
deliveries a mid-epoch fault voids (see the caveat in
:mod:`repro.parallel.sharded`).

Satellite 4: fleet fuzz runs with ``--jobs 1`` and ``--jobs 4`` must
produce byte-identical per-scenario reports.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Job, JobSet, Scheduler, Simulation, ValidationError
from repro.network import topologies
from repro.network.graph import Network
from repro.parallel import ShardedScheduler, partition_structure
from repro.timegrid import TimeGrid
from repro.verify import sharded_vs_monolithic
from repro.verify.fuzz import make_scenario, run_fuzz

SOLVER_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEquivalenceProperty:
    @SOLVER_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_sharded_matches_monolithic(self, seed):
        scenario = make_scenario(seed, allow_faults=False)
        equivalence = sharded_vs_monolithic(
            scenario.network, scenario.jobs, scenario.grid
        )
        assert equivalence.ok, "\n".join(equivalence.failures)
        if equivalence.num_shards == 1:
            assert equivalence.grant_identical

    @SOLVER_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_partition_covers_every_job_once(self, seed):
        scenario = make_scenario(seed, allow_faults=False)
        structure = Scheduler(scenario.network, k_paths=2).build_structure(
            scenario.jobs, scenario.grid
        )
        shards = partition_structure(structure)
        assert all(s.job_indices for s in shards), "empty shard emitted"
        covered = sorted(i for s in shards for i in s.job_indices)
        assert covered == list(range(len(structure.jobs)))

    @SOLVER_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_fault_timeline_sharded_planner_matches(self, seed):
        # Fault timelines reach the planner through the simulator.  The
        # sharding contract (repro.parallel.sharded) guarantees
        # objective-level equivalence per instance, not vertex identity:
        # a multi-shard stage-2 LP may place the same delivered volume
        # on different links, and under a fault timeline the placement
        # decides which deliveries a mid-epoch link loss voids — so
        # faulted trajectories can legitimately diverge once a loss
        # lands.  What must hold on every seed: both planners run the
        # timeline to completion with every epoch invariant report
        # clean, track the same job set to terminal states, and agree
        # exactly on the first scheduling pass (identical instance, and
        # stage 1 decomposes exactly).
        scenario = make_scenario(seed, allow_faults=True)
        if scenario.fault_schedule is None:
            return
        runs = {}
        for planner in ("monolithic", "sharded"):
            sim = Simulation(
                scenario.network,
                policy="reduce",
                fault_schedule=scenario.fault_schedule,
                verify_epochs=True,
                planner=planner,
            )
            runs[planner] = sim.run(scenario.jobs, horizon=scenario.grid.end * 3)
        terminal = {"completed", "expired", "rejected"}
        first_pass = {}
        for planner, result in runs.items():
            assert all(report.ok for report in result.verification), planner
            statuses = {str(r.job.id): r.status for r in result.records}
            assert set(statuses.values()) <= terminal, (planner, statuses)
            first_pass[planner] = next(
                (
                    (e.zstar, e.num_jobs)
                    for e in result.events
                    if type(e).__name__ == "SchedulingPass"
                ),
                None,
            )
        mono = {str(r.job.id): r.status for r in runs["monolithic"].records}
        shard = {str(r.job.id): r.status for r in runs["sharded"].records}
        assert sorted(mono) == sorted(shard)
        za, zb = first_pass["monolithic"], first_pass["sharded"]
        if za is not None and zb is not None:
            assert za[1] == zb[1]
            assert za[0] == pytest.approx(zb[0], abs=1e-6)


class TestEquivalenceEdgeCases:
    def test_single_component_graph(self):
        # Every job shares the line's middle edge in one overlapping
        # window: one shard, bit-identical grants.
        network = topologies.line(4, capacity=2)
        jobs = JobSet(
            [
                Job(id=i, source=0, dest=3, size=2.0, start=0.0, end=4.0)
                for i in range(3)
            ]
        )
        equivalence = sharded_vs_monolithic(network, jobs)
        assert equivalence.ok, "\n".join(equivalence.failures)
        assert equivalence.num_shards == 1
        assert equivalence.grant_identical

    def test_one_time_block(self):
        # A single slice: all windows trivially overlap, so the only
        # possible split is by network component — here, none.
        network = topologies.ring(5, capacity=2)
        jobs = JobSet(
            [
                Job(id=i, source=i, dest=(i + 2) % 5, size=0.5, start=0.0, end=1.0)
                for i in range(3)
            ]
        )
        equivalence = sharded_vs_monolithic(network, jobs, grid=TimeGrid.uniform(1))
        assert equivalence.ok, "\n".join(equivalence.failures)
        assert equivalence.num_shards == 1

    def test_disjoint_time_blocks_stay_equivalent(self):
        network = topologies.line(3, capacity=1)
        jobs = JobSet(
            [
                Job(id="early", source=0, dest=2, size=1.5, start=0.0, end=2.0),
                Job(id="late", source=0, dest=2, size=1.5, start=2.0, end=4.0),
            ]
        )
        equivalence = sharded_vs_monolithic(
            network, jobs, grid=TimeGrid.uniform(4)
        )
        assert equivalence.ok, "\n".join(equivalence.failures)
        assert equivalence.num_shards == 2

    def test_all_edges_banned_component_raises_like_monolithic(self):
        # A capacity profile that zeroes out every wavelength of one
        # component's edges: the monolithic and sharded schedulers must
        # fail identically (no silent drop of the starved component).
        net = Network(wavelength_rate=1.0)
        net.add_link_pair("a0", "a1", capacity=2)
        net.add_link_pair("b0", "b1", capacity=2)
        jobs = JobSet(
            [
                Job(id="a", source="a0", dest="a1", size=1.0, start=0.0, end=3.0),
                Job(id="b", source="b0", dest="b1", size=1.0, start=0.0, end=3.0),
            ]
        )
        grid = TimeGrid.uniform(3)
        from repro import CapacityProfile

        matrix = np.tile(
            net.capacities()[:, None], (1, grid.num_slices)
        ).astype(float)
        for edge in net.edges:
            if edge.source.startswith("b"):
                matrix[net.edge_id(edge.source, edge.target), :] = 0.0
        profile = CapacityProfile(net, grid, matrix)
        mono_exc = sharded_exc = None
        try:
            Scheduler(net, k_paths=2).schedule(
                jobs, grid, capacity_profile=profile
            )
        except Exception as exc:  # noqa: BLE001 - comparing behaviours
            mono_exc = exc
        try:
            ShardedScheduler(net, k_paths=2).schedule(
                jobs, grid, capacity_profile=profile
            )
        except Exception as exc:  # noqa: BLE001
            sharded_exc = exc
        assert type(sharded_exc) is type(mono_exc)
        if mono_exc is None:
            # Both schedulable (zero capacity expressed as zero rate):
            # then the full equivalence contract must hold instead.
            equivalence = sharded_vs_monolithic(
                net, jobs, grid, capacity_profile=profile
            )
            assert equivalence.ok, "\n".join(equivalence.failures)


class TestFleetDeterminism:
    def test_jobs_1_and_jobs_4_reports_identical(self):
        # Satellite 4: worker count must not leak into the report.
        serial = run_fuzz(8, seed=5, jobs=1)
        fleet = run_fuzz(8, seed=5, jobs=4)
        assert serial.render() == fleet.render()
        assert serial.ok == fleet.ok
        for a, b in zip(serial.outcomes, fleet.outcomes):
            assert a.scenario.description == b.scenario.description
            assert a.failures == b.failures
            assert a.gap == b.gap
            assert a.backend_agree == b.backend_agree

    def test_repeated_fleet_runs_identical(self):
        first = run_fuzz(6, seed=9, jobs=2)
        second = run_fuzz(6, seed=9, jobs=2)
        assert first.render() == second.render()
