"""Unit tests for schedule statistics."""

import numpy as np
import pytest

from repro import Job, JobSet, ProblemStructure, Scheduler, TimeGrid
from repro.analysis import schedule_statistics
from repro.network import topologies


@pytest.fixture
def two_path(diamond):
    jobs = JobSet([Job(id=0, source=0, dest=3, size=6.0, start=0.0, end=4.0)])
    return ProblemStructure(diamond, jobs, TimeGrid.uniform(4), k_paths=2)


class TestScheduleStatistics:
    def test_empty_assignment(self, two_path):
        stats = schedule_statistics(two_path, np.zeros(two_path.num_cols))
        assert stats.num_jobs_served == 0
        assert np.isnan(stats.mean_paths_used)
        assert stats.max_paths_used == 0

    def test_single_path_constant_rate(self, two_path):
        s = two_path
        x = np.zeros(s.num_cols)
        for j in range(4):
            x[s.column(0, 0, j)] = 1.0
        stats = schedule_statistics(s, x)
        assert stats.num_jobs_served == 1
        assert stats.mean_paths_used == 1.0
        assert stats.multipath_job_fraction == 0.0
        assert stats.mean_rate_changes == 0.0
        assert stats.time_varying_job_fraction == 0.0
        assert stats.active_slice_fraction == 1.0

    def test_concurrent_multipath_detected(self, two_path):
        s = two_path
        x = np.zeros(s.num_cols)
        x[s.column(0, 0, 0)] = 1.0
        x[s.column(0, 1, 0)] = 1.0
        stats = schedule_statistics(s, x)
        assert stats.mean_paths_used == 2.0
        assert stats.multipath_job_fraction == 1.0

    def test_sequential_paths_not_concurrent(self, two_path):
        """Different paths on different slices: 2 paths used, 0 concurrent."""
        s = two_path
        x = np.zeros(s.num_cols)
        x[s.column(0, 0, 0)] = 1.0
        x[s.column(0, 1, 1)] = 1.0
        stats = schedule_statistics(s, x)
        assert stats.mean_paths_used == 2.0
        assert stats.multipath_job_fraction == 0.0

    def test_rate_changes_counted(self, two_path):
        s = two_path
        x = np.zeros(s.num_cols)
        # Rates over slices: 1, 2, 0, 0 -> changes at 3 boundaries.
        x[s.column(0, 0, 0)] = 1.0
        x[s.column(0, 0, 1)] = 2.0
        stats = schedule_statistics(s, x)
        assert stats.mean_rate_changes == 2.0
        assert stats.time_varying_job_fraction == 1.0
        assert stats.active_slice_fraction == 0.5

    def test_framework_schedule_is_multipath_and_time_varying(self):
        """On a contended instance the LP framework actually uses both
        freedoms the paper claims matter."""
        net = topologies.abilene().with_wavelengths(2, 20.0)
        from repro import WorkloadGenerator
        from repro.workload import WorkloadConfig

        gen = WorkloadGenerator(
            net,
            WorkloadConfig(window_slices_low=2, window_slices_high=4),
            seed=13,
        )
        jobs = gen.jobs(30).scaled(4.0)
        result = Scheduler(net).schedule(jobs)
        stats = schedule_statistics(result.structure, result.x)
        assert stats.num_jobs_served > 0
        assert stats.mean_paths_used > 1.0
        assert stats.time_varying_job_fraction > 0.3


class TestDescribeSchedule:
    @pytest.fixture
    def result(self, line3, grid4):
        from repro import Scheduler

        jobs = JobSet(
            [
                Job(id="a", source=0, dest=2, size=6.0, start=0.0, end=4.0),
                Job(id="b", source=0, dest=2, size=4.0, start=0.0, end=4.0),
            ]
        )
        return Scheduler(line3).schedule(jobs, grid4)

    def test_report_contains_sections(self, result):
        from repro.analysis import describe_schedule

        out = describe_schedule(result)
        assert "scheduling pass" in out
        assert "schedule shape" in out
        assert "Z* (stage 1)" in out
        assert "per-job wavelengths" in out

    def test_gantt_optional(self, result):
        from repro.analysis import describe_schedule

        out = describe_schedule(result, gantt=False)
        assert "per-job wavelengths" not in out

    def test_bottlenecks_optional(self, result):
        from repro.analysis import describe_schedule

        out = describe_schedule(result, bottlenecks=0)
        assert "congestion" not in out

    def test_congested_instance_lists_hot_links(self, result):
        from repro.analysis import describe_schedule

        out = describe_schedule(result, gantt=False, bottlenecks=3)
        # The contended 0->1 link must surface with a positive price.
        assert "hot spots" in out or "prices zero" in out
