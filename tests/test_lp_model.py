"""Unit tests for the ProblemStructure (variable space + constraint blocks)."""

import numpy as np
import pytest

from repro import Job, JobSet, Network, ProblemStructure, TimeGrid, ValidationError
from repro.network import topologies


class TestConstructionValidation:
    def test_empty_jobs_rejected(self, line3, grid4):
        with pytest.raises(ValidationError):
            ProblemStructure(line3, JobSet(), grid4)

    def test_grid_must_cover_jobs(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=9.0)])
        with pytest.raises(ValidationError, match="extend the grid"):
            ProblemStructure(line3, jobs, TimeGrid.uniform(4))

    def test_job_without_path_rejected(self, grid4):
        net = Network()
        net.add_edge(0, 1, 1)
        net.add_node(2)
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=2.0)])
        with pytest.raises(ValidationError, match="no path"):
            ProblemStructure(net, jobs, grid4)

    def test_job_without_whole_slice_rejected(self, line3):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.3, end=0.9)])
        with pytest.raises(ValidationError, match="no whole time slice"):
            ProblemStructure(line3, jobs, TimeGrid.uniform(4))

    def test_k_paths_validation(self, line3, line3_jobs, grid4):
        with pytest.raises(ValidationError):
            ProblemStructure(line3, line3_jobs, grid4, k_paths=0)


class TestColumnLayout:
    def test_column_counts(self, line3_structure):
        s = line3_structure
        # Line has a single path per OD pair; job0 spans 4 slices, job1 spans 3.
        assert s.num_paths.tolist() == [1, 1]
        assert s.span.tolist() == [4, 3]
        assert s.num_cols == 7
        assert s.job_offset.tolist() == [0, 4, 7]

    def test_col_arrays_consistent(self, line3_structure):
        s = line3_structure
        assert s.col_job.tolist() == [0, 0, 0, 0, 1, 1, 1]
        assert s.col_slice.tolist() == [0, 1, 2, 3, 0, 1, 2]
        assert np.allclose(s.col_len, 1.0)

    def test_column_lookup_roundtrip(self, diamond, grid4):
        jobs = JobSet([Job(id=0, source=0, dest=3, size=2.0, start=1.0, end=4.0)])
        s = ProblemStructure(diamond, jobs, grid4, k_paths=2)
        assert s.num_paths[0] == 2
        for p in range(2):
            for j in range(1, 4):
                c = s.column(0, p, j)
                assert s.col_job[c] == 0
                assert s.col_path[c] == p
                assert s.col_slice[c] == j

    def test_column_out_of_window_rejected(self, line3_structure):
        with pytest.raises(ValidationError):
            line3_structure.column(1, 0, 3)  # job 1 ends at slice 2
        with pytest.raises(ValidationError):
            line3_structure.column(0, 1, 0)  # only one path
        with pytest.raises(ValidationError):
            line3_structure.column(5, 0, 0)

    def test_job_columns_slices(self, line3_structure):
        assert line3_structure.job_columns(0) == slice(0, 4)
        assert line3_structure.job_columns(1) == slice(4, 7)
        with pytest.raises(ValidationError):
            line3_structure.job_columns(2)

    def test_allowed_slices(self, line3_structure):
        assert line3_structure.allowed_slices(0) == range(0, 4)
        assert line3_structure.allowed_slices(1) == range(0, 3)

    def test_window_not_starting_at_zero(self, line3, grid4):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=2.0, end=4.0)])
        s = ProblemStructure(line3, jobs, grid4)
        assert s.allowed_slices(0) == range(2, 4)
        assert s.col_slice.tolist() == [2, 3]


class TestCapacityBlock:
    def test_rows_cover_used_edge_slices_only(self, line3, grid4):
        jobs = JobSet([Job(id=0, source=0, dest=1, size=1.0, start=0.0, end=2.0)])
        s = ProblemStructure(line3, jobs, grid4)
        # Single 1-hop path over slices {0, 1}: exactly 2 capacity rows.
        assert s.capacity_matrix.shape == (2, 2)
        assert set(s.cap_row_slice.tolist()) == {0, 1}
        assert set(s.cap_row_edge.tolist()) == {line3.edge_id(0, 1)}

    def test_rhs_is_edge_capacity(self, line3_structure):
        caps = line3_structure.network.capacities()
        assert np.array_equal(
            line3_structure.cap_rhs, caps[line3_structure.cap_row_edge]
        )

    def test_multi_hop_path_loads_every_edge(self, line3, grid4):
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=1.0)])
        s = ProblemStructure(line3, jobs, grid4)
        x = np.array([1.0])
        loads = s.link_loads(x)
        assert loads[line3.edge_id(0, 1), 0] == 1.0
        assert loads[line3.edge_id(1, 2), 0] == 1.0
        assert loads.sum() == 2.0

    def test_shared_edge_sums_jobs(self, line3, grid4):
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=1.0),
                Job(id=1, source=0, dest=1, size=1.0, start=0.0, end=1.0),
            ]
        )
        s = ProblemStructure(line3, jobs, grid4)
        x = np.ones(s.num_cols)
        loads = s.link_loads(x)
        assert loads[line3.edge_id(0, 1), 0] == 2.0
        assert loads[line3.edge_id(1, 2), 0] == 1.0


class TestDemandBlock:
    def test_delivered(self, line3_structure):
        x = np.zeros(line3_structure.num_cols)
        x[0] = 2.0  # job 0, slice 0
        x[4] = 1.0  # job 1, slice 0
        assert line3_structure.delivered(x).tolist() == [2.0, 1.0]

    def test_delivered_respects_slice_length(self, line3, line3_jobs):
        grid = TimeGrid.uniform(2, slice_length=2.0)
        s = ProblemStructure(line3, line3_jobs, grid)
        x = np.zeros(s.num_cols)
        x[0] = 1.0
        assert s.delivered(x)[0] == 2.0  # one wavelength for a 2-long slice

    def test_throughputs_and_weighted(self, line3_structure):
        s = line3_structure
        x = np.zeros(s.num_cols)
        x[:4] = 1.0  # job 0 gets 4 volume over its 4 slices => Z_0 = 1
        z = s.throughputs(x)
        assert z[0] == pytest.approx(1.0)
        assert z[1] == 0.0
        # objective (7): sum Z_i D_i / sum D_i = 4 / 7.
        assert s.weighted_throughput(x) == pytest.approx(4.0 / 7.0)

    def test_demand_normalization_by_rate(self, line3_jobs, grid4):
        net = topologies.line(3, capacity=2, wavelength_rate=4.0)
        s = ProblemStructure(net, line3_jobs, grid4)
        assert s.demands.tolist() == [1.0, 0.75]


class TestDerivedQuantities:
    def test_residual_capacity(self, line3_structure):
        s = line3_structure
        x = np.zeros(s.num_cols)
        x[0] = 1.0
        res = s.residual_capacity(x)
        assert res[s.network.edge_id(0, 1), 0] == 1.0
        assert res[s.network.edge_id(0, 1), 1] == 2.0

    def test_capacity_violation(self, line3_structure):
        s = line3_structure
        x = np.zeros(s.num_cols)
        assert s.capacity_violation(x) == 0.0
        x[0] = 5.0  # capacity is 2
        assert s.capacity_violation(x) == pytest.approx(3.0)

    def test_bad_x_shape_rejected(self, line3_structure):
        with pytest.raises(ValidationError):
            line3_structure.delivered(np.zeros(3))

    def test_repr(self, line3_structure):
        assert "cols=7" in repr(line3_structure)

    def test_path_sets_reuse(self, line3, line3_jobs, grid4):
        from repro.network.paths import build_path_sets

        sets = build_path_sets(line3, line3_jobs.od_pairs(), 2)
        s = ProblemStructure(line3, line3_jobs, grid4, path_sets=sets)
        assert s.paths[0][0].nodes == (0, 1, 2)

    def test_k_paths_truncates_supplied_sets(self, diamond, grid4):
        from repro.network.paths import build_path_sets

        jobs = JobSet([Job(id=0, source=0, dest=3, size=1.0, start=0.0, end=2.0)])
        sets = build_path_sets(diamond, jobs.od_pairs(), 2)
        s = ProblemStructure(diamond, jobs, grid4, k_paths=1, path_sets=sets)
        assert s.num_paths[0] == 1
