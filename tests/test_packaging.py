"""Packaging-level checks: module execution, version, metadata coherence."""

import re
import subprocess
import sys
from pathlib import Path

import pytest

import repro

ROOT = Path(repro.__file__).resolve().parent.parent.parent


class TestModuleExecution:
    def test_python_dash_m_version(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert repro.__version__ in result.stdout

    def test_python_dash_m_help_lists_commands(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        for command in ("topology", "workload", "schedule", "ret",
                        "simulate", "experiment"):
            assert command in result.stdout


class TestMetadataCoherence:
    def test_version_matches_pyproject(self):
        pyproject = (ROOT / "pyproject.toml").read_text()
        match = re.search(r'^version = "(.+)"$', pyproject, re.MULTILINE)
        assert match, "pyproject.toml has no version"
        assert match.group(1) == repro.__version__

    def test_readme_mentions_every_example(self):
        readme = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, f"README missing {script.name}"

    def test_design_maps_every_bench(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in design, f"DESIGN.md missing {bench.name}"

    def test_every_source_module_has_docstring(self):
        import ast

        for path in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"
