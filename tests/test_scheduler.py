"""Unit tests for the end-to-end Scheduler facade."""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    Scheduler,
    TimeGrid,
    ValidationError,
)
from repro.network import topologies


class TestSchedulerBasics:
    def test_line_end_to_end(self, line3, line3_jobs):
        result = Scheduler(line3).schedule(line3_jobs)
        assert result.zstar == pytest.approx(2.0)
        assert not result.overloaded
        assert result.normalized_throughput("lpdar") == pytest.approx(1.0)
        assert result.meets_fairness("lpdar")
        assert result.alpha_escalations == 0

    def test_x_is_lpdar(self, line3, line3_jobs):
        result = Scheduler(line3).schedule(line3_jobs)
        assert np.array_equal(result.x, result.assignments.x_lpdar)

    def test_assignment_selector(self, line3, line3_jobs):
        result = Scheduler(line3).schedule(line3_jobs)
        for name in ("lp", "lpd", "lpdar"):
            assert result.assignment(name).shape == (result.structure.num_cols,)
        with pytest.raises(ValidationError):
            result.assignment("bogus")

    def test_explicit_grid_used(self, line3, line3_jobs):
        grid = TimeGrid.uniform(8, slice_length=0.5)
        result = Scheduler(line3, slice_length=99.0).schedule(line3_jobs, grid)
        assert result.structure.grid is grid

    def test_default_grid_covers_jobs(self, line3, line3_jobs):
        result = Scheduler(line3, slice_length=1.0).schedule(line3_jobs)
        assert result.structure.grid.end >= line3_jobs.max_end()

    def test_parameter_validation(self, line3):
        with pytest.raises(ValidationError):
            Scheduler(line3, alpha=-0.1)
        with pytest.raises(ValidationError):
            Scheduler(line3, alpha=0.5, alpha_max=0.3)
        with pytest.raises(ValidationError):
            Scheduler(line3, slice_length=0.0)


class TestDeadEdgeRouting:
    """Edges a capacity profile zeroes for the whole horizon must never
    appear in any computed path — a job routes around the outage or is
    modelled as pathless, but never holds grants on a dead link."""

    def test_paths_skip_whole_horizon_outage(self, diamond):
        from repro import CapacityProfile

        grid = TimeGrid.uniform(4)
        profile = CapacityProfile.with_maintenance(
            diamond, grid, [(1, 3, 0.0, 4.0, 0)]
        )
        jobs = JobSet([Job(id=0, source=0, dest=3, size=2.0, start=0.0, end=4.0)])
        structure = Scheduler(diamond, k_paths=4).build_structure(
            jobs, grid, capacity_profile=profile
        )
        dead = {diamond.edge_id(1, 3), diamond.edge_id(3, 1)}
        for paths in structure.paths:
            for path in paths:
                assert not dead & set(path.edge_ids)
        # The surviving 0-2-3 path still carries the whole job.
        result = Scheduler(diamond, k_paths=4).schedule(
            jobs, grid, capacity_profile=profile
        )
        assert result.fraction_finished() == 1.0

    def test_partial_outage_keeps_edge_routable(self, diamond):
        from repro import CapacityProfile

        grid = TimeGrid.uniform(4)
        # Dead for 3 of 4 slices: not a whole-horizon outage, so the
        # edge stays in the path set and the LP handles the zeros.
        profile = CapacityProfile.with_maintenance(
            diamond, grid, [(1, 3, 0.0, 3.0, 0)]
        )
        jobs = JobSet([Job(id=0, source=0, dest=3, size=2.0, start=0.0, end=4.0)])
        structure = Scheduler(diamond, k_paths=4).build_structure(
            jobs, grid, capacity_profile=profile
        )
        used = {e for paths in structure.paths for p in paths for e in p.edge_ids}
        assert diamond.edge_id(1, 3) in used


class TestOverloadBehaviour:
    @pytest.fixture
    def overloaded(self, line3):
        return JobSet(
            [
                Job(id="a", source=0, dest=2, size=10.0, start=0.0, end=4.0),
                Job(id="b", source=0, dest=2, size=6.0, start=0.0, end=4.0),
            ]
        )

    def test_overload_detected(self, line3, overloaded):
        result = Scheduler(line3).schedule(overloaded)
        assert result.overloaded
        assert result.zstar == pytest.approx(0.5)

    def test_guaranteed_sizes_follow_remark2(self, line3, overloaded):
        result = Scheduler(line3).schedule(overloaded)
        z = result.job_throughputs("lpdar")
        expected = np.minimum(z, 1.0) * overloaded.sizes()
        assert np.allclose(result.guaranteed_sizes("lpdar"), expected)
        assert np.all(result.guaranteed_sizes("lpdar") <= overloaded.sizes() + 1e-9)

    def test_fraction_finished_under_overload(self, line3, overloaded):
        result = Scheduler(line3).schedule(overloaded)
        assert result.fraction_finished("lp") < 1.0

    def test_alpha_escalation_on_integer_fairness_violation(self):
        """One wavelength, two 1-slice jobs: only one can be served.

        The LPDAR solution inevitably gives one job Z_i = 0, violating any
        positive floor, so Remark-1 escalation runs up to alpha_max.
        """
        net = topologies.line(2, capacity=1)
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=1, size=1.0, start=0.0, end=1.0),
                Job(id=1, source=0, dest=1, size=1.0, start=0.0, end=1.0),
            ]
        )
        sched = Scheduler(net, alpha=0.1, alpha_step=0.2, alpha_max=0.9)
        result = sched.schedule(jobs)
        assert result.alpha_escalations > 0
        assert result.alpha == pytest.approx(0.9)
        assert not result.meets_fairness("lpdar")

    def test_escalation_disabled(self):
        net = topologies.line(2, capacity=1)
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=1, size=1.0, start=0.0, end=1.0),
                Job(id=1, source=0, dest=1, size=1.0, start=0.0, end=1.0),
            ]
        )
        result = Scheduler(net, alpha=0.1, alpha_step=0.0).schedule(jobs)
        assert result.alpha == 0.1
        assert result.alpha_escalations == 0


class TestGrants:
    def test_grants_match_assignment(self, line3, line3_jobs):
        result = Scheduler(line3).schedule(line3_jobs)
        grants = list(result.grants())
        total = sum(g.wavelengths for g in grants)
        assert total == pytest.approx(result.x.sum())
        for g in grants:
            assert g.wavelengths >= 1
            assert g.interval[0] < g.interval[1]

    def test_grants_slice_major_order(self, line3, line3_jobs):
        result = Scheduler(line3).schedule(line3_jobs)
        slices = [g.slice_index for g in result.grants()]
        assert slices == sorted(slices)

    def test_grants_paths_belong_to_job(self, diamond):
        jobs = JobSet([Job(id="j", source=0, dest=3, size=8.0, start=0.0, end=4.0)])
        result = Scheduler(diamond, k_paths=2).schedule(jobs)
        for g in result.grants():
            assert g.job_id == "j"
            assert g.path[0] == 0 and g.path[-1] == 3

    def test_lp_grants_rounded_display(self, line3, line3_jobs):
        result = Scheduler(line3).schedule(line3_jobs)
        # Grants of the fractional LP exist too (diagnostics).
        assert list(result.grants("lp"))


class TestWeightsAndOrders:
    def test_custom_weights_forwarded(self, line3):
        jobs = JobSet(
            [
                Job(id="big", source=0, dest=2, size=8.0, start=0.0, end=4.0),
                Job(id="small", source=0, dest=2, size=2.0, start=0.0, end=4.0),
            ]
        )
        sched = Scheduler(line3, alpha=0.5, alpha_step=0.0)
        favored = sched.schedule(jobs, weights=np.array([0.01, 10.0]))
        z = favored.job_throughputs("lp")
        assert z[1] > z[0]

    def test_greedy_order_variants_all_feasible(self, line3, line3_jobs, rng):
        for order in ("paper", "deficit_first"):
            result = Scheduler(line3, greedy_order=order).schedule(line3_jobs)
            assert result.structure.capacity_violation(result.x) == 0.0
        result = Scheduler(line3, greedy_order="random", rng=rng).schedule(line3_jobs)
        assert result.structure.capacity_violation(result.x) == 0.0


class TestJobWeightPassthrough:
    def test_explicit_job_weights_drive_stage2(self, line3):
        """A tiny job with a huge weight outranks the big default job."""
        jobs = JobSet(
            [
                Job(id="big", source=0, dest=2, size=8.0, start=0.0, end=4.0),
                Job(id="vip", source=0, dest=2, size=2.0, start=0.0, end=4.0,
                    weight=1000.0),
            ]
        )
        result = Scheduler(line3, alpha=0.5, alpha_step=0.0).schedule(jobs)
        z = result.job_throughputs("lp")
        assert z[1] > z[0]

    def test_no_weights_means_size_weighting(self, line3, line3_jobs):
        """Without explicit weights behaviour is unchanged (size weights)."""
        result = Scheduler(line3).schedule(line3_jobs)
        assert result.normalized_throughput("lpdar") == pytest.approx(1.0)
