"""Additional ProblemStructure coverage: multi-path layouts, big grids,
profile interplay, and vectorized assembly consistency."""

import numpy as np
import pytest

from repro import (
    Job,
    JobSet,
    Network,
    ProblemStructure,
    TimeGrid,
    ValidationError,
)
from repro.network import topologies, waxman_network
from repro.workload import WorkloadGenerator


class TestMultiPathLayout:
    @pytest.fixture
    def structure(self):
        net = topologies.ring(6, capacity=2)
        jobs = JobSet(
            [
                Job(id=0, source=0, dest=3, size=4.0, start=0.0, end=3.0),
                Job(id=1, source=1, dest=4, size=2.0, start=1.0, end=4.0),
            ]
        )
        return ProblemStructure(net, jobs, TimeGrid.uniform(4), k_paths=2)

    def test_column_blocks_contiguous_per_path(self, structure):
        # Job 0: 2 paths x 3 slices; job 1: 2 paths x 3 slices.
        assert structure.num_cols == 12
        assert structure.job_offset.tolist() == [0, 6, 12]
        # Within a job, each path's slices are contiguous and ascending.
        for i in range(2):
            for p in range(2):
                cols = [
                    structure.column(i, p, j)
                    for j in structure.allowed_slices(i)
                ]
                assert cols == list(range(cols[0], cols[0] + len(cols)))

    def test_col_path_layout(self, structure):
        assert structure.col_path.tolist() == [0, 0, 0, 1, 1, 1] * 2

    def test_capacity_rows_unique(self, structure):
        keys = list(
            zip(structure.cap_row_edge.tolist(), structure.cap_row_slice.tolist())
        )
        assert len(keys) == len(set(keys))

    def test_capacity_matrix_column_sums(self, structure):
        """Each column's entries equal its path's hop count."""
        col_sums = np.asarray(
            structure.capacity_matrix.sum(axis=0)
        ).ravel()
        for c in range(structure.num_cols):
            i = int(structure.col_job[c])
            p = int(structure.col_path[c])
            assert col_sums[c] == structure.paths[i][p].num_hops

    def test_demand_matrix_row_sums(self, structure):
        row_sums = np.asarray(structure.demand_matrix.sum(axis=1)).ravel()
        for i in range(2):
            expected = structure.num_paths[i] * structure.span[i] * 1.0
            assert row_sums[i] == pytest.approx(expected)


class TestLargerAssembly:
    def test_random_instance_dimensions(self):
        net = waxman_network(40, seed=5).with_wavelengths(4, 20.0)
        jobs = WorkloadGenerator(net, seed=6).jobs(25)
        grid = TimeGrid.covering(jobs.max_end())
        s = ProblemStructure(net, jobs, grid, k_paths=4)
        # num_cols == sum over jobs of paths * span.
        expected = int(np.sum(s.num_paths * s.span))
        assert s.num_cols == expected
        # Every capacity row references a real edge and slice.
        assert s.cap_row_edge.max() < net.num_edges
        assert s.cap_row_slice.max() < grid.num_slices
        # Loads from the all-ones vector are consistent with row sums.
        x = np.ones(s.num_cols)
        loads = s.link_loads(x)
        assert loads.sum() == pytest.approx(s.capacity_matrix.sum())

    def test_throughputs_shape_and_positivity(self):
        net = waxman_network(20, seed=7).with_wavelengths(2, 20.0)
        jobs = WorkloadGenerator(net, seed=8).jobs(10)
        grid = TimeGrid.covering(jobs.max_end())
        s = ProblemStructure(net, jobs, grid)
        z = s.throughputs(np.ones(s.num_cols))
        assert z.shape == (10,)
        assert np.all(z > 0)


class TestImmutability:
    def test_layout_arrays_frozen(self, line3_structure):
        for arr in (
            line3_structure.col_job,
            line3_structure.col_slice,
            line3_structure.col_len,
            line3_structure.demands,
            line3_structure.cap_rhs,
        ):
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_network_mutation_after_build_is_callers_problem(self, line3):
        """Documented behaviour: the structure snapshots capacities at
        build time (cap_rhs), so later network edits do not leak in."""
        jobs = JobSet([Job(id=0, source=0, dest=2, size=1.0, start=0.0, end=2.0)])
        s = ProblemStructure(line3, jobs, TimeGrid.uniform(2))
        before = s.cap_rhs.copy()
        line3.add_link_pair(0, 2, 9)  # new shortcut, added too late
        assert np.array_equal(s.cap_rhs, before)
