"""Unit tests for repro.workload.jobs."""

import numpy as np
import pytest

from repro import Job, JobSet, ValidationError


class TestJobValidation:
    def test_minimal_job(self):
        j = Job(id=1, source="a", dest="b", size=5.0, start=0.0, end=2.0)
        assert j.arrival == 0.0  # defaults to start
        assert j.window == (0.0, 2.0)
        assert j.duration == 2.0
        assert j.min_rate == 2.5

    def test_explicit_arrival(self):
        j = Job(id=1, source="a", dest="b", size=5.0, start=3.0, end=5.0, arrival=1.0)
        assert j.arrival == 1.0

    def test_arrival_after_start_rejected(self):
        with pytest.raises(ValidationError):
            Job(id=1, source="a", dest="b", size=5.0, start=1.0, end=2.0, arrival=1.5)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            Job(id=1, source="a", dest="a", size=5.0, start=0.0, end=1.0)

    @pytest.mark.parametrize("size", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_size_rejected(self, size):
        with pytest.raises(ValidationError):
            Job(id=1, source="a", dest="b", size=size, start=0.0, end=1.0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValidationError):
            Job(id=1, source="a", dest="b", size=1.0, start=2.0, end=2.0)
        with pytest.raises(ValidationError):
            Job(id=1, source="a", dest="b", size=1.0, start=2.0, end=1.0)

    @pytest.mark.parametrize("weight", [0.0, -2.0])
    def test_bad_weight_rejected(self, weight):
        with pytest.raises(ValidationError):
            Job(id=1, source="a", dest="b", size=1.0, start=0.0, end=1.0, weight=weight)

    def test_frozen(self):
        j = Job(id=1, source="a", dest="b", size=1.0, start=0.0, end=1.0)
        with pytest.raises(AttributeError):
            j.size = 2.0


class TestJobDerivations:
    @pytest.fixture
    def job(self):
        return Job(id="x", source=0, dest=1, size=10.0, start=1.0, end=3.0)

    def test_scaled(self, job):
        assert job.scaled(0.5).size == 5.0
        assert job.size == 10.0

    def test_scaled_invalid(self, job):
        with pytest.raises(ValidationError):
            job.scaled(0.0)

    def test_with_extended_end(self, job):
        j2 = job.with_extended_end(0.5)
        assert j2.end == 4.5
        assert j2.start == job.start

    def test_with_extended_end_zero_is_identity_window(self, job):
        assert job.with_extended_end(0.0).end == job.end

    def test_negative_extension_rejected(self, job):
        with pytest.raises(ValidationError):
            job.with_extended_end(-0.1)

    def test_extension_must_clear_start(self):
        # end is negative-side impossible here; craft start > (1+b)end case
        j = Job(id=1, source=0, dest=1, size=1.0, start=2.0, end=2.5)
        with pytest.raises(ValidationError):
            j.with_extended_end(-0.3)  # negative b rejected first

    def test_with_remaining(self, job):
        assert job.with_remaining(3.0).size == 3.0
        with pytest.raises(ValidationError):
            job.with_remaining(0.0)


class TestJobSet:
    @pytest.fixture
    def jobs(self):
        return JobSet(
            [
                Job(id="a", source=0, dest=1, size=4.0, start=0.0, end=2.0),
                Job(id="b", source=1, dest=0, size=6.0, start=1.0, end=5.0),
            ]
        )

    def test_len_iter_getitem(self, jobs):
        assert len(jobs) == 2
        assert [j.id for j in jobs] == ["a", "b"]
        assert jobs[1].id == "b"

    def test_slicing_returns_jobset(self, jobs):
        sub = jobs[:1]
        assert isinstance(sub, JobSet)
        assert len(sub) == 1

    def test_duplicate_id_rejected(self, jobs):
        with pytest.raises(ValidationError):
            jobs.add(Job(id="a", source=0, dest=1, size=1.0, start=0.0, end=1.0))

    def test_non_job_rejected(self, jobs):
        with pytest.raises(ValidationError):
            jobs.add("not a job")

    def test_membership(self, jobs):
        assert "a" in jobs
        assert jobs[0] in jobs
        assert "zzz" not in jobs

    def test_by_id_and_index_of(self, jobs):
        assert jobs.by_id("b").size == 6.0
        assert jobs.index_of("b") == 1
        with pytest.raises(ValidationError):
            jobs.by_id("zzz")
        with pytest.raises(ValidationError):
            jobs.index_of("zzz")

    def test_sizes_and_total(self, jobs):
        assert jobs.sizes().tolist() == [4.0, 6.0]
        assert jobs.total_size() == 10.0
        assert JobSet().total_size() == 0.0

    def test_od_pairs(self, jobs):
        assert jobs.od_pairs() == [(0, 1), (1, 0)]

    def test_max_end(self, jobs):
        assert jobs.max_end() == 5.0
        with pytest.raises(ValidationError):
            JobSet().max_end()

    def test_scaled(self, jobs):
        scaled = jobs.scaled(0.5)
        assert scaled.sizes().tolist() == [2.0, 3.0]
        assert jobs.sizes().tolist() == [4.0, 6.0]

    def test_with_extended_ends(self, jobs):
        ext = jobs.with_extended_ends(1.0)
        assert [j.end for j in ext] == [4.0, 10.0]

    def test_sorted_by(self, jobs):
        by_size = jobs.sorted_by(lambda j: -j.size)
        assert [j.id for j in by_size] == ["b", "a"]
        assert [j.id for j in jobs] == ["a", "b"]  # original untouched

    def test_repr(self, jobs):
        assert "num_jobs=2" in repr(jobs)
