"""Unit tests for the layered model engine and the solver-backend registry."""

import dataclasses

import numpy as np
import pytest

import repro.engine.backend as backend_mod
from repro.core.ret import build_subret_lp, solve_ret
from repro.core.scheduler import Scheduler
from repro.core.throughput import build_stage1_lp
from repro.engine import (
    FragmentCache,
    HighsBackend,
    LayoutLayer,
    ModelEngine,
    TopologyLayer,
    WarmStart,
    available_backends,
    build_structure,
    capacity_floor_blocks,
    get_backend,
    map_warm_start,
    register_backend,
    stage1_blocks,
)
from repro.errors import InfeasibleProblemError, ValidationError
from repro.lp.model import ProblemStructure, job_capacity_fragment
from repro.lp.solver import LinearProgram, solve_lp
from repro.network import topologies
from repro.network.capacity import CapacityProfile
from repro.obs import Telemetry
from repro.timegrid import TimeGrid
from repro.workload.jobs import Job, JobSet


@pytest.fixture
def network():
    return topologies.ring(6, capacity=2)


@pytest.fixture
def jobs(network):
    nodes = network.nodes
    return JobSet(
        [
            Job(id="a", source=nodes[0], dest=nodes[3], size=4.0, start=0.0, end=4.0),
            Job(id="b", source=nodes[1], dest=nodes[4], size=2.0, start=1.0, end=5.0),
        ]
    )


def _matrices_equal(left, right):
    return (
        (left.capacity_matrix != right.capacity_matrix).nnz == 0
        and (left.demand_matrix != right.demand_matrix).nnz == 0
        and np.array_equal(left.cap_rhs, right.cap_rhs)
        and left.num_cols == right.num_cols
    )


def _structures_bit_identical(left, right):
    """Every array and matrix of two structures, compared exactly."""
    for name in (
        "first_slice",
        "span",
        "num_paths",
        "job_offset",
        "col_job",
        "col_slice",
        "col_path",
        "col_len",
        "demands",
        "cap_row_edge",
        "cap_row_slice",
        "cap_rhs",
    ):
        if not np.array_equal(getattr(left, name), getattr(right, name)):
            return False
    return (
        _matrices_equal(left, right)
        and left.grid == right.grid
        and [
            [tuple(p.edge_ids) for p in pset] for pset in left.paths
        ] == [[tuple(p.edge_ids) for p in pset] for pset in right.paths]
    )


class TestBackendRegistry:
    def test_bundled_backends_registered(self):
        assert set(available_backends()) >= {"highs", "simplex"}
        assert get_backend("highs").name == "highs"
        assert get_backend("simplex").name == "simplex"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValidationError, match="unknown backend 'cplex'"):
            get_backend("cplex")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_backend(HighsBackend())
        # replace=True is the explicit override.
        register_backend(HighsBackend(), replace=True)
        assert get_backend("highs").name == "highs"

    def test_backend_needs_name_and_solve(self):
        class Nameless:
            solve = staticmethod(lambda problem, **kw: None)

        with pytest.raises(ValidationError, match="non-empty string"):
            register_backend(Nameless())

        class NoSolve:
            name = "broken"

        with pytest.raises(ValidationError, match="callable solve"):
            register_backend(NoSolve())

    def test_custom_backend_dispatches_through_solve_lp(self):
        calls = []

        class CountingBackend:
            name = "counting"
            supports_warm_start = True

            def solve(self, problem, *, warm_start=None, telemetry=None,
                      label=None, budget=None):
                calls.append(warm_start)
                return HighsBackend().solve(
                    problem, telemetry=telemetry, label=label, budget=budget
                )

        register_backend(CountingBackend())
        try:
            lp = LinearProgram(
                objective=np.array([1.0]),
                a_ub=np.array([[1.0]]),
                b_ub=np.array([3.0]),
                maximize=True,
            )
            hint = WarmStart(x=np.array([3.0]), label="probe")
            solution = solve_lp(lp, backend="counting", warm_start=hint)
            assert solution.x[0] == pytest.approx(3.0)
            assert calls == [hint]
        finally:
            backend_mod._REGISTRY.pop("counting", None)

    def test_engine_rejects_unknown_backend_eagerly(self, network):
        with pytest.raises(ValidationError, match="unknown backend"):
            ModelEngine(network, backend="gurobi")


class TestTopologyLayer:
    def test_path_sets_cached(self, network, jobs):
        telemetry = Telemetry()
        topo = TopologyLayer(network, k_paths=2, telemetry=telemetry)
        first = topo.path_sets(jobs.od_pairs())
        misses = telemetry.counters["path_cache_misses"]
        assert misses == len(first)
        second = topo.path_sets(jobs.od_pairs())
        assert telemetry.counters["path_cache_hits"] == len(first)
        for pair in first:
            assert second[pair] == first[pair]
            for cached, returned in zip(first[pair], second[pair]):
                assert returned is cached  # same Path objects, not re-routed

    def test_banned_edges_are_separate_entries(self, network, jobs):
        topo = TopologyLayer(network, k_paths=2)
        free = topo.path_sets(jobs.od_pairs())
        banned = topo.path_sets(jobs.od_pairs(), banned_edges=frozenset({0}))
        for pair in free:
            for path in banned[pair]:
                assert 0 not in path.edge_ids
        again = topo.path_sets(jobs.od_pairs(), banned_edges=frozenset({0}))
        for pair in banned:
            assert again[pair] == banned[pair]

    def test_k_paths_validated(self, network):
        with pytest.raises(ValidationError):
            TopologyLayer(network, k_paths=0)


class TestLayoutLayer:
    def test_exact_hit_returns_same_object(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        grid = TimeGrid.covering(jobs.max_end())
        first = engine.structure(jobs, grid)
        second = engine.structure(jobs, grid)
        assert second is first
        assert telemetry.counters["structure_cache_hits"] == 1
        assert telemetry.counters["cold_builds"] == 1

    def test_changing_jobs_busts_cache(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        grid = TimeGrid.covering(jobs.max_end())
        first = engine.structure(jobs, grid)
        import dataclasses

        grown = JobSet([dataclasses.replace(j, size=j.size * 2.0) for j in jobs])
        second = engine.structure(grown, grid)
        assert second is not first
        assert not np.array_equal(first.demands, second.demands)

    def test_changing_grid_busts_cache(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        first = engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        second = engine.structure(
            jobs, TimeGrid.covering(jobs.max_end(), slice_length=0.5)
        )
        assert second is not first
        assert second.grid.num_slices != first.grid.num_slices

    def test_changing_capacity_profile_busts_cache(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        grid = TimeGrid.covering(jobs.max_end())
        base = engine.structure(jobs, grid)
        profile = CapacityProfile.constant(network, grid)
        with_profile = engine.structure(jobs, grid, capacity_profile=profile)
        assert with_profile is not base
        u, v = network.edges[0].source, network.edges[0].target
        dimmed = CapacityProfile.with_maintenance(
            network, grid, [(u, v, 0.0, grid.end, 1)]
        )
        with_fault = engine.structure(jobs, grid, capacity_profile=dimmed)
        assert with_fault is not with_profile
        assert not np.array_equal(with_fault.cap_rhs, with_profile.cap_rhs)

    def test_engine_matrices_match_cold_build(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        grid = TimeGrid.covering(jobs.max_end())
        warm = engine.structure(jobs, grid)
        cold = ProblemStructure(
            network, jobs, grid, 2,
            path_sets=engine.topology.path_sets(jobs.od_pairs()),
        )
        assert _matrices_equal(warm, cold)

    def test_fragment_reuse_across_layouts(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        builds = telemetry.counters["layout_fragment_builds"]
        # Same windows on a longer grid: every per-job fragment recurs.
        engine.structure(jobs, TimeGrid.covering(jobs.max_end() + 3.0))
        assert telemetry.counters["layout_fragment_builds"] == builds
        assert telemetry.counters["layout_fragment_hits"] >= len(jobs)

    def test_lru_bound_evicts_oldest(self, network, jobs):
        engine = ModelEngine(network, k_paths=2, max_cached_structures=1)
        grid = TimeGrid.covering(jobs.max_end())
        first = engine.structure(jobs, grid)
        engine.structure(jobs, TimeGrid.covering(jobs.max_end(), 0.5))
        rebuilt = engine.structure(jobs, grid)
        assert rebuilt is not first  # evicted, so rebuilt fresh

    def test_max_structures_validated(self, network):
        topo = TopologyLayer(network, k_paths=2)
        with pytest.raises(ValidationError):
            LayoutLayer(topo, max_structures=0)


class TestJobCapacityFragment:
    def test_fragment_matches_direct_broadcast(self, network, jobs):
        structure = build_structure(
            network, jobs, TimeGrid.covering(jobs.max_end()), 2
        )
        for i in range(len(jobs)):
            paths = structure.paths[i]
            span = int(structure.span[i])
            edge, rel_slice, rel_col = job_capacity_fragment(paths, span)
            assert not edge.flags.writeable
            expect_edges = np.concatenate(
                [np.repeat(np.asarray(p.edge_ids), span) for p in paths]
            )
            assert np.array_equal(edge, expect_edges)
            assert rel_slice.min() == 0 and rel_slice.max() == span - 1
            assert rel_col.max() == len(paths) * span - 1


class TestCachedSolve:
    def test_memo_hit_returns_same_solution(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        structure = engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        first = engine.cached_solve(
            structure, "stage1", lambda: build_stage1_lp(structure)
        )
        second = engine.cached_solve(
            structure, "stage1", lambda: build_stage1_lp(structure)
        )
        assert second is first
        assert telemetry.counters["warm_starts"] == 1
        assert telemetry.counters["engine_solves"] == 1

    def test_infeasibility_is_memoized_and_replayed(self, network):
        nodes = network.nodes
        impossible = JobSet(
            [Job(id="x", source=nodes[0], dest=nodes[3], size=1e6,
                 start=0.0, end=2.0)]
        )
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        structure = engine.structure(
            impossible, TimeGrid.covering(impossible.max_end())
        )
        for expected_hits in (0, 1):
            with pytest.raises(InfeasibleProblemError):
                engine.cached_solve(
                    structure, "subret", lambda: build_subret_lp(structure)
                )
            assert telemetry.counters.get("warm_starts", 0) == expected_hits

    def test_cache_false_always_solves(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        structure = engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        for _ in range(2):
            engine.cached_solve(
                structure, "stage1", lambda: build_stage1_lp(structure),
                cache=False,
            )
        assert telemetry.counters.get("warm_starts", 0) == 0
        assert telemetry.counters["engine_solves"] == 2

    def test_cold_engine_never_reuses(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine.cold(network, k_paths=2, telemetry=telemetry)
        grid = TimeGrid.covering(jobs.max_end())
        first = engine.structure(jobs, grid)
        second = engine.structure(jobs, grid)
        assert second is not first
        engine.cached_solve(first, "stage1", lambda: build_stage1_lp(first))
        engine.cached_solve(first, "stage1", lambda: build_stage1_lp(first))
        assert telemetry.counters.get("warm_starts", 0) == 0
        assert telemetry.counters.get("structure_cache_hits", 0) == 0
        assert telemetry.counters["engine_solves"] == 2

    def test_clear_drops_every_layer(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        structure = engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        engine.cached_solve(structure, "stage1", lambda: build_stage1_lp(structure))
        engine.clear()
        assert len(engine._solutions) == 0
        assert engine.structure(jobs, TimeGrid.covering(jobs.max_end())) is not structure


class TestEngineWindows:
    def test_extend_windows_matches_hand_built(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        b = 0.4
        extended = engine.extend_windows(jobs, b)
        by_hand = ProblemStructure(
            network,
            jobs.with_extended_ends(b),
            TimeGrid.covering(jobs.with_extended_ends(b).max_end()),
            2,
            path_sets=engine.topology.path_sets(jobs.od_pairs()),
        )
        assert _matrices_equal(extended, by_hand)

    def test_extend_windows_near_probes_share_solution(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        first = engine.extend_windows(jobs, 0.25)
        second = engine.extend_windows(jobs, 0.2501)
        # Raw ends differ, so the exact structure cache must not alias
        # the two requests...
        assert second is not first
        # ...but a sub-slice b difference discretizes to the same
        # windows, so the solve memo treats them as one LP.
        assert second._engine_key == first._engine_key
        s1 = engine.cached_solve(
            first, "subret", lambda: build_subret_lp(first)
        )
        s2 = engine.cached_solve(
            second, "subret", lambda: build_subret_lp(second)
        )
        assert s2 is s1
        assert telemetry.counters["warm_starts"] == 1
        assert telemetry.counters["engine_solves"] == 1

    def test_extend_windows_validates_inputs(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        with pytest.raises(ValidationError):
            engine.extend_windows(jobs, -0.1)
        with pytest.raises(ValidationError):
            engine.extend_windows(jobs, 0.1, mode="sideways")

    def test_for_grid_rebuilds_on_new_grid(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        base = engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        finer = engine.for_grid(base, TimeGrid.covering(jobs.max_end(), 0.5))
        assert finer.grid.num_slices == 2 * base.grid.num_slices
        assert finer.paths[0][0].edge_ids == base.paths[0][0].edge_ids


class TestAssemblyHelpers:
    def test_stage1_blocks_cached_on_structure(self, network, jobs):
        structure = build_structure(
            network, jobs, TimeGrid.covering(jobs.max_end()), 2
        )
        a_eq, b_eq, a_ub, b_ub = stage1_blocks(structure)
        a_eq2, _, a_ub2, _ = stage1_blocks(structure)
        assert a_eq2 is a_eq and a_ub2 is a_ub
        assert a_eq.shape == (len(jobs), structure.num_cols + 1)
        assert np.array_equal(b_ub, structure.cap_rhs)

    def test_capacity_floor_blocks_share_matrix_across_rhs(self, network, jobs):
        structure = build_structure(
            network, jobs, TimeGrid.covering(jobs.max_end()), 2
        )
        a1, b1 = capacity_floor_blocks(structure, -structure.demands)
        a2, b2 = capacity_floor_blocks(structure, -0.5 * structure.demands)
        assert a2 is a1
        assert np.array_equal(b2[-len(jobs):], -0.5 * structure.demands)
        assert not np.array_equal(b1, b2)


class TestFrontEndWiring:
    def test_scheduler_rejects_mismatched_engine(self, network, jobs):
        other = topologies.ring(6, capacity=2)
        with pytest.raises(ValidationError, match="different network"):
            Scheduler(network, engine=ModelEngine(other))
        with pytest.raises(ValidationError, match="k_paths"):
            Scheduler(network, k_paths=2, engine=ModelEngine(network, 4))

    def test_solve_ret_rejects_mismatched_engine(self, network, jobs):
        other = topologies.ring(6, capacity=2)
        with pytest.raises(ValidationError, match="different network"):
            solve_ret(network, jobs, engine=ModelEngine(other))
        with pytest.raises(ValidationError, match="k_paths"):
            solve_ret(network, jobs, k_paths=2, engine=ModelEngine(network, 4))

    def test_scheduler_reuses_engine_between_calls(self, network, jobs):
        telemetry = Telemetry()
        scheduler = Scheduler(network, k_paths=2, telemetry=telemetry)
        scheduler.schedule(jobs)
        scheduler.schedule(jobs)
        assert telemetry.counters["structure_cache_hits"] >= 1

    def test_ret_probe_phases_are_explicit(self, network):
        nodes = network.nodes
        tight = JobSet(
            [
                Job(id="t", source=nodes[0], dest=nodes[3], size=30.0,
                    start=0.0, end=2.0),
            ]
        )
        telemetry = Telemetry()
        solve_ret(network, tight, k_paths=2, telemetry=telemetry)
        probes = telemetry.records_of("ret_probe")
        assert probes, "RET left no probe trace"
        phases = {p["phase"] for p in probes}
        assert phases <= {"bounds", "search", "delta"}
        bounds = [p for p in probes if p["phase"] == "bounds"]
        assert {p["b"] for p in bounds} <= {10.0, 0.0}
        assert probes[0]["phase"] == "bounds"

    def test_build_structure_factory_matches_direct(self, network, jobs):
        grid = TimeGrid.covering(jobs.max_end())
        via_factory = build_structure(network, jobs, grid, 2)
        direct = ProblemStructure(network, jobs, grid, 2)
        assert _matrices_equal(via_factory, direct)


class TestDeltaPatching:
    """Near-miss structure patching (repro.engine.delta.patch_structure)."""

    def _cold(self, engine, jobs, grid, path_sets=None):
        if path_sets is None:
            path_sets = engine.topology.path_sets(jobs.od_pairs())
        return ProblemStructure(
            engine.network, jobs, grid, engine.k_paths, path_sets=path_sets
        )

    def test_shifted_windows_patch_bit_identical(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        shifted = JobSet(
            [
                dataclasses.replace(
                    j, start=j.start + 1.0, end=j.end + 1.0, size=j.size * 0.5
                )
                for j in jobs
            ]
        )
        grid = TimeGrid.covering(shifted.max_end())
        patched = engine.structure(shifted, grid)
        assert telemetry.counters["structure_patch_hits"] == 1
        assert telemetry.counters["cold_builds"] == 1
        assert _structures_bit_identical(
            patched, self._cold(engine, shifted, grid)
        )

    def test_departed_and_new_jobs_patch_bit_identical(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        nodes = network.nodes
        # Job "b" departs, a brand-new "c" arrives, "a"'s residual shrinks.
        changed = JobSet(
            [
                dataclasses.replace(jobs[0], size=1.5, start=2.0),
                Job(id="c", source=nodes[2], dest=nodes[5], size=3.0,
                    start=1.0, end=6.0),
            ]
        )
        grid = TimeGrid.covering(changed.max_end())
        patched = engine.structure(changed, grid)
        assert telemetry.counters["structure_patch_hits"] == 1
        assert _structures_bit_identical(
            patched, self._cold(engine, changed, grid)
        )

    def test_same_layout_clone_shares_matrices(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        grid = TimeGrid.covering(jobs.max_end())
        donor = engine.structure(jobs, grid)
        shrunk = JobSet(
            [dataclasses.replace(j, size=j.size * 0.25) for j in jobs]
        )
        clone = engine.structure(shrunk, grid)
        assert telemetry.counters["structure_patch_hits"] == 1
        # Same windows, routes and grid: the donor's assembled matrices
        # apply verbatim — shared, not recomputed.
        assert clone.capacity_matrix is donor.capacity_matrix
        assert clone.demand_matrix is donor.demand_matrix
        assert clone.col_slice is donor.col_slice
        record = telemetry.records_of("structure_patched")[0]
        assert record["clone"] is True
        assert _structures_bit_identical(clone, self._cold(engine, shrunk, grid))

    def test_patch_declines_when_routes_change(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        grid = TimeGrid.covering(jobs.max_end())
        engine.structure(jobs, grid)
        # A fault reroute: the same jobs resolve to different paths, so
        # the donor's routes must not be reused.
        banned = engine.topology.path_sets(
            jobs.od_pairs(), banned_edges=frozenset({0})
        )
        rebuilt = engine.structure(jobs, grid, path_sets=banned)
        assert telemetry.counters.get("structure_patch_hits", 0) == 0
        assert telemetry.counters["cold_builds"] == 2
        assert _structures_bit_identical(
            rebuilt, self._cold(engine, jobs, grid, path_sets=banned)
        )

    def test_patch_declines_under_capacity_profile(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        grid = TimeGrid.covering(jobs.max_end())
        engine.structure(jobs, grid)
        profile = CapacityProfile.constant(network, grid)
        engine.structure(jobs, grid, capacity_profile=profile)
        assert telemetry.counters.get("structure_patch_hits", 0) == 0
        assert telemetry.counters["cold_builds"] == 2

    def test_patched_structures_carry_engine_key(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        shifted = JobSet(
            [dataclasses.replace(j, start=j.start + 1.0, end=j.end + 1.0)
             for j in jobs]
        )
        patched = engine.structure(shifted, TimeGrid.covering(shifted.max_end()))
        assert telemetry.counters["structure_patch_hits"] == 1
        assert patched._engine_key is not None
        # The solve memo works over patched structures: two solves, one LP.
        engine.cached_solve(patched, "stage1", lambda: build_stage1_lp(patched))
        engine.cached_solve(patched, "stage1", lambda: build_stage1_lp(patched))
        assert telemetry.counters["warm_starts"] == 1
        assert telemetry.counters.get("engine_memo_bypass", 0) == 0

    def test_memo_bypass_counted_for_unkeyed_structures(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        # Built outside the engine: no _engine_key, so the memo cannot
        # apply and the bypass must be visible.
        outside = ProblemStructure(
            network, jobs, TimeGrid.covering(jobs.max_end()), 2,
            path_sets=engine.topology.path_sets(jobs.od_pairs()),
        )
        engine.cached_solve(outside, "stage1", lambda: build_stage1_lp(outside))
        assert telemetry.counters["engine_memo_bypass"] == 1
        assert telemetry.counters.get("warm_starts", 0) == 0


class TestCacheBounds:
    def test_fragment_cache_is_lru_bounded(self):
        cache = FragmentCache(max_entries=2)
        cache["a"], cache["b"] = 1, 2
        assert cache.get("a") == 1  # refreshes recency: "b" is now oldest
        cache["c"] = 3
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_fragment_cache_validates_bound(self):
        with pytest.raises(ValidationError):
            FragmentCache(max_entries=0)

    def test_layout_fragments_respect_bound(self, network, jobs):
        engine = ModelEngine(network, k_paths=2, max_cached_fragments=1)
        for extra in range(4):
            engine.structure(
                jobs, TimeGrid.covering(jobs.max_end() + float(extra))
            )
        assert len(engine.layout._fragments) <= 1

    def test_solution_memo_is_lru_bounded(self, network, jobs):
        engine = ModelEngine(network, k_paths=2, max_cached_solutions=2)
        for extra in range(4):
            s = engine.structure(
                jobs, TimeGrid.covering(jobs.max_end() + float(extra))
            )
            engine.cached_solve(s, "stage1", lambda s=s: build_stage1_lp(s))
        assert len(engine._solutions) == 2


class TestCarriedPlan:
    def test_scheduler_carries_committed_plan(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        scheduler = Scheduler(network, k_paths=2, engine=engine)
        assert not engine.has_carried_plan
        scheduler.schedule(jobs)
        assert engine.has_carried_plan

    def test_cold_engine_never_carries(self, network, jobs):
        engine = ModelEngine.cold(network, k_paths=2)
        Scheduler(network, k_paths=2, engine=engine).schedule(jobs)
        assert not engine.has_carried_plan
        assert not engine.certify_feasible(jobs, TimeGrid.covering(4.0), {})

    def test_witness_certifies_feasible_instance(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        Scheduler(network, k_paths=2, engine=engine).schedule(jobs)
        grid = TimeGrid.covering(jobs.max_end())
        path_sets = engine.topology.path_sets(jobs.od_pairs())
        assert engine.certify_feasible(jobs, grid, path_sets)
        assert telemetry.counters["ret_witness_hits"] == 1

    def test_witness_declines_oversized_demand(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        Scheduler(network, k_paths=2, engine=engine).schedule(jobs)
        grid = TimeGrid.covering(jobs.max_end())
        path_sets = engine.topology.path_sets(jobs.od_pairs())
        huge = JobSet([dataclasses.replace(j, size=1e6) for j in jobs])
        assert not engine.certify_feasible(huge, grid, path_sets)
        assert telemetry.counters["ret_witness_misses"] == 1

    def test_invalidate_drops_the_plan(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        Scheduler(network, k_paths=2, engine=engine).schedule(jobs)
        engine.invalidate_carried()
        assert not engine.has_carried_plan
        assert telemetry.counters["carried_invalidations"] == 1
        engine.invalidate_carried()  # idempotent: nothing left to count
        assert telemetry.counters["carried_invalidations"] == 1

    def test_ret_skips_bounds_probe_with_witness(self, network, jobs):
        telemetry = Telemetry()
        engine = ModelEngine(network, k_paths=2, telemetry=telemetry)
        Scheduler(network, k_paths=2, engine=engine).schedule(jobs)
        cold = solve_ret(network, jobs, k_paths=2, warm_start=False)
        warm = solve_ret(
            network, jobs, k_paths=2, engine=engine, telemetry=telemetry
        )
        assert telemetry.counters["ret_witness_skips"] == 1
        probes = telemetry.records_of("ret_probe")
        assert probes[0]["phase"] == "bounds"
        assert probes[0].get("witness") is True
        # The skipped probe changes nothing about the answer.
        assert warm.b_hat == pytest.approx(cold.b_hat)
        assert warm.b_final == pytest.approx(cold.b_final)
        assert np.array_equal(
            warm.assignments.x_lpdar, cold.assignments.x_lpdar
        )


class TestWarmStartMapping:
    def _patched_pair(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        donor = engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        shifted = JobSet(
            [dataclasses.replace(j, start=j.start + 1.0, end=j.end + 1.0)
             for j in jobs]
        )
        target = engine.structure(shifted, TimeGrid.covering(shifted.max_end()))
        return donor, target

    def test_hint_without_structure_passes_through(self, network, jobs):
        engine = ModelEngine(network, k_paths=2)
        structure = engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
        hint = WarmStart(x=np.zeros(structure.num_cols))
        assert map_warm_start(hint, structure) is hint
        bound = WarmStart(x=np.zeros(structure.num_cols), structure=structure)
        assert map_warm_start(bound, structure) is bound

    def test_columns_map_by_identity_with_neutral_fill(self, network, jobs):
        donor, target = self._patched_pair(network, jobs)
        x = np.arange(1.0, donor.num_cols + 2)  # +1 trailing aux (stage 1 Z)
        hint = WarmStart(
            x=x,
            ineq_duals=np.arange(1.0, donor.capacity_matrix.shape[0] + 1),
            basis=(1, 2),
            structure=donor,
        )
        mapped = map_warm_start(hint, target)
        assert mapped.x.shape[0] == target.num_cols + 1
        assert mapped.x[-1] == x[-1]  # aux column preserved positionally
        assert mapped.basis is None  # a permuted basis is worse than none
        assert mapped.structure is target
        assert mapped.ineq_duals.shape[0] == target.capacity_matrix.shape[0]
        # Columns are matched by (job, path, absolute slice time): shifting
        # every window by +1 slice leaves the overlap carrying donor values
        # and zero-fills columns over the new final slice.
        for c in range(target.num_cols):
            i = int(target.col_job[c])
            ident = (
                target.jobs[i].id,
                tuple(target.paths[i][int(target.col_path[c])].edge_ids),
                float(target.grid.slice_start(int(target.col_slice[c]))),
            )
            donor_vals = {}
            for d in range(donor.num_cols):
                di = int(donor.col_job[d])
                donor_vals[
                    (
                        donor.jobs[di].id,
                        tuple(
                            donor.paths[di][int(donor.col_path[d])].edge_ids
                        ),
                        float(donor.grid.slice_start(int(donor.col_slice[d]))),
                    )
                ] = x[d]
            assert mapped.x[c] == donor_vals.get(ident, 0.0)

    def test_warm_capable_backend_receives_mapped_hint(self, network, jobs):
        received = []

        class RecordingBackend:
            name = "recording"
            supports_warm_start = True

            def solve(self, problem, *, warm_start=None, telemetry=None,
                      label=None, budget=None):
                received.append(warm_start)
                return HighsBackend().solve(
                    problem, telemetry=telemetry, label=label, budget=budget
                )

        register_backend(RecordingBackend())
        try:
            engine = ModelEngine(network, k_paths=2, backend="recording")
            donor = engine.structure(jobs, TimeGrid.covering(jobs.max_end()))
            engine.cached_solve(
                donor, "stage1", lambda: build_stage1_lp(donor)
            )
            assert received[0] is None  # nothing to hint from yet
            shifted = JobSet(
                [dataclasses.replace(j, start=j.start + 1.0, end=j.end + 1.0)
                 for j in jobs]
            )
            target = engine.structure(
                shifted, TimeGrid.covering(shifted.max_end())
            )
            engine.cached_solve(
                target, "stage1", lambda: build_stage1_lp(target)
            )
            hint = received[1]
            assert hint is not None
            assert hint.structure is target  # re-indexed, not passed raw
            assert hint.x.shape[0] == target.num_cols + 1
        finally:
            backend_mod._REGISTRY.pop("recording", None)
