"""ADM — Footnote-1 prefix rejection vs the greedy non-prefix variant.

The paper's footnote 1 gives a simple rejection algorithm (order the
jobs, binary-search the longest feasible prefix) and defers "more
sophisticated algorithms for action (i) to future work."  This benchmark
implements one step of that future work — greedy non-prefix admission —
and quantifies the improvement: jobs and volume admitted at threshold
``Z* >= 1`` under both policies and several orderings.
"""

import numpy as np
import pytest

from repro import TimeGrid, admit_greedy, admit_max_prefix
from repro.analysis import Table
from repro.core.admission import by_arrival, by_size_ascending, by_size_descending
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 1313
NUM_JOBS = 30
CONFIG = WorkloadConfig(
    size_low=20.0,
    size_high=160.0,
    window_slices_low=2,
    window_slices_high=5,
    start_slack_slices=2,
)

ORDERINGS = (
    ("arrival", by_arrival),
    ("size desc", by_size_descending),
    ("size asc", by_size_ascending),
)


def admitted_volume(decision):
    return float(sum(j.size for j in decision.admitted))


def run_policies(network, jobs, grid, key):
    prefix = admit_max_prefix(network, jobs, grid, key=key)
    greedy = admit_greedy(network, jobs, grid, key=key)
    return prefix, greedy


@pytest.fixture(scope="module")
def instance():
    network = random_network(num_nodes=60, seed=SEED).with_wavelengths(2, 20.0)
    jobs = WorkloadGenerator(network, CONFIG, seed=SEED + 1).jobs(NUM_JOBS)
    grid = TimeGrid.covering(jobs.max_end())
    return network, jobs, grid


def test_greedy_vs_prefix(benchmark, report, instance):
    network, jobs, grid = instance
    offered = jobs.total_size()

    table = Table(
        [
            "ordering",
            "prefix jobs",
            "greedy jobs",
            "prefix volume %",
            "greedy volume %",
        ],
        title=(
            "ADM — admitted at Z* >= 1: footnote-1 prefix vs greedy "
            f"({NUM_JOBS} jobs offered)"
        ),
    )
    for name, key in ORDERINGS:
        prefix, greedy = run_policies(network, jobs, grid, key)
        # Feasibility of both admitted sets.
        assert prefix.zstar >= 1.0 - 1e-9 or prefix.num_admitted == 0
        assert greedy.zstar >= 1.0 - 1e-9 or greedy.num_admitted == 0
        # Greedy admits a superset under the same ordering.
        prefix_ids = {j.id for j in prefix.admitted}
        greedy_ids = {j.id for j in greedy.admitted}
        assert prefix_ids <= greedy_ids
        table.add_row(
            [
                name,
                prefix.num_admitted,
                greedy.num_admitted,
                round(100 * admitted_volume(prefix) / offered, 1),
                round(100 * admitted_volume(greedy) / offered, 1),
            ]
        )
    report(table)

    # Under at least one ordering the greedy variant strictly improves.
    improvements = []
    for _, key in ORDERINGS:
        prefix, greedy = run_policies(network, jobs, grid, key)
        improvements.append(greedy.num_admitted - prefix.num_admitted)
    assert max(improvements) > 0

    benchmark.pedantic(
        run_policies,
        args=(network, jobs, grid, by_arrival),
        rounds=2,
        iterations=1,
    )
