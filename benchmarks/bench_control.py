"""CTL — epoch-control kernel overhead and policy-sweep gates.

The control refactor (``docs/architecture.md``, "Control kernel &
policy surface") rebuilt `Simulation` and `ReservationService` as thin
drivers over the shared :class:`~repro.control.EpochKernel`, with an
optional :class:`~repro.control.ControlPolicy` choosing per-epoch
knobs.  This benchmark pins the two promises that refactor made:

* **Kernel overhead** — a multi-epoch Abilene controller run with
  :class:`~repro.control.FixedPolicy` attached (the kernel's full
  observe → decide → feedback path exercised every epoch) must cost at
  most ``OVERHEAD_CEILING`` more wall time than the bare
  ``control_policy=None`` run, and must produce identical records.
  The bare run is itself the seed baseline — the kernel's default path
  builds no observations and reuses the prebuilt scheduler, so the
  refactor's cost on untouched callers is bounded by the same gate.
* **Adaptive floor** — over the checker-clean
  :func:`~repro.control.compare_policies` sweep, each adaptive
  baseline (`bandit`, `load-reactive`) must deliver at least as much
  aggregate volume as `fixed` — an adaptive policy that loses
  throughput to its own knob-turning fails CI.

Results go to ``BENCH_control.json`` at the repo root, diffed against
the committed baseline by ``benchmarks/check_regression.py`` and
uploaded as a CI artifact.  Runs under pytest or as a script::

    PYTHONPATH=src python benchmarks/bench_control.py
"""

from pathlib import Path

from repro import Simulation, serialization
from repro.analysis import Table
from repro.control import FixedPolicy, compare_policies
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import (
    abilene_network,
    bench_versions,
    booked_ahead,
    time_best_of,
    write_bench_document,
)

SEED = 1009
REPEATS = 5
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_control.json"

#: Acceptance ceiling on the kernel's wall-time overhead: a FixedPolicy
#: run (full observe/decide/feedback every epoch) may cost at most this
#: fraction more than the bare run (ISSUE 10 target: <= 5%).
OVERHEAD_CEILING = 0.05

#: The policy sweep's fuzz seeds.  Deterministic: make_scenario(seed)
#: fixes the instance and seeds the stochastic policies.
SWEEP_SEEDS = (0, 1, 2, 3, 4)
SWEEP_POLICIES = ("fixed", "bandit", "load-reactive")

#: Same multi-epoch advance-reservation shape as ENG's simulate case:
#: enough epochs that per-epoch kernel costs would show up, small
#: enough to run in CI.
SIM_NUM_JOBS = 10
SIM_BOOKAHEAD_SLICES = 12
SIM_CONFIG = WorkloadConfig(
    size_low=30.0,
    size_high=120.0,
    window_slices_low=4,
    window_slices_high=10,
    start_slack_slices=2,
)


def _sim_instance():
    network = abilene_network()
    generator = WorkloadGenerator(network, config=SIM_CONFIG, seed=SEED)
    jobs = booked_ahead(generator, SIM_NUM_JOBS, 5, SIM_BOOKAHEAD_SLICES)
    return network, jobs


def _case_kernel_overhead():
    """Bare kernel vs FixedPolicy-armed kernel on a multi-epoch run."""
    network, jobs = _sim_instance()

    bare_s, bare = time_best_of(
        lambda: Simulation(network, policy="extend").run(jobs),
        repeats=REPEATS,
    )
    armed_s, armed = time_best_of(
        lambda: Simulation(
            network, policy="extend", control_policy=FixedPolicy()
        ).run(jobs),
        repeats=REPEATS,
    )

    # Identity before any timing claim: arming the kernel's policy path
    # must not change a single record.
    bare_dump = serialization.simulation_to_dict(bare)
    armed_dump = serialization.simulation_to_dict(armed)
    assert bare_dump["records"] == armed_dump["records"], (
        "FixedPolicy run diverged from the bare run"
    )

    return {
        "baseline_seconds": round(bare_s, 4),
        "engine_seconds": round(armed_s, 4),
        "speedup": round(bare_s / armed_s, 3),
        "metrics": {
            "overhead_fraction": round(armed_s / bare_s - 1.0, 4),
            "epochs": sum(
                1 for e in bare.events
                if type(e).__name__ == "SchedulingPass"
            ),
            "completed": bare.num_completed,
        },
    }


def _case_policy_sweep():
    """Adaptive baselines vs fixed on aggregate delivered volume."""
    comparison = compare_policies(SWEEP_POLICIES, seeds=SWEEP_SEEDS)
    agg = comparison.aggregate()
    fixed_total = agg["fixed"]["delivered_total"]
    ratios = {
        name: (
            agg[name]["delivered_total"] / fixed_total
            if fixed_total > 0 else 1.0
        )
        for name in SWEEP_POLICIES
    }
    return {
        # The regression metric: the worst adaptive-vs-fixed ratio.
        # Deterministic (volumes, not wall time), so the committed
        # baseline pins it exactly.
        "score": round(min(ratios[n] for n in SWEEP_POLICIES
                           if n != "fixed"), 6),
        "metrics": {
            "seeds": list(SWEEP_SEEDS),
            "epochs_verified": sum(
                r.epochs_verified for r in comparison.runs
            ),
            "delivered_total": {
                name: round(agg[name]["delivered_total"], 6)
                for name in SWEEP_POLICIES
            },
            "ratio_vs_fixed": {
                name: round(ratios[name], 6) for name in SWEEP_POLICIES
            },
        },
    }


def run_control_bench() -> dict:
    return {
        "schema": 1,
        "suite": "control-kernel",
        "repeats": REPEATS,
        "target_overhead_ceiling": OVERHEAD_CEILING,
        "versions": bench_versions(),
        "cases": {
            "kernel_overhead_simulate_abilene": _case_kernel_overhead(),
            "policy_sweep_vs_fixed": _case_policy_sweep(),
        },
    }


def _as_table(document: dict) -> Table:
    overhead = document["cases"]["kernel_overhead_simulate_abilene"]
    sweep = document["cases"]["policy_sweep_vs_fixed"]
    table = Table(
        title="CTL: epoch-control kernel gates",
        columns=["case", "metric", "value", "gate"],
    )
    table.add_row([
        "kernel_overhead",
        "overhead",
        f"{100 * overhead['metrics']['overhead_fraction']:+.2f}%",
        f"<= {100 * OVERHEAD_CEILING:.0f}%",
    ])
    for name, ratio in sweep["metrics"]["ratio_vs_fixed"].items():
        table.add_row([
            "policy_sweep",
            f"{name}/fixed delivered",
            f"{ratio:.4f}",
            ">= 1" if name != "fixed" else "(reference)",
        ])
    return table


def test_control_gates(report):
    document = run_control_bench()
    write_bench_document(BENCH_PATH, document)
    report(_as_table(document))

    overhead = document["cases"]["kernel_overhead_simulate_abilene"]
    frac = overhead["metrics"]["overhead_fraction"]
    assert frac <= OVERHEAD_CEILING, (
        f"kernel overhead {100 * frac:.2f}% exceeds the "
        f"{100 * OVERHEAD_CEILING:.0f}% ceiling "
        f"(bare {overhead['baseline_seconds']}s vs armed "
        f"{overhead['engine_seconds']}s)"
    )

    sweep = document["cases"]["policy_sweep_vs_fixed"]
    for name, ratio in sweep["metrics"]["ratio_vs_fixed"].items():
        if name == "fixed":
            continue
        assert ratio >= 1.0 - 1e-9, (
            f"adaptive policy {name!r} delivered {ratio:.4f}x the fixed "
            "baseline's aggregate volume; adaptive must not lose"
        )


if __name__ == "__main__":
    doc = run_control_bench()
    write_bench_document(BENCH_PATH, doc)
    print(_as_table(doc).render())
    print(f"\nwrote {BENCH_PATH}")
