"""Diff a fresh ``BENCH_engine.json`` against a committed baseline.

The speedup floors inside ``bench_engine.py`` catch collapses below an
absolute bar; this check catches *relative* slides — a change that keeps
every case above its floor but gives back a chunk of the committed
speedup still fails.  CI copies the committed ``BENCH_engine.json`` to a
baseline path before re-running the bench, then invokes::

    python benchmarks/check_regression.py <baseline.json> <fresh.json>

A case regresses when its fresh speedup falls below
``baseline_speedup * (1 - TOLERANCE)``.  The tolerance absorbs runner
noise (best-of-3 wall times on shared CI hardware); cases present only
in the fresh document are reported as new and pass, cases that
*disappeared* fail.  Exit status is the number of regressed cases.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Fractional speedup loss tolerated before a case counts as regressed.
TOLERANCE = 0.25


def compare(baseline: dict, fresh: dict) -> list[str]:
    """Human-readable regression report lines; empty means clean."""
    problems: list[str] = []
    base_cases = baseline.get("cases", {})
    fresh_cases = fresh.get("cases", {})
    for name, base in sorted(base_cases.items()):
        if name not in fresh_cases:
            problems.append(f"{name}: case missing from fresh results")
            continue
        base_speedup = float(base["speedup"])
        fresh_speedup = float(fresh_cases[name]["speedup"])
        floor = base_speedup * (1.0 - TOLERANCE)
        if fresh_speedup < floor:
            problems.append(
                f"{name}: speedup {fresh_speedup}x regressed below "
                f"{floor:.3f}x ({base_speedup}x baseline - "
                f"{TOLERANCE:.0%} tolerance)"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, fresh_path = Path(argv[1]), Path(argv[2])
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    problems = compare(baseline, fresh)
    for name, case in sorted(fresh.get("cases", {}).items()):
        marker = "NEW " if name not in baseline.get("cases", {}) else ""
        base = baseline.get("cases", {}).get(name, {}).get("speedup", "-")
        print(f"{marker}{name}: {base}x -> {case['speedup']}x")
    if problems:
        print()
        for line in problems:
            print(f"REGRESSION {line}")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
