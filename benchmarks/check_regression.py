"""Diff a fresh benchmark JSON document against a committed baseline.

The absolute floors inside the benches themselves (speedup floors in
``bench_engine.py``, the zero-lost / 100k-stream gates in
``bench_service.py``) catch collapses below a hard bar; this check
catches *relative* slides — a change that keeps every case above its
floor but gives back a chunk of the committed performance still fails.
CI copies the committed document to a baseline path before re-running
the bench, then invokes::

    python benchmarks/check_regression.py <baseline.json> <fresh.json>

Each case gates on one metric: ``speedup`` (engine-style cases — a
ratio of two wall times measured in the same process, stable across
runners) or, when no speedup is present, ``score`` (service-style
cases — an absolute rate, noisier).  A case regresses when its fresh
metric falls below ``baseline * (1 - tolerance)``; the tolerance is the
document-level ``"tolerance"`` field of the baseline when present, else
``TOLERANCE``.  Cases present only in the fresh document are reported
as new and pass, cases that *disappeared* fail.  Exit status is the
number of regressed cases.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Default fractional loss tolerated before a case counts as regressed;
#: a baseline document's ``"tolerance"`` field overrides it.
TOLERANCE = 0.25


def _metric(case: dict) -> tuple[str, float]:
    """``(name, value)`` of the metric a case gates on."""
    if "speedup" in case:
        return "speedup", float(case["speedup"])
    return "score", float(case["score"])


def compare(baseline: dict, fresh: dict) -> list[str]:
    """Human-readable regression report lines; empty means clean."""
    problems: list[str] = []
    tolerance = float(baseline.get("tolerance", TOLERANCE))
    base_cases = baseline.get("cases", {})
    fresh_cases = fresh.get("cases", {})
    for name, base in sorted(base_cases.items()):
        if name not in fresh_cases:
            problems.append(f"{name}: case missing from fresh results")
            continue
        metric, base_value = _metric(base)
        if metric not in fresh_cases[name]:
            problems.append(
                f"{name}: fresh case lost its {metric!r} metric"
            )
            continue
        fresh_value = float(fresh_cases[name][metric])
        floor = base_value * (1.0 - tolerance)
        if fresh_value < floor:
            problems.append(
                f"{name}: {metric} {fresh_value} regressed below "
                f"{floor:.3f} ({base_value} baseline - "
                f"{tolerance:.0%} tolerance)"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, fresh_path = Path(argv[1]), Path(argv[2])
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    problems = compare(baseline, fresh)
    for name, case in sorted(fresh.get("cases", {}).items()):
        metric, value = _metric(case)
        marker = "NEW " if name not in baseline.get("cases", {}) else ""
        base = baseline.get("cases", {}).get(name, {}).get(metric, "-")
        print(f"{marker}{name}: {metric} {base} -> {value}")
    if problems:
        print()
        for line in problems:
            print(f"REGRESSION {line}")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
