"""ONLINE — The periodic controller under increasing offered load.

Paper Section II-A describes the online framework: requests arrive over
time; every ``tau`` the controller admits and (re)schedules.  The paper
defers its quantitative evaluation to the companion papers, but the
three overload actions it defines imply a clear qualitative ordering,
which this benchmark verifies across load levels:

* ``extend`` completes the most jobs (it never gives up, only delays);
* ``reject`` keeps the best deadline record among *admitted* jobs;
* ``reduce`` delivers intermediate completion with full admission.
"""

import pytest

from repro import Simulation, summarize
from repro.analysis import Table
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 1616
LOAD_SWEEP = (0.5, 1.0, 2.0)  # arrivals per time unit
HORIZON = 10.0
CONFIG = WorkloadConfig(
    size_low=20.0,
    size_high=120.0,
    window_slices_low=2,
    window_slices_high=5,
    start_slack_slices=2,
)


@pytest.fixture(scope="module")
def network():
    return random_network(num_nodes=40, seed=SEED).with_wavelengths(2, 20.0)


def run_policy(network, jobs, policy):
    sim = Simulation(
        network,
        tau=2.0,
        slice_length=1.0,
        policy=policy,
        k_paths=4,
        ret_b_max=8.0,
    )
    return summarize(sim.run(jobs, horizon=80.0))


def test_online_policy_sweep(benchmark, report, network):
    table = Table(
        [
            "arrival rate",
            "jobs",
            "policy",
            "completed",
            "rejected",
            "expired",
            "deadline %",
            "delivered %",
        ],
        title="ONLINE — periodic controller, policies x offered load",
    )
    per_load = {}
    for rate in LOAD_SWEEP:
        gen = WorkloadGenerator(network, CONFIG, seed=SEED + int(10 * rate))
        jobs = gen.arrival_stream(rate, HORIZON)
        offered = jobs.total_size()
        outcomes = {}
        for policy in ("reject", "reduce", "extend"):
            summary = run_policy(network, jobs, policy)
            outcomes[policy] = summary
            table.add_row(
                [
                    rate,
                    len(jobs),
                    policy,
                    summary.num_completed,
                    summary.num_rejected,
                    summary.num_expired,
                    round(100 * summary.deadline_rate, 1),
                    round(100 * summary.delivered_volume / offered, 1),
                ]
            )
        per_load[rate] = outcomes

    report(table)

    for rate, outcomes in per_load.items():
        # Extend completes at least as many jobs as the others.
        assert outcomes["extend"].num_completed >= outcomes["reduce"].num_completed
        assert outcomes["extend"].num_completed >= outcomes["reject"].num_completed
        # Reject never expires an admitted-and-unserved backlog larger
        # than reduce's (it sheds load up front instead).
        assert outcomes["reject"].num_expired <= outcomes["reduce"].num_expired
        # Reduce and extend admit everything.
        assert outcomes["reduce"].num_rejected == 0
        assert outcomes["extend"].num_rejected == 0

    gen = WorkloadGenerator(network, CONFIG, seed=SEED + 10)
    jobs = gen.arrival_stream(1.0, HORIZON)
    benchmark.pedantic(
        run_policy, args=(network, jobs, "reduce"), rounds=2, iterations=1
    )
