"""ENG — layered model engine vs from-scratch builds, with a JSON trail.

The engine (``docs/architecture.md``) promises that reuse across
related solves — cached paths, per-job layout fragments, memoized LP
solutions keyed on the *discretized* instance, delta-patched structures
and carried cross-epoch plans — makes the RET binary-search probe loop
and the periodic controller measurably faster while changing nothing
about the answers.  This benchmark pins both halves of that claim:

* **RET probe loop** — an overloaded calibrated workload forces a full
  bisection on ``b``; the warm engine must be at least
  ``RET_SPEEDUP_FLOOR``× faster than ``ModelEngine.cold`` *and* return
  the identical extension and assignment.
* **Multi-epoch simulate (Abilene)** — the controller re-plans a
  book-ahead reservation workload every epoch.  Warm must be at least
  ``SIM_SPEEDUP_FLOOR``× faster, every epoch after the first must
  reuse structure (exact cache hit or delta patch — never a cold
  build), and the runs must serialize identically.
* **Multi-epoch simulate (100-node Waxman)** — the same controller
  loop at research-backbone scale, gating that cross-epoch reuse
  survives a network an order of magnitude larger than Abilene.

Results (best-of-``REPEATS`` wall times, speedups, verified-equal
metrics and the engine's cache counters) are written to
``BENCH_engine.json`` at the repo root, which CI diffs against the
committed baseline (``benchmarks/check_regression.py``) and uploads as
an artifact.  Runs under pytest (the CI gate) or as a plain script::

    PYTHONPATH=src python benchmarks/bench_engine.py
"""

from pathlib import Path

import numpy as np
import pytest
import scipy

from repro import Simulation, Telemetry, serialization
from repro.analysis import Table
from repro.core.ret import solve_ret
from repro.network.waxman import waxman_network
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import (
    abilene_network,
    bench_versions,
    booked_ahead,
    calibrated_jobs,
    time_best_of,
    write_bench_document,
)

SEED = 1009
REPEATS = 3
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Acceptance floor for the RET probe-loop case (ISSUE 5 target).
RET_SPEEDUP_FLOOR = 1.5
#: Acceptance floor for the Abilene multi-epoch simulate case (ISSUE 6
#: target): with delta-patched structures and carried warm starts the
#: controller loop must be at least twice as fast warm as cold.  This
#: replaces the old "not slower than baseline plus noise" slack gate —
#: a regression back to rebuild-everything now fails CI instead of
#: hiding inside the tolerance.
SIM_SPEEDUP_FLOOR = 2.0
#: The Waxman scale case gates more conservatively: the network is an
#: order of magnitude larger, so path resolution and LP solves dominate
#: differently, but cross-epoch reuse must still pay for itself.
WAXMAN_SPEEDUP_FLOOR = 1.5

#: Overloaded calibration: Z* < 1 forces RET to genuinely extend.
RET_NUM_JOBS = 18
RET_TARGET_ZSTAR = 0.65
#: Half-unit slices and a tight tolerance make the bisection long and
#: its late probes cluster below slice granularity — the regime the
#: discretized solve memo is built for (b_hat lands well inside b_max).
RET_B_MAX = 1.0
RET_SEARCH_TOL = 1e-6
RET_SLICE_LENGTH = 0.5

SIM_NUM_JOBS = 10
#: Windows are booked this many slices ahead of submission.  Advance
#: reservation is the paper's operating model for research-network bulk
#: transfers, and it is exactly the regime that exposed the cross-epoch
#: cache miss: every pre-window epoch re-plans a near-identical residual,
#: so a warm engine should answer from carried state (witness-certified
#: RET bounds, memoized zero probes, patched scheduler structures) while
#: a cold one rebuilds and re-solves the same LPs from scratch.
SIM_BOOKAHEAD_SLICES = 12
SIM_CONFIG = WorkloadConfig(
    size_low=30.0,
    size_high=120.0,
    window_slices_low=4,
    window_slices_high=10,
    start_slack_slices=2,
)

WAXMAN_NUM_NODES = 100
WAXMAN_NUM_JOBS = 12
WAXMAN_BOOKAHEAD_SLICES = 6
WAXMAN_CONFIG = WorkloadConfig(
    size_low=30.0,
    size_high=120.0,
    window_slices_low=4,
    window_slices_high=8,
    start_slack_slices=2,
)

#: Counters surfaced per epoch by the simulator's ``epoch_cache_stats``
#: telemetry records; the bench asserts on the first two.
_EPOCH_COUNTERS = (
    "structure_cache_hits",
    "structure_patch_hits",
    "cold_builds",
    "warm_starts",
    "ret_witness_hits",
)


def _ret_instance():
    network = abilene_network()
    jobs = calibrated_jobs(
        network, RET_NUM_JOBS, seed=SEED, target_zstar=RET_TARGET_ZSTAR
    )
    return network, jobs


def _sim_instance():
    network = abilene_network()
    generator = WorkloadGenerator(network, config=SIM_CONFIG, seed=SEED)
    jobs = booked_ahead(generator, SIM_NUM_JOBS, 5, SIM_BOOKAHEAD_SLICES)
    return network, jobs


def _waxman_instance():
    network = waxman_network(WAXMAN_NUM_NODES, seed=SEED)
    generator = WorkloadGenerator(network, config=WAXMAN_CONFIG, seed=SEED)
    jobs = booked_ahead(generator, WAXMAN_NUM_JOBS, 4, WAXMAN_BOOKAHEAD_SLICES)
    return network, jobs


def _time_best_of(fn, repeats=REPEATS):
    return time_best_of(fn, repeats=repeats)


def _case_ret_probe_loop():
    """Warm vs cold RET bisection on overloaded Abilene."""
    network, jobs = _ret_instance()
    telemetry = Telemetry()

    def run(warm_start, tel=None):
        return solve_ret(
            network,
            jobs,
            slice_length=RET_SLICE_LENGTH,
            b_max=RET_B_MAX,
            search_tol=RET_SEARCH_TOL,
            telemetry=tel,
            warm_start=warm_start,
        )

    cold_s, cold = _time_best_of(lambda: run(False))
    warm_s, warm = _time_best_of(lambda: run(True, telemetry))

    # Verify-identical outputs before any timing claim.
    assert warm.b_hat == pytest.approx(cold.b_hat)
    assert warm.b_final == pytest.approx(cold.b_final)
    assert warm.delta_steps == cold.delta_steps
    assert np.array_equal(
        warm.assignments.x_lpdar, cold.assignments.x_lpdar
    )

    counters = telemetry.counters
    return {
        "engine_seconds": round(warm_s, 4),
        "baseline_seconds": round(cold_s, 4),
        "speedup": round(cold_s / warm_s, 3),
        "metrics": {
            "b_hat": round(float(warm.b_hat), 9),
            "b_final": round(float(warm.b_final), 9),
            "delta_steps": int(warm.delta_steps),
            "ret_probes": int(counters.get("ret_probes", 0)),
            "warm_starts": int(counters.get("warm_starts", 0)),
            "engine_solves": int(counters.get("engine_solves", 0)),
            "layout_fragment_hits": int(
                counters.get("layout_fragment_hits", 0)
            ),
        },
    }


def _simulate_case(network, jobs):
    """Warm vs cold multi-epoch controller run over one instance.

    The timed runs carry no telemetry (measuring the engine, not the
    collector); a separate instrumented warm run then captures counters
    and the per-epoch ``epoch_cache_stats`` evidence — a fresh run,
    because repeating a timed one would duplicate its epoch records.
    """
    cold_s, cold = _time_best_of(
        lambda: Simulation(network, policy="extend", warm_start=False).run(jobs)
    )
    warm_s, warm = _time_best_of(
        lambda: Simulation(network, policy="extend", warm_start=True).run(jobs)
    )

    # Job lifecycles must match exactly (events also carry wall-clock
    # solve timings, so they are compared in the equivalence tests with
    # those stripped, not here).
    warm_dump = serialization.simulation_to_dict(warm)
    cold_dump = serialization.simulation_to_dict(cold)
    assert warm_dump["records"] == cold_dump["records"], (
        "warm and cold simulations diverged"
    )

    telemetry = Telemetry()
    Simulation(
        network, policy="extend", warm_start=True, telemetry=telemetry
    ).run(jobs)
    per_epoch = [
        {name: int(rec[name]) for name in _EPOCH_COUNTERS}
        | {"epoch": int(rec["epoch"])}
        for rec in telemetry.records_of("epoch_cache_stats")
    ]
    # Structural evidence the speedup rests on: the run must actually
    # patch (not just exact-hit), and no epoch after the first may fall
    # back to an all-cold rebuild.
    assert any(e["structure_patch_hits"] > 0 for e in per_epoch), (
        "no structure was delta-patched; the warm path degenerated"
    )
    for entry in per_epoch[1:]:
        reused = entry["structure_cache_hits"] + entry["structure_patch_hits"]
        assert reused > 0, (
            f"epoch {entry['epoch']} reused no structure: {entry}"
        )

    counters = telemetry.counters
    return {
        "engine_seconds": round(warm_s, 4),
        "baseline_seconds": round(cold_s, 4),
        "speedup": round(cold_s / warm_s, 3),
        "metrics": {
            "completion_rate": round(float(warm.completion_rate), 9),
            "delivered_volume": round(float(warm.delivered_volume), 9),
            "epochs": len(per_epoch),
            "structure_cache_hits": int(
                counters.get("structure_cache_hits", 0)
            ),
            "structure_patch_hits": int(
                counters.get("structure_patch_hits", 0)
            ),
            "cold_builds": int(counters.get("cold_builds", 0)),
            "warm_starts": int(counters.get("warm_starts", 0)),
            "ret_witness_skips": int(counters.get("ret_witness_skips", 0)),
            "engine_memo_bypass": int(counters.get("engine_memo_bypass", 0)),
            "path_cache_hits": int(counters.get("path_cache_hits", 0)),
            "layout_fragment_hits": int(
                counters.get("layout_fragment_hits", 0)
            ),
        },
        "per_epoch": per_epoch,
    }


def _case_simulate_epochs():
    """Book-ahead reservations on Abilene, re-planned every epoch."""
    network, jobs = _sim_instance()
    return _simulate_case(network, jobs)


def _case_simulate_waxman():
    """The same controller loop on a 100-node Waxman research backbone."""
    network, jobs = _waxman_instance()
    return _simulate_case(network, jobs)


def run_engine_bench() -> dict:
    """Run all cases and return the ``BENCH_engine.json`` document."""
    return {
        "schema": 2,
        "suite": "engine-speedup",
        "repeats": REPEATS,
        "target_ret_speedup": RET_SPEEDUP_FLOOR,
        "target_sim_speedup": SIM_SPEEDUP_FLOOR,
        "target_waxman_speedup": WAXMAN_SPEEDUP_FLOOR,
        "versions": bench_versions(scipy=scipy.__version__),
        "cases": {
            "ret_probe_loop_abilene": _case_ret_probe_loop(),
            "simulate_epochs_abilene": _case_simulate_epochs(),
            "simulate_epochs_waxman100": _case_simulate_waxman(),
        },
    }


def _as_table(document: dict) -> Table:
    table = Table(
        ["case", "engine (s)", "baseline (s)", "speedup"],
        title="ENG — layered engine vs from-scratch",
    )
    for name, case in document["cases"].items():
        table.add_row(
            [
                name,
                case["engine_seconds"],
                case["baseline_seconds"],
                f"{case['speedup']}x",
            ]
        )
    return table


def _assert_floor(document: dict, case_name: str, floor: float) -> None:
    case = document["cases"][case_name]
    assert case["speedup"] >= floor, (
        f"{case_name} speedup {case['speedup']}x is below the {floor}x "
        f"floor (engine {case['engine_seconds']}s vs baseline "
        f"{case['baseline_seconds']}s)"
    )


def test_engine_speedup(report):
    document = run_engine_bench()
    write_bench_document(BENCH_PATH, document)
    report(_as_table(document))

    _assert_floor(document, "ret_probe_loop_abilene", RET_SPEEDUP_FLOOR)
    _assert_floor(document, "simulate_epochs_abilene", SIM_SPEEDUP_FLOOR)
    _assert_floor(document, "simulate_epochs_waxman100", WAXMAN_SPEEDUP_FLOOR)


if __name__ == "__main__":
    doc = run_engine_bench()
    write_bench_document(BENCH_PATH, doc)
    print(_as_table(doc).render())
    print(f"\nwrote {BENCH_PATH}")
