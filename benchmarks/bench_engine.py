"""ENG — layered model engine vs from-scratch builds, with a JSON trail.

The engine (``docs/architecture.md``) promises that reuse across
related solves — cached paths, per-job layout fragments and memoized
LP solutions keyed on the *discretized* instance — makes the RET
binary-search probe loop and the periodic controller measurably faster
while changing nothing about the answers.  This benchmark pins both
halves of that claim on the paper's Abilene topology:

* **RET probe loop** — an overloaded calibrated workload forces a full
  bisection on ``b``; the warm engine must be at least
  ``RET_SPEEDUP_FLOOR``× faster than ``ModelEngine.cold`` *and* return
  the identical extension and assignment.
* **Multi-epoch simulate** — the controller loop re-plans every epoch;
  warm must never be slower than cold (within noise slack) and the
  serialized runs must match.

Results (best-of-``REPEATS`` wall times, speedups, verified-equal
metrics and the engine's cache counters) are written to
``BENCH_engine.json`` at the repo root, which CI uploads as an
artifact.  Runs under pytest (the CI gate) or as a plain script::

    PYTHONPATH=src python benchmarks/bench_engine.py
"""

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest
import scipy

from repro import Simulation, Telemetry, __version__, serialization
from repro.analysis import Table
from repro.core.ret import solve_ret
from repro.workload import WorkloadConfig, WorkloadGenerator
from repro.workload.jobs import JobSet

from _support import abilene_network, calibrated_jobs

SEED = 1009
REPEATS = 3
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Acceptance floor for the RET probe-loop case (ISSUE 5 target).
RET_SPEEDUP_FLOOR = 1.5
#: The simulate case only gates "not slower than baseline" (plus noise).
SIM_SLOWDOWN_RATIO = 0.10
SIM_ABS_SLACK_S = 0.10

#: Overloaded calibration: Z* < 1 forces RET to genuinely extend.
RET_NUM_JOBS = 18
RET_TARGET_ZSTAR = 0.65
#: Half-unit slices and a tight tolerance make the bisection long and
#: its late probes cluster below slice granularity — the regime the
#: discretized solve memo is built for (b_hat lands well inside b_max).
RET_B_MAX = 1.0
RET_SEARCH_TOL = 1e-6
RET_SLICE_LENGTH = 0.5

SIM_NUM_JOBS = 10
SIM_CONFIG = WorkloadConfig(
    size_low=30.0,
    size_high=120.0,
    window_slices_low=4,
    window_slices_high=10,
    start_slack_slices=2,
)


def _ret_instance():
    network = abilene_network()
    jobs = calibrated_jobs(
        network, RET_NUM_JOBS, seed=SEED, target_zstar=RET_TARGET_ZSTAR
    )
    return network, jobs


def _sim_instance():
    network = abilene_network()
    generator = WorkloadGenerator(network, config=SIM_CONFIG, seed=SEED)
    jobs = JobSet(
        [generator.job(i, arrival=float(i % 5)) for i in range(SIM_NUM_JOBS)]
    )
    return network, jobs


def _time_best_of(fn, repeats=REPEATS):
    """(min seconds, last result) over ``repeats`` runs of ``fn``."""
    best, result = float("inf"), None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _case_ret_probe_loop():
    """Warm vs cold RET bisection on overloaded Abilene."""
    network, jobs = _ret_instance()
    telemetry = Telemetry()

    def run(warm_start, tel=None):
        return solve_ret(
            network,
            jobs,
            slice_length=RET_SLICE_LENGTH,
            b_max=RET_B_MAX,
            search_tol=RET_SEARCH_TOL,
            telemetry=tel,
            warm_start=warm_start,
        )

    cold_s, cold = _time_best_of(lambda: run(False))
    warm_s, warm = _time_best_of(lambda: run(True, telemetry))

    # Verify-identical outputs before any timing claim.
    assert warm.b_hat == pytest.approx(cold.b_hat)
    assert warm.b_final == pytest.approx(cold.b_final)
    assert warm.delta_steps == cold.delta_steps
    assert np.array_equal(
        warm.assignments.x_lpdar, cold.assignments.x_lpdar
    )

    counters = telemetry.counters
    return {
        "engine_seconds": round(warm_s, 4),
        "baseline_seconds": round(cold_s, 4),
        "speedup": round(cold_s / warm_s, 3),
        "metrics": {
            "b_hat": round(float(warm.b_hat), 9),
            "b_final": round(float(warm.b_final), 9),
            "delta_steps": int(warm.delta_steps),
            "ret_probes": int(counters.get("ret_probes", 0)),
            "warm_starts": int(counters.get("warm_starts", 0)),
            "engine_solves": int(counters.get("engine_solves", 0)),
            "layout_fragment_hits": int(
                counters.get("layout_fragment_hits", 0)
            ),
        },
    }


def _case_simulate_epochs():
    """Warm vs cold periodic controller, staggered arrivals on Abilene."""
    network, jobs = _sim_instance()
    telemetry = Telemetry()

    # "extend" re-runs RET every overloaded epoch through the shared
    # engine, so path-cache reuse across epochs is visible in the
    # counters; the gate is only "never slower than from-scratch".
    cold_s, cold = _time_best_of(
        lambda: Simulation(network, policy="extend", warm_start=False).run(jobs)
    )
    warm_s, warm = _time_best_of(
        lambda: Simulation(
            network,
            policy="extend",
            warm_start=True,
            telemetry=telemetry,
        ).run(jobs)
    )

    # Job lifecycles must match exactly (events also carry wall-clock
    # solve timings, so they are compared in the equivalence tests with
    # those stripped, not here).
    warm_dump = serialization.simulation_to_dict(warm)
    cold_dump = serialization.simulation_to_dict(cold)
    assert warm_dump["records"] == cold_dump["records"], (
        "warm and cold simulations diverged"
    )

    counters = telemetry.counters
    return {
        "engine_seconds": round(warm_s, 4),
        "baseline_seconds": round(cold_s, 4),
        "speedup": round(cold_s / warm_s, 3),
        "metrics": {
            "completion_rate": round(float(warm.completion_rate), 9),
            "delivered_volume": round(float(warm.delivered_volume), 9),
            "structure_cache_hits": int(
                counters.get("structure_cache_hits", 0)
            ),
            "path_cache_hits": int(counters.get("path_cache_hits", 0)),
            "layout_fragment_hits": int(
                counters.get("layout_fragment_hits", 0)
            ),
        },
    }


def run_engine_bench() -> dict:
    """Run both cases and return the ``BENCH_engine.json`` document."""
    return {
        "schema": 1,
        "suite": "engine-speedup",
        "repeats": REPEATS,
        "target_ret_speedup": RET_SPEEDUP_FLOOR,
        "versions": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "repro": __version__,
        },
        "cases": {
            "ret_probe_loop_abilene": _case_ret_probe_loop(),
            "simulate_epochs_abilene": _case_simulate_epochs(),
        },
    }


def _as_table(document: dict) -> Table:
    table = Table(
        ["case", "engine (s)", "baseline (s)", "speedup"],
        title="ENG — layered engine vs from-scratch (Abilene)",
    )
    for name, case in document["cases"].items():
        table.add_row(
            [
                name,
                case["engine_seconds"],
                case["baseline_seconds"],
                f"{case['speedup']}x",
            ]
        )
    return table


def test_engine_speedup(report):
    document = run_engine_bench()
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    report(_as_table(document))

    ret = document["cases"]["ret_probe_loop_abilene"]
    assert ret["speedup"] >= RET_SPEEDUP_FLOOR, (
        f"RET probe loop speedup {ret['speedup']}x is below the "
        f"{RET_SPEEDUP_FLOOR}x floor "
        f"(engine {ret['engine_seconds']}s vs baseline "
        f"{ret['baseline_seconds']}s)"
    )

    sim = document["cases"]["simulate_epochs_abilene"]
    limit = (
        sim["baseline_seconds"] * (1.0 + SIM_SLOWDOWN_RATIO) + SIM_ABS_SLACK_S
    )
    assert sim["engine_seconds"] <= limit, (
        f"warm simulate ({sim['engine_seconds']}s) slower than the "
        f"from-scratch baseline ({sim['baseline_seconds']}s) beyond noise"
    )


if __name__ == "__main__":
    doc = run_engine_bench()
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(_as_table(doc).render())
    print(f"\nwrote {BENCH_PATH}")
