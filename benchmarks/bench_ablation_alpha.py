"""ABL-ALPHA — The fairness parameter's throughput/fairness trade-off.

Paper Remark 1 motivates ``alpha``: it slackens the per-job floor
``Z_i >= (1 - alpha) Z*`` so that integer solutions exist, at a possible
cost in fairness.  This ablation sweeps ``alpha`` on one overloaded
instance and reports:

* the stage-2 LP objective (weighted throughput) — non-decreasing in
  ``alpha`` (a looser constraint set);
* the minimum per-job throughput of the LPDAR solution — the fairness
  actually delivered;
* whether LPDAR satisfies the floor (Remark 1's feasibility concern).
"""

import numpy as np
import pytest

from repro import (
    ProblemStructure,
    TimeGrid,
    lpdar,
    solve_stage1,
    solve_stage2_lp,
)
from repro.analysis import Table
from repro.workload import WorkloadConfig

from _support import calibrated_jobs, random_network, shared_path_sets

SEED = 606
ALPHAS = (0.0, 0.05, 0.1, 0.2, 0.4)
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


@pytest.fixture(scope="module")
def instance():
    network = random_network(num_nodes=100, seed=SEED).with_wavelengths(2, 20.0)
    jobs = calibrated_jobs(
        network, 150, seed=SEED + 1, target_zstar=0.8, config=CONFIG
    )
    paths = shared_path_sets(network, jobs)
    grid = TimeGrid.covering(jobs.max_end())
    structure = ProblemStructure(network, jobs, grid, 4, path_sets=paths)
    zstar = solve_stage1(structure).zstar
    return structure, zstar


def sweep_point(structure, zstar, alpha):
    stage2 = solve_stage2_lp(structure, zstar, alpha=alpha)
    rounded = lpdar(structure, stage2.x)
    z_int = structure.throughputs(rounded.x_lpdar)
    z_lp = structure.throughputs(rounded.x_lp)
    floor = (1 - alpha) * zstar
    return {
        "lp_objective": stage2.objective,
        "min_z_lp": float(z_lp.min()),
        "min_z_int": float(z_int.min()),
        "floor": floor,
        "floor_met_int": bool(np.all(z_int >= floor - 1e-9)),
        "lpdar_objective": structure.weighted_throughput(rounded.x_lpdar),
    }


def test_alpha_tradeoff(benchmark, report, instance):
    structure, zstar = instance
    table = Table(
        [
            "alpha",
            "floor",
            "LP objective",
            "LPDAR objective",
            "min Z_i (LP)",
            "min Z_i (LPDAR)",
            "int floor met",
        ],
        title=f"ABL-ALPHA — fairness slack sweep (Z* = {zstar:.3f})",
    )
    lp_objectives = []
    for alpha in ALPHAS:
        point = sweep_point(structure, zstar, alpha)
        lp_objectives.append(point["lp_objective"])
        table.add_row(
            [
                alpha,
                round(point["floor"], 3),
                round(point["lp_objective"], 4),
                round(point["lpdar_objective"], 4),
                round(point["min_z_lp"], 4),
                round(point["min_z_int"], 4),
                point["floor_met_int"],
            ]
        )
        # The LP always honours the floor by construction; the integer
        # solution may not (Remark 1's concern) — but the LP floor must
        # hold or the formulation is wrong.
        assert point["min_z_lp"] >= point["floor"] - 1e-7
    report(table)

    # Relaxing fairness can only help the LP objective.
    for a, b in zip(lp_objectives, lp_objectives[1:]):
        assert b >= a - 1e-9

    benchmark.pedantic(
        sweep_point, args=(structure, zstar, 0.1), rounds=2, iterations=1
    )
