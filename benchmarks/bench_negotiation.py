"""NEG — Convergence and volume retention of the negotiation loop.

The paper's overload story is a *negotiation*: propose reduced sizes or
extended deadlines, users re-submit, repeat.  With compliant users the
loop should converge in very few rounds; the interesting question is
what each strategy costs — size reduction sacrifices volume, deadline
extension sacrifices punctuality.  This benchmark runs
``auto_negotiate`` under all three strategies on overloaded instances
and reports rounds to convergence, the volume retained, and the mean
end-time stretch.
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.core.negotiation import NegotiationSession, auto_negotiate
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 2222
NUM_JOBS = 20
CONFIG = WorkloadConfig(
    size_low=60.0,
    size_high=200.0,
    window_slices_low=2,
    window_slices_high=5,
    start_slack_slices=2,
)

STRATEGIES = ("reduce", "extend", "reduce_then_extend")


def run_strategy(network, jobs, strategy):
    session = NegotiationSession(network, jobs, k_paths=4)
    final = auto_negotiate(session, strategy, max_rounds=4, b_max=20.0)
    volume_kept = final.total_size() / jobs.total_size()
    stretch = float(
        np.mean([final.by_id(j.id).end / j.end for j in jobs if j.id in final])
    )
    return {
        "rounds": len(session.rounds),
        "volume_kept": volume_kept,
        "mean_stretch": stretch,
        "withdrawn": len(session.withdrawn),
        "zstar": session.zstar(),
    }


@pytest.fixture(scope="module")
def instances():
    network = random_network(num_nodes=40, seed=SEED).with_wavelengths(2, 20.0)
    out = []
    for seed in (41, 42, 43):
        jobs = WorkloadGenerator(network, CONFIG, seed=seed).jobs(NUM_JOBS)
        out.append((network, jobs))
    return out


def test_negotiation_strategies(benchmark, report, instances):
    table = Table(
        [
            "instance",
            "strategy",
            "rounds",
            "volume kept %",
            "mean end stretch",
            "final Z*",
        ],
        title=f"NEG — negotiation strategies, compliant users ({NUM_JOBS} jobs)",
    )
    for k, (network, jobs) in enumerate(instances):
        points = {}
        for strategy in STRATEGIES:
            point = run_strategy(network, jobs, strategy)
            points[strategy] = point
            table.add_row(
                [
                    k,
                    strategy,
                    point["rounds"],
                    round(100 * point["volume_kept"], 1),
                    round(point["mean_stretch"], 3),
                    round(point["zstar"], 3),
                ]
            )
            # Convergence contract: admissible at the end.
            assert point["zstar"] >= 1.0 - 1e-9
            assert point["rounds"] <= 4
        # The structural trade-off: extension keeps all the volume but
        # stretches deadlines; reduction keeps deadlines but cuts volume.
        assert points["extend"]["volume_kept"] == pytest.approx(1.0)
        assert points["extend"]["mean_stretch"] > 1.0
        assert points["reduce"]["mean_stretch"] == pytest.approx(1.0)
        assert points["reduce"]["volume_kept"] < 1.0
    report(table)

    network, jobs = instances[0]
    benchmark.pedantic(
        run_strategy, args=(network, jobs, "reduce_then_extend"),
        rounds=2, iterations=1,
    )
