"""Shim: benchmark instance builders live in :mod:`repro.experiments.setup`.

Kept so every ``bench_*.py`` file can keep its local ``from _support
import ...`` imports; the implementation moved into the library so the
CLI and downstream users can run the same experiments without pytest.
"""

from repro.experiments.setup import (  # noqa: F401
    ALPHA,
    TOTAL_LINK_RATE,
    WAVELENGTH_SWEEP,
    ThroughputPoint,
    abilene_network,
    calibrated_jobs,
    random_network,
    shared_path_sets,
    throughput_pipeline,
)
