"""Shared benchmark plumbing: instance builders, timing, JSON trail.

Instance builders live in :mod:`repro.experiments.setup` (re-exported
here so every ``bench_*.py`` file can keep its local ``from _support
import ...`` imports); the harness helpers below used to be duplicated
across ``bench_engine.py``, ``bench_service.py`` and ``conftest.py``
and are now defined once so the fleet benchmark and future suites pick
up the same timing and document conventions:

* :func:`time_best_of` — best-of-N wall timing, returning the result;
* :func:`booked_ahead` — workload windows shifted ahead of submission
  (the multi-epoch controller shape used by ENG and the fleet bench);
* :func:`bench_versions` — the ``versions`` stanza every
  ``BENCH_*.json`` document embeds;
* :func:`write_bench_document` — the canonical trailing-newline JSON
  write that ``check_regression.py`` diffs against.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro import __version__
from repro.experiments.setup import (  # noqa: F401
    ALPHA,
    TOTAL_LINK_RATE,
    WAVELENGTH_SWEEP,
    ThroughputPoint,
    abilene_network,
    calibrated_jobs,
    random_network,
    shared_path_sets,
    throughput_pipeline,
)
from repro.workload.jobs import JobSet


def time_best_of(fn, repeats: int = 3):
    """(min seconds, last result) over ``repeats`` runs of ``fn``."""
    best, result = float("inf"), None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def booked_ahead(generator, num_jobs: int, arrival_mod: int, lead_slices: int):
    """Jobs submitted on a cycle, windows shifted ``lead_slices`` ahead."""
    jobs = []
    for i in range(num_jobs):
        job = generator.job(i, arrival=float(i % arrival_mod))
        jobs.append(
            replace(job, start=job.start + lead_slices, end=job.end + lead_slices)
        )
    return JobSet(jobs)


def bench_versions(**extra: str) -> dict:
    """The ``versions`` stanza shared by every ``BENCH_*.json``."""
    versions = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro": __version__,
    }
    versions.update(extra)
    return versions


def write_bench_document(path: Path, document: dict) -> None:
    """Write a benchmark JSON document the way ``check_regression.py``
    and the committed baselines expect (indent=2, trailing newline)."""
    path.write_text(json.dumps(document, indent=2) + "\n")
