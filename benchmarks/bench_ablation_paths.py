"""ABL-PATHS — How many allowed paths per job are enough?

Paper Section II-B.1 cites the earlier companion work: "a small number
of paths per job (4 to 8 paths) is usually enough for achieving very
good performance."  This ablation sweeps ``k`` on both test topologies
and reports two metrics:

* the aggregate weighted throughput the network can carry (stage-2 LP
  with no fairness floor) — the "performance" the claim is about;
* the stage-1 ``Z*`` — far more sensitive to ``k``, because it is the
  *minimum* over jobs and a single poorly-connected job drags it down.
"""

import pytest

from repro import ProblemStructure, TimeGrid, solve_stage1, solve_stage2_lp
from repro.analysis import Table
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import abilene_network, random_network

SEED = 707
K_SWEEP = (1, 2, 4, 8)
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


def metrics_at_k(network, jobs, k):
    grid = TimeGrid.covering(jobs.max_end())
    structure = ProblemStructure(network, jobs, grid, k_paths=k)
    zstar = solve_stage1(structure).zstar
    # alpha = 1 removes the fairness floor: pure carrying capacity.
    aggregate = solve_stage2_lp(structure, zstar, alpha=1.0).objective
    return zstar, aggregate


@pytest.mark.parametrize(
    "name,make_network,num_jobs,k4_threshold",
    [
        # A degree-4 random graph keeps gaining capacity from extra paths
        # longer than a dense backbone does; the saturation point the
        # paper quotes (4-8 paths) sits at the low end for Abilene and
        # the high end for sparse random graphs.
        ("random-100", lambda: random_network(100, seed=SEED).with_wavelengths(4, 20.0), 80, 0.85),
        ("abilene", lambda: abilene_network().with_wavelengths(4, 20.0), 40, 0.95),
    ],
)
def test_paths_sweep(benchmark, report, name, make_network, num_jobs, k4_threshold):
    network = make_network()
    jobs = WorkloadGenerator(network, CONFIG, seed=SEED + 1).jobs(num_jobs)

    points = {k: metrics_at_k(network, jobs, k) for k in K_SWEEP}
    table = Table(
        ["k paths", "Z*", "aggregate throughput", "agg / agg(k=8)"],
        title=f"ABL-PATHS — allowed paths per job, {name} ({num_jobs} jobs)",
    )
    agg8 = points[8][1]
    for k in K_SWEEP:
        zstar, agg = points[k]
        table.add_row([k, round(zstar, 4), round(agg, 4), round(agg / agg8, 4)])
    report(table)

    # More paths never hurt either metric.
    for a, b in zip(K_SWEEP, K_SWEEP[1:]):
        assert points[b][0] >= points[a][0] - 1e-9
        assert points[b][1] >= points[a][1] - 1e-7
    # The paper's claim: k = 4 achieves nearly the k = 8 performance.
    assert points[4][1] >= k4_threshold * agg8
    # Diminishing returns: each path doubling adds less than the last.
    increments = [
        points[b][1] - points[a][1] for a, b in zip(K_SWEEP, K_SWEEP[1:])
    ]
    assert increments == sorted(increments, reverse=True)
    # Multipath matters: a single path leaves real capacity unused.
    assert points[1][1] < 0.98 * agg8

    benchmark.pedantic(
        metrics_at_k, args=(network, jobs, 4), rounds=2, iterations=1
    )
