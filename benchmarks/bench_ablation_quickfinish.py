"""ABL-QF — The Quick-Finish objective vs a flat cost in SUB-RET.

Paper Section II-C: the Quick-Finish cost ``gamma(j) = j + 1`` makes the
solution "pack more flows in earlier time slices, but leaves the network
load light to better accommodate future job requests."  This ablation
solves the same SUB-RET instances with the QF cost and with a flat cost
(``gamma == 1``), and compares average end times and how much volume
lands in the first half of the horizon.
"""

import numpy as np
import pytest

from repro import ProblemStructure, TimeGrid
from repro.analysis import Table
from repro.core.metrics import average_end_time, per_slice_delivery
from repro.core.ret import solve_subret_lp
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 808
CONFIG = WorkloadConfig(
    size_low=20.0,
    size_high=80.0,
    window_slices_low=4,
    window_slices_high=8,
    start_slack_slices=0,
)


def flat_gamma(j):
    return np.ones_like(np.asarray(j), dtype=float)


def run(structure, gamma):
    solution = solve_subret_lp(structure, gamma)
    delivery = per_slice_delivery(structure, solution.x)
    half = structure.grid.num_slices // 2
    early_share = float(delivery[:, :half].sum() / max(delivery.sum(), 1e-12))
    return {
        "avg_end": average_end_time(structure, solution.x),
        "early_share": early_share,
    }


@pytest.fixture(scope="module")
def instances():
    network = random_network(60, seed=SEED).with_wavelengths(4, 20.0)
    out = []
    for seed in (1, 2, 3):
        jobs = WorkloadGenerator(network, CONFIG, seed=SEED + seed).jobs(15)
        grid = TimeGrid.covering(jobs.max_end())
        out.append(ProblemStructure(network, jobs, grid, 4))
    return out


def test_quick_finish_vs_flat(benchmark, report, instances):
    from repro.core.ret import quick_finish_gamma

    table = Table(
        [
            "instance",
            "avg end QF",
            "avg end flat",
            "early-half share QF",
            "early-half share flat",
        ],
        title="ABL-QF — Quick-Finish gamma(j)=j+1 vs flat gamma=1 (SUB-RET LP)",
    )
    qf_better_or_equal = 0
    for k, structure in enumerate(instances):
        qf = run(structure, quick_finish_gamma)
        flat = run(structure, flat_gamma)
        table.add_row(
            [
                k,
                round(qf["avg_end"], 2),
                round(flat["avg_end"], 2),
                round(qf["early_share"], 3),
                round(flat["early_share"], 3),
            ]
        )
        # QF must front-load at least as much volume as the flat cost.
        assert qf["early_share"] >= flat["early_share"] - 1e-9
        if qf["avg_end"] <= flat["avg_end"] + 1e-9:
            qf_better_or_equal += 1
    report(table)

    # QF should finish earlier (or tie) on every instance.
    assert qf_better_or_equal == len(instances)

    from repro.core.ret import quick_finish_gamma as qf_gamma

    benchmark.pedantic(
        run, args=(instances[0], qf_gamma), rounds=2, iterations=1
    )
