"""EXACT — LPDAR's true optimality gap on small instances.

The paper could not run an exact integer solver ("this takes too long")
and used the LP relaxation as an upper bound.  On *small* instances
HiGHS-MIP terminates, so this benchmark closes the paper's open loop:
how much of the LPDAR-vs-LP gap is real suboptimality, and how much is
the LP bound being loose?

Reported per instance: weighted throughput of LPD / LPDAR / exact MILP /
LP (all normalized by LP), plus the exact solve time versus the LPDAR
time — the scaling argument for why the heuristic exists at all.
"""

import time

import pytest

from repro import (
    ProblemStructure,
    TimeGrid,
    lpdar,
    solve_stage1,
    solve_stage2_exact,
    solve_stage2_lp,
)
from repro.analysis import Table
from repro.errors import InfeasibleProblemError
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 1111
ALPHA = 0.4  # generous slack so the small integer programs stay feasible
CONFIG = WorkloadConfig(
    size_low=10.0,
    size_high=60.0,
    window_slices_low=2,
    window_slices_high=4,
    start_slack_slices=1,
)


def build_instance(seed, num_jobs=8):
    network = random_network(num_nodes=15, seed=seed).with_wavelengths(2, 20.0)
    jobs = WorkloadGenerator(network, CONFIG, seed=seed + 1).jobs(num_jobs)
    grid = TimeGrid.covering(jobs.max_end())
    return ProblemStructure(network, jobs, grid, k_paths=3)


def run_comparison(structure):
    zstar = solve_stage1(structure).zstar
    t0 = time.perf_counter()
    stage2 = solve_stage2_lp(structure, zstar, alpha=ALPHA)
    rounded = lpdar(structure, stage2.x)
    t_heuristic = time.perf_counter() - t0

    t1 = time.perf_counter()
    exact = solve_stage2_exact(structure, zstar, alpha=ALPHA, time_limit=60.0)
    t_exact = time.perf_counter() - t1

    wt = structure.weighted_throughput
    lp = wt(rounded.x_lp)
    return {
        "lpd": wt(rounded.x_lpd) / lp,
        "lpdar": wt(rounded.x_lpdar) / lp,
        "exact": wt(exact.x) / lp,
        "t_heuristic": t_heuristic,
        "t_exact": t_exact,
    }


def test_exact_optimality_gap(benchmark, report):
    table = Table(
        [
            "instance",
            "LPD/LP",
            "LPDAR/LP",
            "MILP/LP",
            "LPDAR/MILP",
            "heuristic s",
            "exact s",
        ],
        title="EXACT — LPDAR vs the true integer optimum (15-node instances)",
    )
    gaps = []
    for k, seed in enumerate((21, 22, 23)):
        structure = build_instance(seed)
        try:
            point = run_comparison(structure)
        except InfeasibleProblemError:
            # Fairness floor unsatisfiable in integers even at this alpha
            # (Remark 1's scenario) — skip the instance.
            continue
        ratio = point["lpdar"] / point["exact"]
        gaps.append(ratio)
        table.add_row(
            [
                k,
                round(point["lpd"], 4),
                round(point["lpdar"], 4),
                round(point["exact"], 4),
                round(ratio, 4),
                round(point["t_heuristic"], 4),
                round(point["t_exact"], 4),
            ]
        )
        # Exact integer optimum is bounded by the LP relaxation.
        assert point["exact"] <= 1.0 + 1e-7
    report(table)

    assert gaps, "every instance was integer-infeasible; lower ALPHA contention"
    # The paper's claim: only a "small loss of optimality".
    assert min(gaps) >= 0.85
    assert sum(gaps) / len(gaps) >= 0.9

    structure = build_instance(21)
    benchmark.pedantic(run_comparison, args=(structure,), rounds=2, iterations=1)
