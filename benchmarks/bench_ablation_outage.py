"""ABL-OUTAGE — Throughput resilience under time-varying capacity C_e(j).

The capacity constraint (3) is per slice, so the framework natively
reroutes around drained links.  This ablation sweeps the severity of a
maintenance campaign (number of simultaneously drained link pairs on
random slices) and reports how gracefully Z* and the LPDAR throughput
degrade — and that LPDAR keeps tracking the LP bound throughout.
"""

import numpy as np
import pytest

from repro import (
    CapacityProfile,
    ProblemStructure,
    TimeGrid,
    lpdar,
    solve_stage1,
    solve_stage2_lp,
)
from repro.analysis import Table
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network, shared_path_sets

SEED = 1515
NUM_JOBS = 60
OUTAGE_SWEEP = (0, 4, 8, 16)
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


def drained_profile(network, grid, num_pairs, rng):
    """Drain ``num_pairs`` random link pairs for a random 2-slice window."""
    if num_pairs == 0:
        return None
    pairs = [
        (e.source, e.target)
        for e in network.edges
        if network.node_index(e.source) < network.node_index(e.target)
    ]
    chosen = rng.choice(len(pairs), size=num_pairs, replace=False)
    windows = []
    for idx in chosen:
        u, v = pairs[int(idx)]
        start = float(rng.integers(0, max(grid.num_slices - 2, 1)))
        windows.append((u, v, start, start + 2.0, 0))
    return CapacityProfile.with_maintenance(network, grid, windows)


def outage_point(network, jobs, paths, grid, profile):
    structure = ProblemStructure(
        network, jobs, grid, 4, path_sets=paths, capacity_profile=profile
    )
    zstar = solve_stage1(structure).zstar
    stage2 = solve_stage2_lp(structure, zstar, alpha=0.1)
    rounded = lpdar(structure, stage2.x)
    wt = structure.weighted_throughput
    return {
        "zstar": zstar,
        "lp": wt(rounded.x_lp),
        "lpdar": wt(rounded.x_lpdar),
    }


def test_outage_resilience(benchmark, report):
    network = random_network(num_nodes=60, seed=SEED).with_wavelengths(4, 20.0)
    jobs = WorkloadGenerator(network, CONFIG, seed=SEED + 1).jobs(NUM_JOBS)
    paths = shared_path_sets(network, jobs)
    grid = TimeGrid.covering(jobs.max_end())
    rng = np.random.default_rng(SEED + 2)

    table = Table(
        ["drained pairs", "outage cells %", "Z*", "LP", "LPDAR", "LPDAR/LP"],
        title=(
            "ABL-OUTAGE — maintenance severity sweep "
            f"(60-node random net, {NUM_JOBS} jobs)"
        ),
    )
    zstars = []
    for num_pairs in OUTAGE_SWEEP:
        profile = drained_profile(network, grid, num_pairs, rng)
        point = outage_point(network, jobs, paths, grid, profile)
        zstars.append(point["zstar"])
        outage = profile.outage_fraction() if profile is not None else 0.0
        table.add_row(
            [
                num_pairs,
                round(100 * outage, 1),
                round(point["zstar"], 3),
                round(point["lp"], 3),
                round(point["lpdar"], 3),
                round(point["lpdar"] / point["lp"], 3),
            ]
        )
        # LPDAR keeps tracking the LP bound under outages.
        assert point["lpdar"] >= 0.85 * point["lp"]
    report(table)

    # More drained pairs can never raise the achievable throughput.
    for a, b in zip(zstars, zstars[1:]):
        assert b <= a + 1e-9

    profile = drained_profile(network, grid, 8, np.random.default_rng(SEED + 3))
    benchmark.pedantic(
        outage_point,
        args=(network, jobs, paths, grid, profile),
        rounds=2,
        iterations=1,
    )
