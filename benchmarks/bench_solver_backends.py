"""SOLVER — HiGHS vs the from-scratch simplex on the paper's stage-1 LP.

The framework treats its LP solver as a substitutable component (CPLEX
in the paper, HiGHS here, a pure-Python tableau simplex as the audit
backend).  This benchmark checks the backends agree on the optimum and
measures the price of the readable implementation — motivating why the
default backend is HiGHS even though the simplex suffices for small
instances.
"""

import time

import pytest

from repro import ProblemStructure, TimeGrid, solve_lp
from repro.core.throughput import build_stage1_lp
from repro.lp.simplex import simplex_solve
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network, shared_path_sets

SEED = 1818
JOB_SWEEP = (2, 4, 8)
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=3, start_slack_slices=1
)


def build_instance(network, num_jobs, seed):
    jobs = WorkloadGenerator(network, CONFIG, seed=seed).jobs(num_jobs)
    paths = shared_path_sets(network, jobs, 2)
    grid = TimeGrid.covering(jobs.max_end())
    structure = ProblemStructure(network, jobs, grid, 2, path_sets=paths)
    return build_stage1_lp(structure)


def compare_backends(lp):
    t0 = time.perf_counter()
    highs = solve_lp(lp)
    t_highs = time.perf_counter() - t0
    t1 = time.perf_counter()
    simplex = simplex_solve(lp)
    t_simplex = time.perf_counter() - t1
    return {
        "highs_obj": highs.objective,
        "simplex_obj": simplex.objective,
        "t_highs": t_highs,
        "t_simplex": t_simplex,
        "pivots": simplex.iterations,
    }


@pytest.fixture(scope="module")
def network():
    return random_network(num_nodes=15, seed=SEED).with_wavelengths(2, 20.0)


def test_backend_agreement_and_cost(benchmark, report, network):
    from repro.analysis import Table

    table = Table(
        ["jobs", "Z* (HiGHS)", "Z* (simplex)", "pivots",
         "HiGHS (s)", "simplex (s)", "slowdown"],
        title="SOLVER — HiGHS vs from-scratch simplex, stage-1 LP",
    )
    for num_jobs in JOB_SWEEP:
        lp = build_instance(network, num_jobs, SEED + num_jobs)
        point = compare_backends(lp)
        # The audit property: identical optima.
        assert point["simplex_obj"] == pytest.approx(
            point["highs_obj"], abs=1e-7
        )
        table.add_row(
            [
                num_jobs,
                round(point["highs_obj"], 4),
                round(point["simplex_obj"], 4),
                point["pivots"],
                round(point["t_highs"], 4),
                round(point["t_simplex"], 4),
                round(point["t_simplex"] / max(point["t_highs"], 1e-9), 1),
            ]
        )
    report(table)

    lp = build_instance(network, JOB_SWEEP[-1], SEED + JOB_SWEEP[-1])
    benchmark.pedantic(compare_backends, args=(lp,), rounds=2, iterations=1)
