"""Benchmark-harness plumbing: table reporting that survives capture.

Benchmarks print paper-style tables.  pytest captures stdout, so tables
are instead collected through the ``report`` fixture and emitted in the
terminal summary, where they are always visible (including in
``bench_output.txt``).
"""

from __future__ import annotations

import pytest

from repro.analysis import Table

_TABLES: list[Table] = []


@pytest.fixture
def report():
    """Callable fixture: ``report(table)`` queues a table for the summary."""

    def _record(table: Table) -> None:
        _TABLES.append(table)

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "paper reproduction tables")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.render().splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
