"""ABL-DISJ — Yen's k-shortest paths vs edge-disjoint path sets.

The paper routes each job over its k shortest loopless paths, which may
share links (they usually do).  Survivability practice prefers
edge-disjoint sets: a fiber cut then degrades a job instead of stalling
it.  This ablation quantifies the throughput premium paid for
disjointness — disjoint sets are smaller and their members longer, so
the LP has less routing freedom — on both test topologies.
"""

import pytest

from repro import ProblemStructure, TimeGrid, solve_stage1, solve_stage2_lp
from repro.analysis import Table
from repro.network.paths import build_path_sets
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import abilene_network, random_network

SEED = 2121
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


def throughput_with_paths(network, jobs, disjoint):
    paths = build_path_sets(network, jobs.od_pairs(), 4, disjoint=disjoint)
    grid = TimeGrid.covering(jobs.max_end())
    structure = ProblemStructure(network, jobs, grid, 4, path_sets=paths)
    zstar = solve_stage1(structure).zstar
    aggregate = solve_stage2_lp(structure, zstar, alpha=1.0).objective
    mean_paths = float(
        sum(len(p) for p in structure.paths) / len(structure.paths)
    )
    return zstar, aggregate, mean_paths


@pytest.mark.parametrize(
    "name,make_network,num_jobs",
    [
        ("random-60", lambda: random_network(60, seed=SEED).with_wavelengths(4, 20.0), 50),
        ("abilene", lambda: abilene_network().with_wavelengths(4, 20.0), 40),
    ],
)
def test_disjoint_vs_yen(benchmark, report, name, make_network, num_jobs):
    network = make_network()
    jobs = WorkloadGenerator(network, CONFIG, seed=SEED + 1).jobs(num_jobs)

    z_yen, agg_yen, paths_yen = throughput_with_paths(network, jobs, False)
    z_dis, agg_dis, paths_dis = throughput_with_paths(network, jobs, True)

    table = Table(
        ["path policy", "mean paths/job", "Z*", "aggregate throughput"],
        title=f"ABL-DISJ — Yen vs edge-disjoint path sets, {name}",
    )
    table.add_row(["yen k=4", round(paths_yen, 2), round(z_yen, 4), round(agg_yen, 4)])
    table.add_row(
        ["edge-disjoint", round(paths_dis, 2), round(z_dis, 4), round(agg_dis, 4)]
    )
    report(table)

    # Disjoint sets are no larger than Yen's...
    assert paths_dis <= paths_yen + 1e-9
    # ...and cannot carry more (their paths are a restricted choice set
    # only when smaller; equality is possible on sparse graphs).
    assert agg_dis <= agg_yen * 1.05
    # The survivability premium stays moderate on these topologies.
    assert agg_dis >= 0.6 * agg_yen

    benchmark.pedantic(
        throughput_with_paths, args=(network, jobs, True), rounds=2, iterations=1
    )
