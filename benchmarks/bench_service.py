"""SRV — the reservation front-end under a 100k-request arrival storm.

The service (``docs/service.md``) promises that overload hardening is
*cheap* and *lossless*: a bounded queue plus a token bucket shed the
bulk of a storm in O(1) per request with an explicit
``Rejected(reason="overload")``, while every request that reaches a
decision epoch is admitted against the paper's feasibility machinery
and — once accepted — is delivered in full.  This benchmark pins the
numbers behind that claim:

* **Overload stream (Abilene)** — ``STREAM_EPOCHS * STREAM_PER_EPOCH``
  (>= ``REQUESTS_FLOOR`` = 100k) requests arrive in per-epoch bursts
  roughly 300x the token-bucket rate.  The run reports sustained
  admissions/sec, decisions/sec and p50/p99 decision latency, and
  asserts the robustness invariants: every submission gets exactly one
  response, and **zero accepted reservations are lost** (every
  commitment completes).
* **Journaled stream (Abilene)** — the same shape with the write-ahead
  batch journal on: the durable decisions/sec rate, plus proof that the
  journal replays — ``ReservationService.resume`` on the finished
  journal must rebuild a commitment book with the identical canonical
  digest.

The admitted load is deliberately calibrated below the starvation edge
(``STREAM_RATE`` per epoch on Abilene): admission guarantees *fluid*
feasibility (Z* >= 1), but the executed LPDAR schedule is integer, so a
front door that admits right at capacity can strand small commitments.
Keeping the bucket rate conservative is exactly the knob the service
exposes for that, and the zero-lost assertion here gates it.

Results are written to ``BENCH_service.json`` at the repo root, which
CI diffs against the committed baseline
(``benchmarks/check_regression.py``, ``score`` cases) and uploads as an
artifact.  Runs under pytest (the CI gate) or as a plain script::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analysis import Table
from repro.service import ReservationService

from _support import abilene_network, bench_versions, write_bench_document

SEED = 1009
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Acceptance floor on the arrival-stream size (ISSUE 7: the SLO
#: numbers must hold "under a >= 100k-job arrival stream").
REQUESTS_FLOOR = 100_000

#: Fractional score loss ``check_regression.py`` tolerates before a
#: case counts as regressed.  Scores are absolute rates (requests/sec
#: of one streaming pass), far noisier across runners than the engine
#: bench's same-process speedup ratios — hence much looser than the
#: default 25%.
SCORE_TOLERANCE = 0.5

#: The storm: per-epoch bursts ~300x the bucket rate, 50 epochs.
STREAM_EPOCHS = 50
STREAM_PER_EPOCH = 2400
STREAM_QUEUE_LIMIT = 64
STREAM_RATE = 8.0

#: The durable variant keeps the same shape but fewer requests — every
#: decided batch pays an fsync'd journal append.
JOURNAL_EPOCHS = 30
JOURNAL_PER_EPOCH = 400

#: Request mix: single-wavelength-slice transfers (Abilene delivers 20
#: units per wavelength-slice) with windows of 6-11 slices.
SIZE_LOW, SIZE_HIGH = 4.0, 18.0
WINDOW_LOW, WINDOW_HIGH = 6, 12
START_SLACK = 3


def _request_stream(network, epochs, per_epoch):
    """Per-epoch batches of request dicts (pre-generated: the timed
    loop measures the service, not the RNG)."""
    rng = np.random.default_rng(SEED)
    nodes = list(network.nodes)
    batches, rid = [], 0
    for epoch in range(epochs):
        now = float(epoch)
        batch = []
        for _ in range(per_epoch):
            s, d = rng.choice(len(nodes), size=2, replace=False)
            start = now + float(rng.integers(0, START_SLACK))
            batch.append({
                "id": f"q{rid}",
                "source": nodes[s],
                "dest": nodes[d],
                "size": float(rng.uniform(SIZE_LOW, SIZE_HIGH)),
                "start": start,
                "end": start + float(rng.integers(WINDOW_LOW, WINDOW_HIGH)),
                "arrival": now,
            })
            rid += 1
        batches.append(batch)
    return batches


async def _serve(service, batches):
    for batch in batches:
        for request in batch:
            service.submit(request)
        await service.tick()
    while not service.idle:
        await service.tick()


def _run_stream(batches, **service_kwargs):
    """One streaming pass; (seconds, service) with the service closed."""
    service = ReservationService(
        abilene_network(),
        queue_limit=STREAM_QUEUE_LIMIT,
        rate=STREAM_RATE,
        **service_kwargs,
    )
    t0 = time.perf_counter()
    asyncio.run(_serve(service, batches))
    seconds = time.perf_counter() - t0
    service.close()
    return seconds, service


def _assert_slos(service, total_requests):
    """The robustness invariants every case must clear."""
    c = service.stats.counters
    responded = c["decided"] + c["shed"] + c["invalid"]
    assert c["submitted"] == total_requests
    assert responded == total_requests, (
        f"{total_requests - responded} submissions never got a response"
    )
    assert c["accepted"] > 0, "the storm starved out every admission"
    assert service.book.num_lost == 0, (
        f"{service.book.num_lost} accepted reservations were lost "
        "(expired or voided without renegotiation)"
    )
    for key, reservation in service.book.reservations.items():
        assert reservation.status == "completed", (
            f"reservation {key} ended {reservation.status} with "
            f"{reservation.remaining} undelivered"
        )


def _case_dict(seconds, service, total_requests, extra=None):
    snap = service.stats.snapshot()
    case = {
        "seconds": round(seconds, 4),
        "score": round(snap["decisions_per_sec"], 1),
        "metrics": {
            "requests": total_requests,
            "epochs": int(service.epoch),
            "submitted": snap["submitted"],
            "accepted": snap["accepted"],
            "rejected": snap["rejected"],
            "negotiated": snap["negotiated"],
            "shed": snap["shed"],
            "lost": service.book.num_lost,
            "admissions_per_sec": round(snap["admissions_per_sec"], 2),
            "decisions_per_sec": round(snap["decisions_per_sec"], 1),
            "p50_decision_latency_s": round(
                snap["p50_decision_latency_s"], 6
            ),
            "p99_decision_latency_s": round(
                snap["p99_decision_latency_s"], 6
            ),
            "shed_rate": round(snap["shed_rate"], 4),
        },
    }
    if extra:
        case["metrics"].update(extra)
    return case


def _case_overload_stream():
    """>= 100k requests against the undurable front door."""
    network = abilene_network()
    batches = _request_stream(network, STREAM_EPOCHS, STREAM_PER_EPOCH)
    total = sum(len(b) for b in batches)
    assert total >= REQUESTS_FLOOR, (
        f"stream of {total} requests is below the {REQUESTS_FLOOR} floor"
    )
    seconds, service = _run_stream(batches)
    _assert_slos(service, total)
    return _case_dict(seconds, service, total)


def _case_journaled_stream():
    """The durable front door, plus a replay check on its journal."""
    network = abilene_network()
    batches = _request_stream(network, JOURNAL_EPOCHS, JOURNAL_PER_EPOCH)
    total = sum(len(b) for b in batches)
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "service.jsonl"
        seconds, service = _run_stream(batches, journal=journal)
        _assert_slos(service, total)
        digest = service.book.digest()
        journal_bytes = journal.stat().st_size

        # Durability evidence: the write-ahead journal alone rebuilds
        # the identical commitment book.
        resumed = ReservationService.resume(str(journal))
        assert resumed.book.digest() == digest, (
            "journal replay diverged from the live commitment book"
        )
        assert resumed.book.ledger == service.book.ledger
        resumed.close()
    return _case_dict(
        seconds, service, total,
        extra={"journal_bytes": journal_bytes, "replay_digest_ok": True},
    )


def run_service_bench() -> dict:
    """Run all cases and return the ``BENCH_service.json`` document."""
    return {
        "schema": 1,
        "suite": "service-slo",
        "tolerance": SCORE_TOLERANCE,
        "requests_floor": REQUESTS_FLOOR,
        "versions": bench_versions(),
        "cases": {
            "overload_stream_abilene": _case_overload_stream(),
            "journaled_stream_abilene": _case_journaled_stream(),
        },
    }


def _as_table(document: dict) -> Table:
    table = Table(
        [
            "case", "requests", "seconds", "decisions/s", "admissions/s",
            "p99 (ms)", "shed", "lost",
        ],
        title="SRV — reservation front-end SLOs",
    )
    for name, case in document["cases"].items():
        m = case["metrics"]
        table.add_row([
            name,
            m["requests"],
            case["seconds"],
            m["decisions_per_sec"],
            m["admissions_per_sec"],
            round(m["p99_decision_latency_s"] * 1e3, 2),
            f"{m['shed_rate']:.1%}",
            m["lost"],
        ])
    return table


def test_service_slos(report):
    document = run_service_bench()
    write_bench_document(BENCH_PATH, document)
    report(_as_table(document))

    stream = document["cases"]["overload_stream_abilene"]["metrics"]
    assert stream["requests"] >= REQUESTS_FLOOR
    assert stream["lost"] == 0
    assert document["cases"]["journaled_stream_abilene"]["metrics"][
        "replay_digest_ok"
    ]


if __name__ == "__main__":
    doc = run_service_bench()
    write_bench_document(BENCH_PATH, doc)
    print(_as_table(doc).render())
    print(f"\nwrote {BENCH_PATH}")
