"""BASE — The optimization framework vs related-work reservation schemes.

Paper Sections I/IV argue the optimization-based formulation "will
translate into much greater resource efficiency" than the simpler
advance-reservation schemes in the literature.  This benchmark makes the
claim concrete on identical workloads:

* **LPDAR framework** (this paper): multipath, time-varying integer
  wavelength assignment, jointly re-optimized over all jobs;
* **malleable** ([25]-style): FCFS, single path, one contiguous
  constant-rate block per job;
* **avg-rate** ([23]-style): FCFS, single shortest path, constant
  reservation across the entire window.

Metric: volume delivered by the requested deadlines (admitted-and-
completed volume for the baselines; ``min(Z_i, 1) * D_i`` summed for the
framework) as a share of offered volume.
"""

import numpy as np
import pytest

from repro import (
    ProblemStructure,
    Scheduler,
    TimeGrid,
    average_rate_reservation,
    malleable_reservation,
)
from repro.analysis import Table
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 1212
NUM_JOBS = 40
CONFIG = WorkloadConfig(
    size_low=10.0,
    size_high=100.0,
    window_slices_low=2,
    window_slices_high=5,
    start_slack_slices=2,
)


def run_comparison(network, seed):
    jobs = WorkloadGenerator(network, CONFIG, seed=seed).jobs(NUM_JOBS)
    grid = TimeGrid.covering(jobs.max_end())
    offered = jobs.total_size()

    framework = Scheduler(network, k_paths=4).schedule(jobs, grid)
    framework_volume = float(framework.guaranteed_sizes("lpdar").sum())

    mall = malleable_reservation(network, jobs, grid, k_paths=4)
    mall_volume = mall.delivered_volume(jobs, network.wavelength_rate)

    avg = average_rate_reservation(network, jobs, grid)
    avg_volume = avg.delivered_volume(jobs, network.wavelength_rate)

    return {
        "offered": offered,
        "framework": framework_volume / offered,
        "malleable": mall_volume / offered,
        "avg_rate": avg_volume / offered,
        "mall_accept": mall.acceptance_rate(),
        "avg_accept": avg.acceptance_rate(),
    }


@pytest.fixture(scope="module")
def network():
    return random_network(num_nodes=60, seed=SEED).with_wavelengths(2, 20.0)


def test_framework_beats_baselines(benchmark, report, network):
    table = Table(
        [
            "instance",
            "offered GB",
            "LPDAR framework",
            "malleable [25]",
            "avg-rate [23]",
        ],
        title=(
            "BASE — volume delivered by deadline / offered volume "
            f"({NUM_JOBS} jobs, 60-node random net, W = 2)"
        ),
    )
    wins = 0
    rows = []
    for k, seed in enumerate((31, 32, 33, 34)):
        point = run_comparison(network, seed)
        rows.append(point)
        table.add_row(
            [
                k,
                round(point["offered"], 0),
                round(point["framework"], 3),
                round(point["malleable"], 3),
                round(point["avg_rate"], 3),
            ]
        )
        if point["framework"] >= max(point["malleable"], point["avg_rate"]):
            wins += 1
    report(table)

    # The framework wins on every instance...
    assert wins == len(rows)
    # ...and the margin over the rigid average-rate scheme is material.
    mean_framework = np.mean([r["framework"] for r in rows])
    mean_avg = np.mean([r["avg_rate"] for r in rows])
    assert mean_framework > 1.1 * mean_avg
    # Malleable beats avg-rate (flexibility ordering).
    mean_mall = np.mean([r["malleable"] for r in rows])
    assert mean_mall >= mean_avg - 1e-9

    benchmark.pedantic(run_comparison, args=(network, 31), rounds=2, iterations=1)
