"""ABL-GREEDY — Algorithm 1's visitation order and demand capping.

The paper's Algorithm 1 walks (slice, job, path) in fixed order and
grants each path *all* remaining bandwidth.  Two natural refinements:

* deficit-first: within each slice, serve the job with the largest
  unmet demand first;
* cap-at-target: never grant a path more than the job still needs
  (leaves the surplus for needier jobs).

This ablation compares the variants inside the RET pipeline, where
completion is what matters, reporting the fraction of jobs finished at
the *LP-minimal* extension ``b_hat`` (before any delta escalation).
"""

import numpy as np
import pytest

from repro import ProblemStructure, TimeGrid, fraction_finished, lpdar
from repro.analysis import Table
from repro.core.ret import solve_subret_lp
from repro.errors import InfeasibleProblemError
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 909
CONFIG = WorkloadConfig(
    size_low=40.0,
    size_high=200.0,
    window_slices_low=2,
    window_slices_high=5,
    start_slack_slices=2,
)

VARIANTS = (
    ("paper", False),
    ("paper", True),
    ("deficit_first", False),
    ("deficit_first", True),
)


def minimal_feasible_structure(network, jobs, b_lo=0.0, b_hi=20.0, tol=1e-3):
    """The SUB-RET structure/LP at the binary-search-minimal extension."""

    def attempt(b):
        extended = jobs.with_extended_ends(b)
        grid = TimeGrid.covering(extended.max_end())
        structure = ProblemStructure(network, extended, grid, 4)
        try:
            return structure, solve_subret_lp(structure)
        except InfeasibleProblemError:
            return None

    best = attempt(b_hi)
    assert best is not None, "instance infeasible even at b_hi"
    low_attempt = attempt(b_lo)
    if low_attempt is not None:
        return low_attempt
    lo, hi = b_lo, b_hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        result = attempt(mid)
        if result is None:
            lo = mid
        else:
            hi = mid
            best = result
    return best


def test_greedy_order_variants(benchmark, report):
    network = random_network(num_nodes=80, seed=SEED).with_wavelengths(2, 20.0)

    table = Table(
        ["instance", "order", "cap", "finished at b_hat", "total wavelengths"],
        title="ABL-GREEDY — Algorithm 1 variants inside RET (at the LP-minimal b)",
    )
    finished = {v: [] for v in VARIANTS}
    rng = np.random.default_rng(SEED)
    for k, seed in enumerate((11, 12, 13)):
        jobs = WorkloadGenerator(network, CONFIG, seed=seed).jobs(20)
        structure, lp_solution = minimal_feasible_structure(network, jobs)
        for order, cap in VARIANTS:
            rounded = lpdar(
                structure,
                lp_solution.x,
                order=order,
                cap_at_target=cap,
                rng=rng,
            )
            frac = fraction_finished(structure, rounded.x_lpdar)
            finished[(order, cap)].append(frac)
            table.add_row(
                [
                    k,
                    order,
                    cap,
                    f"{frac:.0%}",
                    int(rounded.x_lpdar.sum()),
                ]
            )
    report(table)

    def mean(v):
        return sum(finished[v]) / len(finished[v])

    # Capping at the demand target should never hurt completion.
    assert mean(("paper", True)) >= mean(("paper", False)) - 1e-9
    assert mean(("deficit_first", True)) >= mean(("deficit_first", False)) - 1e-9
    # The best variant completes (nearly) everything at b_hat already.
    best = max(mean(v) for v in VARIANTS)
    assert best >= 0.9

    jobs = WorkloadGenerator(network, CONFIG, seed=11).jobs(20)
    structure, lp_solution = minimal_feasible_structure(network, jobs)
    benchmark.pedantic(
        lpdar,
        args=(structure, lp_solution.x),
        kwargs={"order": "deficit_first", "cap_at_target": True},
        rounds=3,
        iterations=1,
    )
