"""SCALE — Solve time across the paper's network-size range (100-400 nodes).

Paper Section III: "The random networks that we use typically have
between 100 to 400 nodes, with an average node degree of 4" and the
framework is argued to be "fast enough for wavelength-switched
networks."  This benchmark sweeps the node count at a fixed workload and
reports the end-to-end pipeline time (stage 1 + stage 2 + LPDAR),
verifying the whole range stays interactive (well under the multi-
minute scheduling period ``tau`` the framework assumes).
"""

import time

import pytest

from repro import ProblemStructure, TimeGrid, lpdar, solve_stage1, solve_stage2_lp
from repro.analysis import Table
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network, shared_path_sets

SEED = 1414
NODE_SWEEP = (100, 200, 400)
NUM_JOBS = 60
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


def pipeline_time(network, jobs, paths):
    grid = TimeGrid.covering(jobs.max_end())
    t0 = time.perf_counter()
    structure = ProblemStructure(network, jobs, grid, 4, path_sets=paths)
    t_build = time.perf_counter() - t0

    t1 = time.perf_counter()
    zstar = solve_stage1(structure).zstar
    stage2 = solve_stage2_lp(structure, zstar, alpha=0.1)
    lpdar(structure, stage2.x)
    t_solve = time.perf_counter() - t1
    return {
        "build": t_build,
        "solve": t_solve,
        "total": t_build + t_solve,
        "cols": structure.num_cols,
        "cap_rows": structure.capacity_matrix.shape[0],
    }


def test_scalability_sweep(benchmark, report):
    table = Table(
        ["nodes", "link pairs", "variables", "cap rows", "build (s)",
         "solve (s)", "total (s)"],
        title=f"SCALE — pipeline time vs network size ({NUM_JOBS} jobs)",
    )
    totals = {}
    largest = None
    for num_nodes in NODE_SWEEP:
        network = random_network(num_nodes, seed=SEED).with_wavelengths(4, 20.0)
        jobs = WorkloadGenerator(network, CONFIG, seed=SEED + num_nodes).jobs(
            NUM_JOBS
        )
        paths = shared_path_sets(network, jobs)
        times = pipeline_time(network, jobs, paths)
        totals[num_nodes] = times["total"]
        table.add_row(
            [
                num_nodes,
                network.num_link_pairs,
                times["cols"],
                times["cap_rows"],
                round(times["build"], 3),
                round(times["solve"], 3),
                round(times["total"], 3),
            ]
        )
        largest = (network, jobs, paths)
    report(table)

    # The paper's operating assumption: scheduling completes well inside
    # the period tau (minutes).  Even at 400 nodes we demand seconds.
    assert totals[400] < 60.0

    network, jobs, paths = largest
    benchmark.pedantic(
        pipeline_time, args=(network, jobs, paths), rounds=2, iterations=1
    )
