"""PAR — fleet fan-out and decomposed solves: speedup with proof of equality.

The parallel layer (``docs/parallel.md``) promises two things at once:
a process-pool **fleet** that makes seeded sweeps faster on multi-core
machines, and **decomposed solves** whose merged schedule is equivalent
to the monolithic one.  Speed without equality would be worthless here
— a faster sweep that silently changes grants is a bug, not a win — so
every case in this benchmark gates correctness unconditionally and
speed only where the hardware can deliver it:

* **Fleet fuzz sweep** — ``FUZZ_COUNT`` seeded scenarios through
  ``run_fuzz`` with ``--jobs 1`` and with ``--jobs FLEET_JOBS``.  The
  rendered per-scenario reports must be byte-identical (seed-stride
  determinism), every scenario must pass its oracles, and — when the
  runner exposes at least ``MIN_GATE_CORES`` cores — the fleet pass
  must be at least ``TARGET_SPEEDUP``× faster.  On smaller machines
  the measured speedup is still recorded (with ``effective_cores`` so
  a reader can interpret it) but not hard-gated: a single-core box
  physically cannot show a parallel win, and pretending otherwise
  would just teach people to ignore the gate.
* **Sharded block solve** — a four-component block-diagonal instance
  through :class:`~repro.parallel.sharded.ShardedScheduler`
  (sequential, ``workers=1``) vs the monolithic
  :class:`~repro.core.scheduler.Scheduler`, gated by the
  shard-equivalence oracle
  (:func:`~repro.verify.oracles.sharded_vs_monolithic`).  The honest
  finding on one core is *overhead*, not speedup — HiGHS solves a
  block-diagonal LP about as fast as its blocks, and sequential
  sharding pays a per-shard structure rebuild on top — so the recorded
  ratio documents what decomposition costs where it cannot win, and
  the equivalence oracle is the gate that actually matters.

Results go to ``BENCH_parallel.json`` at the repo root; CI diffs the
document against the committed baseline (``check_regression.py``) and
uploads it as an artifact.  Runs under pytest (the CI gate) or as a
plain script::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.analysis import Table
from repro.network.graph import Network
from repro.verify.fuzz import run_fuzz
from repro.verify.oracles import sharded_vs_monolithic
from repro.workload import Job, JobSet

from _support import bench_versions, time_best_of, write_bench_document

SEED = 1009
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: ISSUE 8 acceptance target: the 4-worker fleet fuzz sweep must beat
#: the sequential sweep by this factor — enforced as a hard gate only
#: when the runner actually has ``MIN_GATE_CORES`` cores to spend.
TARGET_SPEEDUP = 1.8
MIN_GATE_CORES = 4
FLEET_JOBS = 4
FUZZ_COUNT = 24

#: Timing repeats (best-of); the fuzz sweep is deterministic, so
#: repeats only tighten the wall-clock estimate.
REPEATS = 2

#: Document-level regression tolerance.  Speedup ratios here depend on
#: the runner's core count (a 1-core baseline vs a 4-core fresh run and
#: vice versa), so the band is much looser than the engine bench's
#: same-process ratios.
TOLERANCE = 0.5

#: The sharded-solve instance: disjoint line components with a chord
#: rung, sized so the monolithic LP is non-trivial but the case stays
#: inside a CI-friendly wall-clock budget.
BLOCK_COMPONENTS = 4
BLOCK_CHAIN = 6
BLOCK_JOBS_PER = 12
BLOCK_SLICES = 10
BLOCK_K_PATHS = 2


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _block_instance():
    """Disjoint line components → ``BLOCK_COMPONENTS`` conflict shards."""
    net = Network(wavelength_rate=5.0)
    for c in range(BLOCK_COMPONENTS):
        for i in range(BLOCK_CHAIN - 1):
            net.add_link_pair(f"c{c}n{i}", f"c{c}n{i + 1}", capacity=3)
    rng = np.random.default_rng(SEED)
    jobs = []
    for c in range(BLOCK_COMPONENTS):
        for j in range(BLOCK_JOBS_PER):
            i0 = int(rng.integers(0, BLOCK_CHAIN - 1))
            i1 = int(rng.integers(i0 + 1, BLOCK_CHAIN))
            start = float(rng.integers(0, BLOCK_SLICES - 3))
            end = float(rng.integers(start + 2, BLOCK_SLICES)) + 1.0
            jobs.append(
                Job(
                    id=f"c{c}j{j}",
                    source=f"c{c}n{i0}",
                    dest=f"c{c}n{i1}",
                    size=float(rng.uniform(2.0, 14.0)),
                    start=start,
                    end=end,
                )
            )
    return net, JobSet(jobs)


def _case_fleet_fuzz() -> dict:
    """Sequential vs 4-worker fuzz sweep; reports must be identical."""
    serial_s, serial = time_best_of(
        lambda: run_fuzz(FUZZ_COUNT, seed=SEED, jobs=1), repeats=REPEATS
    )
    fleet_s, fleet = time_best_of(
        lambda: run_fuzz(FUZZ_COUNT, seed=SEED, jobs=FLEET_JOBS), repeats=REPEATS
    )
    cores = _effective_cores()
    return {
        "speedup": round(serial_s / fleet_s, 3),
        "serial_seconds": round(serial_s, 4),
        "fleet_seconds": round(fleet_s, 4),
        "metrics": {
            "count": FUZZ_COUNT,
            "jobs": FLEET_JOBS,
            "effective_cores": cores,
            "gated": cores >= MIN_GATE_CORES,
            "target_speedup": TARGET_SPEEDUP,
            "serial_ok": serial.ok,
            "fleet_ok": fleet.ok,
            "reports_identical": serial.render() == fleet.render(),
        },
    }


def _case_sharded_block() -> dict:
    """Sequential sharded vs monolithic solve on a block instance."""
    from repro.core.scheduler import Scheduler
    from repro.parallel import ShardedScheduler

    net, jobs = _block_instance()
    mono_s, _ = time_best_of(
        lambda: Scheduler(net, k_paths=BLOCK_K_PATHS).schedule(jobs),
        repeats=REPEATS,
    )
    sharded_s, _ = time_best_of(
        lambda: ShardedScheduler(net, k_paths=BLOCK_K_PATHS, workers=1).schedule(jobs),
        repeats=REPEATS,
    )
    equivalence = sharded_vs_monolithic(net, jobs, k_paths=BLOCK_K_PATHS)
    return {
        "speedup": round(mono_s / sharded_s, 3),
        "monolithic_seconds": round(mono_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "metrics": {
            "num_shards": equivalence.num_shards,
            "equivalence_ok": equivalence.ok,
            "grant_identical": equivalence.grant_identical,
            "zstar_monolithic": equivalence.zstar_monolithic,
            "zstar_sharded": equivalence.zstar_sharded,
        },
    }


def run_parallel_bench() -> dict:
    """Run all cases and return the ``BENCH_parallel.json`` document."""
    return {
        "schema": 1,
        "suite": "parallel-speedup",
        "tolerance": TOLERANCE,
        "target_fleet_speedup": TARGET_SPEEDUP,
        "min_gate_cores": MIN_GATE_CORES,
        "effective_cores": _effective_cores(),
        "versions": bench_versions(),
        "cases": {
            "fleet_fuzz_sweep_4workers": _case_fleet_fuzz(),
            "sharded_block_solve": _case_sharded_block(),
        },
    }


def _as_table(document: dict) -> Table:
    table = Table(
        ["case", "speedup", "equal", "cores"],
        title="PAR — fleet fan-out and decomposed solves",
    )
    fleet = document["cases"]["fleet_fuzz_sweep_4workers"]
    block = document["cases"]["sharded_block_solve"]
    table.add_row(
        [
            "fleet_fuzz_sweep_4workers",
            f"{fleet['speedup']}x",
            fleet["metrics"]["reports_identical"],
            fleet["metrics"]["effective_cores"],
        ]
    )
    table.add_row(
        [
            "sharded_block_solve",
            f"{block['speedup']}x",
            block["metrics"]["equivalence_ok"],
            document["effective_cores"],
        ]
    )
    return table


def _assert_document(document: dict) -> None:
    fleet = document["cases"]["fleet_fuzz_sweep_4workers"]
    assert fleet["metrics"]["serial_ok"], "sequential fuzz sweep failed"
    assert fleet["metrics"]["fleet_ok"], "fleet fuzz sweep failed"
    assert fleet["metrics"]["reports_identical"], (
        "fleet fuzz report differs from the sequential report — "
        "seed-stride determinism is broken"
    )
    if fleet["metrics"]["gated"]:
        assert fleet["speedup"] >= TARGET_SPEEDUP, (
            f"fleet fuzz speedup {fleet['speedup']}x is below the "
            f"{TARGET_SPEEDUP}x floor on a "
            f"{fleet['metrics']['effective_cores']}-core runner"
        )
    block = document["cases"]["sharded_block_solve"]
    assert block["metrics"]["equivalence_ok"], (
        "sharded solve is not equivalent to the monolithic solve"
    )
    # The conflict-graph partition is at least as fine as the network
    # components — disjoint time blocks inside a component split further.
    assert block["metrics"]["num_shards"] >= BLOCK_COMPONENTS


def test_parallel_speedup(report):
    document = run_parallel_bench()
    write_bench_document(BENCH_PATH, document)
    report(_as_table(document))
    _assert_document(document)


if __name__ == "__main__":
    doc = run_parallel_bench()
    write_bench_document(BENCH_PATH, doc)
    print(_as_table(doc).render())
    print(f"\nwrote {BENCH_PATH}")
    _assert_document(doc)
