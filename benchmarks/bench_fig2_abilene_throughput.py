"""Fig. 2 — Throughput of LP / LPD / LPDAR on the Abilene network.

Paper setup: Abilene backbone, 11 nodes, 20 link pairs, 20 Gbps links,
same wavelength sweep as Fig. 1.

Expected shape (paper): LPD ~ 0.6 at W = 2; LPDAR nearly identical to LP
across the whole sweep (the improvement is *more* dramatic than on the
random network because Abilene's few, highly shared links give the
greedy pass dense refill opportunities).
"""

import pytest

from repro.analysis import Table
from repro.workload import WorkloadConfig

from _support import (
    WAVELENGTH_SWEEP,
    abilene_network,
    calibrated_jobs,
    shared_path_sets,
    throughput_pipeline,
)

NUM_JOBS = 60
SEED = 202
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


@pytest.fixture(scope="module")
def instance():
    network = abilene_network()
    jobs = calibrated_jobs(
        network, NUM_JOBS, seed=SEED, target_zstar=0.9, config=CONFIG
    )
    paths = shared_path_sets(network, jobs)
    return network, jobs, paths


def test_fig2_abilene_sweep(benchmark, report, instance):
    network, jobs, paths = instance

    points = [
        throughput_pipeline(network, jobs, w, path_sets=paths)
        for w in WAVELENGTH_SWEEP
    ]

    table = Table(
        ["wavelengths/link", "Z*", "LP", "LPD/LP", "LPDAR/LP"],
        title=(
            "Fig. 2 — normalized throughput, Abilene "
            f"({network.num_nodes} nodes, {network.num_link_pairs} link pairs, "
            f"{NUM_JOBS} jobs)"
        ),
    )
    for p in points:
        table.add_row(
            [p.wavelengths, round(p.zstar, 3), 1.0,
             round(p.lpd_ratio, 3), round(p.lpdar_ratio, 3)]
        )
    report(table)

    by_w = {p.wavelengths: p for p in points}
    # LPD suffers at coarse wavelengths...
    assert by_w[2].lpd_ratio < 0.8
    # ...while LPDAR tracks LP closely everywhere (paper: "nearly identical").
    for p in points:
        assert p.lpdar_ratio > 0.9
    assert by_w[2].lpdar_ratio - by_w[2].lpd_ratio > 0.1

    benchmark.pedantic(
        throughput_pipeline,
        args=(network, jobs, 8),
        kwargs={"path_sets": paths},
        rounds=3,
        iterations=1,
    )
