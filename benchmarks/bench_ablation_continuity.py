"""ABL-CONT — How much does the paper's model lean on wavelength conversion?

The paper's formulation counts wavelengths per link independently, which
physically assumes wavelength converters at every node.  Without
converters, a grant must hold the *same* lambda on every hop (wavelength
continuity), and count-feasible schedules can become unrealizable.

This ablation realizes LPDAR schedules under both models across the
wavelength sweep and reports the share of grants that survive strict
first-fit continuity — quantifying the conversion assumption's weight.
Expected shape: more (finer) wavelengths ease continuity (more lambda
choices per link), so the strict success rate rises with W.
"""

import pytest

from repro import ProblemStructure, TimeGrid, lpdar, solve_stage1, solve_stage2_lp
from repro.analysis import Table
from repro.core.realization import realize_schedule
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import calibrated_jobs, random_network, shared_path_sets

SEED = 1717
WAVE_SWEEP = (2, 4, 8, 16)
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


def continuity_point(network, jobs, paths, wavelengths):
    net_w = network.with_wavelengths(wavelengths, 20.0)
    grid = TimeGrid.covering(jobs.max_end())
    structure = ProblemStructure(net_w, jobs, grid, 4, path_sets=paths)
    zstar = solve_stage1(structure).zstar
    stage2 = solve_stage2_lp(structure, zstar, alpha=0.1)
    rounded = lpdar(structure, stage2.x)

    strict = realize_schedule(structure, rounded.x_lpdar, "strict")
    converters = realize_schedule(structure, rounded.x_lpdar, "converters")
    total = len(strict.grants) + len(strict.failures)
    return {
        "total_grants": total,
        "strict_ok": len(strict.grants) / total if total else float("nan"),
        "free_continuity": converters.continuity_rate(),
    }


@pytest.fixture(scope="module")
def instance():
    network = random_network(num_nodes=60, seed=SEED)
    jobs = calibrated_jobs(
        network, 120, seed=SEED + 1, target_zstar=0.9, config=CONFIG
    )
    paths = shared_path_sets(network, jobs)
    return network, jobs, paths


def test_continuity_sweep(benchmark, report, instance):
    network, jobs, paths = instance
    table = Table(
        [
            "wavelengths/link",
            "grants",
            "strict first-fit ok %",
            "continuous-for-free %",
        ],
        title="ABL-CONT — wavelength continuity vs full conversion",
    )
    strict_rates = []
    for w in WAVE_SWEEP:
        point = continuity_point(network, jobs, paths, w)
        strict_rates.append(point["strict_ok"])
        table.add_row(
            [
                w,
                point["total_grants"],
                round(100 * point["strict_ok"], 1),
                round(100 * point["free_continuity"], 1),
            ]
        )
    report(table)

    # Strict mode realizes the large majority of grants at every W...
    assert min(strict_rates) > 0.6
    # ...but alignment degrades as capacity splits into more wavelengths
    # (each grant needs a larger common lambda set across its hops).
    assert strict_rates[-1] <= strict_rates[0]

    benchmark.pedantic(
        continuity_point,
        args=(network, jobs, paths, 4),
        rounds=2,
        iterations=1,
    )
