"""PLAN — Dual-price-guided capacity upgrades.

A by-product the paper's optimization paradigm enables: the duals of the
capacity constraint (3) price every link, and greedily adding
wavelengths to the priciest links (re-solving after each, since the
bottleneck moves) yields a capacity-upgrade plan.  This benchmark
measures how much weighted throughput a small upgrade budget buys on a
congested random network, and checks the plan beats upgrading random
links with the same budget.
"""

import numpy as np
import pytest

from repro import Network, ProblemStructure, TimeGrid, solve_stage1, solve_stage2_lp
from repro.analysis import Table, plan_upgrades
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 1919
BUDGET = 4
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


def random_upgrade_throughput(network, jobs, grid, budget, rng):
    """Baseline: spend the same budget on uniformly random link pairs."""
    pairs = [
        (e.source, e.target)
        for e in network.edges
        if network.node_index(e.source) < network.node_index(e.target)
    ]
    chosen = rng.choice(len(pairs), size=budget, replace=True)
    bumps: dict[tuple, int] = {}
    for idx in chosen:
        u, v = pairs[int(idx)]
        bumps[(u, v)] = bumps.get((u, v), 0) + 1
    upgraded = Network(wavelength_rate=network.wavelength_rate)
    for node in network.nodes:
        upgraded.add_node(node)
    for e in network.edges:
        bump = bumps.get((e.source, e.target), 0) + bumps.get(
            (e.target, e.source), 0
        )
        upgraded.add_edge(e.source, e.target, e.capacity + bump, e.weight)
    structure = ProblemStructure(upgraded, jobs, grid, 4)
    zstar = solve_stage1(structure).zstar
    return solve_stage2_lp(structure, zstar, alpha=0.1).objective


def run_planning(network, jobs, grid, seed):
    plan = plan_upgrades(network, jobs, grid=grid, budget=BUDGET)
    rng = np.random.default_rng(seed)
    random_objs = [
        random_upgrade_throughput(network, jobs, grid, BUDGET, rng)
        for _ in range(3)
    ]
    return plan, float(np.mean(random_objs))


def test_planning_beats_random_upgrades(benchmark, report):
    network = random_network(num_nodes=40, seed=SEED).with_wavelengths(2, 20.0)
    jobs = WorkloadGenerator(network, CONFIG, seed=SEED + 1).jobs(60)
    grid = TimeGrid.covering(jobs.max_end())

    plan, random_mean = run_planning(network, jobs, grid, SEED + 2)

    table = Table(
        ["step", "upgraded link", "price at decision", "throughput after"],
        title=(
            f"PLAN — greedy dual-priced upgrades (budget {BUDGET}), "
            f"baseline throughput {plan.throughput_before:.4f}"
        ),
    )
    for k, step in enumerate(plan.steps):
        table.add_row(
            [
                k + 1,
                f"{step.source} <-> {step.target}",
                round(step.price, 4),
                round(step.throughput_after, 4),
            ]
        )
    table.add_row(
        ["-", f"random upgrades (mean of 3)", "-", round(random_mean, 4)]
    )
    report(table)

    # The plan spends its whole budget on a congested instance...
    assert plan.num_upgrades == BUDGET
    # ...improves the end state (steps may dip: higher Z* tightens the
    # fairness floor)...
    assert plan.throughput_after > plan.throughput_before
    # ...and beats spending the same budget at random.
    assert plan.throughput_after >= random_mean - 1e-9

    benchmark.pedantic(
        run_planning,
        args=(network, jobs, grid, SEED + 2),
        rounds=2,
        iterations=1,
    )
