"""Fig. 1 — Throughput of LP / LPD / LPDAR on a 100-node random network.

Paper setup: Waxman random network, 100 nodes, ~200 link pairs, constant
per-link capacity (20 Gbps) divided into 2..32 wavelengths.  Throughput
is normalized by the LP value.

Expected shape (paper): LPD ~ 0.5 at W = 2 and climbs with W; LPDAR
~ 0.9 at W = 2 and >= 0.95 from W = 4 up; LP == 1 by construction.

Reproduction note: contention is what makes the LP solution fractional
(and hence LPD lossy), so the workload uses 350 jobs with tight 2-4
slice windows, calibrated to stage-1 load Z* = 0.9.
"""

import pytest

from repro.analysis import Table
from repro.workload import WorkloadConfig

from _support import (
    WAVELENGTH_SWEEP,
    calibrated_jobs,
    random_network,
    shared_path_sets,
    throughput_pipeline,
)

NUM_JOBS = 350
SEED = 101
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


@pytest.fixture(scope="module")
def instance():
    network = random_network(num_nodes=100, seed=SEED)
    jobs = calibrated_jobs(
        network, NUM_JOBS, seed=SEED + 1, target_zstar=0.9, config=CONFIG
    )
    paths = shared_path_sets(network, jobs)
    return network, jobs, paths


def test_fig1_throughput_sweep(benchmark, report, instance):
    network, jobs, paths = instance

    points = [
        throughput_pipeline(network, jobs, w, path_sets=paths)
        for w in WAVELENGTH_SWEEP
    ]

    table = Table(
        ["wavelengths/link", "Z*", "LP", "LPD/LP", "LPDAR/LP"],
        title=(
            "Fig. 1 — normalized throughput, random network "
            f"({network.num_nodes} nodes, {network.num_link_pairs} link pairs, "
            f"{NUM_JOBS} jobs)"
        ),
    )
    for p in points:
        table.add_row(
            [p.wavelengths, round(p.zstar, 3), 1.0,
             round(p.lpd_ratio, 3), round(p.lpdar_ratio, 3)]
        )
    report(table)

    # Paper's qualitative claims.
    by_w = {p.wavelengths: p for p in points}
    assert by_w[2].lpd_ratio < 0.7, "LPD should lose badly at W = 2"
    assert by_w[2].lpdar_ratio > 0.85, "LPDAR should stay near LP at W = 2"
    for w in (4, 8, 16, 32):
        assert by_w[w].lpdar_ratio > 0.93
    # LPD improves monotonically as wavelengths get finer-grained.
    ratios = [p.lpd_ratio for p in points]
    assert ratios == sorted(ratios)
    # Constant total rate: Z* invariant across the sweep.
    zs = [p.zstar for p in points]
    assert max(zs) - min(zs) < 1e-4

    # Timed kernel: the full pipeline at the paper's midpoint W = 8.
    benchmark.pedantic(
        throughput_pipeline,
        args=(network, jobs, 8),
        kwargs={"path_sets": paths},
        rounds=2,
        iterations=1,
    )
