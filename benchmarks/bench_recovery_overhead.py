"""REC — epoch-journal overhead on the Abilene controller loop.

The durability layer (``docs/recovery.md``) rewrites the whole journal
through an fsync'd temp file at every epoch commit.  That is only an
acceptable design if the journal write is noise next to the epoch's LP
solves — this benchmark pins that claim: on the paper's Abilene
topology, journaling must add **less than 10%** to the simulation's
wall time (plus a small absolute slack so near-zero baselines on fast
machines don't turn the ratio into a coin flip).
"""

import time

import pytest

from repro import Simulation, Telemetry
from repro.workload import WorkloadConfig, WorkloadGenerator
from repro.analysis import Table

from _support import abilene_network

SEED = 2718
NUM_JOBS = 12
CONFIG = WorkloadConfig(
    size_low=20.0,
    size_high=120.0,
    window_slices_low=3,
    window_slices_high=8,
)
REPEATS = 3
OVERHEAD_RATIO = 0.10
ABS_SLACK_S = 0.10


@pytest.fixture(scope="module")
def instance():
    network = abilene_network()
    jobs = WorkloadGenerator(network, CONFIG, seed=SEED).jobs(NUM_JOBS)
    return network, jobs


def run_once(network, jobs, journal_path=None, telemetry=None):
    sim = Simulation(
        network, policy="reduce", journal=journal_path, telemetry=telemetry
    )
    start = time.perf_counter()
    sim.run(jobs)
    return time.perf_counter() - start


def test_journal_overhead_under_10_percent(
    benchmark, report, instance, tmp_path
):
    network, jobs = instance

    # Min-of-repeats on both sides: the steadiest estimate either way.
    plain = min(run_once(network, jobs) for _ in range(REPEATS))
    telemetry = Telemetry()
    journaled = min(
        run_once(
            network, jobs, journal_path=tmp_path / f"run{i}.jsonl",
            telemetry=telemetry if i == 0 else None,
        )
        for i in range(REPEATS)
    )

    commits = int(telemetry.counters.get("journal_commits", 0))
    assert commits > 0, "journaled run never committed an epoch"
    overhead = journaled - plain
    per_commit_ms = 1e3 * max(overhead, 0.0) / commits

    table = Table(
        ["metric", "value"],
        title="REC — journaling overhead (Abilene, reduce policy)",
    )
    table.add_row(["plain run (s)", round(plain, 4)])
    table.add_row(["journaled run (s)", round(journaled, 4)])
    table.add_row(["epoch commits", commits])
    table.add_row(["overhead (s)", round(overhead, 4)])
    table.add_row(["overhead per commit (ms)", round(per_commit_ms, 3)])
    table.add_row(
        ["overhead ratio", round(overhead / plain, 4) if plain > 0 else 0.0]
    )
    report(table)

    assert journaled <= plain * (1.0 + OVERHEAD_RATIO) + ABS_SLACK_S, (
        f"journaling overhead too high: plain={plain:.4f}s "
        f"journaled={journaled:.4f}s "
        f"(limit {OVERHEAD_RATIO:.0%} + {ABS_SLACK_S}s slack)"
    )

    benchmark.pedantic(
        run_once,
        args=(network, jobs),
        kwargs={"journal_path": tmp_path / "bench.jsonl"},
        rounds=2,
        iterations=1,
    )
