"""Fig. 4 — Average end time of LP vs LPDAR under RET, random network.

Paper setup: 100-node random network; Algorithm 2 with the Quick-Finish
objective; x-axis is the number of jobs, y-axis is the average end time
in time slices.

Expected shape (paper):

* average end time increases with the number of jobs (the network is
  fixed while the load grows);
* LP <= LPDAR, and LPDAR is "nearly as good as LP";
* LPD is irrelevant here — it finishes (almost) no jobs, which the
  companion TXT-FIN benchmark measures.
"""

import pytest

from repro import solve_ret
from repro.analysis import Table
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 404
JOB_SWEEP = (10, 20, 30, 40)
CONFIG = WorkloadConfig(
    size_low=40.0,
    size_high=200.0,
    window_slices_low=2,
    window_slices_high=5,
    start_slack_slices=2,
)


@pytest.fixture(scope="module")
def network():
    # Few wavelengths per link, so RET actually has to stretch deadlines.
    return random_network(num_nodes=100, seed=SEED).with_wavelengths(2, 20.0)


def ret_point(network, num_jobs, seed):
    jobs = WorkloadGenerator(network, CONFIG, seed=seed).jobs(num_jobs)
    result = solve_ret(network, jobs, k_paths=4, b_max=20.0, delta=0.1)
    return jobs, result


def test_fig4_average_end_time(benchmark, report, network):
    table = Table(
        ["jobs", "b_final", "avg end LP", "avg end LPDAR", "LPDAR finished"],
        title=(
            "Fig. 4 — average end time under RET (slices), random network "
            f"({network.num_nodes} nodes, {network.num_link_pairs} link pairs)"
        ),
    )
    lp_series, lpdar_series = [], []
    for num_jobs in JOB_SWEEP:
        _, result = ret_point(network, num_jobs, SEED + num_jobs)
        lp_end = result.average_end_time("lp")
        lpdar_end = result.average_end_time("lpdar")
        lp_series.append(lp_end)
        lpdar_series.append(lpdar_end)
        table.add_row(
            [
                num_jobs,
                round(result.b_final, 3),
                round(lp_end, 2),
                round(lpdar_end, 2),
                f"{result.fraction_finished('lpdar'):.0%}",
            ]
        )
        # Algorithm 2's guarantee: everything finishes under LPDAR.
        assert result.fraction_finished("lpdar") == 1.0
    report(table)

    # LP is at least as fast as LPDAR (no integrality constraints)...
    for lp_end, lpdar_end in zip(lp_series, lpdar_series):
        assert lp_end <= lpdar_end + 1e-9
        # ...but LPDAR stays close (paper: "nearly as good as LP").
        assert lpdar_end <= 1.5 * lp_end
    # End times grow with load.
    assert lpdar_series[-1] > lpdar_series[0]

    benchmark.pedantic(
        ret_point,
        args=(network, JOB_SWEEP[1], SEED + JOB_SWEEP[1]),
        rounds=2,
        iterations=1,
    )
