"""Fig. 3 — Computation time of LP vs LPD vs LPDAR, random network.

Paper setup: 100-node random network; the point of the figure is that
the three algorithms take *nearly the same* time, because LPD and LPDAR
both start from the LP solve, which dominates; the truncation and the
greedy pass add only a small overhead.

We report wall-clock seconds for each algorithm across a sweep of job
counts (instance scale), plus the overhead fractions.
"""

import time

import numpy as np
import pytest

from repro import (
    ProblemStructure,
    TimeGrid,
    discretize,
    greedy_adjust,
    solve_stage1,
    solve_stage2_lp,
)
from repro.analysis import Table
from repro.workload import WorkloadConfig

from _support import calibrated_jobs, random_network, shared_path_sets

SEED = 303
JOB_SWEEP = (50, 100, 200, 350)
CONFIG = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


def timed_run(network, jobs, paths):
    """One stage-1 + stage-2 run; returns per-algorithm wall-clock times."""
    grid = TimeGrid.covering(jobs.max_end())
    structure = ProblemStructure(network, jobs, grid, 4, path_sets=paths)

    t0 = time.perf_counter()
    zstar = solve_stage1(structure).zstar
    stage2 = solve_stage2_lp(structure, zstar, alpha=0.1)
    t_lp = time.perf_counter() - t0

    t1 = time.perf_counter()
    x_lpd = discretize(stage2.x)
    t_lpd = time.perf_counter() - t1

    t2 = time.perf_counter()
    greedy_adjust(structure, x_lpd)
    t_lpdar = time.perf_counter() - t2

    return {
        "lp": t_lp,
        "lpd": t_lp + t_lpd,
        "lpdar": t_lp + t_lpd + t_lpdar,
        "cols": structure.num_cols,
    }


@pytest.fixture(scope="module")
def network():
    return random_network(num_nodes=100, seed=SEED).with_wavelengths(4, 20.0)


def test_fig3_computation_time(benchmark, report, network):
    table = Table(
        ["jobs", "variables", "LP (s)", "LPD (s)", "LPDAR (s)", "LPDAR/LP time"],
        title=(
            "Fig. 3 — computation time, random network "
            f"({network.num_nodes} nodes, {network.num_link_pairs} link pairs)"
        ),
    )
    overhead_ratios = []
    for num_jobs in JOB_SWEEP:
        jobs = calibrated_jobs(
            network, num_jobs, seed=SEED + num_jobs, target_zstar=0.9,
            config=CONFIG,
        )
        paths = shared_path_sets(network, jobs)
        times = timed_run(network, jobs, paths)
        ratio = times["lpdar"] / times["lp"]
        overhead_ratios.append(ratio)
        table.add_row(
            [
                num_jobs,
                times["cols"],
                round(times["lp"], 3),
                round(times["lpd"], 3),
                round(times["lpdar"], 3),
                round(ratio, 3),
            ]
        )
    report(table)

    # The paper's claim: "the computation times of the three algorithms
    # are quite similar" — the LP solve dominates end to end.
    assert max(overhead_ratios) < 1.5, (
        "LPD/LPDAR overhead should be a small fraction of the LP time"
    )

    # Timed kernel at the largest scale for the benchmark record.
    jobs = calibrated_jobs(
        network, JOB_SWEEP[-1], seed=SEED + JOB_SWEEP[-1], target_zstar=0.9,
        config=CONFIG,
    )
    paths = shared_path_sets(network, jobs)
    benchmark.pedantic(
        timed_run, args=(network, jobs, paths), rounds=2, iterations=1
    )
