"""TXT-FIN — Fraction of jobs finished under RET: LP vs LPD vs LPDAR.

Paper Section III-B.1 (reported in text, not a figure): at the extension
``b`` found by Algorithm 2, LP and LPDAR complete *all* jobs, while LPD
under the same extended end times finishes "a very small fraction
(typically zero)".  This benchmark reproduces that comparison across
several random instances.
"""

import pytest

from repro import solve_ret
from repro.analysis import Table
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 505
NUM_JOBS = 25
CONFIG = WorkloadConfig(
    size_low=40.0,
    size_high=200.0,
    window_slices_low=2,
    window_slices_high=5,
    start_slack_slices=2,
)


@pytest.fixture(scope="module")
def network():
    return random_network(num_nodes=100, seed=SEED).with_wavelengths(2, 20.0)


def run_instance(network, seed):
    jobs = WorkloadGenerator(network, CONFIG, seed=seed).jobs(NUM_JOBS)
    return solve_ret(network, jobs, k_paths=4, b_max=20.0, delta=0.1)


def test_jobs_finished_comparison(benchmark, report, network):
    table = Table(
        ["instance", "b_final", "LP finished", "LPD finished", "LPDAR finished"],
        title=(
            "Section III-B.1 — fraction of jobs finished at Algorithm 2's "
            f"extension ({NUM_JOBS} jobs per instance)"
        ),
    )
    lpd_fractions = []
    for k, seed in enumerate((1001, 1002, 1003, 1004)):
        result = run_instance(network, seed)
        lp_f = result.fraction_finished("lp")
        lpd_f = result.fraction_finished("lpd")
        lpdar_f = result.fraction_finished("lpdar")
        lpd_fractions.append(lpd_f)
        table.add_row(
            [
                k,
                round(result.b_final, 3),
                f"{lp_f:.0%}",
                f"{lpd_f:.0%}",
                f"{lpdar_f:.0%}",
            ]
        )
        # The paper's guarantees: LP and LPDAR complete everything.
        assert lp_f == 1.0
        assert lpdar_f == 1.0
    report(table)

    # LPD "only finished a very small fraction (typically zero)".
    assert max(lpd_fractions) <= 0.25
    assert sum(lpd_fractions) / len(lpd_fractions) <= 0.1

    benchmark.pedantic(
        run_instance, args=(network, 1001), rounds=2, iterations=1
    )
