"""CHURN — How much switch state does periodic re-optimization rewrite?

The paper's framework re-solves the whole wavelength assignment every
period ``tau``, which the related work it cites (rerouting-strategy
papers) flags as an operational cost: every torn-down grant is switch
reconfiguration.  This benchmark runs the online controller with
schedule retention on and measures, between consecutive epochs, what
fraction of the previous configuration survives on the overlapping time
range — for both the Quick-Finish-free stage-2 pipeline and a lighter
load where stability should be higher.
"""

import numpy as np
import pytest

from repro import Simulation
from repro.analysis import Table, reconfiguration_churn
from repro.workload import WorkloadConfig, WorkloadGenerator

from _support import random_network

SEED = 2020
CONFIG = WorkloadConfig(
    size_low=20.0,
    size_high=120.0,
    window_slices_low=3,
    window_slices_high=6,
    start_slack_slices=2,
)


def run_and_measure(network, rate, seed):
    jobs = WorkloadGenerator(network, CONFIG, seed=seed).arrival_stream(
        rate, 10.0
    )
    sim = Simulation(
        network, tau=1.0, slice_length=1.0, policy="reduce",
        keep_schedules=True,
    )
    result = sim.run(jobs, horizon=40.0)
    churns = []
    for (_, old), (_, new) in zip(result.schedules, result.schedules[1:]):
        try:
            report = reconfiguration_churn(old, new)
        except Exception:
            continue
        if report.old_total > 0:
            churns.append(report.churn_fraction)
    return {
        "epochs": len(result.schedules),
        "mean_churn": float(np.mean(churns)) if churns else float("nan"),
        "max_churn": float(np.max(churns)) if churns else float("nan"),
    }


@pytest.fixture(scope="module")
def network():
    return random_network(num_nodes=30, seed=SEED).with_wavelengths(2, 20.0)


def test_reconfiguration_churn(benchmark, report, network):
    table = Table(
        ["arrival rate", "epochs", "mean churn", "max churn"],
        title="CHURN — configuration rewritten between consecutive epochs",
    )
    results = {}
    for rate in (0.5, 1.5):
        point = run_and_measure(network, rate, SEED + int(10 * rate))
        results[rate] = point
        table.add_row(
            [
                rate,
                point["epochs"],
                round(point["mean_churn"], 3),
                round(point["max_churn"], 3),
            ]
        )
    report(table)

    for point in results.values():
        assert point["epochs"] >= 2
        assert 0.0 <= point["mean_churn"] <= 1.0

    benchmark.pedantic(
        run_and_measure, args=(network, 1.0, SEED), rounds=2, iterations=1
    )
