"""Synthetic e-science traffic traces.

The paper motivates the system with e-science workloads — high-energy
physics (HEP) tier transfers, radio astronomy, climate studies — whose
defining features are a few very large flows mixed with many smaller
ones, strong source concentration (detector or archive sites) and
deadline-driven windows.  The real ESnet/Internet2 traces the paper cites
are not publicly available, so this module synthesizes workloads with the
same qualitative structure (documented substitution, see DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from ..errors import ValidationError
from ..network.graph import Network
from .jobs import Job, JobSet

__all__ = ["hep_tier_trace", "climate_ensemble_trace", "mixed_escience_trace"]

Node = Hashable


def _pick_nodes(
    network: Network, count: int, rng: np.random.Generator
) -> list[Node]:
    nodes = list(network.nodes)
    if len(nodes) < count:
        raise ValidationError(
            f"network has {len(nodes)} nodes, need at least {count}"
        )
    idx = rng.choice(len(nodes), size=count, replace=False)
    return [nodes[int(i)] for i in idx]


def hep_tier_trace(
    network: Network,
    num_tier2: int = 4,
    transfers_per_site: int = 3,
    dataset_size: float = 500.0,
    window_slices: int = 10,
    slice_length: float = 1.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> JobSet:
    """HEP-style fan-out: one Tier-1 archive pushes datasets to Tier-2 sites.

    A single source node (the Tier-1 center) sends ``transfers_per_site``
    large replicas to each of ``num_tier2`` destination sites.  Dataset
    sizes are log-normally jittered around ``dataset_size``, and every
    transfer must land within ``window_slices`` slices — the canonical
    "data taking run must be replicated before the next run" deadline.
    """
    if rng is not None and seed is not None:
        raise ValidationError("pass either rng or seed, not both")
    rng = rng if rng is not None else np.random.default_rng(seed)
    sites = _pick_nodes(network, num_tier2 + 1, rng)
    tier1, tier2s = sites[0], sites[1:]
    jobs = JobSet()
    k = 0
    for site in tier2s:
        for _ in range(transfers_per_site):
            size = float(dataset_size * rng.lognormal(mean=0.0, sigma=0.3))
            start_slice = int(rng.integers(0, max(window_slices // 2, 1)))
            jobs.add(
                Job(
                    id=f"hep-{k}",
                    source=tier1,
                    dest=site,
                    size=size,
                    start=start_slice * slice_length,
                    end=(start_slice + window_slices) * slice_length,
                    arrival=0.0,
                )
            )
            k += 1
    return jobs


def climate_ensemble_trace(
    network: Network,
    num_sites: int = 5,
    rounds: int = 3,
    output_size: float = 80.0,
    round_slices: int = 4,
    slice_length: float = 1.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> JobSet:
    """Climate-model ensemble: periodic all-to-one result collection.

    ``num_sites`` compute sites each ship a model-output chunk to a
    central analysis site at the end of every simulation round.  Round
    ``r`` produces transfers windowed to
    ``[r * round_slices, (r + 1) * round_slices]`` slices, giving the
    regular periodic load pattern typical of coupled-model campaigns.
    """
    if rounds < 1:
        raise ValidationError(f"rounds must be >= 1, got {rounds}")
    if rng is not None and seed is not None:
        raise ValidationError("pass either rng or seed, not both")
    rng = rng if rng is not None else np.random.default_rng(seed)
    sites = _pick_nodes(network, num_sites + 1, rng)
    hub, computes = sites[0], sites[1:]
    jobs = JobSet()
    k = 0
    for r in range(rounds):
        start = r * round_slices * slice_length
        end = (r + 1) * round_slices * slice_length
        for site in computes:
            size = float(output_size * rng.uniform(0.7, 1.3))
            jobs.add(
                Job(
                    id=f"clim-{k}",
                    source=site,
                    dest=hub,
                    size=size,
                    start=start,
                    end=end,
                    arrival=start,
                )
            )
            k += 1
    return jobs


def mixed_escience_trace(
    network: Network,
    num_bulk: int = 6,
    num_small: int = 18,
    bulk_size: float = 400.0,
    small_size_high: float = 50.0,
    horizon_slices: int = 12,
    slice_length: float = 1.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> JobSet:
    """Heavy-tailed mix: a few huge archival flows plus many small ones.

    This mirrors the ESnet observation the paper cites (reference [8])
    that a small number of very large science flows dominate total bytes.
    Bulk jobs get wide windows; small jobs get tight 2–4 slice windows.
    """
    if rng is not None and seed is not None:
        raise ValidationError("pass either rng or seed, not both")
    rng = rng if rng is not None else np.random.default_rng(seed)
    nodes = list(network.nodes)
    if len(nodes) < 2:
        raise ValidationError("network needs >= 2 nodes")
    jobs = JobSet()

    def random_pair() -> tuple[Node, Node]:
        i, j = rng.choice(len(nodes), size=2, replace=False)
        return nodes[int(i)], nodes[int(j)]

    for k in range(num_bulk):
        src, dst = random_pair()
        span = int(rng.integers(max(horizon_slices // 2, 1), horizon_slices + 1))
        start_slice = int(rng.integers(0, horizon_slices - span + 1))
        jobs.add(
            Job(
                id=f"bulk-{k}",
                source=src,
                dest=dst,
                size=float(bulk_size * rng.lognormal(0.0, 0.25)),
                start=start_slice * slice_length,
                end=(start_slice + span) * slice_length,
                arrival=0.0,
            )
        )
    for k in range(num_small):
        src, dst = random_pair()
        span = int(rng.integers(2, min(5, horizon_slices + 1)))
        start_slice = int(rng.integers(0, horizon_slices - span + 1))
        jobs.add(
            Job(
                id=f"small-{k}",
                source=src,
                dest=dst,
                size=float(rng.uniform(1.0, small_size_high)),
                start=start_slice * slice_length,
                end=(start_slice + span) * slice_length,
                arrival=0.0,
            )
        )
    return jobs
