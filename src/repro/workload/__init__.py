"""Workload substrate: job requests, random generators, e-science traces."""

from .generator import (
    WorkloadConfig,
    WorkloadGenerator,
    diurnal_arrivals,
    poisson_arrivals,
)
from .jobs import Job, JobSet
from .trace_io import jobs_from_csv, jobs_to_csv
from .traces import climate_ensemble_trace, hep_tier_trace, mixed_escience_trace

__all__ = [
    "Job",
    "JobSet",
    "WorkloadConfig",
    "WorkloadGenerator",
    "poisson_arrivals",
    "diurnal_arrivals",
    "hep_tier_trace",
    "climate_ensemble_trace",
    "mixed_escience_trace",
    "jobs_to_csv",
    "jobs_from_csv",
]
