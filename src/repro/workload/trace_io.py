"""CSV import/export for job traces.

Request logs from real reservation systems usually arrive as flat
tables; this module reads and writes the obvious CSV schema::

    id,source,dest,size,start,end,arrival,weight
    hep-1,Chicago,Sunnyvale,60.0,0.0,4.0,0.0,
    7,NodeA,NodeB,12.5,1.0,3.0,0.5,2.0

``arrival`` and ``weight`` may be left empty (defaults: arrival =
start; weight = None).  Node and job identifiers are read as strings;
pass ``coerce_numeric=True`` to convert purely numeric identifiers to
``int`` (useful for the synthetic topologies whose nodes are integers).
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..errors import ValidationError
from .jobs import Job, JobSet

__all__ = ["jobs_to_csv", "jobs_from_csv", "CSV_FIELDS"]

CSV_FIELDS = ("id", "source", "dest", "size", "start", "end", "arrival", "weight")


def jobs_to_csv(jobs: JobSet, path: str | Path) -> None:
    """Write a job set as CSV (schema in the module docstring)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for job in jobs:
            writer.writerow(
                [
                    job.id,
                    job.source,
                    job.dest,
                    repr(job.size),
                    repr(job.start),
                    repr(job.end),
                    repr(job.arrival),
                    "" if job.weight is None else repr(job.weight),
                ]
            )


def _identifier(token: str, coerce_numeric: bool):
    if coerce_numeric:
        try:
            return int(token)
        except ValueError:
            pass
    return token


def jobs_from_csv(path: str | Path, coerce_numeric: bool = False) -> JobSet:
    """Read a job set from CSV, validating every row.

    Raises :class:`ValidationError` with the offending line number on
    malformed input (missing columns, unparsable numbers, or any Job
    validation failure).
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such file: {path}")
    jobs = JobSet()
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValidationError(f"{path}: empty file") from None
        header = [h.strip().lower() for h in header]
        missing = [f for f in CSV_FIELDS[:6] if f not in header]
        if missing:
            raise ValidationError(
                f"{path}: header is missing required columns {missing}"
            )
        index = {name: header.index(name) for name in header}

        def cell(row, name):
            i = index.get(name)
            if i is None or i >= len(row):
                return ""
            return row[i].strip()

        for lineno, row in enumerate(reader, start=2):
            if not row or all(not c.strip() for c in row):
                continue
            try:
                arrival_token = cell(row, "arrival")
                weight_token = cell(row, "weight")
                jobs.add(
                    Job(
                        id=_identifier(cell(row, "id"), coerce_numeric),
                        source=_identifier(cell(row, "source"), coerce_numeric),
                        dest=_identifier(cell(row, "dest"), coerce_numeric),
                        size=float(cell(row, "size")),
                        start=float(cell(row, "start")),
                        end=float(cell(row, "end")),
                        arrival=float(arrival_token) if arrival_token else None,
                        weight=float(weight_token) if weight_token else None,
                    )
                )
            except ValidationError as exc:
                raise ValidationError(f"{path}:{lineno}: {exc}") from None
            except ValueError as exc:
                raise ValidationError(
                    f"{path}:{lineno}: unparsable number ({exc})"
                ) from None
    if len(jobs) == 0:
        raise ValidationError(f"{path}: no job rows")
    return jobs
