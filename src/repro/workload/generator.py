"""Random workload generation matching the paper's experimental setup.

The paper's workloads (Section III) draw job sizes uniformly from
[1, 100] GB between uniformly random distinct node pairs; requests arrive
by a random process and each carries a ``[S_i, E_i]`` window.  The
:class:`WorkloadGenerator` reproduces that recipe with every distribution
parameterized, and all randomness flowing through an explicit
``numpy.random.Generator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Sequence

import numpy as np

from ..errors import ValidationError
from ..network.graph import Network
from .jobs import Job, JobSet

__all__ = [
    "WorkloadConfig",
    "WorkloadGenerator",
    "poisson_arrivals",
    "diurnal_arrivals",
]

Node = Hashable


@dataclass(frozen=True)
class WorkloadConfig:
    """Distribution parameters for random workloads.

    Attributes
    ----------
    size_low, size_high:
        Uniform job-size range, paper default [1, 100] (GB).
    window_slices_low, window_slices_high:
        Inclusive range for the number of slices a job's window spans.
    start_slack_slices:
        Start times are drawn uniformly from
        ``[0, start_slack_slices]`` (in slice units), so jobs stagger.
    slice_length:
        Length of one time slice in time units.
    """

    size_low: float = 1.0
    size_high: float = 100.0
    window_slices_low: int = 2
    window_slices_high: int = 8
    start_slack_slices: int = 4
    slice_length: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.size_low <= self.size_high:
            raise ValidationError(
                f"need 0 < size_low <= size_high, got "
                f"[{self.size_low}, {self.size_high}]"
            )
        if not 1 <= self.window_slices_low <= self.window_slices_high:
            raise ValidationError(
                "need 1 <= window_slices_low <= window_slices_high, got "
                f"[{self.window_slices_low}, {self.window_slices_high}]"
            )
        if self.start_slack_slices < 0:
            raise ValidationError(
                f"start_slack_slices must be >= 0, got {self.start_slack_slices}"
            )
        if self.slice_length <= 0:
            raise ValidationError(
                f"slice_length must be > 0, got {self.slice_length}"
            )

    @property
    def horizon_slices(self) -> int:
        """Slices needed to cover any job this config can generate."""
        return self.start_slack_slices + self.window_slices_high


class WorkloadGenerator:
    """Draws random job sets over a network.

    Parameters
    ----------
    network:
        Source/destination nodes are sampled from this network.
    config:
        Distribution parameters (defaults follow the paper).
    rng, seed:
        Randomness source (mutually exclusive).
    """

    def __init__(
        self,
        network: Network,
        config: WorkloadConfig | None = None,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
    ) -> None:
        if network.num_nodes < 2:
            raise ValidationError("workload generation needs >= 2 nodes")
        if rng is not None and seed is not None:
            raise ValidationError("pass either rng or seed, not both")
        self.network = network
        self.config = config or WorkloadConfig()
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def od_pair(self) -> tuple[Node, Node]:
        """A uniformly random ordered pair of distinct nodes."""
        nodes = self.network.nodes
        i, j = self.rng.choice(len(nodes), size=2, replace=False)
        return nodes[int(i)], nodes[int(j)]

    def job(self, job_id: int | str, arrival: float = 0.0) -> Job:
        """One random job arriving at ``arrival``.

        The window starts at a slice boundary at or after ``arrival``
        (plus random slack) and spans a random whole number of slices, so
        windows align with the grid exactly as in the paper's experiments.
        """
        cfg = self.config
        src, dst = self.od_pair()
        size = float(self.rng.uniform(cfg.size_low, cfg.size_high))
        first_slice = int(np.ceil(arrival / cfg.slice_length - 1e-12))
        start_slice = first_slice + int(
            self.rng.integers(0, cfg.start_slack_slices + 1)
        )
        span = int(
            self.rng.integers(cfg.window_slices_low, cfg.window_slices_high + 1)
        )
        start = start_slice * cfg.slice_length
        end = (start_slice + span) * cfg.slice_length
        return Job(
            id=job_id,
            source=src,
            dest=dst,
            size=size,
            start=start,
            end=end,
            arrival=float(arrival),
        )

    def jobs(self, num_jobs: int, arrival: float = 0.0) -> JobSet:
        """A batch of ``num_jobs`` random jobs, all arriving at ``arrival``."""
        if num_jobs < 1:
            raise ValidationError(f"num_jobs must be >= 1, got {num_jobs}")
        return JobSet(self.job(i, arrival) for i in range(num_jobs))

    def arrival_stream(
        self, rate: float, horizon: float, id_prefix: str = "job"
    ) -> JobSet:
        """Poisson arrival stream of jobs over ``[0, horizon)``.

        ``rate`` is the expected number of arrivals per time unit.  Job
        ids are ``f"{id_prefix}-{k}"`` in arrival order.
        """
        times = poisson_arrivals(rate, horizon, self.rng)
        return JobSet(
            self.job(f"{id_prefix}-{k}", arrival=float(t))
            for k, t in enumerate(times)
        )

    def scaled_to_load(
        self, num_jobs: int, target_zstar: float, solve_zstar
    ) -> JobSet:
        """Jobs rescaled so the stage-1 throughput is ``target_zstar``.

        ``solve_zstar`` is a callable mapping a :class:`JobSet` to its
        maximum concurrent throughput ``Z*``.  Because ``Z*`` scales
        inversely with uniform demand scaling, a single solve suffices.
        Useful for constructing controlled overload levels.
        """
        if target_zstar <= 0:
            raise ValidationError(
                f"target_zstar must be positive, got {target_zstar}"
            )
        jobs = self.jobs(num_jobs)
        zstar = solve_zstar(jobs)
        if zstar <= 0:
            raise ValidationError(
                "generated workload has Z* = 0 (some job has no usable "
                "window or no path); cannot rescale"
            )
        return jobs.scaled(zstar / target_zstar)


def poisson_arrivals(
    rate: float, horizon: float, rng: np.random.Generator
) -> np.ndarray:
    """Sorted Poisson-process arrival times on ``[0, horizon)``."""
    if rate <= 0:
        raise ValidationError(f"rate must be positive, got {rate}")
    if horizon <= 0:
        raise ValidationError(f"horizon must be positive, got {horizon}")
    count = int(rng.poisson(rate * horizon))
    return np.sort(rng.uniform(0.0, horizon, size=count))


def diurnal_arrivals(
    mean_rate: float,
    horizon: float,
    rng: np.random.Generator,
    period: float = 24.0,
    peak_to_trough: float = 4.0,
    peak_time: float = 14.0,
) -> np.ndarray:
    """Inhomogeneous Poisson arrivals with a day/night intensity cycle.

    Research-network demand follows working hours; this samples a
    non-homogeneous Poisson process whose rate is a raised cosine around
    ``mean_rate``:

    .. math:: \\lambda(t) = \\bar\\lambda (1 + a \\cos(2\\pi (t - t_p)/P)),

    with amplitude ``a`` chosen so the peak/trough ratio equals
    ``peak_to_trough``.  Sampled by thinning: draw homogeneous arrivals
    at the peak rate and keep each with probability
    ``lambda(t) / lambda_max``.
    """
    if mean_rate <= 0 or horizon <= 0 or period <= 0:
        raise ValidationError("mean_rate, horizon and period must be positive")
    if peak_to_trough < 1.0:
        raise ValidationError(
            f"peak_to_trough must be >= 1, got {peak_to_trough}"
        )
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    lambda_max = mean_rate * (1.0 + amplitude)
    candidates = poisson_arrivals(lambda_max, horizon, rng)
    if candidates.size == 0:
        return candidates
    intensity = mean_rate * (
        1.0 + amplitude * np.cos(2 * np.pi * (candidates - peak_time) / period)
    )
    keep = rng.uniform(0.0, lambda_max, size=candidates.size) < intensity
    return candidates[keep]
