"""Job requests: the 6-tuple ``(A_i, s_i, d_i, D_i, S_i, E_i)``.

A job request (paper Section II-A) arrives at time ``A_i`` and asks the
network to move ``D_i`` units of data from ``s_i`` to ``d_i`` inside the
window ``[S_i, E_i]``, with ``A_i <= S_i <= E_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Hashable, Iterable, Iterator, Sequence

import numpy as np

from ..errors import ValidationError

__all__ = ["Job", "JobSet"]

Node = Hashable


@dataclass(frozen=True)
class Job:
    """A bulk-transfer request.

    Attributes
    ----------
    id:
        Caller-chosen identifier, unique within a :class:`JobSet`.
    source, dest:
        Origin and destination nodes (must differ).
    size:
        ``D_i``: data volume to move, in the same volume units the
        network's ``wavelength_rate`` is expressed in (e.g. GB when the
        rate is GB/hour).  Must be positive.
    start, end:
        ``S_i`` and ``E_i``: requested transfer window.
    arrival:
        ``A_i``: request submission time, ``A_i <= S_i`` (default: equal
        to ``start``).
    weight:
        Optional scheduling weight for the stage-2 objective.  ``None``
        (default) selects the paper's size weighting, under which the
        objective reduces to total delivered volume.
    """

    id: int | str
    source: Node
    dest: Node
    size: float
    start: float
    end: float
    arrival: float | None = None
    weight: float | None = None

    def __post_init__(self) -> None:
        if self.source == self.dest:
            raise ValidationError(
                f"job {self.id!r}: source and destination must differ"
            )
        if not (self.size > 0 and np.isfinite(self.size)):
            raise ValidationError(
                f"job {self.id!r}: size must be positive, got {self.size}"
            )
        if not (np.isfinite(self.start) and np.isfinite(self.end)):
            raise ValidationError(f"job {self.id!r}: non-finite window")
        if self.end <= self.start:
            raise ValidationError(
                f"job {self.id!r}: window [{self.start}, {self.end}] is empty"
            )
        if self.arrival is None:
            object.__setattr__(self, "arrival", float(self.start))
        elif self.arrival > self.start:
            raise ValidationError(
                f"job {self.id!r}: arrival {self.arrival} after start {self.start}"
            )
        if self.weight is not None and not (
            self.weight > 0 and np.isfinite(self.weight)
        ):
            raise ValidationError(
                f"job {self.id!r}: weight must be positive, got {self.weight}"
            )

    @property
    def window(self) -> tuple[float, float]:
        """The requested ``[S_i, E_i]`` interval."""
        return (self.start, self.end)

    @property
    def duration(self) -> float:
        """Window length ``E_i - S_i``."""
        return self.end - self.start

    @property
    def min_rate(self) -> float:
        """Average rate needed to finish exactly within the window."""
        return self.size / self.duration

    def scaled(self, factor: float) -> "Job":
        """Copy with size multiplied by ``factor`` (demand re-negotiation)."""
        if factor <= 0:
            raise ValidationError(f"scale factor must be positive, got {factor}")
        return replace(self, size=self.size * factor)

    def with_extended_end(self, b: float) -> "Job":
        """Copy with the end time stretched to ``(1 + b) * end`` (RET)."""
        if b < 0:
            raise ValidationError(f"extension b must be >= 0, got {b}")
        new_end = (1.0 + b) * self.end
        if new_end <= self.start:
            raise ValidationError(
                f"job {self.id!r}: extended end {new_end} not after start"
            )
        return replace(self, end=new_end)

    def with_extended_interval(self, b: float) -> "Job":
        """Copy with the *window length* stretched by ``(1 + b)``.

        The alternative deadline relaxation the paper's Section II-C
        remark mentions: the start time holds and the end becomes
        ``start + (1 + b) * (end - start)``.  Unlike
        :meth:`with_extended_end`, the granted extra time is
        proportional to the job's own window, not to its absolute end
        time — late-starting jobs are not favoured.
        """
        if b < 0:
            raise ValidationError(f"extension b must be >= 0, got {b}")
        return replace(self, end=self.start + (1.0 + b) * self.duration)

    def with_remaining(self, remaining: float) -> "Job":
        """Copy with ``size`` replaced by a residual demand (simulator)."""
        if not (remaining > 0 and np.isfinite(remaining)):
            raise ValidationError(
                f"job {self.id!r}: remaining must be positive, got {remaining}"
            )
        return replace(self, size=remaining)


class JobSet(Sequence[Job]):
    """An ordered collection of jobs with unique ids.

    Job *positions* in the set are the dense indices the optimization
    layer uses; ids are for callers.
    """

    def __init__(self, jobs: Iterable[Job] = ()) -> None:
        self._jobs: list[Job] = []
        self._by_id: dict[int | str, int] = {}
        for job in jobs:
            self.add(job)

    def add(self, job: Job) -> int:
        """Append ``job``; returns its dense index."""
        if not isinstance(job, Job):
            raise ValidationError(f"expected Job, got {type(job).__name__}")
        if job.id in self._by_id:
            raise ValidationError(f"duplicate job id {job.id!r}")
        idx = len(self._jobs)
        self._jobs.append(job)
        self._by_id[job.id] = idx
        return idx

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return JobSet(self._jobs[index])
        return self._jobs[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Job):
            return item.id in self._by_id
        return item in self._by_id

    def by_id(self, job_id: int | str) -> Job:
        """Job with identifier ``job_id``."""
        try:
            return self._jobs[self._by_id[job_id]]
        except KeyError:
            raise ValidationError(f"unknown job id {job_id!r}") from None

    def index_of(self, job_id: int | str) -> int:
        """Dense index of the job with identifier ``job_id``."""
        try:
            return self._by_id[job_id]
        except KeyError:
            raise ValidationError(f"unknown job id {job_id!r}") from None

    def sizes(self) -> np.ndarray:
        """Array of ``D_i`` by dense index."""
        return np.array([j.size for j in self._jobs], dtype=float)

    def total_size(self) -> float:
        """``sum_i D_i``."""
        return float(self.sizes().sum()) if self._jobs else 0.0

    def od_pairs(self) -> list[tuple[Node, Node]]:
        """``(source, dest)`` per job, dense order."""
        return [(j.source, j.dest) for j in self._jobs]

    def max_end(self) -> float:
        """Largest requested end time (defines the scheduling horizon)."""
        if not self._jobs:
            raise ValidationError("empty job set has no end times")
        return max(j.end for j in self._jobs)

    def scaled(self, factor: float) -> "JobSet":
        """New set with every job's size multiplied by ``factor``."""
        return JobSet(j.scaled(factor) for j in self._jobs)

    def with_extended_ends(self, b: float) -> "JobSet":
        """New set with every end time stretched by ``(1 + b)`` (RET)."""
        return JobSet(j.with_extended_end(b) for j in self._jobs)

    def with_extended_intervals(self, b: float) -> "JobSet":
        """New set with every window *length* stretched by ``(1 + b)``."""
        return JobSet(j.with_extended_interval(b) for j in self._jobs)

    def sorted_by(self, key, reverse: bool = False) -> "JobSet":
        """New set sorted by ``key(job)`` (admission-control sequencing)."""
        return JobSet(sorted(self._jobs, key=key, reverse=reverse))

    def __repr__(self) -> str:
        return f"JobSet(num_jobs={len(self)})"
