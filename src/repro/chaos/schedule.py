"""Chaos schedules: one seed, one reproducible multi-fault timeline.

A :class:`ChaosSchedule` composes every failure mode the repository can
inject into a single deterministic timeline:

* **link events** — the :mod:`repro.faults` timeline (``LinkDown`` /
  ``LinkUp`` / ``WavelengthDegrade``);
* **crashes** — one-shot process deaths at the simulator's
  (:data:`~repro.recovery.crash.CRASH_POINTS`) and service's
  (:data:`~repro.recovery.crash.SERVICE_CRASH_POINTS`) crash points;
* **journal faults** — write failures (ENOSPC, EIO, torn write)
  injected into :class:`~repro.recovery.journal.EpochJournal` appends;
* **backend faults** — solver-backend misbehaviour (raise, time-out,
  or a subtly *wrong* solution) at given solve-call indices;
* **worker faults** — fleet worker kills and hangs at given task
  indices.

:func:`generate_chaos` derives a full timeline from one integer seed
via :class:`random.Random` — same seed, same timeline, byte for byte.
:func:`parse_chaos_spec` accepts the same three spec shapes as
:func:`repro.faults.parse_fault_spec` (``random:``, inline entries,
``.json`` file); the inline grammar extends the fault grammar with
``crash:POINT@EPOCH``, ``journal:MODE@WRITE``, ``backend:MODE@CALL``
and ``worker:MODE@TASK`` entries (see ``docs/chaos.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ValidationError
from ..faults.events import FaultEvent
from ..faults.schedule import FaultSchedule
from ..faults.spec import _parse_inline_event, _parse_number
from ..network.graph import Network
from ..recovery.crash import CRASH_POINTS, SERVICE_CRASH_POINTS

__all__ = [
    "JOURNAL_MODES",
    "BACKEND_MODES",
    "WORKER_MODES",
    "CrashFault",
    "JournalFault",
    "BackendFault",
    "WorkerFault",
    "ChaosSchedule",
    "generate_chaos",
    "parse_chaos_spec",
]

#: Journal write-fault modes: fail before writing (``enospc``, ``eio``)
#: or land partial bytes without an acknowledgement (``torn``).
JOURNAL_MODES = ("enospc", "eio", "torn")

#: Solver-backend fault modes.  ``raise`` and ``timeout`` are absorbed
#: by the resilient solve chain; ``wrong`` returns a corrupted solution
#: that must be caught by the verify layer before commit.
BACKEND_MODES = ("raise", "timeout", "wrong")

#: Fleet worker fault modes: die mid-task or hang forever.
WORKER_MODES = ("kill", "hang")

_ALL_CRASH_POINTS = tuple(CRASH_POINTS) + tuple(
    p for p in SERVICE_CRASH_POINTS if p not in CRASH_POINTS
)


@dataclass(frozen=True)
class CrashFault:
    """One simulated process death: fire ``point`` at epoch ``epoch``."""

    point: str
    epoch: int

    def __post_init__(self) -> None:
        if self.point not in _ALL_CRASH_POINTS:
            raise ValidationError(
                f"unknown crash point {self.point!r}; "
                f"known points: {', '.join(_ALL_CRASH_POINTS)}"
            )
        if self.epoch < 0:
            raise ValidationError(
                f"crash epoch must be >= 0, got {self.epoch}"
            )


@dataclass(frozen=True)
class JournalFault:
    """Fail the ``index``-th journal write attempt with ``mode``."""

    mode: str
    index: int

    def __post_init__(self) -> None:
        if self.mode not in JOURNAL_MODES:
            raise ValidationError(
                f"unknown journal fault mode {self.mode!r}; "
                f"known modes: {', '.join(JOURNAL_MODES)}"
            )
        if self.index < 0:
            raise ValidationError(
                f"journal write index must be >= 0, got {self.index}"
            )


@dataclass(frozen=True)
class BackendFault:
    """Misbehave on the ``call``-th solver-backend solve with ``mode``."""

    mode: str
    call: int

    def __post_init__(self) -> None:
        if self.mode not in BACKEND_MODES:
            raise ValidationError(
                f"unknown backend fault mode {self.mode!r}; "
                f"known modes: {', '.join(BACKEND_MODES)}"
            )
        if self.call < 0:
            raise ValidationError(
                f"backend call index must be >= 0, got {self.call}"
            )


@dataclass(frozen=True)
class WorkerFault:
    """Kill or hang the fleet worker running task index ``task``."""

    mode: str
    task: int

    def __post_init__(self) -> None:
        if self.mode not in WORKER_MODES:
            raise ValidationError(
                f"unknown worker fault mode {self.mode!r}; "
                f"known modes: {', '.join(WORKER_MODES)}"
            )
        if self.task < 0:
            raise ValidationError(
                f"worker task index must be >= 0, got {self.task}"
            )


@dataclass(frozen=True)
class ChaosSchedule:
    """One composed, deterministic multi-fault timeline.

    Attributes
    ----------
    link_events:
        Time-ordered :mod:`repro.faults` events; turned into a
        :class:`~repro.faults.FaultSchedule` per target network via
        :meth:`fault_schedule`.
    crashes:
        Crash-point firings, consumed in ``(epoch, point)`` order by the
        runner's run → crash → resume chain.  Simulator targets use the
        :data:`~repro.recovery.crash.CRASH_POINTS` subset, service
        targets the :data:`~repro.recovery.crash.SERVICE_CRASH_POINTS`
        subset.
    journal_faults:
        Write-attempt faults for the target's epoch journal.
    backend_faults:
        Solver-backend faults by solve-call index.
    worker_faults:
        Fleet worker kills/hangs by task index.
    seed, spec:
        Provenance: the generating seed and/or the spec string the
        schedule was parsed from (``None`` when not applicable).
    """

    link_events: tuple[FaultEvent, ...] = ()
    crashes: tuple[CrashFault, ...] = ()
    journal_faults: tuple[JournalFault, ...] = ()
    backend_faults: tuple[BackendFault, ...] = ()
    worker_faults: tuple[WorkerFault, ...] = ()
    seed: int | None = None
    spec: str | None = None

    @property
    def num_faults(self) -> int:
        """Total injected faults across every layer."""
        return (
            len(self.link_events)
            + len(self.crashes)
            + len(self.journal_faults)
            + len(self.backend_faults)
            + len(self.worker_faults)
        )

    def fault_schedule(self, network: Network) -> FaultSchedule | None:
        """The link-event half as a :class:`FaultSchedule` (or ``None``)."""
        if not self.link_events:
            return None
        return FaultSchedule(network, list(self.link_events))

    def crashes_for(self, points: tuple[str, ...]) -> list[CrashFault]:
        """The crash subset a target understands, in firing order."""
        rank = {p: i for i, p in enumerate(points)}
        return sorted(
            (c for c in self.crashes if c.point in rank),
            key=lambda c: (c.epoch, rank[c.point]),
        )

    def to_dict(self) -> dict:
        """Canonical JSON form (deterministic field order and values)."""
        from ..serialization import fault_events_to_list

        return {
            "seed": self.seed,
            "spec": self.spec,
            "link_events": fault_events_to_list(list(self.link_events)),
            "crashes": [
                {"point": c.point, "epoch": c.epoch} for c in self.crashes
            ],
            "journal": [
                {"mode": f.mode, "index": f.index}
                for f in self.journal_faults
            ],
            "backend": [
                {"mode": f.mode, "call": f.call} for f in self.backend_faults
            ],
            "workers": [
                {"mode": f.mode, "task": f.task} for f in self.worker_faults
            ],
        }


# ----------------------------------------------------------------------
# Seeded generation
# ----------------------------------------------------------------------
def generate_chaos(
    seed: int,
    network: Network,
    horizon: float,
    *,
    mtbf: float | None = None,
    mttr: float | None = None,
    degrade_prob: float | None = None,
) -> ChaosSchedule:
    """Derive a full composed timeline from one integer seed.

    Every layer draws from a single :class:`random.Random` stream, so
    the same ``(seed, network, horizon)`` triple reproduces the same
    timeline on every machine.  Generated backend faults use only the
    ``raise`` and ``timeout`` modes — both absorbed by the resilient
    solve chain — so a generated timeline always runs to completion;
    the ``wrong`` mode (which fail-stops at the verify gate) is
    opt-in via :func:`parse_chaos_spec`.
    """
    if horizon is None or horizon <= 0:
        raise ValidationError(
            f"generate_chaos needs a positive horizon, got {horizon!r}"
        )
    rng = random.Random(int(seed))
    link_events = tuple(
        FaultSchedule.random(
            network,
            horizon=float(horizon),
            mtbf=float(mtbf) if mtbf is not None
            else rng.uniform(horizon, 3.0 * horizon),
            mttr=float(mttr) if mttr is not None else rng.uniform(0.5, 2.0),
            seed=rng.randrange(2**31 - 1),
            degrade_prob=float(degrade_prob) if degrade_prob is not None
            else rng.choice([0.0, 0.5]),
        ).events
    )
    # Scenario runs settle within a handful of epochs regardless of the
    # nominal horizon; keep crash epochs and journal write indices low
    # so generated faults land inside the run instead of past its end.
    max_epoch = min(4, max(2, int(horizon)))
    crashes = []
    for point in rng.sample(CRASH_POINTS, k=rng.randint(1, 2)):
        crashes.append(CrashFault(point, rng.randrange(max_epoch)))
    crashes.append(
        CrashFault(rng.choice(SERVICE_CRASH_POINTS), rng.randrange(max_epoch))
    )
    journal_faults = tuple(
        JournalFault(rng.choice(JOURNAL_MODES), index)
        for index in sorted(rng.sample(range(3), k=rng.randint(1, 2)))
    )
    # Even call indices only: consecutive faulted calls would exhaust
    # the resilient chain's retries into the fallback backend, whose
    # optimal vertex may legitimately differ — breaking resume identity.
    backend_faults = tuple(
        BackendFault(rng.choice(("raise", "timeout")), call)
        for call in sorted(rng.sample((0, 2, 4, 6), k=rng.randint(1, 3)))
    )
    kill_task, hang_task = rng.sample(range(4), k=2)
    worker_faults = (
        WorkerFault("kill", kill_task),
        WorkerFault("hang", hang_task),
    )
    return ChaosSchedule(
        link_events=link_events,
        crashes=tuple(crashes),
        journal_faults=journal_faults,
        backend_faults=backend_faults,
        worker_faults=worker_faults,
        seed=int(seed),
    )


# ----------------------------------------------------------------------
# Spec grammar (mirrors repro.faults.parse_fault_spec)
# ----------------------------------------------------------------------
def _parse_index(token: str, what: str) -> int:
    value = _parse_number(token, what)
    if value != int(value):
        raise ValidationError(
            f"{what} must be an integer, got {token!r} in chaos spec"
        )
    return int(value)


def _parse_mode_at(entry: str, rest: str, what: str) -> tuple[str, int]:
    mode, sep, index = rest.partition("@")
    if not sep:
        raise ValidationError(
            f"chaos entry {entry!r} is missing an @{what} index"
        )
    return mode.strip().lower(), _parse_index(index, what)


def _parse_chaos_entry(entry: str, out: dict) -> None:
    kind = entry.partition(":")[0].strip().lower()
    if kind in ("down", "up", "degrade"):
        out["link_events"].append(_parse_inline_event(entry))
        return
    rest = entry.partition(":")[2]
    if kind == "crash":
        point, epoch = _parse_mode_at(entry, rest, "epoch")
        out["crashes"].append(CrashFault(point, epoch))
    elif kind == "journal":
        mode, index = _parse_mode_at(entry, rest, "write")
        out["journal_faults"].append(JournalFault(mode, index))
    elif kind == "backend":
        mode, call = _parse_mode_at(entry, rest, "call")
        out["backend_faults"].append(BackendFault(mode, call))
    elif kind == "worker":
        mode, task = _parse_mode_at(entry, rest, "task")
        out["worker_faults"].append(WorkerFault(mode, task))
    else:
        raise ValidationError(
            f"unknown chaos entry kind {kind!r}; expected down, up, "
            "degrade, crash, journal, backend or worker"
        )


def _parse_chaos_json(path: str, network: Network) -> dict:
    from ..serialization import fault_events_from_list, load_json

    payload = load_json(path)
    if not isinstance(payload, dict):
        raise ValidationError(
            f"chaos file {path!r} must be a JSON object, not a bare "
            f"{type(payload).__name__}"
        )
    unknown = set(payload) - {
        "link_events", "crashes", "journal", "backend", "workers",
    }
    if unknown:
        raise ValidationError(
            f"chaos file {path!r} has unknown key(s): {sorted(unknown)}"
        )

    def rows(key: str) -> list:
        raw = payload.get(key, [])
        if not isinstance(raw, list):
            raise ValidationError(
                f"chaos file {path!r}: {key!r} must be a list"
            )
        return raw

    def fault_rows(key: str, cls, fields: tuple[str, str]) -> list:
        parsed = []
        for i, item in enumerate(rows(key)):
            if not isinstance(item, dict):
                raise ValidationError(
                    f"chaos file {key} entry #{i} is not an object"
                )
            try:
                parsed.append(
                    cls(str(item[fields[0]]), int(item[fields[1]]))
                )
            except KeyError as missing:
                raise ValidationError(
                    f"chaos file {key} entry #{i} is missing "
                    f"{missing.args[0]!r}"
                ) from None
            except (TypeError, ValueError):
                raise ValidationError(
                    f"chaos file {key} entry #{i} has a non-integer "
                    f"{fields[1]!r}"
                ) from None
        return parsed

    return {
        "link_events": fault_events_from_list(rows("link_events")),
        "crashes": fault_rows("crashes", CrashFault, ("point", "epoch")),
        "journal_faults": fault_rows("journal", JournalFault,
                                     ("mode", "index")),
        "backend_faults": fault_rows("backend", BackendFault,
                                     ("mode", "call")),
        "worker_faults": fault_rows("workers", WorkerFault,
                                    ("mode", "task")),
    }


def parse_chaos_spec(
    spec: str,
    network: Network,
    seed: int = 0,
    horizon: float | None = None,
) -> ChaosSchedule:
    """Turn a ``--spec`` string into a :class:`ChaosSchedule`.

    Mirrors :func:`repro.faults.parse_fault_spec`'s three shapes:

    * ``random:`` — a fully generated timeline (requires ``horizon``);
      optional ``mtbf=``, ``mttr=``, ``degrade_prob=`` override the
      link-event half, e.g. ``random:mtbf=20,mttr=2``.
    * inline entries split on ``;`` — the fault grammar's ``down`` /
      ``up`` / ``degrade`` entries plus ``crash:pre-commit@2``,
      ``journal:enospc@1``, ``backend:wrong@0``, ``worker:hang@3``.
    * a path to a ``.json`` chaos file (``docs/chaos.md``).
    """
    spec = spec.strip()
    if not spec:
        raise ValidationError("empty chaos spec")
    if spec.startswith("random:"):
        params: dict[str, float] = {}
        for item in spec[len("random:"):].split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValidationError(
                    "random chaos spec entries look like key=value, "
                    f"got {item!r}"
                )
            params[key.strip()] = _parse_number(value, key.strip())
        unknown = set(params) - {"mtbf", "mttr", "degrade_prob"}
        if unknown:
            raise ValidationError(
                f"unknown random chaos parameters: {sorted(unknown)}"
            )
        if horizon is None:
            raise ValidationError("random chaos specs need a horizon")
        generated = generate_chaos(
            seed,
            network,
            horizon,
            mtbf=params.get("mtbf"),
            mttr=params.get("mttr"),
            degrade_prob=params.get("degrade_prob"),
        )
        return ChaosSchedule(
            link_events=generated.link_events,
            crashes=generated.crashes,
            journal_faults=generated.journal_faults,
            backend_faults=generated.backend_faults,
            worker_faults=generated.worker_faults,
            seed=int(seed),
            spec=spec,
        )
    if spec.endswith(".json"):
        parts = _parse_chaos_json(spec, network)
    else:
        parts = {
            "link_events": [], "crashes": [], "journal_faults": [],
            "backend_faults": [], "worker_faults": [],
        }
        for entry in spec.split(";"):
            if entry.strip():
                _parse_chaos_entry(entry.strip(), parts)
        if not any(parts.values()):
            raise ValidationError(
                f"chaos spec {spec!r} contains no entries"
            )
    if parts["link_events"]:
        # Validate endpoints/ordering once, like parse_fault_spec does.
        FaultSchedule(network, list(parts["link_events"]))
    return ChaosSchedule(
        link_events=tuple(parts["link_events"]),
        crashes=tuple(parts["crashes"]),
        journal_faults=tuple(parts["journal_faults"]),
        backend_faults=tuple(parts["backend_faults"]),
        worker_faults=tuple(parts["worker_faults"]),
        seed=int(seed),
        spec=spec,
    )
