"""Always-on invariant monitors for chaos runs.

Each monitor inspects one system-under-chaos artifact (a finished
simulation, a drained reservation service, a journal file, a fleet
result set) and returns a list of :class:`MonitorViolation` records —
empty means the invariant held.  The chaos runner keeps every monitor
armed on every run: a chaos campaign that "passes" has zero violations
across all of them, not merely "nothing crashed".

Monitored invariants (see ``docs/chaos.md``):

* **No lost reservation** — every accepted reservation reaches a
  terminal or visible state (completed / expired / voided); nothing
  accepted ever silently disappears from the commitment book.
* **Exactly one response** — every submitted request resolves exactly
  one decision, even across crash + resume + idempotent resubmission.
* **Checker-clean schedules** — every committed epoch allocation passes
  :func:`repro.verify.verify_assignment` (the simulator runs with
  ``verify_epochs=True``; a violation raises *and* is recorded here).
* **Resume identity** — replaying the journal reconstructs the same
  state: byte-identical commitment-book digests for the service,
  equal record outcomes for the simulator.
* **Journal recoverable** — the journal is never unreadable; at worst
  its torn tail is dropped.

Monitor details never embed filesystem paths, so violation lists are
byte-identical across runs of the same seed in different temp dirs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MonitorViolation",
    "monitor_journal",
    "monitor_sim_result",
    "monitor_sim_resume_identity",
    "monitor_service_book",
    "monitor_service_responses",
    "monitor_service_resume_identity",
    "monitor_fleet_results",
]

_TERMINAL_SIM = ("completed", "expired", "rejected")
_KNOWN_RES = ("accepted", "completed", "expired", "voided")


@dataclass(frozen=True)
class MonitorViolation:
    """One invariant breach observed by a chaos monitor."""

    monitor: str
    target: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "monitor": self.monitor,
            "target": self.target,
            "detail": self.detail,
        }


def monitor_journal(path, target: str, entry_kind: str = "epoch") -> list:
    """The journal must read back (possibly minus a dropped torn tail)."""
    from ..recovery.journal import read_journal

    try:
        read_journal(path, entry_kind=entry_kind)
    except Exception as exc:  # noqa: BLE001 - any failure is the finding
        return [
            MonitorViolation(
                "journal-recoverable",
                target,
                f"journal unreadable after fault ({type(exc).__name__})",
            )
        ]
    return []


def monitor_sim_result(result, target: str = "sim") -> list:
    """Every job terminal; every armed epoch verification clean."""
    violations = []
    for rec in result.records:
        if rec.status not in _TERMINAL_SIM:
            violations.append(
                MonitorViolation(
                    "no-lost-job",
                    target,
                    f"job {rec.job.id} ended in non-terminal state "
                    f"{rec.status!r}",
                )
            )
    for i, report in enumerate(result.verification):
        if not report.ok:
            violations.append(
                MonitorViolation(
                    "checker-clean",
                    target,
                    f"epoch verification report {i} failed",
                )
            )
    return violations


def monitor_sim_resume_identity(path, result, target: str = "sim") -> list:
    """Resuming the finished journal must reproduce the same outcomes.

    The resumed run replays committed state and re-executes any epochs
    past the last commit; solves are deterministic, so statuses and
    delivered volumes must match the original run exactly.
    """
    from ..sim.simulator import Simulation

    try:
        redone = Simulation.resume(path)
    except Exception as exc:  # noqa: BLE001 - any failure is the finding
        return [
            MonitorViolation(
                "resume-identity",
                target,
                f"resume of finished run failed ({type(exc).__name__})",
            )
        ]
    violations = []
    original = {r.job.id: r for r in result.records}
    replayed = {r.job.id: r for r in redone.records}
    if sorted(map(str, original)) != sorted(map(str, replayed)):
        return [
            MonitorViolation(
                "resume-identity", target,
                "resumed run tracks a different job set",
            )
        ]
    for job_id, rec in original.items():
        twin = replayed[job_id]
        if rec.status != twin.status or abs(
            rec.remaining - twin.remaining
        ) > 1e-9 * max(1.0, rec.job.size):
            violations.append(
                MonitorViolation(
                    "resume-identity",
                    target,
                    f"job {job_id}: run ended "
                    f"{rec.status}/{rec.remaining:.9g}, resume replayed "
                    f"{twin.status}/{twin.remaining:.9g}",
                )
            )
    return violations


def monitor_service_book(service, target: str = "serve") -> list:
    """No accepted reservation may be lost or left dangling."""
    violations = []
    book = service.book
    for key in sorted(book.reservations):
        res = book.reservations[key]
        if res.status not in _KNOWN_RES:
            violations.append(
                MonitorViolation(
                    "no-lost-reservation",
                    target,
                    f"reservation {key} in unknown state {res.status!r}",
                )
            )
        recorded = book.decided(key)
        if recorded is None or recorded.get("kind") != "accept":
            violations.append(
                MonitorViolation(
                    "no-lost-reservation",
                    target,
                    f"reservation {key} has no accept decision in the "
                    "ledger",
                )
            )
    if not service.idle:
        violations.append(
            MonitorViolation(
                "no-lost-reservation",
                target,
                "service not idle after drain: queued or active work "
                "was abandoned",
            )
        )
    return violations


def monitor_service_responses(
    submitted_ids, handles, release_counts, target: str = "serve"
) -> list:
    """Every submission resolved exactly once, never twice.

    ``handles`` maps request id to the last
    :class:`~repro.service.requests.DecisionHandle` the requester
    holds; ``release_counts`` counts how many times a *fresh* decision
    for that id came back from :meth:`ReservationService.tick` across
    the whole crash/resume chain.
    """
    violations = []
    for rid in submitted_ids:
        handle = handles.get(rid)
        if handle is None or not handle.done:
            violations.append(
                MonitorViolation(
                    "exactly-one-response",
                    target,
                    f"request {rid} never received a decision",
                )
            )
        if release_counts.get(rid, 0) > 1:
            violations.append(
                MonitorViolation(
                    "exactly-one-response",
                    target,
                    f"request {rid} was decided "
                    f"{release_counts[rid]} times",
                )
            )
    return violations


def monitor_service_resume_identity(
    path, live_digest: str, target: str = "serve"
) -> list:
    """Two replays of the journal agree with each other and the live book."""
    from ..service import ReservationService

    digests = []
    for _ in range(2):
        try:
            svc = ReservationService.resume(path)
        except Exception as exc:  # noqa: BLE001
            return [
                MonitorViolation(
                    "resume-identity",
                    target,
                    f"service resume failed ({type(exc).__name__})",
                )
            ]
        digests.append(svc.book.digest())
        svc.close()
    violations = []
    if digests[0] != digests[1]:
        violations.append(
            MonitorViolation(
                "resume-identity", target,
                "two replays of the same journal produced different "
                "commitment-book digests",
            )
        )
    if digests[0] != live_digest:
        violations.append(
            MonitorViolation(
                "resume-identity", target,
                "replayed commitment-book digest differs from the live "
                "service's",
            )
        )
    return violations


def monitor_fleet_results(
    specs, results, expected_failures, target: str = "fleet"
) -> list:
    """One envelope per spec; faults fail loudly, innocents succeed.

    ``expected_failures`` maps spec index to the expected
    ``error_type`` (``WorkerCrashed`` / ``WorkerHung``); every other
    spec must return ``ok`` with its deterministic payload.
    """
    violations = []
    by_index = {r.index: r for r in results}
    for i, spec in enumerate(specs):
        res = by_index.get(i)
        if res is None:
            violations.append(
                MonitorViolation(
                    "exactly-one-result",
                    target,
                    f"spec {i} ({spec.label}) got no result envelope",
                )
            )
            continue
        expected = expected_failures.get(i)
        if expected is None:
            if not res.ok:
                violations.append(
                    MonitorViolation(
                        "no-lost-task",
                        target,
                        f"healthy spec {i} ({spec.label}) failed as "
                        f"{res.error_type}",
                    )
                )
        elif res.ok or res.error_type != expected:
            violations.append(
                MonitorViolation(
                    "fault-contained",
                    target,
                    f"faulted spec {i} ({spec.label}) expected "
                    f"{expected}, got "
                    f"{'ok' if res.ok else res.error_type}",
                )
            )
    if len(results) != len(specs):
        violations.append(
            MonitorViolation(
                "exactly-one-result",
                target,
                f"{len(specs)} specs produced {len(results)} envelopes",
            )
        )
    return violations
