"""The chaos runner: drive composed fault timelines against real targets.

:func:`run_chaos` takes one seed (and optionally a spec string),
derives a deterministic workload from the fuzzer's scenario generator
(:func:`repro.verify.fuzz.make_scenario`) and a composed
:class:`~repro.chaos.schedule.ChaosSchedule`, then drives the timeline
against up to three targets:

* ``sim``   — the periodic controller with journal, crash injector,
  journal write faults, link faults and a faulty solver backend, run
  through the full crash → resume chain until it completes;
* ``serve`` — the reservation service under the same layers, driven by
  request submissions with idempotent resubmission after every crash;
* ``fleet`` — the process-pool fleet with worker kills and hangs,
  reclaimed by ``task_timeout``.

Every monitor in :mod:`repro.chaos.monitors` stays armed on every run.
The result is a :class:`ChaosReport` whose canonical JSON rendering is
**byte-identical** for the same ``(seed, spec, targets)`` — reports are
built exclusively from deterministic fields (virtual time, decision
kinds, digests, fault counters), never from wall clocks, pids or
filesystem paths.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..control.policies import FixedPolicy
from ..errors import JournalWriteError, ScheduleError, ValidationError
from ..lp.solver import SolveResilience
from ..recovery.crash import (
    CRASH_POINTS,
    SERVICE_CRASH_POINTS,
    CrashInjector,
    SimulatedCrash,
)
from .inject import JournalFaultInjector, install_faulty_backend
from .monitors import (
    MonitorViolation,
    monitor_fleet_results,
    monitor_journal,
    monitor_service_book,
    monitor_service_resume_identity,
    monitor_service_responses,
    monitor_sim_result,
    monitor_sim_resume_identity,
)
from .schedule import ChaosSchedule, generate_chaos, parse_chaos_spec

__all__ = ["ChaosReport", "run_chaos", "CHAOS_TARGETS"]

#: The targets a chaos campaign can drive.
CHAOS_TARGETS = ("sim", "serve", "fleet")

#: Chaos solves retry without perturbation: an injected backend fault
#: must heal to the *identical* solution the unfaulted call would have
#: produced, or resume identity could not be monitored exactly.
_CHAOS_RESILIENCE = SolveResilience(perturbation=0.0)

#: Probe tasks per fleet batch beyond the faulted ones.
_FLEET_INNOCENTS = 2

#: Hang-detection window for the fleet target's hang batch (seconds).
_FLEET_TIMEOUT = 1.0


@dataclass
class ChaosReport:
    """Everything one chaos campaign produced.

    ``targets`` maps target name to its deterministic outcome record;
    ``violations`` holds every monitor breach (empty = the campaign
    passed).  :meth:`to_json` renders canonical JSON — ``sort_keys``
    plus compact separators — which the determinism property tests
    compare byte for byte.
    """

    seed: int
    spec: str | None
    chaos: dict
    targets: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "spec": self.spec,
            "chaos": self.chaos,
            "targets": self.targets,
            "violations": [v.to_dict() for v in self.violations],
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def render(self) -> str:
        """Human summary: one line per target plus the verdict."""
        lines = []
        for name in sorted(self.targets):
            summary = ", ".join(
                f"{k}={v}" for k, v in sorted(self.targets[name].items())
                if not isinstance(v, (list, dict))
            )
            lines.append(f"[{name}] {summary}")
        for v in self.violations:
            lines.append(f"VIOLATION [{v.target}] {v.monitor}: {v.detail}")
        verdict = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        lines.append(
            f"chaos seed={self.seed} "
            f"faults={sum(1 for _ in self._fault_rows())} -> {verdict}"
        )
        return "\n".join(lines)

    def _fault_rows(self):
        for key in ("link_events", "crashes", "journal", "backend",
                    "workers"):
            yield from self.chaos.get(key, ())


def _interception(exc: ScheduleError) -> bool:
    """Was this the verify gate rejecting an untrusted solver solution?"""
    return "rejected by verify_schedule" in str(exc)


# ----------------------------------------------------------------------
# Targets
# ----------------------------------------------------------------------
def _run_sim_target(
    chaos: ChaosSchedule, scenario, horizon: float, workdir: Path,
    violations: list,
) -> dict:
    from ..sim.simulator import Simulation

    path = workdir / "chaos-sim.journal"
    pending = chaos.crashes_for(CRASH_POINTS)
    injector = JournalFaultInjector(chaos.journal_faults)
    report = {
        "crashes_fired": 0,
        "journal_faults_fired": 0,
        "resumes": 0,
        "intercepted": False,
    }
    result = None
    attempts = len(chaos.crashes) + len(chaos.journal_faults) + 3
    with install_faulty_backend(chaos.backend_faults) as backend:
        started = False
        for _ in range(attempts):
            ci = (
                CrashInjector(pending[0].point, pending[0].epoch)
                if pending else None
            )
            try:
                if not started:
                    started = True
                    sim = Simulation(
                        scenario.network,
                        policy="reduce",
                        fault_schedule=chaos.fault_schedule(scenario.network),
                        resilience=_CHAOS_RESILIENCE,
                        verify_epochs=True,
                        verify_solutions=True,
                        journal=path,
                        crash_injector=ci,
                        journal_fault_injector=injector,
                        # Journal-safe by construction: FixedPolicy keeps
                        # the kernel's decide path armed under chaos while
                        # resume (policy=None) stays byte-identical.
                        control_policy=FixedPolicy(),
                    )
                    result = sim.run(scenario.jobs, horizon=horizon)
                else:
                    result = Simulation.resume(
                        path,
                        crash_injector=ci,
                        journal_fault_injector=injector,
                    )
            except SimulatedCrash:
                report["crashes_fired"] += 1
                report["resumes"] += 1
                if pending:
                    pending.pop(0)
                continue
            except JournalWriteError:
                report["journal_faults_fired"] += 1
                report["resumes"] += 1
                # Fail-stop contract: the prior journal must be intact.
                violations.extend(monitor_journal(path, "sim"))
                continue
            except ScheduleError as exc:
                if _interception(exc):
                    # A `wrong`-mode backend fault was caught by the
                    # verify gate before commit — the intended outcome.
                    report["intercepted"] = True
                    break
                raise
            break
        else:
            violations.append(
                MonitorViolation(
                    "run-converges", "sim",
                    "composed timeline did not complete within its "
                    "restart budget",
                )
            )
        report["backend_calls"] = backend.calls
        report["backend_faults_fired"] = backend.injected
    report["journal_writes"] = injector.writes
    if result is not None and not report["intercepted"]:
        report["statuses"] = sorted(
            [str(r.job.id), r.status] for r in result.records
        )
        report["delivered_volume"] = round(result.delivered_volume, 9)
        violations.extend(monitor_sim_result(result))
        violations.extend(monitor_journal(path, "sim"))
        violations.extend(monitor_sim_resume_identity(path, result))
    return report


def _run_serve_target(
    chaos: ChaosSchedule, scenario, workdir: Path, violations: list
) -> dict:
    from ..service import ReservationService

    path = workdir / "chaos-serve.journal"
    pending = chaos.crashes_for(SERVICE_CRASH_POINTS)
    injector = JournalFaultInjector(chaos.journal_faults)
    requests = [
        {
            "id": f"r{job.id}",
            "source": job.source,
            "dest": job.dest,
            "size": job.size,
            "start": job.start,
            "end": job.end,
        }
        for job in scenario.jobs
    ]
    submitted = [r["id"] for r in requests]
    handles: dict = {}
    release_counts: dict = {rid: 0 for rid in submitted}
    report = {
        "crashes_fired": 0,
        "journal_faults_fired": 0,
        "resumes": 0,
        "intercepted": False,
    }

    def submit_all(svc) -> None:
        # Idempotent resubmission: already-decided ids resolve from the
        # ledger immediately and never touch the queue again.
        for record in requests:
            handles[record["id"]] = svc.submit(dict(record))

    def fresh_injector():
        return (
            CrashInjector(pending[0].point, pending[0].epoch)
            if pending else None
        )

    attempts = len(chaos.crashes) + len(chaos.journal_faults) + 3
    with install_faulty_backend(chaos.backend_faults) as backend:
        service = ReservationService(
            scenario.network,
            journal=path,
            crash_injector=fresh_injector(),
            fault_schedule=chaos.fault_schedule(scenario.network),
            journal_fault_injector=injector,
            resilience=_CHAOS_RESILIENCE,
            verify_solutions=True,
            renegotiate_limit=2,
            control_policy=FixedPolicy(),
        )
        submit_all(service)
        drained = False
        for _ in range(attempts):
            try:
                ticks = 0
                while (
                    not service.idle or service.queue_depth
                ) and ticks < 200:
                    for decision in asyncio.run(service.tick()):
                        key = str(decision.request_id)
                        if key in release_counts:
                            release_counts[key] += 1
                    ticks += 1
                drained = True
            except SimulatedCrash:
                report["crashes_fired"] += 1
                report["resumes"] += 1
                if pending:
                    pending.pop(0)
            except JournalWriteError:
                report["journal_faults_fired"] += 1
                report["resumes"] += 1
                violations.extend(monitor_journal(path, "serve", "batch"))
            if drained:
                break
            service = ReservationService.resume(
                path,
                crash_injector=fresh_injector(),
                journal_fault_injector=injector,
            )
            submit_all(service)
        else:
            violations.append(
                MonitorViolation(
                    "run-converges", "serve",
                    "composed timeline did not drain within its restart "
                    "budget",
                )
            )
        report["backend_calls"] = backend.calls
        report["backend_faults_fired"] = backend.injected
    report["journal_writes"] = injector.writes
    if drained:
        digest = service.book.digest()
        report["digest"] = digest
        report["decisions"] = sorted(
            [key, entry["kind"]]
            for key, entry in service.book.ledger.items()
        )
        violations.extend(monitor_service_book(service))
        violations.extend(
            monitor_service_responses(submitted, handles, release_counts)
        )
        violations.extend(monitor_journal(path, "serve", "batch"))
        service.close()
        violations.extend(monitor_service_resume_identity(path, digest))
    return report


def _run_fleet_target(
    chaos: ChaosSchedule, seed: int, violations: list
) -> dict:
    from ..parallel.fleet import TaskSpec, run_fleet

    # Kill faults and hang faults run in separate batches so their
    # failure attribution is deterministic: a kill breaks the pool in
    # milliseconds, which would race the hang-detection window.
    batches = {
        "kill": [f.task for f in chaos.worker_faults if f.mode == "kill"],
        "hang": [f.task for f in chaos.worker_faults if f.mode == "hang"],
    }
    report: dict = {"batches": {}}
    for mode, tasks in batches.items():
        size = _FLEET_INNOCENTS + max(len(tasks), 1)
        faulted = sorted({task % size for task in tasks})
        specs = [
            TaskSpec(
                "chaos_probe",
                {
                    "seed": int(seed) * 100 + i,
                    "mode": mode if i in faulted else None,
                    "hang_seconds": 60.0,
                },
                label=f"{mode}-probe[{i}]",
            )
            for i in range(size)
        ]
        results = run_fleet(
            specs,
            jobs=2,
            retries=1,
            task_timeout=_FLEET_TIMEOUT if mode == "hang" else None,
        )
        expected = {
            i: ("WorkerHung" if mode == "hang" else "WorkerCrashed")
            for i in faulted
        }
        violations.extend(monitor_fleet_results(specs, results, expected))
        report["batches"][mode] = sorted(
            [r.label, "ok" if r.ok else str(r.error_type)] for r in results
        )
        report[f"{mode}_faults"] = len(faulted)
    return report


# ----------------------------------------------------------------------
def run_chaos(
    seed: int = 0,
    spec: str | None = None,
    targets=CHAOS_TARGETS,
    workdir: str | Path | None = None,
) -> ChaosReport:
    """Run one composed chaos campaign; returns its deterministic report.

    ``seed`` picks both the workload (via
    :func:`~repro.verify.fuzz.make_scenario`) and — when ``spec`` is
    ``None`` — the generated fault timeline.  ``spec`` overrides the
    timeline with :func:`~repro.chaos.schedule.parse_chaos_spec`.
    ``workdir`` holds the journals (a temp dir by default, removed
    afterwards; pass a path to keep them for inspection).
    """
    unknown = [t for t in targets if t not in CHAOS_TARGETS]
    if unknown:
        raise ValidationError(
            f"unknown chaos target(s) {unknown}; "
            f"known targets: {', '.join(CHAOS_TARGETS)}"
        )
    from ..verify.fuzz import make_scenario

    # Link faults ride the scenario's own network; the workload itself
    # stays fault-free so every fault in play comes from the chaos
    # schedule and is accounted for in the report.
    scenario = make_scenario(int(seed), allow_faults=False)
    horizon = scenario.grid.end * 3.0
    chaos = (
        parse_chaos_spec(spec, scenario.network, seed=int(seed),
                         horizon=horizon)
        if spec
        else generate_chaos(int(seed), scenario.network, horizon)
    )
    report = ChaosReport(seed=int(seed), spec=spec, chaos=chaos.to_dict())

    def drive(directory: Path) -> None:
        for target in targets:
            if target == "sim":
                report.targets["sim"] = _run_sim_target(
                    chaos, scenario, horizon, directory, report.violations
                )
            elif target == "serve":
                report.targets["serve"] = _run_serve_target(
                    chaos, scenario, directory, report.violations
                )
            else:
                report.targets["fleet"] = _run_fleet_target(
                    chaos, int(seed), report.violations
                )

    if workdir is not None:
        Path(workdir).mkdir(parents=True, exist_ok=True)
        drive(Path(workdir))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            drive(Path(tmp))
    return report
