"""Composed chaos engine: deterministic multi-fault injection.

One seed produces one reproducible :class:`ChaosSchedule` — a composed
timeline of link faults, process crashes, journal write faults, solver
backend faults, and fleet worker kills/hangs — which
:func:`run_chaos` drives against the simulator, the reservation
service, and the process-pool fleet with every invariant monitor
armed.  See ``docs/chaos.md`` for the spec grammar, the injector
catalogue, and the monitored invariants.

Layout
------
* :mod:`repro.chaos.schedule` — the :class:`ChaosSchedule` timeline,
  its generator (:func:`generate_chaos`) and spec grammar
  (:func:`parse_chaos_spec`).
* :mod:`repro.chaos.inject` — the injectors: :class:`FaultyBackend`
  (solver registry), :class:`JournalFaultInjector` (ENOSPC / EIO /
  torn renames), :func:`chaos_fleet_probe` (worker kill / hang).
* :mod:`repro.chaos.monitors` — always-on invariant monitors returning
  :class:`MonitorViolation` records.
* :mod:`repro.chaos.runner` — :func:`run_chaos` and the
  :class:`ChaosReport` it returns (canonical, byte-stable JSON).
"""

from .inject import (
    FaultyBackend,
    JournalFaultInjector,
    chaos_fleet_probe,
    install_faulty_backend,
)
from .monitors import (
    MonitorViolation,
    monitor_fleet_results,
    monitor_journal,
    monitor_service_book,
    monitor_service_resume_identity,
    monitor_service_responses,
    monitor_sim_result,
    monitor_sim_resume_identity,
)
from .runner import CHAOS_TARGETS, ChaosReport, run_chaos
from .schedule import (
    BACKEND_MODES,
    JOURNAL_MODES,
    WORKER_MODES,
    BackendFault,
    ChaosSchedule,
    CrashFault,
    JournalFault,
    WorkerFault,
    generate_chaos,
    parse_chaos_spec,
)

__all__ = [
    "BACKEND_MODES",
    "CHAOS_TARGETS",
    "JOURNAL_MODES",
    "WORKER_MODES",
    "BackendFault",
    "ChaosReport",
    "ChaosSchedule",
    "CrashFault",
    "FaultyBackend",
    "JournalFault",
    "JournalFaultInjector",
    "MonitorViolation",
    "WorkerFault",
    "chaos_fleet_probe",
    "generate_chaos",
    "install_faulty_backend",
    "monitor_fleet_results",
    "monitor_journal",
    "monitor_service_book",
    "monitor_service_resume_identity",
    "monitor_service_responses",
    "monitor_sim_result",
    "monitor_sim_resume_identity",
    "parse_chaos_spec",
    "run_chaos",
]
