"""Chaos injectors: faulty solver backends, journal write faults, and
fleet worker kills/hangs.

Three independent layers, each deterministic and call-indexed so the
same :class:`~repro.chaos.schedule.ChaosSchedule` replays the same
faults at the same places:

* :class:`FaultyBackend` wraps a registered
  :class:`~repro.engine.backend.SolverBackend` and misbehaves at the
  scheduled solve-call indices — raising, "timing out", or returning a
  subtly *wrong* solution (a corrupted optimal point).  The wrong mode
  exists to prove the verify layer's worth: the corruption (a negative
  allocation) is caught by :func:`repro.verify.verify_schedule` before
  any rounding or commit, on every instance.
* :class:`JournalFaultInjector` is the ``fault_injector`` callable the
  :class:`~repro.recovery.journal.EpochJournal` invokes before each
  atomic replace.  ENOSPC/EIO faults raise :class:`OSError` before any
  byte is written; the torn mode lands partial bytes of the *new* line
  on disk and then fails the acknowledgement — both surface as
  :class:`~repro.errors.JournalWriteError` with every previously
  committed line intact.
* :func:`chaos_fleet_probe` is the fleet task worker faults ride on:
  ``mode="kill"`` dies without a Python exception (``os._exit``),
  ``mode="hang"`` sleeps past any reasonable ``task_timeout``.
"""

from __future__ import annotations

import errno
import os
import time
from contextlib import contextmanager
from dataclasses import replace

import numpy as np

from ..engine.backend import get_backend, register_backend
from ..errors import SolverError
from .schedule import BackendFault, JournalFault

__all__ = [
    "FaultyBackend",
    "install_faulty_backend",
    "JournalFaultInjector",
    "chaos_fleet_probe",
]


class FaultyBackend:
    """A solver backend that misbehaves at scheduled call indices.

    Wraps an inner :class:`~repro.engine.backend.SolverBackend` and
    keeps its ``name``, so installing the wrapper in the registry
    (``replace=True``) routes every solve in the process through it.
    Calls are counted per wrapper instance; the fault map sends call
    ``k`` into one of three modes:

    * ``raise`` — a :class:`~repro.errors.SolverError`, as a numerical
      breakdown would produce.  The resilient solve chain retries.
    * ``timeout`` — a :class:`~repro.errors.SolverError` styled as a
      solver time-out.  Also retried.
    * ``wrong`` — the inner backend's solution with one entry negated:
      a subtly invalid point that still has plausible shape.  Negative
      allocations violate the nonnegativity invariant on *every*
      instance, so :func:`repro.verify.verify_schedule` rejects the
      solution deterministically before rounding or commit (the
      ``verify_solutions=`` gate in
      :class:`~repro.core.scheduler.Scheduler`).
    """

    def __init__(self, inner, faults: tuple[BackendFault, ...] = ()) -> None:
        self.inner = inner
        self.name = inner.name
        self.supports_warm_start = inner.supports_warm_start
        self._modes = {int(f.call): f.mode for f in faults}
        #: Total solve calls routed through this wrapper.
        self.calls = 0
        #: How many of them were faulted.
        self.injected = 0

    def solve(
        self,
        problem,
        *,
        warm_start=None,
        telemetry=None,
        label=None,
        budget=None,
    ):
        call = self.calls
        self.calls += 1
        mode = self._modes.get(call)
        if mode == "raise":
            self.injected += 1
            raise SolverError(
                f"chaos: injected backend failure at solve call {call}",
                backend=self.name,
            )
        if mode == "timeout":
            self.injected += 1
            raise SolverError(
                f"chaos: injected solver time-out at solve call {call}",
                backend=self.name,
            )
        solution = self.inner.solve(
            problem,
            warm_start=warm_start,
            telemetry=telemetry,
            label=label,
            budget=budget,
        )
        if mode == "wrong":
            self.injected += 1
            return self._corrupt(solution)
        return solution

    @staticmethod
    def _corrupt(solution):
        """Negate the largest allocation entry: invalid on every instance.

        The final entry is excluded when the vector has more than one:
        stage-1 LPs append the throughput variable ``z`` there, and a
        negated ``z`` would poison ``zstar`` downstream instead of
        tripping the nonnegativity check on the allocation block.
        """
        x = np.array(solution.x, dtype=float, copy=True)
        if x.size == 0:
            return solution
        body = x[:-1] if x.size > 1 else x
        c = int(np.argmax(np.abs(body)))
        x[c] = -abs(x[c]) - 1.0
        return replace(solution, x=x)


@contextmanager
def install_faulty_backend(
    faults: tuple[BackendFault, ...], name: str = "highs"
):
    """Temporarily shadow backend ``name`` with a :class:`FaultyBackend`.

    Yields the wrapper (for its ``calls`` / ``injected`` counters) and
    restores the original backend on exit, even on error — the registry
    is process-global, so leaking a faulty backend would poison every
    later solve.
    """
    original = get_backend(name)
    wrapper = FaultyBackend(original, tuple(faults))
    register_backend(wrapper, replace=True)
    try:
        yield wrapper
    finally:
        register_backend(original, replace=True)


class JournalFaultInjector:
    """Deterministic write faults for :class:`EpochJournal` appends.

    Installed as ``journal.fault_injector``; the journal calls it as
    ``injector(path, content)`` immediately before each atomic replace.
    Write attempts are counted across the injector's whole lifetime —
    the chaos runner threads *one* instance through every run/resume of
    a composed timeline, so "fail write 2" means the second durable
    commit attempted anywhere in the timeline.  A failed write is not
    re-faulted on resume: the retry is a new, later write index.

    Modes (see :data:`~repro.chaos.schedule.JOURNAL_MODES`):

    * ``enospc`` / ``eio`` — raise :class:`OSError` before any byte is
      written; the journal wraps it into
      :class:`~repro.errors.JournalWriteError` and the on-disk file is
      untouched.
    * ``torn`` — return replacement content with the final (new) line
      cut in half: the partial bytes land durably, the append is never
      acknowledged, and recovery drops the torn tail.
    """

    def __init__(self, faults: tuple[JournalFault, ...] = ()) -> None:
        self._modes = {int(f.index): f.mode for f in faults}
        #: Write attempts seen so far (monotonic across run/resume).
        self.writes = 0
        #: Faults actually fired.
        self.injected = 0

    def __call__(self, path, content: str) -> str | None:
        index = self.writes
        self.writes += 1
        mode = self._modes.get(index)
        if mode is None:
            return None
        self.injected += 1
        if mode == "enospc":
            raise OSError(
                errno.ENOSPC,
                f"chaos: injected ENOSPC on journal write {index}",
            )
        lines = content.splitlines()
        if mode == "eio" or len(lines) < 2:
            # A torn header would make the journal unreadable, which is
            # not what a torn *append* means; degrade to a plain EIO.
            raise OSError(
                errno.EIO, f"chaos: injected EIO on journal write {index}"
            )
        # torn: every committed line survives byte-for-byte; only the
        # freshly appended line is cut mid-way, exactly like a crash
        # between write() and fsync() would leave it.
        tail = lines[-1][: max(1, len(lines[-1]) // 2)]
        return "\n".join(lines[:-1] + [tail])

    @property
    def exhausted(self) -> bool:
        """True once every scheduled fault has fired."""
        return self.injected >= len(self._modes)


def chaos_fleet_probe(
    seed: int = 0,
    mode: str | None = None,
    hang_seconds: float = 3600.0,
) -> dict:
    """Fleet task carrying worker faults (registered as ``chaos_probe``).

    ``mode=None`` returns a deterministic payload; ``"kill"`` dies
    without raising (the pool sees a dead worker, not a task error);
    ``"hang"`` sleeps far past any ``task_timeout=`` so the fleet's
    hang detection — not task logic — must reclaim the worker.
    """
    if mode == "kill":
        os._exit(17)
    if mode == "hang":
        time.sleep(float(hang_seconds))
    return {"seed": int(seed), "mode": mode}
