"""Closed-loop driver: a deterministic requester population.

:class:`ClosedLoopDriver` plays a job trace against a
:class:`~repro.service.core.ReservationService` the way a fleet of
requesters would: it submits each request at its arrival epoch, ticks
the service once per epoch, and *reacts* to the responses —

* ``Negotiated`` counter-offers are resubmitted under a derived id
  (``<id>~r<k>``) with the proposed window, up to ``negotiate_limit``
  hops;
* ``Rejected(reason="overload")`` sheds are retried with capped
  exponential backoff in epochs (``backoff_base * 2**attempt``, at
  most ``max_backoff``), up to ``retry_limit`` attempts;
* anything else is final.

Every reaction is a pure function of (decision, attempt counters), so
the driver is deterministic in virtual time: the crash-matrix tests
run the same trace twice — once clean, once crashed-and-resumed — and
compare commitment books.  On a :class:`~repro.recovery.crash.
SimulatedCrash` the driver stops mid-flight exactly like real clients
losing their server; :meth:`resume_with` attaches the same population
to a recovered service and re-submits everything still undecided.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field

from ..errors import ValidationError
from ..workload.jobs import JobSet
from .core import ReservationService
from .requests import (
    REASON_OVERLOAD,
    Accepted,
    Decision,
    DecisionHandle,
    Negotiated,
    Rejected,
    ReservationRequest,
)

__all__ = ["ClosedLoopDriver", "DriverReport", "drive"]

_EPS = 1e-9


@dataclass
class _Flight:
    """One in-flight request plus its reaction counters."""

    request: ReservationRequest
    retries: int = 0
    hops: int = 0
    handle: DecisionHandle | None = None


@dataclass
class DriverReport:
    """What the population experienced, keyed by *original* trace id."""

    decisions: dict[str, Decision] = field(default_factory=dict)
    accepted: int = 0
    rejected: int = 0
    shed_retries: int = 0
    renegotiated: int = 0


class ClosedLoopDriver:
    """Deterministic requester population over a job trace."""

    def __init__(
        self,
        service: ReservationService,
        jobs: JobSet,
        retry_limit: int = 2,
        backoff_base: int = 1,
        max_backoff: int = 8,
        negotiate_limit: int = 2,
        max_epochs: int = 10_000,
    ) -> None:
        if backoff_base < 1:
            raise ValidationError(
                f"backoff_base must be >= 1 epoch, got {backoff_base}"
            )
        if max_backoff < backoff_base:
            raise ValidationError(
                f"max_backoff {max_backoff} is below backoff_base "
                f"{backoff_base}"
            )
        self.service = service
        self.retry_limit = int(retry_limit)
        self.backoff_base = int(backoff_base)
        self.max_backoff = int(max_backoff)
        self.negotiate_limit = int(negotiate_limit)
        self.max_epochs = int(max_epochs)
        self.report = DriverReport()
        # Arrival schedule: epoch -> flights first submitted there.
        self._due: dict[int, list[_Flight]] = {}
        # Submitted, awaiting a decision: request key -> flight.
        self._inflight: dict[str, _Flight] = {}
        self._outstanding = 0
        for job in jobs.sorted_by(lambda j: (j.arrival, str(j.id))):
            request = ReservationRequest(
                id=job.id, source=job.source, dest=job.dest,
                size=job.size, start=job.start, end=job.end,
                arrival=float(job.arrival),
            )
            self._schedule(
                _Flight(request), self._epoch_of(request.arrival)
            )

    # ------------------------------------------------------------------
    def _epoch_of(self, t: float) -> int:
        return max(0, math.ceil(t / self.service.tau - _EPS))

    def _schedule(self, flight: _Flight, epoch: int) -> None:
        self._due.setdefault(epoch, []).append(flight)
        self._outstanding += 1

    @staticmethod
    def _origin(request_id: int | str) -> str:
        return str(request_id).split("~", 1)[0]

    # ------------------------------------------------------------------
    async def run(self) -> DriverReport:
        """Play the trace to quiescence; returns the population report.

        Raises :class:`~repro.recovery.crash.SimulatedCrash` through
        from the service when an injector fires — callers resume via
        :meth:`ReservationService.resume` + :meth:`resume_with`.
        """
        service = self.service
        while (
            self._outstanding > 0
            or not service.idle
        ):
            epoch = service.epoch
            if epoch > self.max_epochs:
                raise ValidationError(
                    f"driver exceeded max_epochs={self.max_epochs}; "
                    "the trace does not quiesce"
                )
            # Drain everything due as a worklist: reacting to a decision
            # replayed at submit time (post-crash resubmission) can
            # schedule a follow-up for this same epoch, and it must go
            # out before the tick or it arrives stale.
            while True:
                due: list[_Flight] = []
                for e in sorted(k for k in self._due if k <= epoch):
                    due.extend(self._due.pop(e))
                if not due:
                    break
                for flight in due:  # arrival order kept within each epoch
                    flight.handle = service.submit(flight.request)
                    if flight.handle.done:
                        # Shed / replayed / invalid: react immediately.
                        self._outstanding -= 1
                        self._react(flight, flight.handle.decision)
                    else:
                        self._inflight[flight.request.key] = flight
            decided = await service.tick()
            # React to everything resolved this tick.
            for decision in decided:
                flight = self._inflight.pop(str(decision.request_id), None)
                if flight is None:
                    continue  # internal renegotiation id, not ours
                self._outstanding -= 1
                self._react(flight, decision)
            # Load sheds resolve through the handle, not the decision
            # list (they are memoryless, never journaled) — sweep them.
            shed = [
                key for key, flight in self._inflight.items()
                if flight.handle is not None and flight.handle.done
            ]
            for key in shed:
                flight = self._inflight.pop(key)
                self._outstanding -= 1
                self._react(flight, flight.handle.decision)
        return self.report

    def _react(self, flight: _Flight, decision: Decision) -> None:
        origin = self._origin(decision.request_id)
        self.report.decisions[origin] = decision
        service = self.service
        if isinstance(decision, Accepted):
            self.report.accepted += 1
            return
        if isinstance(decision, Negotiated):
            if flight.hops >= self.negotiate_limit:
                self.report.rejected += 1
                return
            self.report.renegotiated += 1
            hops = flight.hops + 1
            # Post-tick, service.epoch already names the next boundary —
            # the one the service's counter-offer was probed against.
            next_epoch = service.epoch
            arrival = next_epoch * service.tau
            derived = ReservationRequest(
                id=f"{origin}~r{hops}",
                source=flight.request.source,
                dest=flight.request.dest,
                size=flight.request.size,
                start=max(decision.proposed_start, arrival),
                end=decision.proposed_end,
                arrival=arrival,
            )
            self._schedule(
                _Flight(derived, retries=flight.retries, hops=hops),
                next_epoch,
            )
            return
        assert isinstance(decision, Rejected)
        if (
            decision.reason.startswith(REASON_OVERLOAD)
            and flight.retries < self.retry_limit
        ):
            self.report.shed_retries += 1
            retries = flight.retries + 1
            delay = min(
                self.backoff_base * (2 ** (retries - 1)), self.max_backoff
            )
            next_epoch = service.epoch + delay
            arrival = next_epoch * service.tau
            retry = ReservationRequest(
                id=flight.request.id,
                source=flight.request.source,
                dest=flight.request.dest,
                size=flight.request.size,
                start=max(flight.request.start, arrival),
                end=flight.request.end,
                arrival=arrival,
            )
            if retry.end - retry.start >= service.slice_length - _EPS:
                self._schedule(
                    _Flight(retry, retries=retries, hops=flight.hops),
                    next_epoch,
                )
                return
        self.report.rejected += 1

    # ------------------------------------------------------------------
    def resume_with(self, service: ReservationService) -> None:
        """Re-attach the population to a crash-recovered service.

        Every flight not yet finally decided is re-submitted at the
        recovered service's next epoch.  Flights whose decision *was*
        journaled get the recorded decision replayed on submission, so
        the population converges to the same book as an uncrashed run.
        """
        undecided: list[_Flight] = list(self._inflight.values())
        for flights in self._due.values():
            undecided.extend(flights)
        self._due = {}
        self._inflight = {}
        self._outstanding = 0
        self.service = service
        epoch = service.epoch
        for flight in undecided:
            request = flight.request
            if request.arrival < epoch * service.tau - _EPS:
                request = ReservationRequest(
                    id=request.id, source=request.source, dest=request.dest,
                    size=request.size,
                    start=max(request.start, epoch * service.tau),
                    end=request.end, arrival=epoch * service.tau,
                )
                flight.request = request
            self._schedule(flight, max(epoch, self._epoch_of(request.arrival)))


def drive(
    service: ReservationService,
    jobs: JobSet,
    **kwargs,
) -> DriverReport:
    """Synchronous convenience wrapper: build, run, and close the loop."""
    driver = ClosedLoopDriver(service, jobs, **kwargs)
    return asyncio.run(driver.run())
