"""Online reservation service: the admission front-end.

This package wraps the epoch controller (admission + scheduling from
:mod:`repro.core`) in an async, crash-safe, overload-hardened request
service:

* :mod:`repro.service.requests` — the request schema, validation, and
  the accept/reject/negotiate decision types;
* :mod:`repro.service.core` — :class:`ReservationService`: bounded
  arrival queue, token-bucket admission-rate guard, epoch-boundary
  batching, journaled decisions, fault-driven renegotiation, and
  crash recovery via :meth:`ReservationService.resume`;
* :mod:`repro.service.book` — the commitment book (decision ledger +
  reservation lifecycle) whose digest the crash-matrix tests compare;
* :mod:`repro.service.slo` — SLO counters and decision-latency
  percentiles;
* :mod:`repro.service.driver` — a deterministic closed-loop requester
  population for tests and benchmarks.
"""

from .book import CommitmentBook, Reservation
from .core import ReservationService
from .driver import ClosedLoopDriver, DriverReport, drive
from .requests import (
    REASON_DEADLINE,
    REASON_OVERLOAD,
    REASON_STALE,
    Accepted,
    Decision,
    DecisionHandle,
    Negotiated,
    Rejected,
    ReservationRequest,
    decision_from_dict,
    decision_to_dict,
    parse_request,
    parse_request_json,
    request_to_job,
)
from .slo import ServiceStats

__all__ = [
    "ReservationService",
    "ReservationRequest",
    "Decision",
    "DecisionHandle",
    "Accepted",
    "Rejected",
    "Negotiated",
    "REASON_OVERLOAD",
    "REASON_STALE",
    "REASON_DEADLINE",
    "parse_request",
    "parse_request_json",
    "request_to_job",
    "decision_to_dict",
    "decision_from_dict",
    "CommitmentBook",
    "Reservation",
    "ServiceStats",
    "ClosedLoopDriver",
    "DriverReport",
    "drive",
]
