"""Service-level objective counters and latency percentiles.

Modeled on the Clockwork controller's SLO instrumentation
(SNIPPETS.md §2): the service keeps cheap in-process counters plus a
decision-latency reservoir, and renders them as a snapshot dict (for
``BENCH_service.json``) or a table (for ``repro serve``).  Latencies
are *wall-clock* submit→respond times — observational only, never
journaled, so they cannot perturb crash-recovery determinism.
"""

from __future__ import annotations

import time

from ..analysis.reporting import Table
from ..obs import NULL_TELEMETRY, Telemetry

__all__ = ["ServiceStats"]

#: Cap on retained latency samples; beyond it the reservoir keeps every
#: k-th sample (deterministic decimation, good enough for p50/p99 while
#: bounding memory under million-request streams).
_MAX_SAMPLES = 65536


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty reservoir."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


class ServiceStats:
    """Counters + latency reservoir behind the service's SLO surface."""

    _COUNTERS = (
        "submitted",
        "decided",
        "accepted",
        "rejected",
        "negotiated",
        "shed",
        "invalid",
        "duplicate_submissions",
        "degraded_decisions",
        "voided",
        "renegotiations",
        "completed",
        "expired",
        "ticks",
    )

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self.telemetry = telemetry or NULL_TELEMETRY
        self.counters: dict[str, int] = dict.fromkeys(self._COUNTERS, 0)
        self._latencies: list[float] = []
        self._decimation = 1
        self._skipped = 0
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        self.telemetry.count(f"service_{name}", n)

    def observe_latency(self, seconds: float) -> None:
        """Record one submit→respond decision latency."""
        self._skipped += 1
        if self._skipped < self._decimation:
            return
        self._skipped = 0
        self._latencies.append(seconds)
        if len(self._latencies) >= _MAX_SAMPLES:
            # Halve the reservoir, double the stride: bounded memory.
            self._latencies = self._latencies[::2]
            self._decimation *= 2

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    def snapshot(self) -> dict:
        """The SLO surface as a plain dict."""
        c = self.counters
        elapsed = max(self.elapsed, 1e-9)
        responded = c["decided"] + c["shed"] + c["invalid"]
        return {
            **c,
            "admissions_per_sec": c["accepted"] / elapsed,
            "decisions_per_sec": responded / elapsed,
            "p50_decision_latency_s": _percentile(self._latencies, 0.50),
            "p99_decision_latency_s": _percentile(self._latencies, 0.99),
            "shed_rate": c["shed"] / max(c["submitted"], 1),
            "degraded_decision_rate": (
                c["degraded_decisions"] / max(responded, 1)
            ),
            "elapsed_s": elapsed,
        }

    def table(self) -> Table:
        table = Table(["slo", "value"], title="reservation service SLOs")
        for name, value in self.snapshot().items():
            table.add_row(
                [name, round(value, 6) if isinstance(value, float) else value]
            )
        return table

    def __repr__(self) -> str:
        c = self.counters
        return (
            f"ServiceStats(decided={c['decided']}, shed={c['shed']}, "
            f"accepted={c['accepted']})"
        )
