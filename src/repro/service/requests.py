"""Reservation-request schema, validation, and decision types.

The service speaks a small JSON-friendly request language: one record
per advance reservation, validated up front so malformed input becomes
a typed :class:`~repro.errors.ValidationError` (and, at the service
boundary, an explicit :class:`Rejected` response) instead of a
traceback three layers deep in the LP builder.

Decisions are the service's only outputs.  Every request receives
exactly one of:

* :class:`Accepted` — the reservation is committed; the service will
  never silently drop it (crash-recovery replays it, faults void it
  *visibly* into renegotiation).
* :class:`Rejected` — with a machine-usable ``reason`` (``"overload"``
  for load shedding, validation text for malformed requests,
  capacity/deadline text for admission outcomes).
* :class:`Negotiated` — a counter-offer: the requested window does not
  fit, but the RET machinery (paper Algorithm 2) found a later end
  time that would.  The requester may resubmit under a derived id with
  the proposed window.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass

from ..errors import ValidationError
from ..network.graph import Network
from ..workload.jobs import Job

__all__ = [
    "ReservationRequest",
    "Decision",
    "DecisionHandle",
    "Accepted",
    "Rejected",
    "Negotiated",
    "REASON_OVERLOAD",
    "REASON_STALE",
    "REASON_DEADLINE",
    "parse_request",
    "parse_request_json",
    "request_to_job",
    "decision_to_dict",
    "decision_from_dict",
]

#: Load-shedding reason: bounded queue full or admission-rate guard hit.
REASON_OVERLOAD = "overload"
#: Post-crash resubmission whose decision boundary already committed
#: without it — it must have been shed then, so it is shed again.
REASON_STALE = "overload (stale arrival: decision epoch already committed)"
#: Fallback verdict when the solve budget died before this request's
#: admission probe ran and the feasibility certificate could not prove
#: it safe.
REASON_DEADLINE = "decision deadline exceeded; feasibility unproven"


@dataclass(frozen=True)
class ReservationRequest:
    """One advance-reservation request.

    ``start``/``end`` bound the transfer window being reserved (the
    paper's release time and deadline); ``arrival`` is when the request
    reached the service — unlike :class:`~repro.workload.jobs.Job`,
    a request may arrive *after* its window opens (a late submission
    simply reserves the remainder of its window).
    """

    id: int | str
    source: object
    dest: object
    size: float
    start: float
    end: float
    arrival: float

    @property
    def key(self) -> str:
        return str(self.id)


def parse_request(
    record: object, network: Network | None = None
) -> ReservationRequest:
    """Validate one request record into a :class:`ReservationRequest`.

    Mirrors :func:`repro.faults.parse_fault_spec`'s philosophy: every
    malformed shape gets a :class:`~repro.errors.ValidationError` that
    names the field and the rule it broke.  With a ``network``, the
    endpoints are also checked against its node set.
    """
    if not isinstance(record, dict):
        raise ValidationError(
            f"request must be a JSON object, got {type(record).__name__}"
        )
    missing = [k for k in ("id", "source", "dest", "size", "start", "end")
               if k not in record]
    if missing:
        raise ValidationError(
            f"request is missing field(s): {', '.join(missing)}"
        )
    rid = record["id"]
    if not isinstance(rid, (str, int)) or isinstance(rid, bool):
        raise ValidationError(
            f"request id must be a string or integer, got {rid!r}"
        )
    label = f"request {rid!r}"

    def number(field: str) -> float:
        value = record[field]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(
                f"{label}: {field} must be a number, got {value!r}"
            )
        if not math.isfinite(value):
            raise ValidationError(
                f"{label}: {field} must be finite, got {value!r}"
            )
        return float(value)

    size = number("size")
    if size <= 0:
        raise ValidationError(
            f"{label}: size (volume) must be positive, got {size}"
        )
    start = number("start")
    end = number("end")
    if end <= start:
        raise ValidationError(
            f"{label}: deadline {end} is not after release time {start}"
        )
    arrival = number("arrival") if "arrival" in record else start
    if arrival > end:
        raise ValidationError(
            f"{label}: arrival {arrival} is after the deadline {end}; "
            "the window is already gone"
        )
    source, dest = record["source"], record["dest"]
    if source == dest:
        raise ValidationError(
            f"{label}: source and destination must differ, both {source!r}"
        )
    if network is not None:
        nodes = set(network.nodes)
        for what, node in (("source", source), ("dest", dest)):
            if node not in nodes:
                raise ValidationError(
                    f"{label}: {what} {node!r} is not a node of "
                    f"network {network.name or '<unnamed>'}"
                )
    return ReservationRequest(
        id=rid, source=source, dest=dest,
        size=size, start=start, end=end, arrival=arrival,
    )


def parse_request_json(
    text: str, network: Network | None = None
) -> ReservationRequest:
    """Parse one request from a JSON string (malformed JSON included)."""
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"malformed request JSON: {exc}") from None
    return parse_request(record, network)


def request_to_job(
    request: ReservationRequest, now: float = 0.0, size: float | None = None
) -> Job:
    """The admission-problem job for ``request`` as seen at time ``now``.

    The effective release is ``max(start, now)`` (a late submission
    reserves the rest of its window); ``size`` overrides the volume for
    renegotiated residuals.
    """
    start = max(request.start, now)
    return Job(
        id=request.id,
        source=request.source,
        dest=request.dest,
        size=size if size is not None else request.size,
        start=start,
        end=request.end,
    )


# ----------------------------------------------------------------------
# Decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Decision:
    """Base of all responses; ``kind`` discriminates for serialization."""

    request_id: int | str
    epoch: int

    kind = "decision"


@dataclass(frozen=True)
class Accepted(Decision):
    """The reservation is committed for ``[start, end]``."""

    start: float = 0.0
    end: float = 0.0

    kind = "accept"


@dataclass(frozen=True)
class Rejected(Decision):
    """Turned away; ``reason`` says whether to retry (``"overload"``)."""

    reason: str = ""

    kind = "reject"


@dataclass(frozen=True)
class Negotiated(Decision):
    """Counter-offer: resubmit with the proposed (later) window."""

    proposed_start: float = 0.0
    proposed_end: float = 0.0
    reason: str = ""

    kind = "negotiate"


class DecisionHandle:
    """Awaitable slot one submission's decision lands in.

    The service resolves handles only *after* the tick's journal commit
    (crash safety: a released response is always recoverable from the
    ledger).  ``latency`` is the wall-clock submit→resolve time feeding
    the SLO percentiles — observational only, never journaled.
    """

    __slots__ = ("_decision", "_staged", "_event", "_submitted", "latency")

    def __init__(self) -> None:
        self._decision: Decision | None = None
        self._staged: Decision | None = None
        self._event: asyncio.Event | None = None
        self._submitted = time.perf_counter()
        self.latency: float | None = None

    @classmethod
    def resolved(cls, decision: Decision) -> "DecisionHandle":
        handle = cls()
        handle.resolve(decision)
        return handle

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._decision is not None

    @property
    def decision(self) -> Decision:
        if self._decision is None:
            raise ValidationError("decision is not resolved yet")
        return self._decision

    def stage(self, decision: Decision) -> None:
        """Record the decision without releasing it (pre-journal)."""
        self._staged = decision

    def release(self) -> None:
        """Release a previously staged decision (post-journal)."""
        if self._staged is None:
            raise ValidationError("no staged decision to release")
        self.resolve(self._staged)

    def resolve(self, decision: Decision) -> None:
        if self._decision is not None:
            return  # first resolution wins; duplicates are no-ops
        self._decision = decision
        self.latency = time.perf_counter() - self._submitted
        if self._event is not None:
            self._event.set()

    async def wait(self) -> Decision:
        """Await the decision (requires a running event loop)."""
        if self._decision is None:
            if self._event is None:
                self._event = asyncio.Event()
            await self._event.wait()
        return self.decision

    def __repr__(self) -> str:
        state = self._decision.kind if self._decision else "pending"
        return f"DecisionHandle({state})"


_DECISION_TYPES: dict[str, type[Decision]] = {
    cls.kind: cls for cls in (Accepted, Rejected, Negotiated)
}


def decision_to_dict(decision: Decision) -> dict:
    """Journal/ledger form of a decision (stable field order)."""
    out: dict = {"kind": decision.kind, "id": decision.request_id,
                 "epoch": decision.epoch}
    if isinstance(decision, Accepted):
        out["start"] = decision.start
        out["end"] = decision.end
    elif isinstance(decision, Rejected):
        out["reason"] = decision.reason
    elif isinstance(decision, Negotiated):
        out["proposed_start"] = decision.proposed_start
        out["proposed_end"] = decision.proposed_end
        out["reason"] = decision.reason
    return out


def decision_from_dict(data: dict) -> Decision:
    """Inverse of :func:`decision_to_dict`."""
    try:
        kind = data["kind"]
        cls = _DECISION_TYPES[kind]
        if cls is Accepted:
            return Accepted(data["id"], int(data["epoch"]),
                            float(data["start"]), float(data["end"]))
        if cls is Rejected:
            return Rejected(data["id"], int(data["epoch"]),
                            str(data["reason"]))
        return Negotiated(data["id"], int(data["epoch"]),
                          float(data["proposed_start"]),
                          float(data["proposed_end"]), str(data["reason"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed decision record: {exc}") from None
