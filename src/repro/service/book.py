"""The commitment book: every promise the service ever made.

Two halves, both append-mostly:

* the **ledger** — one decision record per request id, in the exact
  dict form that went into the journal.  A request id is decided at
  most once; resubmitting a decided id replays the recorded decision
  (idempotent responses, no duplicates after a crash).
* the **reservations** — one :class:`Reservation` per accepted
  request, tracking remaining volume and lifecycle status
  (``accepted`` → ``completed`` / ``expired`` / ``voided``).

:meth:`CommitmentBook.digest` hashes a canonical JSON rendering of
both halves; the crash-matrix tests assert the digest after
crash+resume equals the uncrashed run's — "byte-identical commitment
book" is literally this string.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..workload.jobs import Job

__all__ = ["Reservation", "CommitmentBook"]

#: Remaining volume below this fraction of the size counts as done.
_VOLUME_TOL = 1e-9


@dataclass
class Reservation:
    """Mutable lifecycle record of one accepted reservation."""

    job: Job
    remaining: float
    status: str = "accepted"  # accepted | completed | expired | voided
    #: Edge ids of the paths the latest committed schedule drives this
    #: reservation over; faults void a reservation when they hit these.
    used_edges: frozenset[int] = field(default_factory=frozenset)

    @property
    def done(self) -> bool:
        return self.remaining <= _VOLUME_TOL * max(self.job.size, 1.0)

    def to_dict(self) -> dict:
        return {
            "id": self.job.id,
            "source": self.job.source,
            "dest": self.job.dest,
            "size": self.job.size,
            "start": self.job.start,
            "end": self.job.end,
            "remaining": self.remaining,
            "status": self.status,
        }


class CommitmentBook:
    """Ledger of decisions plus the live reservation table."""

    def __init__(self) -> None:
        #: request id (stringified) -> journal-form decision dict.
        self.ledger: dict[str, dict] = {}
        #: request id (stringified) -> reservation, accepted ids only.
        self.reservations: dict[str, Reservation] = {}

    # ------------------------------------------------------------------
    def decided(self, request_key: str) -> dict | None:
        """The recorded decision for ``request_key``, or ``None``."""
        return self.ledger.get(request_key)

    def record(self, request_key: str, decision: dict) -> None:
        self.ledger[request_key] = decision

    def active(self) -> list[Reservation]:
        """Accepted, unfinished reservations (the committed residual)."""
        return [
            r for r in self.reservations.values()
            if r.status == "accepted" and not r.done
        ]

    # ------------------------------------------------------------------
    @property
    def num_accepted(self) -> int:
        return len(self.reservations)

    @property
    def num_lost(self) -> int:
        """Accepted reservations that ended without full delivery."""
        return sum(
            1 for r in self.reservations.values()
            if r.status in ("expired", "voided")
        )

    def to_dict(self) -> dict:
        return {
            "ledger": {k: self.ledger[k] for k in sorted(self.ledger)},
            "reservations": {
                k: self.reservations[k].to_dict()
                for k in sorted(self.reservations)
            },
        }

    def digest(self) -> str:
        """SHA-256 of the canonical book rendering.

        Floats survive a JSON round-trip exactly (``repr`` encoding),
        so two books built from the same decision/execution history —
        one live, one replayed from the journal — hash identically.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return (
            f"CommitmentBook(decisions={len(self.ledger)}, "
            f"reservations={len(self.reservations)})"
        )
