"""The reservation service: an overload-hardened admission front-end.

:class:`ReservationService` turns the paper's batch controller into a
long-running server.  Requests arrive on a bounded queue
(:meth:`~ReservationService.submit`), are batched at epoch boundaries
(:meth:`~ReservationService.tick`, one call per epoch of length
``tau``), and receive exactly one decision each — accept, reject, or a
negotiated counter-offer derived from the RET end-time-extension
machinery (paper Algorithm 2).

Robustness layers, in tick order:

* **Backpressure / load shedding.**  The pending queue is bounded
  (``queue_limit``); a full queue answers immediately with
  ``Rejected(reason="overload")``.  A token bucket (``rate`` tokens per
  epoch, ``burst`` cap) bounds how many queued requests enter each
  epoch's admission batch; the excess is shed the same way.  Shedding
  is deliberately *memoryless*: a shed request leaves no trace, so the
  shed path is O(1) and the journal never grows with offered load.
* **Decision deadlines.**  The whole tick — admission probe,
  negotiation, epoch schedule — runs under one
  :class:`~repro.lp.solver.SolveBudget` restarted per epoch.  If the
  budget dies mid-admission, requests whose probe never ran get a
  deterministic fallback verdict: the engine's
  :meth:`~repro.engine.engine.ModelEngine.certify_feasible` witness
  check (sound, never complete) may prove them safe; otherwise they are
  rejected with :data:`~repro.service.requests.REASON_DEADLINE`.
  Already-committed reservations are never voided on degraded
  evidence.  The epoch schedule itself rides the PR-4 degradation
  ladder, so a feasible plan is always committed.
* **Crash safety.**  Every tick journals its decisions, lifecycle
  transitions and live residual volumes through
  :class:`~repro.recovery.journal.EpochJournal` (``"batch"`` records)
  *before* any response is released.  :meth:`ReservationService.resume`
  rebuilds an identical commitment book and continues from the next
  tick; re-submitting an already-decided request id replays the
  recorded decision without a second ledger entry.
* **Graceful degradation under faults.**  Link-fault events void the
  reservations whose committed paths they break — visibly, into
  renegotiation: the voided residual re-enters the next batch under a
  derived id (``<id>~v<n>``) and is re-admitted, counter-offered a
  later window, or explicitly rejected.  Nothing is lost silently.

Time is *virtual*: tick ``e`` decides at ``now = e * tau``.  Decision
outcomes depend only on request arrival order and epochs — never on
wall clocks — which is what makes crash+resume byte-identical (see
``docs/service.md``).  Wall time appears only in SLO latency stats and
in the optional solve budget (whose journaled decisions are durable
even though re-deciding under a budget is not bit-reproducible).
"""

from __future__ import annotations

import math
from dataclasses import replace
from pathlib import Path

import numpy as np

from ..control.kernel import (
    EpochKernel,
    EpochOutcome,
    base_action_for,
    service_journal_entry,
    service_journal_header,
    used_edges as shared_used_edges,
    window_closed,
)
from ..core.admission import admit_max_prefix
from ..core.metrics import per_slice_delivery
from ..core.ret import solve_ret
from ..core.scheduler import Scheduler
from ..engine.engine import ModelEngine
from ..errors import (
    BudgetExceededError,
    ScheduleError,
    ValidationError,
)
from ..faults.events import LinkDown, WavelengthDegrade
from ..faults.schedule import FaultSchedule
from ..lp.solver import SolveBudget, SolveResilience
from ..network.graph import Network
from ..obs import NULL_TELEMETRY, Telemetry
from ..recovery.crash import CrashInjector
from ..recovery.journal import EpochJournal, read_journal
from ..timegrid import TimeGrid
from ..workload.jobs import Job, JobSet
from .book import CommitmentBook, Reservation
from .requests import (
    REASON_DEADLINE,
    REASON_OVERLOAD,
    REASON_STALE,
    Accepted,
    Decision,
    DecisionHandle,
    Negotiated,
    Rejected,
    ReservationRequest,
    decision_from_dict,
    decision_to_dict,
    parse_request,
    request_to_job,
)
from .slo import ServiceStats

__all__ = ["ReservationService"]

_EPS = 1e-9
_VOLUME_TOL = 1e-9


class ReservationService:
    """Async, crash-safe admission front-end over the epoch controller.

    Parameters
    ----------
    network:
        The optical network reservations are scheduled over.
    tau:
        Epoch length; tick ``e`` decides at virtual time ``e * tau``.
    slice_length:
        Scheduling-grid slice length.
    k_paths:
        Candidate paths per origin-destination pair.
    queue_limit:
        Bound on undecided queued requests; submissions beyond it are
        shed immediately with ``Rejected(reason="overload")``.
    rate, burst:
        Token-bucket admission guard: ``rate`` requests may enter the
        batch per epoch, with bursts up to ``burst``.
    journal:
        Optional path for the write-ahead batch journal (crash safety).
    solve_budget:
        Optional per-epoch wall-clock budget for the tick's solves.
    resilience:
        Optional retry policy applied to *every* solve the service
        issues — the scheduler's stages and the admission probes alike
        (it becomes the engine-level default).  A transient backend
        failure then costs a retry, not the whole tick.
    crash_injector:
        Deterministic process-death injection at the service crash
        points (:data:`~repro.recovery.crash.SERVICE_CRASH_POINTS`).
    fault_schedule:
        Link-fault timeline; faults void affected reservations into
        renegotiation at the next tick boundary.
    renegotiate_limit:
        How many derived renegotiation hops a voided reservation gets
        before it is explicitly rejected.
    verify_solutions:
        When true, every raw solver solution is checked by
        :func:`~repro.verify.checker.verify_schedule` before it is
        rounded or committed — the untrusted-backend guard used by the
        chaos engine (``docs/chaos.md``).
    journal_fault_injector:
        Optional callable ``(path, content)`` installed on the batch
        journal; may raise :class:`OSError` or return torn replacement
        content to simulate write failures (see
        :class:`~repro.chaos.inject.JournalFaultInjector`).
    """

    def __init__(
        self,
        network: Network,
        tau: float = 1.0,
        slice_length: float = 1.0,
        k_paths: int = 4,
        queue_limit: int = 1024,
        rate: float = 64.0,
        burst: float | None = None,
        journal: str | Path | None = None,
        solve_budget: SolveBudget | None = None,
        resilience: SolveResilience | None = None,
        crash_injector: CrashInjector | None = None,
        fault_schedule: FaultSchedule | None = None,
        ret_b_max: float = 10.0,
        ret_delta: float = 0.1,
        renegotiate_limit: int = 3,
        telemetry: Telemetry | None = None,
        warm_start: bool = True,
        verify_solutions: bool = False,
        journal_fault_injector=None,
        control_policy=None,
    ) -> None:
        if tau <= 0:
            raise ValidationError(f"tau must be positive, got {tau}")
        if queue_limit < 1:
            raise ValidationError(
                f"queue_limit must be at least 1, got {queue_limit}"
            )
        if rate <= 0:
            raise ValidationError(f"rate must be positive, got {rate}")
        burst = float(rate) if burst is None else float(burst)
        if burst < 1:
            raise ValidationError(f"burst must be at least 1, got {burst}")
        if renegotiate_limit < 0:
            raise ValidationError(
                f"renegotiate_limit must be >= 0, got {renegotiate_limit}"
            )
        self.network = network
        self.tau = float(tau)
        self.slice_length = float(slice_length)
        self.k_paths = int(k_paths)
        self.queue_limit = int(queue_limit)
        self.rate = float(rate)
        self.burst = burst
        self.solve_budget = solve_budget
        self.resilience = resilience
        self.crash_injector = crash_injector
        self.fault_schedule = fault_schedule
        self.ret_b_max = float(ret_b_max)
        self.ret_delta = float(ret_delta)
        self.renegotiate_limit = int(renegotiate_limit)
        self.telemetry = telemetry or NULL_TELEMETRY
        self.warm_start = warm_start
        self.verify_solutions = bool(verify_solutions)
        self.journal_fault_injector = journal_fault_injector
        self.stats = ServiceStats(self.telemetry)

        self._engine = ModelEngine(
            network, k_paths, telemetry=self.telemetry, warm_start=warm_start,
            resilience=resilience,
        )
        self._scheduler = Scheduler(
            network,
            k_paths=k_paths,
            slice_length=self.slice_length,
            telemetry=self.telemetry,
            budget=solve_budget,
            resilience=resilience,
            engine=self._engine,
            verify_solutions=self.verify_solutions,
        )
        if (
            control_policy is not None
            and journal is not None
            and not getattr(control_policy, "journal_safe", False)
        ):
            raise ValidationError(
                "journal= requires a journal-safe control policy "
                "(FixedPolicy or None); adaptive policies cannot be "
                "replayed on resume"
            )
        self.control_policy = control_policy
        # The shared epoch-control kernel: owns the epoch counter, the
        # fault cursor, crash points, budget restarts and journal
        # commits.  The service's ``epoch`` / ``_fault_idx`` attributes
        # are views onto it.
        self._kernel = EpochKernel(
            tau=self.tau,
            slice_length=self.slice_length,
            base_action=base_action_for(
                alpha=self._scheduler.alpha, k_paths=self.k_paths
            ),
            policy=control_policy,
            fault_schedule=fault_schedule,
            crash_injector=crash_injector,
            solve_budget=solve_budget,
            engine=self._engine,
            telemetry=self.telemetry,
        )
        #: Per-``k_paths`` engines and per-action schedulers for epochs
        #: where an adaptive policy deviates from the base knobs.
        self._engines_by_k: dict[int, ModelEngine] = {}
        self._schedulers_by_action: dict[tuple, Scheduler] = {}
        self.book = CommitmentBook()
        #: Undecided external requests: key -> (request, handle).
        self._pending: dict[str, tuple[ReservationRequest, DecisionHandle]] = {}
        #: Renegotiation work carried to the next tick (journaled).
        self._internal: list[dict] = []
        self._bucket_tokens = burst
        self._journal: EpochJournal | None = None
        self.journal_path = Path(journal) if journal is not None else None
        if self.journal_path is not None:
            self._journal = EpochJournal.create(
                self.journal_path, self._journal_header(), entry_kind="batch"
            )
            # Attach after create: the header write itself must succeed.
            self._journal.fault_injector = self.journal_fault_injector

    # ------------------------------------------------------------------
    # Submission (the bounded front door)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Next tick's epoch index (owned by the control kernel)."""
        return self._kernel.epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        self._kernel.epoch = int(value)
        self._kernel.now = int(value) * self.tau

    @property
    def _fault_idx(self) -> int:
        """Fault-timeline cursor (owned by the control kernel)."""
        return self._kernel.fault_idx

    @_fault_idx.setter
    def _fault_idx(self, value: int) -> None:
        self._kernel.fault_idx = int(value)

    @property
    def now(self) -> float:
        """Virtual time of the *next* tick's decisions."""
        return self.epoch * self.tau

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def submit(self, request: ReservationRequest | dict) -> DecisionHandle:
        """Enqueue one request; returns a handle its decision resolves.

        Never raises for bad input and never blocks: validation
        failures, duplicate undecided ids and overload all resolve the
        handle immediately with an explicit :class:`Rejected`.  A
        request whose id is already *decided* resolves immediately with
        the recorded decision (idempotent resubmission — the crash
        recovery path).
        """
        self.stats.count("submitted")
        if not isinstance(request, ReservationRequest):
            try:
                request = parse_request(request, self.network)
            except ValidationError as exc:
                self.stats.count("invalid")
                rid = request.get("id", "?") if isinstance(request, dict) else "?"
                return DecisionHandle.resolved(
                    Rejected(rid, self.epoch, f"invalid request: {exc}")
                )
        key = request.key
        recorded = self.book.decided(key)
        if recorded is not None:
            self.stats.count("duplicate_submissions")
            return DecisionHandle.resolved(decision_from_dict(recorded))
        if key in self._pending:
            self.stats.count("duplicate_submissions")
            return self._pending[key][1]
        if len(self._pending) >= self.queue_limit:
            self.stats.count("shed")
            return DecisionHandle.resolved(
                Rejected(request.id, self.epoch, REASON_OVERLOAD)
            )
        handle = DecisionHandle()
        self._pending[key] = (request, handle)
        return handle

    # ------------------------------------------------------------------
    # The tick: one epoch of batched decisions
    # ------------------------------------------------------------------
    async def tick(self) -> list[Decision]:
        """Run one epoch: batch, decide, journal, respond.

        Returns the decisions released this tick (external and
        renegotiation-derived).  Raises
        :class:`~repro.recovery.crash.SimulatedCrash` when an armed
        injector fires — after which this instance is dead, exactly
        like the process it stands in for; continue via
        :meth:`resume`.
        """
        now = self.now
        epoch = self.epoch
        self._crash_point("pre-batch", epoch)
        self._kernel.restart_budget()

        transitions: list[dict] = []
        self._detect_faults(now, transitions)
        self._expire_stale(now, transitions)

        batch, shed_handles = self._collect_batch(now)
        decisions, degraded = self._decide(batch, now, epoch, transitions)

        # The kernel's decide point: the control policy (if any) picks
        # this tick's re-plan knobs from the observed backlog.  The
        # admission pipeline above is deliberately outside the policy
        # surface — decisions are journaled commitments.
        obs = None
        if self._kernel.wants_observation:
            active = self.book.active()
            obs = self._kernel.observe(
                backlog=len(active),
                total_remaining=sum(r.remaining for r in active),
                queue_depth=len(self._pending),
            )
        action = self._kernel.decide(obs)
        sched_transitions, delivered, completed = self._schedule_and_execute(
            now, action
        )
        transitions.extend(sched_transitions)
        self._kernel.feedback(
            obs, action,
            EpochOutcome(epoch=epoch, delivered=delivered, completed=completed),
        )

        self._crash_point("post-solve", epoch)
        self._kernel.commit(
            self._journal,
            self._journal_entry(epoch, now, decisions, transitions)
            if self._journal is not None
            else None,
        )
        self._crash_point("pre-respond", epoch)

        # Responses only after the journal holds the decisions: a crash
        # from here on re-delivers them from the ledger, never re-decides.
        for handle in shed_handles:
            handle.release()
            if handle.latency is not None:
                self.stats.observe_latency(handle.latency)
        for decision in decisions:
            key = str(decision.request_id)
            self.stats.count("decided")
            self.stats.count(
                {"accept": "accepted", "reject": "rejected",
                 "negotiate": "negotiated"}[decision.kind]
            )
            if degraded.get(key):
                self.stats.count("degraded_decisions")
            entry = self._pending.pop(key, None)
            if entry is not None:
                entry[1].resolve(decision)
                if entry[1].latency is not None:
                    self.stats.observe_latency(entry[1].latency)
        self._crash_point("post-journal", epoch)
        self.epoch = epoch + 1
        self.stats.count("ticks")
        return decisions

    @property
    def idle(self) -> bool:
        """Nothing queued, carried, or committed-but-unfinished."""
        return (
            not self._pending
            and not self._internal
            and not self.book.active()
        )

    def close(self) -> None:
        """Release the journal's append lock (normal shutdown)."""
        if self._journal is not None:
            self._journal.close()

    # ------------------------------------------------------------------
    # Tick stages
    # ------------------------------------------------------------------
    def _crash_point(self, point: str, epoch: int) -> None:
        self._kernel.crash_point(point, epoch)

    def _detect_faults(self, now: float, transitions: list[dict]) -> None:
        """Advance the fault cursor; void reservations on broken paths.

        The cursor advance and carried-plan invalidation are the
        kernel's (shared with the simulator); voiding broken
        commitments into renegotiation is the service's own reaction.
        """
        detection = self._kernel.detect_faults(now)
        if not detection.affected:
            return
        for key in sorted(self.book.reservations):
            res = self.book.reservations[key]
            if res.status != "accepted" or res.done:
                continue
            if res.used_edges & detection.affected:
                self._void(key, res, now, transitions,
                           "link fault broke the committed path")

    def _void(
        self,
        key: str,
        res: Reservation,
        now: float,
        transitions: list[dict],
        why: str,
    ) -> None:
        """Void a commitment into renegotiation — never silent loss."""
        res.status = "voided"
        transitions.append({"id": res.job.id, "status": "voided",
                            "reason": why})
        self.stats.count("voided")
        start = max(res.job.start, now)
        if res.job.end - start < self.slice_length - _EPS:
            return  # window already gone; expiry semantics, recorded above
        origin = self._origin_of(key)
        self._internal.append({
            "id": self._derived_id(origin),
            "origin": origin,
            "source": res.job.source,
            "dest": res.job.dest,
            "size": res.remaining,
            "start": start,
            "end": res.job.end,
            "attempt": 1,
        })

    @staticmethod
    def _origin_of(key: str) -> str:
        return key.split("~v", 1)[0]

    def _derived_id(self, origin: str) -> str:
        n = 1
        taken = {e["id"] for e in self._internal}
        while True:
            candidate = f"{origin}~v{n}"
            if candidate not in taken and self.book.decided(candidate) is None:
                return candidate
            n += 1

    def _expire_stale(self, now: float, transitions: list[dict]) -> None:
        """Expire commitments whose window can no longer hold one slice.

        Applies the shared
        :func:`~repro.control.kernel.window_closed` predicate to the
        *committed* end time — the service never extends deadlines in
        place (a voided or renegotiated reservation gets a fresh
        derived commitment instead), so unlike the simulator there is
        no effective-end to consult and no ``final`` sweep.
        """
        for key in sorted(self.book.reservations):
            res = self.book.reservations[key]
            if res.status != "accepted" or res.done:
                continue
            if window_closed(res.job.start, res.job.end, now,
                             self.slice_length):
                res.status = "expired"
                transitions.append({"id": res.job.id, "status": "expired"})
                self.stats.count("expired")

    def _collect_batch(
        self, now: float
    ) -> tuple[list[dict], list[DecisionHandle]]:
        """Internal renegotiations plus bucket-limited external arrivals.

        Returns the batch entries (dicts with a ``job``) and the
        handles of requests shed this tick; sheds are resolved only
        after the journal commit, with everything else.
        """
        batch: list[dict] = []
        shed: list[DecisionHandle] = []
        for entry in self._internal:
            start = max(entry["start"], now)
            dead = entry["end"] - start < self.slice_length - _EPS
            batch.append({**entry, "internal": True,
                          "job": None if dead else Job(
                              id=entry["id"], source=entry["source"],
                              dest=entry["dest"], size=entry["size"],
                              start=start, end=entry["end"],
                          )})
        self._internal = []

        self._bucket_tokens = min(self.burst, self._bucket_tokens + self.rate)
        eligible = sorted(
            (k for k, (req, _h) in self._pending.items()
             if req.arrival <= now + _EPS),
            key=lambda k: (self._pending[k][0].arrival, k),
        )
        for key in eligible:
            request, handle = self._pending[key]
            first_boundary = (
                math.ceil(request.arrival / self.tau - _EPS) * self.tau
            )
            if first_boundary < now - _EPS:
                # Post-crash resubmission of a request whose decision
                # boundary committed without it: it was shed then (a
                # decision would be in the ledger), so shed it again.
                del self._pending[key]
                handle.stage(Rejected(request.id, self.epoch, REASON_STALE))
                shed.append(handle)
                self.stats.count("shed")
                continue
            if self._bucket_tokens < 1.0:
                del self._pending[key]
                handle.stage(
                    Rejected(request.id, self.epoch, REASON_OVERLOAD)
                )
                shed.append(handle)
                self.stats.count("shed")
                continue
            self._bucket_tokens -= 1.0
            dead = request.end - max(request.start, now) \
                < self.slice_length - _EPS
            batch.append({"id": request.id, "internal": False, "attempt": 0,
                          "job": None if dead
                          else request_to_job(request, now)})
        return batch, shed

    def _grid_and_paths(self, jobs: list[Job], now: float, engine=None):
        engine = engine if engine is not None else self._engine
        horizon = max([j.end for j in jobs] + [now + self.tau])
        grid = TimeGrid.covering(horizon, self.slice_length, start=now)
        path_sets = None
        if self.fault_schedule is not None:
            failed = self.fault_schedule.failed_edges_at(now)
            if failed:
                pairs = list({(j.source, j.dest) for j in jobs})
                path_sets = engine.topology.path_sets(
                    pairs, banned_edges=failed
                )
        return grid, path_sets

    def _decide(
        self,
        batch: list[dict],
        now: float,
        epoch: int,
        transitions: list[dict],
    ) -> tuple[list[Decision], dict[str, bool]]:
        """Admission + negotiation for one batch; commits accepts."""
        decisions: list[Decision] = []
        degraded_mark: dict[str, bool] = {}
        live = []
        for entry in batch:
            if entry["job"] is None:
                # The window closed before a decision epoch could see it.
                self._record(decisions, Rejected(
                    entry["id"], epoch,
                    "window expired before a decision could be made",
                ))
            else:
                live.append(entry)
        batch = live
        if not batch:
            return decisions, degraded_mark

        committed = {
            str(r.job.id): r for r in self.book.active()
        }
        committed_jobs = [
            self._residual_job(committed[k], now) for k in sorted(committed)
        ]
        batch_jobs = [e["job"] for e in batch]
        all_jobs = committed_jobs + batch_jobs
        order = {str(j.id): i for i, j in enumerate(all_jobs)}
        grid, path_sets = self._grid_and_paths(all_jobs, now)

        decision = admit_max_prefix(
            self.network,
            JobSet(all_jobs),
            grid,
            self.k_paths,
            threshold=1.0,
            key=lambda job: (order[str(job.id)],),
            engine=self._engine,
            budget=self.solve_budget,
            path_sets=path_sets,
        )
        admitted_ids = {str(j.id) for j in decision.admitted}

        # Committed reservations pushed out by the probe: voided into
        # renegotiation — but only on *non-degraded* evidence.  When
        # the budget died mid-search, commitments stand.
        if not decision.degraded:
            for key in sorted(committed):
                if key not in admitted_ids:
                    self._void(key, committed[key], now, transitions,
                               "admission re-plan no longer fits commitment")

        negotiate: list[dict] = []
        for entry in batch:
            key = str(entry["id"])
            job = entry["job"]
            if key in admitted_ids:
                self._accept(entry, job, epoch, decisions)
                continue
            if decision.degraded:
                # Budget died before this request's probe: fall back to
                # the sound feasibility witness, then a deterministic
                # reject — never an unproven accept, never a stall.
                probe_paths = path_sets
                if probe_paths is None:
                    probe_paths = self._engine.topology.path_sets(
                        list({(j.source, j.dest) for j in all_jobs})
                    )
                witness = self._engine.certify_feasible(
                    JobSet(committed_jobs + [job]), grid, probe_paths
                )
                degraded_mark[key] = True
                if witness:
                    self._accept(entry, job, epoch, decisions)
                else:
                    self._record(decisions, Rejected(
                        entry["id"], epoch, REASON_DEADLINE
                    ))
                continue
            negotiate.append(entry)

        if negotiate:
            self._negotiate(negotiate, committed_jobs, epoch, path_sets,
                            decisions)
        return decisions, degraded_mark

    def _ledger_dict(self, decision: Decision) -> dict:
        """The ledger/journal form; accepts carry their full commitment."""
        data = decision_to_dict(decision)
        if isinstance(decision, Accepted):
            job = self.book.reservations[str(decision.request_id)].job
            data["source"] = job.source
            data["dest"] = job.dest
            data["size"] = job.size
        return data

    def _record(self, decisions: list[Decision], decision: Decision) -> None:
        """Append a decision and pin it in the ledger immediately."""
        decisions.append(decision)
        self.book.record(str(decision.request_id),
                         self._ledger_dict(decision))

    def _accept(
        self, entry: dict, job: Job, epoch: int, decisions: list[Decision]
    ) -> None:
        self.book.reservations[str(entry["id"])] = Reservation(
            job=job, remaining=job.size
        )
        self._record(decisions,
                     Accepted(entry["id"], epoch, job.start, job.end))
        if entry.get("internal"):
            self.stats.count("renegotiations")

    def _negotiate(
        self,
        entries: list[dict],
        committed_jobs: list[Job],
        epoch: int,
        path_sets,
        decisions: list[Decision],
    ) -> None:
        """Counter-offer later windows via RET; reject when none exists.

        The probe models each negotiating job as it will look at the
        *next* epoch boundary — the earliest moment the requester can
        act on the offer — so a counter-offer is still feasible when it
        comes back.  (Committed jobs keep their current residuals,
        which only makes the probe conservative: by next epoch they
        will have delivered more, not less.)
        """
        next_now = self.now + self.tau
        probes: list[Job] = []
        for entry in entries:
            job = entry["job"]
            start = max(job.start, next_now)
            end = job.end
            if end < start + self.slice_length - _EPS:
                # The remaining window holds no whole slice by the time
                # the requester can respond; extend from the smallest
                # schedulable window instead.
                end = start + self.slice_length
            probes.append(replace(job, start=start, end=end, arrival=start))
        jobs = committed_jobs + probes
        b_final: float | None = None
        try:
            ret = solve_ret(
                self.network,
                JobSet(jobs),
                slice_length=self.slice_length,
                k_paths=self.k_paths,
                b_max=self.ret_b_max,
                delta=self.ret_delta,
                path_sets=path_sets,
                telemetry=self.telemetry,
                budget=self.solve_budget,
                engine=self._engine,
                warm_start=self.warm_start,
            )
            b_final = max(ret.b_final, self.ret_delta)
        except (ScheduleError, BudgetExceededError):
            b_final = None

        for entry, probe in zip(entries, probes):
            job = entry["job"]
            if b_final is None:
                self._record(decisions, Rejected(
                    entry["id"], epoch,
                    "insufficient capacity (Z* < 1); "
                    "no completing end-time extension found",
                ))
                continue
            proposed_end = (1.0 + b_final) * probe.end
            offer = Negotiated(
                entry["id"], epoch, job.start, proposed_end,
                "insufficient capacity in the requested window; "
                "a later end time fits",
            )
            self._record(decisions, offer)
            if entry.get("internal") and entry["attempt"] < self.renegotiate_limit:
                # The service renegotiates voided commitments on the
                # requester's behalf: take the counter-offer and try
                # again next tick, up to the hop limit.
                origin = entry["origin"]
                self._internal.append({
                    "id": self._derived_id(origin),
                    "origin": origin,
                    "source": job.source,
                    "dest": job.dest,
                    "size": job.size,
                    "start": job.start,
                    "end": proposed_end,
                    "attempt": entry["attempt"] + 1,
                })

    @staticmethod
    def _residual_job(res: Reservation, now: float) -> Job:
        from dataclasses import replace

        start = max(res.job.start, now)
        return replace(res.job, size=res.remaining, start=start,
                       arrival=start)

    def _engine_for(self, k_paths: int) -> ModelEngine:
        """The engine serving a (possibly policy-chosen) ``k_paths``."""
        if k_paths == self.k_paths:
            return self._engine
        if k_paths not in self._engines_by_k:
            self._engines_by_k[k_paths] = ModelEngine(
                self.network, k_paths, telemetry=self.telemetry,
                warm_start=self.warm_start, resilience=self.resilience,
            )
        return self._engines_by_k[k_paths]

    def _scheduler_for(self, action, engine) -> Scheduler:
        """A scheduler configured for a non-base epoch action (cached)."""
        key = (action.alpha, action.alpha_step, action.alpha_max, action.k_paths)
        if key not in self._schedulers_by_action:
            self._schedulers_by_action[key] = Scheduler(
                self.network,
                k_paths=action.k_paths,
                alpha=action.alpha,
                alpha_step=action.alpha_step,
                alpha_max=action.alpha_max,
                slice_length=self.slice_length,
                telemetry=self.telemetry,
                budget=self.solve_budget,
                resilience=self.resilience,
                engine=engine,
                verify_solutions=self.verify_solutions,
            )
        return self._schedulers_by_action[key]

    def _schedule_and_execute(
        self, now: float, action=None
    ) -> tuple[list[dict], float, int]:
        """Plan the committed set and deliver the first epoch of slices.

        ``action`` optionally overrides the re-plan knobs for one tick
        (a control policy's decision).  Returns the lifecycle
        transitions plus the tick's ``(delivered volume, completions)``
        — the outcome signal fed back to the kernel's policy.
        """
        transitions: list[dict] = []
        delivered = 0.0
        completed = 0
        active = {str(r.job.id): r for r in self.book.active()}
        if not active:
            return transitions, delivered, completed
        residual = [
            job
            for job in (
                self._residual_job(active[k], now) for k in sorted(active)
            )
            if job.end - job.start >= self.slice_length - _EPS
        ]
        if not residual:
            return transitions, delivered, completed
        base = action is None or action == self._kernel.base_action
        engine = self._engine if base else self._engine_for(action.k_paths)
        scheduler = self._scheduler if base else self._scheduler_for(action, engine)
        budget = (
            self.solve_budget if base else self._kernel.budget_for(action)
        )
        grid, path_sets = self._grid_and_paths(residual, now, engine)
        try:
            result = scheduler.schedule(
                JobSet(residual), grid, path_sets=path_sets,
                budget=budget,
            )
        except ScheduleError:
            # Defensive: no feasible plan this tick (e.g. every path of a
            # commitment failed).  Deliver nothing; faults/expiry will
            # void or expire the affected reservations visibly.
            return transitions, delivered, completed
        if result.degraded is not None:
            self.telemetry.count("service_degraded_solves")
        structure = result.structure
        delivery = per_slice_delivery(structure, np.asarray(result.x))
        executed = [
            j for j in range(grid.num_slices)
            if grid.slice_start(j) < now + self.tau - _EPS
        ]
        rate = self.network.wavelength_rate
        used = self._used_edges(structure, result.x)
        for i, job in enumerate(structure.jobs):
            res = active[str(job.id)]
            res.used_edges = used.get(str(job.id), frozenset())
            volume = float(delivery[i, executed].sum()) * rate if executed else 0.0
            if volume <= _VOLUME_TOL:
                continue
            delivered += min(volume, res.remaining)
            res.remaining = max(0.0, res.remaining - volume)
            if res.done:
                res.remaining = 0.0
                res.status = "completed"
                completed += 1
                transitions.append({"id": res.job.id, "status": "completed"})
                self.stats.count("completed")
        return transitions, delivered, completed

    @staticmethod
    def _used_edges(structure, x) -> dict[str, frozenset[int]]:
        """Shared used-edge extraction, re-keyed by string job id.

        The service's volume tolerance is the tight ``1e-9`` (ledger
        residuals are exact), versus the simulator's looser ``1e-6``.
        """
        return {
            str(job_id): edges
            for job_id, edges in shared_used_edges(
                structure, x, _VOLUME_TOL
            ).items()
        }

    # ------------------------------------------------------------------
    # Journal format
    # ------------------------------------------------------------------
    def _journal_header(self) -> dict:
        return service_journal_header(
            network=self.network,
            tau=self.tau,
            slice_length=self.slice_length,
            k_paths=self.k_paths,
            queue_limit=self.queue_limit,
            rate=self.rate,
            burst=self.burst,
            ret_b_max=self.ret_b_max,
            ret_delta=self.ret_delta,
            renegotiate_limit=self.renegotiate_limit,
            warm_start=self.warm_start,
            verify_solutions=self.verify_solutions,
            solve_budget=self.solve_budget,
            resilience=self.resilience,
            fault_schedule=self.fault_schedule,
        )

    def _journal_entry(
        self,
        epoch: int,
        now: float,
        decisions: list[Decision],
        transitions: list[dict],
    ) -> dict:
        return service_journal_entry(
            epoch=epoch,
            now=now,
            fault_idx=self._fault_idx,
            bucket_tokens=self._bucket_tokens,
            decisions=decisions,
            transitions=transitions,
            book=self.book,
            internal=self._internal,
        )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        path: str | Path,
        telemetry: Telemetry | None = None,
        crash_injector: CrashInjector | None = None,
        solve_budget: SolveBudget | None = None,
        journal_fault_injector=None,
    ) -> "ReservationService":
        """Rebuild a service from its batch journal and carry on.

        Replays every committed tick's decisions and transitions into a
        fresh commitment book, overlays the last tick's residual
        volumes and carried renegotiations, and reopens the journal for
        appending (healing a torn tail).  The returned service is ready
        for the tick after the last committed one; requesters re-submit
        undecided requests and receive either the journaled decision
        (already-decided ids, replayed verbatim) or a fresh one.

        ``solve_budget`` overrides the journaled budget configuration
        (pass ``None`` to restore the recorded one).
        """
        from ..serialization import fault_events_from_list, network_from_dict

        replay = read_journal(path, entry_kind="batch")
        header = replay.header
        try:
            network = network_from_dict(header["network"])
            config = dict(header["config"])
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"service journal header at {path} is missing field {exc}"
            ) from None
        if not header.get("service"):
            raise ValidationError(
                f"journal at {path} is a simulator journal, not a "
                "reservation-service journal; use Simulation.resume"
            )
        fault_schedule = None
        if header.get("faults") is not None:
            fault_schedule = FaultSchedule(
                network, fault_events_from_list(header["faults"])
            )
        if solve_budget is None and config.get("solve_budget"):
            solve_budget = SolveBudget(**config["solve_budget"])
        resilience = (
            SolveResilience(**config["resilience"])
            if config.get("resilience")
            else None
        )
        service = cls(
            network,
            tau=config["tau"],
            slice_length=config["slice_length"],
            k_paths=config["k_paths"],
            queue_limit=config["queue_limit"],
            rate=config["rate"],
            burst=config["burst"],
            solve_budget=solve_budget,
            resilience=resilience,
            crash_injector=crash_injector,
            fault_schedule=fault_schedule,
            ret_b_max=config["ret_b_max"],
            ret_delta=config["ret_delta"],
            renegotiate_limit=config["renegotiate_limit"],
            telemetry=telemetry,
            warm_start=config.get("warm_start", True),
            verify_solutions=config.get("verify_solutions", False),
        )
        for entry in replay.entries:
            for data in entry["decisions"]:
                decision = decision_from_dict(data)
                key = str(decision.request_id)
                service.book.record(key, dict(data))
                if isinstance(decision, Accepted):
                    job = Job(
                        id=decision.request_id,
                        source=data["source"],
                        dest=data["dest"],
                        size=float(data["size"]),
                        start=decision.start,
                        end=decision.end,
                    )
                    service.book.reservations[key] = Reservation(
                        job=job, remaining=job.size
                    )
            for t in entry["transitions"]:
                res = service.book.reservations.get(str(t["id"]))
                if res is None:
                    continue
                res.status = str(t["status"])
                if res.status == "completed":
                    res.remaining = 0.0
            for key, remaining, edges in entry["active"]:
                res = service.book.reservations[key]
                res.remaining = float(remaining)
                res.used_edges = frozenset(int(e) for e in edges)
        last = replay.last_entry
        if last is not None:
            service.epoch = int(last["epoch"]) + 1
            service._fault_idx = int(last["fault_idx"])
            service._bucket_tokens = float(last["bucket_tokens"])
            service._internal = [dict(e) for e in last["internal"]]
        service._journal = EpochJournal.open_existing(path, entry_kind="batch")
        service._journal.fault_injector = journal_fault_injector
        service.journal_fault_injector = journal_fault_injector
        service.journal_path = Path(path)
        service.telemetry.count("journal_resumes")
        return service
