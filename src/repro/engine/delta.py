"""Delta layer: cross-epoch reuse when signatures *almost* match.

The layout layer's exact-signature cache never hits across simulator
epochs: epoch ``N+1``'s instance differs from epoch ``N``'s in departed
jobs, shifted windows and shrunk residual sizes, so every epoch paid a
cold build and a cold solve.  This module closes that gap with three
delta-aware mechanisms, all of which preserve the engine's core
invariant — warm results are bit-identical to cold ones:

* :func:`patch_structure` — build a :class:`~repro.lp.model.ProblemStructure`
  from a *donor* structure of a nearby instance.  The donor supplies the
  already-validated per-job routes and (when layouts line up) verbatim
  capacity-block segments; everything else is recomputed with exactly
  the arithmetic of the cold builder, so the patched structure is
  indistinguishable from a cold build.  Any delta the patcher cannot
  prove safe — a capacity profile, a changed route (fault rerouting), a
  job with no donor paths — makes it decline, and the caller falls back
  to the cold build (which then raises exactly the errors it always
  raised).
* :class:`CarriedPlan` — the previous epoch's committed integer schedule
  in absolute time.  :meth:`CarriedPlan.certifies` maps it onto a new
  instance and answers "is this instance's SUB-RET LP feasible?" by
  exhibiting a feasible point: mapped grants that no longer apply
  (finished jobs, shifted windows, rerouted paths) are *dropped* —
  which only frees capacity — and per-job shortfalls are covered by a
  greedy repair over residual capacity.  A certificate lets RET skip
  the expensive ``b_max`` bounds probe entirely; a failed certificate
  costs nothing but the check, and the probe solves as before.
* :func:`map_warm_start` — re-index a :class:`~repro.engine.backend.WarmStart`
  (primal point, duals) from its source structure onto a patched one:
  columns match by ``(job id, path, absolute slice time)``, capacity
  rows by ``(edge, absolute slice time)``, job rows by job id, and
  entries with no counterpart are neutral zeros.  Only backends with
  ``supports_warm_start`` ever receive a mapped hint.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from ..lp.model import ProblemStructure, job_capacity_fragment
from ..network.graph import Network
from ..network.paths import Path
from ..obs import NULL_TELEMETRY, Telemetry
from ..timegrid import TimeGrid
from ..workload.jobs import JobSet
from .backend import WarmStart

__all__ = ["CarriedPlan", "patch_structure", "map_warm_start"]

Node = Hashable

#: Grants below this are dropped when a plan is carried (LPDAR emits
#: integer wavelength counts, so anything smaller is float dust).
_GRANT_TOL = 1e-9

#: Constraint slack a witness point may leave and still count as a
#: certificate.  Deliberately far below the LP solver's own primal
#: feasibility tolerance (HiGHS: 1e-7): a point this close to feasible
#: can only coexist with an *exactly* infeasible LP in pathological
#: cases, where the certificate merely changes which ScheduleError
#: message the caller sees.
_FEAS_TOL = 1e-9

#: Time/grid alignment tolerance, matching TimeGrid.window_slices.
_TIME_EPS = 1e-9


class CarriedPlan:
    """One epoch's committed schedule, re-playable in absolute time.

    Built from ``(structure, x)`` of a committed scheduling pass; each
    nonzero assignment becomes a grant ``(job id, path edge ids,
    absolute slice start, slice length, wavelengths)``.  Absolute time
    is the point: the next epoch's grids start later and cover different
    horizons, so grants are re-anchored by *when* they happen, not by
    slice index.
    """

    __slots__ = ("grants", "num_grants")

    def __init__(self, grants: list) -> None:
        self.grants = grants
        self.num_grants = len(grants)

    @classmethod
    def from_assignment(
        cls, structure: ProblemStructure, x: np.ndarray
    ) -> "CarriedPlan":
        """Extract the nonzero grants of ``x`` over ``structure``."""
        x = np.asarray(x, dtype=float)
        grid = structure.grid
        grants = []
        for c in np.flatnonzero(x > _GRANT_TOL):
            i = int(structure.col_job[c])
            path = structure.paths[i][int(structure.col_path[c])]
            j = int(structure.col_slice[c])
            grants.append(
                (
                    structure.jobs[i].id,
                    tuple(path.edge_ids),
                    np.asarray(path.edge_ids, dtype=np.int64),
                    float(grid.slice_start(j)),
                    float(grid.lengths[j]),
                    float(x[c]),
                )
            )
        return cls(grants)

    def certifies(
        self,
        network: Network,
        jobs: JobSet,
        grid: TimeGrid,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]],
        k_paths: int,
    ) -> bool:
        """Whether this plan proves the instance's SUB-RET LP feasible.

        Constructs an explicit feasible point: carried grants are mapped
        onto ``grid`` (dropped when their job is gone, their slice falls
        outside the job's window or the grid, or their path is no longer
        allowed — dropping only frees capacity), then a greedy repair
        pass covers each job's remaining demand from residual capacity.
        Returns True iff every demand floor and every capacity row of
        the LP is satisfied by the result.  Certification is *sound*,
        never complete: a False just means the caller must solve.
        """
        lengths = grid.lengths
        slice_len = float(lengths[0])
        if np.any(np.abs(lengths - slice_len) > _TIME_EPS):
            return False  # witness mapping assumes a uniform grid
        caps = network.capacities().astype(float)
        rate = float(network.wavelength_rate)

        # Per-job window, allowed paths and normalized demand — the same
        # quantities the SUB-RET structure would encode.
        live: dict = {}
        for job in jobs:
            window = grid.window_slices(job.start, job.end)
            if len(window) == 0:
                return False  # the structure build would refuse this job
            pset = list(path_sets.get((job.source, job.dest)) or ())[:k_paths]
            if not pset:
                return False
            keys = set()
            allowed = []
            for p in pset:
                keys.add(tuple(p.edge_ids))
                allowed.append(np.asarray(p.edge_ids, dtype=np.int64))
            live[job.id] = (window, keys, allowed, job.size / rate)

        loads = np.zeros((network.num_edges, grid.num_slices))
        delivered = dict.fromkeys(live, 0.0)
        grid_start = float(grid.start)
        for job_id, key, edges, t, length, value in self.grants:
            info = live.get(job_id)
            if info is None:
                continue  # job completed / expired: capacity freed
            window, keys, _, _ = info
            if abs(length - slice_len) > _TIME_EPS:
                continue  # slice geometry changed; cannot re-anchor
            rel = (t - grid_start) / slice_len
            j = int(round(rel))
            if abs(rel - j) > _TIME_EPS or not 0 <= j < grid.num_slices:
                continue  # slice lies in the executed past or off-grid
            if not window.start <= j < window.stop:
                continue  # window shifted away from this slice
            if key not in keys:
                continue  # route changed (fault reroute): drop the grant
            loads[edges, j] += value
            delivered[job_id] += value * slice_len

        # Mapped grants must respect *this* instance's capacities (the
        # plan may have been drawn under a degraded fault profile).
        if np.any(loads > caps[:, None] + _FEAS_TOL):
            return False

        # Greedy repair: top up every under-delivered job (new arrivals
        # have no carried grants at all) from residual capacity.
        for job in jobs:
            window, _, allowed, demand = live[job.id]
            need = demand - delivered[job.id]
            if need <= _FEAS_TOL:
                continue
            for j in window:
                for edges in allowed:
                    avail = float((caps[edges] - loads[edges, j]).min())
                    if avail <= 0.0:
                        continue
                    take_vol = min(avail * slice_len, need)
                    loads[edges, j] += take_vol / slice_len
                    need -= take_vol
                    if need <= _FEAS_TOL:
                        break
                if need <= _FEAS_TOL:
                    break
            if need > _FEAS_TOL:
                return False
        return True

    def __repr__(self) -> str:
        return f"CarriedPlan(grants={self.num_grants})"


# ----------------------------------------------------------------------
# Structure patching
# ----------------------------------------------------------------------
def _path_keys(paths: Sequence[Path]) -> list[tuple[int, ...]]:
    return [tuple(p.edge_ids) for p in paths]


def _donor_job_index(donor: ProblemStructure) -> dict:
    """``{job id: row}`` of the donor, cached on the donor itself."""
    index = getattr(donor, "_job_index", None)
    if index is None:
        index = {job.id: i for i, job in enumerate(donor.jobs)}
        donor._job_index = index
    return index


def patch_structure(
    donor: ProblemStructure,
    jobs: JobSet,
    grid: TimeGrid,
    k_paths: int,
    path_sets: Mapping[tuple[Node, Node], Sequence[Path]],
    capacity_profile=None,
    fragment_cache: dict | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> ProblemStructure | None:
    """A structure for ``(jobs, grid)`` patched from a nearby ``donor``.

    Returns ``None`` — *decline, don't raise* — whenever the delta
    cannot be proven safe, so the caller's cold build keeps sole
    ownership of validation errors.  Declines happen when:

    * either instance carries a capacity profile (fault/maintenance
      epochs re-validate profile-vs-grid invariants in the cold path);
    * ``k_paths`` differs, the grid cannot cover a job, a job has no
      allowed path, or a job window contains no whole slice;
    * a job shared with the donor resolves to *different* routes than
      the donor used — the fault-reroute case: banned-edge changes must
      bust patched path sets, never be papered over;
    * no job is shared with the donor at all (nothing to patch from).

    On success the result is **bit-identical** to the cold build: window
    arithmetic goes through :meth:`TimeGrid.window_slices`, capacity
    segments come verbatim from the donor where the absolute layout
    matches and from the shared fragment cache otherwise, and the final
    unique/CSR assembly is the cold builder's own.  When the entire
    layout matches (same grid, windows, routes and column offsets) the
    donor's assembled matrices are shared outright, along with its
    rhs-independent ``capacity_floor`` assembly block.
    """
    if capacity_profile is not None or donor.capacity_profile is not None:
        return None
    if donor.k_paths != k_paths or len(jobs) == 0:
        return None
    network = donor.network
    if jobs.max_end() > grid.end + _TIME_EPS:
        return None

    donor_index = _donor_job_index(donor)
    n = len(jobs)
    paths: list[list[Path]] = []
    first = np.empty(n, dtype=np.int64)
    span = np.empty(n, dtype=np.int64)
    donor_row = np.full(n, -1, dtype=np.int64)
    matched = 0
    for i, job in enumerate(jobs):
        window = grid.window_slices(job.start, job.end)
        if len(window) == 0:
            return None
        first[i] = window.start
        span[i] = len(window)
        pset = list(path_sets.get((job.source, job.dest)) or ())[:k_paths]
        if not pset:
            return None
        di = donor_index.get(job.id)
        if di is not None:
            dj = donor.jobs[di]
            if dj.source != job.source or dj.dest != job.dest:
                return None  # same id, different endpoints: not a delta
            dpaths = donor.paths[di]
            same = len(dpaths) == len(pset) and all(
                a is b for a, b in zip(pset, dpaths)
            )
            if not same and _path_keys(pset) != _path_keys(dpaths):
                return None  # routes changed (fault reroute): decline
            donor_row[i] = di
            matched += 1
        paths.append(pset)
    if matched == 0:
        return None

    out = object.__new__(ProblemStructure)
    out.network = network
    out.jobs = jobs
    out.grid = grid
    out.k_paths = k_paths
    out.capacity_profile = None
    out.paths = paths
    out.first_slice = first
    out.span = span
    out.num_paths = np.array([len(p) for p in paths], dtype=np.int64)
    cols_per_job = out.num_paths * out.span
    out.job_offset = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cols_per_job, out=out.job_offset[1:])
    out.num_cols = int(out.job_offset[-1])
    out.demands = jobs.sizes() / network.wavelength_rate
    out._assembly_cache = {}

    # Whole-layout clone: identical grid, windows, routes and offsets
    # mean the donor's column arrays and matrices apply verbatim — only
    # the jobs (and their demands, an rhs) differ.
    if (
        n == len(donor.jobs)
        and grid == donor.grid
        and bool(np.all(donor_row == np.arange(n)))
        and np.array_equal(first, donor.first_slice)
        and np.array_equal(span, donor.span)
    ):
        out.col_job = donor.col_job
        out.col_slice = donor.col_slice
        out.col_path = donor.col_path
        out.col_len = donor.col_len
        out.cap_row_edge = donor.cap_row_edge
        out.cap_row_slice = donor.cap_row_slice
        out.cap_rhs = donor.cap_rhs
        out.capacity_matrix = donor.capacity_matrix
        out.demand_matrix = donor.demand_matrix
        out._cap_segments = getattr(donor, "_cap_segments", None)
        donor_cache = getattr(donor, "_assembly_cache", {})
        floor = donor_cache.get("capacity_floor")
        if floor is not None:
            # vstack([capacity; -demand]) is rhs-independent: shareable.
            out._assembly_cache["capacity_floor"] = floor
        if np.array_equal(out.demands, donor.demands):
            stage1 = donor_cache.get("stage1")
            if stage1 is not None:
                # stage1's a_eq embeds -demands; share only when equal.
                out._assembly_cache["stage1"] = stage1
        _finalize(out)
        telemetry.record(
            "structure_patched", jobs=n, num_cols=out.num_cols, clone=True
        )
        return out

    # Donor-guided rebuild: same column arithmetic as the cold builder,
    # with path validation skipped (donor-vouched above) and capacity
    # segments pulled from the donor or the fragment cache.
    out.col_job = np.repeat(np.arange(n), cols_per_job)
    out.col_slice = np.concatenate(
        [
            np.tile(np.arange(first[i], first[i] + span[i]), out.num_paths[i])
            for i in range(n)
        ]
    )
    out.col_path = np.concatenate(
        [np.repeat(np.arange(out.num_paths[i]), span[i]) for i in range(n)]
    )
    out.col_len = grid.lengths[out.col_slice]

    num_slices = grid.num_slices
    donor_segments = (
        getattr(donor, "_cap_segments", None)
        if donor.grid.num_slices == num_slices
        else None
    )
    segments: list[tuple[np.ndarray, np.ndarray]] = []
    segments_reused = 0
    for i in range(n):
        di = int(donor_row[i])
        seg = None
        if (
            donor_segments is not None
            and di >= 0
            and donor.first_slice[di] == first[i]
            and donor.span[di] == span[i]
            and donor.job_offset[di] == out.job_offset[i]
        ):
            # Absolute rows *and* columns line up: the donor's segment
            # (row keys, column indices) applies verbatim.
            seg = donor_segments[di]
            segments_reused += 1
        if seg is None:
            span_i = int(span[i])
            key = (tuple(p.edge_ids for p in paths[i]), span_i)
            fragment = (
                fragment_cache.get(key) if fragment_cache is not None else None
            )
            if fragment is None:
                fragment = job_capacity_fragment(paths[i], span_i)
                if fragment_cache is not None:
                    fragment_cache[key] = fragment
                telemetry.count("layout_fragment_builds")
            else:
                telemetry.count("layout_fragment_hits")
            edge, rel_slice, rel_col = fragment
            seg = (
                edge * num_slices + (int(first[i]) + rel_slice),
                int(out.job_offset[i]) + rel_col,
            )
        segments.append(seg)
    out._cap_segments = segments

    row_keys = np.concatenate([s[0] for s in segments])
    cols = np.concatenate([s[1] for s in segments])
    unique_keys, rows = np.unique(row_keys, return_inverse=True)
    out.cap_row_edge = (unique_keys // num_slices).astype(np.int64)
    out.cap_row_slice = (unique_keys % num_slices).astype(np.int64)
    out.cap_rhs = network.capacities()[out.cap_row_edge].astype(float)
    out.capacity_matrix = sp.coo_matrix(
        (np.ones(len(cols), dtype=float), (rows, cols)),
        shape=(len(unique_keys), out.num_cols),
    ).tocsr()
    # The demand block's CSR form is known in closed form: columns are
    # job-major, so indptr *is* job_offset and indices are 0..n-1.
    out.demand_matrix = sp.csr_matrix(
        (
            out.col_len.copy(),
            np.arange(out.num_cols, dtype=np.int64),
            out.job_offset.copy(),
        ),
        shape=(n, out.num_cols),
    )
    _finalize(out)
    telemetry.record(
        "structure_patched",
        jobs=n,
        num_cols=out.num_cols,
        clone=False,
        segments_reused=segments_reused,
    )
    return out


def _finalize(structure: ProblemStructure) -> None:
    """Apply the cold builder's read-only discipline to a patched result."""
    for arr in (
        structure.first_slice,
        structure.span,
        structure.num_paths,
        structure.job_offset,
        structure.col_job,
        structure.col_slice,
        structure.col_path,
        structure.col_len,
        structure.demands,
        structure.cap_row_edge,
        structure.cap_row_slice,
        structure.cap_rhs,
    ):
        arr.setflags(write=False)


# ----------------------------------------------------------------------
# Warm-start mapping
# ----------------------------------------------------------------------
def _column_identity(structure: ProblemStructure, c: int) -> tuple:
    i = int(structure.col_job[c])
    return (
        structure.jobs[i].id,
        tuple(structure.paths[i][int(structure.col_path[c])].edge_ids),
        round(float(structure.grid.slice_start(int(structure.col_slice[c]))), 9),
    )


def _cap_row_identity(structure: ProblemStructure, r: int) -> tuple:
    return (
        int(structure.cap_row_edge[r]),
        round(float(structure.grid.slice_start(int(structure.cap_row_slice[r]))), 9),
    )


def _map_block(source_ids: list, target_ids: list, values: np.ndarray) -> np.ndarray:
    """Re-index ``values`` from source to target identities; zeros fill."""
    lookup = {}
    for idx, ident in enumerate(source_ids):
        lookup.setdefault(ident, idx)
    out = np.zeros(len(target_ids))
    for idx, ident in enumerate(target_ids):
        src = lookup.get(ident)
        if src is not None:
            out[idx] = values[src]
    return out


def _map_row_duals(
    duals: np.ndarray | None,
    src: ProblemStructure,
    dst: ProblemStructure,
) -> np.ndarray | None:
    """Map a dual vector across structures, by row identity.

    Handles the three row layouts the engine's LP families use: capacity
    rows only (stage 1's a_ub), capacity rows + per-job floors (stage 2
    and SUB-RET), and per-job rows only (stage 1's a_eq).  Unknown
    layouts map to ``None`` — a dropped hint, never a wrong one.
    """
    if duals is None:
        return None
    duals = np.asarray(duals, dtype=float)
    src_cap = int(src.capacity_matrix.shape[0])
    dst_cap = int(dst.capacity_matrix.shape[0])
    src_cap_ids = [_cap_row_identity(src, r) for r in range(src_cap)]
    dst_cap_ids = [_cap_row_identity(dst, r) for r in range(dst_cap)]
    src_job_ids = [job.id for job in src.jobs]
    dst_job_ids = [job.id for job in dst.jobs]
    if duals.shape[0] == src_cap:
        return _map_block(src_cap_ids, dst_cap_ids, duals)
    if duals.shape[0] == src_cap + len(src.jobs):
        cap_part = _map_block(src_cap_ids, dst_cap_ids, duals[:src_cap])
        job_part = _map_block(src_job_ids, dst_job_ids, duals[src_cap:])
        return np.concatenate([cap_part, job_part])
    if duals.shape[0] == len(src.jobs):
        return _map_block(src_job_ids, dst_job_ids, duals)
    return None


def map_warm_start(hint: WarmStart, structure: ProblemStructure) -> WarmStart:
    """Re-index ``hint`` onto ``structure``'s column/row spaces.

    Columns carry over by ``(job id, path, absolute slice time)``; new
    columns start at the neutral 0.0.  Trailing auxiliary variables
    (e.g. stage 1's ``Z`` column) are preserved positionally.  Dual
    blocks map by row identity via :func:`_map_row_duals`.  The basis is
    never mapped — a permuted basis is worse than none — so it is
    dropped whenever the structure actually changed.
    """
    src = hint.structure
    if src is None or src is structure:
        return hint
    x = np.asarray(hint.x, dtype=float)
    extra = x.shape[0] - src.num_cols
    if extra < 0:
        return hint  # not a hint over src's column space; pass through
    src_ids = [_column_identity(src, c) for c in range(src.num_cols)]
    dst_ids = [_column_identity(structure, c) for c in range(structure.num_cols)]
    mapped = np.zeros(structure.num_cols + extra)
    mapped[: structure.num_cols] = _map_block(src_ids, dst_ids, x[: src.num_cols])
    if extra:
        mapped[structure.num_cols :] = x[src.num_cols :]
    return WarmStart(
        x=mapped,
        ineq_duals=_map_row_duals(hint.ineq_duals, src, structure),
        eq_duals=_map_row_duals(hint.eq_duals, src, structure),
        basis=None,
        label=hint.label,
        structure=structure,
    )
