"""The layered model engine: topology -> layout -> solve, behind one facade.

:class:`ModelEngine` is the shared factory every solver front-end builds
its :class:`~repro.lp.model.ProblemStructure` through.  It separates
what is invariant from what changes:

1. **Topology layer** (:class:`~repro.engine.topology.TopologyLayer`) —
   the network and its resolved path sets, computed once per
   ``(od pair, banned edges)``.
2. **Layout layer** (:class:`~repro.engine.layout.LayoutLayer`) — column
   layouts and constraint blocks, with whole-structure and per-job
   fragment reuse; :meth:`extend_windows` / :meth:`for_grid` are the
   incremental rebuild entry points.
3. **Solve layer** — the backend registry
   (:mod:`repro.engine.backend`) plus :meth:`cached_solve`'s exact
   warm-start memo over engine-built structures.

Warm-start semantics
--------------------

A RET binary search probes many candidate stretch factors ``b``, but
window discretization is a step function of ``b``: once ``hi - lo``
falls below one slice of granularity, consecutive probes produce *the
same* integer windows, grid and capacities — i.e. bit-identical LPs.
:meth:`cached_solve` keys its memo on the layout layer's exact structure
signature, so a hit returns the verbatim optimal solution (or replays
the memoized infeasibility) of that identical LP.  Results are therefore
equal whether warm starts are on or off — ``warm_start=False`` (and the
CLI ``--no-warm-start`` escape hatch) trades the speedup for a fully
from-scratch audit path, nothing else.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable, Mapping, Sequence

from ..errors import InfeasibleProblemError, ValidationError
from ..lp.model import ProblemStructure
from ..lp.solver import (
    LinearProgram,
    LPSolution,
    SolveBudget,
    SolveResilience,
    solve_lp,
)
from ..network.graph import Network
from ..network.paths import Path
from ..obs import NULL_TELEMETRY, Telemetry
from ..timegrid import TimeGrid
from ..workload.jobs import JobSet
from .backend import WarmStart, get_backend
from .delta import CarriedPlan, map_warm_start
from .layout import LayoutLayer
from .topology import TopologyLayer

__all__ = ["ModelEngine", "build_structure"]

Node = Hashable

#: Memo marker for a structure whose SUB-RET (or other) LP was proven
#: infeasible: replaying the outcome must re-raise, not return a value.
_INFEASIBLE = object()


class ModelEngine:
    """Layered structure factory with warm-started, memoized solves.

    Parameters
    ----------
    network:
        The network the engine is bound to; every structure it builds
        references this one graph.
    k_paths:
        Paths resolved per OD pair at the topology layer.
    telemetry:
        Optional collector shared by all three layers (counters:
        ``structure_cache_hits``, ``cold_builds``, ``warm_starts``,
        ``engine_solves``, ``path_cache_hits`` / ``_misses``,
        ``layout_fragment_hits`` / ``_builds``).
    backend:
        Registered backend name used by :meth:`cached_solve`.
    warm_start:
        Enables the solve-layer memo and the :class:`WarmStart` hint
        threading.  Off, every solve runs from scratch (results are
        identical either way; see the module docstring).
    cache_structures, cache_fragments, max_cached_structures,
    max_cached_fragments:
        Layout-layer reuse knobs (see
        :class:`~repro.engine.layout.LayoutLayer`).
    max_cached_solutions:
        LRU bound on memoized solutions.
    resilience:
        Default retry policy for :meth:`cached_solve` when the call
        itself passes none — lets a front-end (e.g. the reservation
        service) make *every* solve routed through its engine
        resilient, admission probes included.
    """

    def __init__(
        self,
        network: Network,
        k_paths: int = 4,
        *,
        telemetry: Telemetry | None = None,
        backend: str = "highs",
        warm_start: bool = True,
        cache_structures: bool = True,
        cache_fragments: bool = True,
        max_cached_structures: int = 64,
        max_cached_fragments: int = 512,
        max_cached_solutions: int = 256,
        resilience: SolveResilience | None = None,
    ) -> None:
        self._backend_obj = get_backend(backend)  # fail fast on unknown names
        self.backend = backend
        self.warm_start = bool(warm_start)
        self.resilience = resilience
        self.telemetry = telemetry or NULL_TELEMETRY
        self.topology = TopologyLayer(network, k_paths, telemetry=self.telemetry)
        self.layout = LayoutLayer(
            self.topology,
            telemetry=self.telemetry,
            cache_structures=cache_structures,
            cache_fragments=cache_fragments,
            max_structures=max_cached_structures,
            max_fragments=max_cached_fragments,
        )
        if max_cached_solutions < 1:
            raise ValidationError(
                f"max_cached_solutions must be >= 1, got {max_cached_solutions}"
            )
        self.max_cached_solutions = int(max_cached_solutions)
        self._solutions: OrderedDict[tuple, object] = OrderedDict()
        self._last_hint: dict[str, WarmStart] = {}
        self._carried: CarriedPlan | None = None

    @classmethod
    def cold(
        cls,
        network: Network,
        k_paths: int = 4,
        *,
        telemetry: Telemetry | None = None,
        backend: str = "highs",
    ) -> "ModelEngine":
        """A fully cold engine — no reuse at any layer.

        This is the from-scratch baseline the benchmarks compare
        against, and what the CLI ``--no-warm-start`` flag selects.
        """
        return cls(
            network,
            k_paths,
            telemetry=telemetry,
            backend=backend,
            warm_start=False,
            cache_structures=False,
            cache_fragments=False,
        )

    @property
    def network(self) -> Network:
        return self.topology.network

    @property
    def k_paths(self) -> int:
        return self.topology.k_paths

    # ------------------------------------------------------------------
    # Layout layer entry points
    # ------------------------------------------------------------------
    def structure(
        self,
        jobs: JobSet,
        grid: TimeGrid | None = None,
        *,
        slice_length: float = 1.0,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None = None,
        capacity_profile=None,
        banned_edges: frozenset[int] = frozenset(),
    ) -> ProblemStructure:
        """The structure for this instance (cached when signatures match)."""
        if grid is None:
            grid = TimeGrid.covering(jobs.max_end(), slice_length)
        return self.layout.structure(
            jobs,
            grid,
            path_sets=path_sets,
            capacity_profile=capacity_profile,
            banned_edges=banned_edges,
        )

    def extend_windows(
        self,
        jobs: JobSet,
        b: float,
        *,
        mode: str = "end_time",
        slice_length: float = 1.0,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None = None,
        capacity_profile=None,
    ) -> ProblemStructure:
        """Incremental rebuild for windows stretched by ``(1 + b)``.

        This is the RET probe builder: candidate ``b`` values that
        discretize to the same integer windows return the cached
        structure, and genuinely new layouts still reuse cached paths
        and per-job fragments.  ``capacity_profile`` (absolute time) is
        re-based onto each candidate grid, exactly as the pre-engine
        probe loop did.
        """
        if b < 0:
            raise ValidationError(f"window extension b must be >= 0, got {b}")
        if mode == "interval":
            extended = jobs.with_extended_intervals(b)
        elif mode == "end_time":
            extended = jobs.with_extended_ends(b)
        else:
            raise ValidationError(f"unknown RET mode {mode!r}")
        grid = TimeGrid.covering(extended.max_end(), slice_length)
        profile = (
            capacity_profile.for_grid(grid)
            if capacity_profile is not None
            else None
        )
        return self.structure(
            extended, grid, path_sets=path_sets, capacity_profile=profile
        )

    def for_grid(
        self, structure: ProblemStructure, grid: TimeGrid
    ) -> ProblemStructure:
        """``structure``'s instance rebuilt on another grid.

        Reuses the structure's already-resolved paths and re-bases its
        capacity profile; only the layout actually changes.
        """
        path_sets: dict[tuple[Node, Node], Sequence[Path]] = {}
        for i, job in enumerate(structure.jobs):
            path_sets.setdefault((job.source, job.dest), structure.paths[i])
        profile = (
            structure.capacity_profile.for_grid(grid)
            if structure.capacity_profile is not None
            else None
        )
        return self.structure(
            structure.jobs, grid, path_sets=path_sets, capacity_profile=profile
        )

    def substructure(
        self, structure: ProblemStructure, job_indices
    ) -> ProblemStructure:
        """The structure restricted to ``job_indices`` of ``structure``.

        The shard builder of :mod:`repro.parallel.sharded`: the child
        keeps the parent's grid, capacity profile and already-resolved
        per-job path lists, so its column blocks are bit-identical to
        the parent's (only the offsets shift) and the layout layer can
        cache it across repeated solves (alpha escalations, RET
        probes).
        """
        indices = list(job_indices)
        if not indices:
            raise ValidationError("substructure needs at least one job index")
        jobs = JobSet([structure.jobs[i] for i in indices])
        path_sets: dict[tuple[Node, Node], Sequence[Path]] = {}
        for i in indices:
            job = structure.jobs[i]
            path_sets.setdefault((job.source, job.dest), structure.paths[i])
        return self.structure(
            jobs,
            structure.grid,
            path_sets=path_sets,
            capacity_profile=structure.capacity_profile,
        )

    # ------------------------------------------------------------------
    # Cross-epoch carried state
    # ------------------------------------------------------------------
    def carry_plan(self, structure: ProblemStructure, x) -> None:
        """Carry a committed schedule into the next epoch's solves.

        The scheduler calls this after every successful pass.  The plan
        (in absolute time) becomes a feasibility *witness*: RET's next
        ``b_max`` bounds probe can skip its build-and-solve entirely
        when :meth:`certify_feasible` maps the plan onto the candidate
        instance (see :class:`~repro.engine.delta.CarriedPlan`).  A
        no-op on cold engines — the audit path carries nothing.
        """
        if not self.warm_start:
            return
        self._carried = CarriedPlan.from_assignment(structure, x)
        self.telemetry.count("plans_carried")

    @property
    def has_carried_plan(self) -> bool:
        return self._carried is not None

    def invalidate_carried(self) -> None:
        """Drop the carried plan (fault events must bust carried state).

        Certification re-validates paths and capacities on every use, so
        this is defense in depth rather than a correctness requirement —
        but a plan drawn before a fault is a poor witness after one, and
        dropping it keeps the fault epoch on the honest cold path.
        """
        if self._carried is not None:
            self._carried = None
            self.telemetry.count("carried_invalidations")

    def certify_feasible(
        self,
        jobs: JobSet,
        grid: TimeGrid,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]],
    ) -> bool:
        """Prove (or fail to prove) SUB-RET feasibility from carried state.

        Sound, never complete: ``True`` means the carried plan maps to
        an explicit feasible point of the instance's SUB-RET LP, so the
        probe's outcome is known without solving; ``False`` means
        nothing — the caller solves as it always did.
        """
        if not self.warm_start or self._carried is None:
            return False
        ok = self._carried.certifies(
            self.network, jobs, grid, path_sets, self.k_paths
        )
        self.telemetry.count(
            "ret_witness_hits" if ok else "ret_witness_misses"
        )
        return ok

    # ------------------------------------------------------------------
    # Solve layer
    # ------------------------------------------------------------------
    def cached_solve(
        self,
        structure: ProblemStructure,
        kind: str,
        build: Callable[[], LinearProgram],
        *,
        cache: bool = True,
        telemetry: Telemetry | None = None,
        resilience: SolveResilience | None = None,
        budget: SolveBudget | None = None,
        label: str | None = None,
    ) -> LPSolution:
        """Solve one LP family over an engine-built structure, memoized.

        ``kind`` names the family (``"subret"``, ``"stage1"``, ...);
        ``build`` assembles the LP only on a miss.  The memo key is the
        structure's exact layout signature plus ``kind``, so a hit means
        the LP is bit-identical to one already solved — the cached
        solution (or memoized infeasibility) *is* the answer, counted as
        a ``warm_starts`` telemetry hit.  Structures built outside this
        engine, and calls with ``cache=False`` (e.g. a caller-supplied
        objective the key cannot see), always solve.

        The previous solution of the same ``kind`` is threaded to the
        backend as a :class:`WarmStart` hint; the bundled backends
        ignore it, so this changes nothing until a basis-capable backend
        is registered.
        """
        telemetry = telemetry or self.telemetry
        key = None
        if self.warm_start and cache:
            signature = getattr(structure, "_engine_key", None)
            if signature is not None:
                key = (signature, kind)
                hit = self._solutions.get(key)
                if hit is not None:
                    self._solutions.move_to_end(key)
                    telemetry.count("warm_starts")
                    if hit is _INFEASIBLE:
                        raise InfeasibleProblemError()
                    return hit
            else:
                # A memoizable call over a structure the layout cache
                # never keyed (built outside the engine, or with
                # structure caching off) silently falls through to a
                # cold solve; make the bypass visible in telemetry.
                telemetry.count("engine_memo_bypass")
        if resilience is None:
            resilience = self.resilience
        hint = self._last_hint.get(kind) if self.warm_start else None
        if hint is not None and self._backend_obj.supports_warm_start:
            # Re-index the hint onto this structure's column/row spaces
            # (neutral entries where no counterpart exists).  Backends
            # that ignore hints never need the mapping.
            hint = map_warm_start(hint, structure)
        try:
            solution = solve_lp(
                build(),
                backend=self.backend,
                telemetry=telemetry,
                label=label or kind,
                resilience=resilience,
                budget=budget,
                warm_start=hint,
            )
        except InfeasibleProblemError:
            if key is not None:
                self._remember(key, _INFEASIBLE)
            raise
        telemetry.count("engine_solves")
        if self.warm_start:
            self._last_hint[kind] = WarmStart(
                x=solution.x,
                ineq_duals=solution.ineq_duals,
                eq_duals=solution.eq_duals,
                basis=solution.basis,
                label=label or kind,
                structure=structure,
            )
        if key is not None:
            self._remember(key, solution)
        return solution

    def _remember(self, key: tuple, value: object) -> None:
        self._solutions[key] = value
        while len(self._solutions) > self.max_cached_solutions:
            self._solutions.popitem(last=False)

    def clear(self) -> None:
        """Drop every cache at every layer (topology, layout, solve)."""
        self.topology.clear()
        self.layout.clear()
        self._solutions.clear()
        self._last_hint.clear()
        self._carried = None

    def __repr__(self) -> str:
        return (
            f"ModelEngine(backend={self.backend!r}, k_paths={self.k_paths}, "
            f"warm_start={self.warm_start}, "
            f"cached_solutions={len(self._solutions)})"
        )


def build_structure(
    network: Network,
    jobs: JobSet,
    grid: TimeGrid | None = None,
    k_paths: int = 4,
    *,
    slice_length: float = 1.0,
    path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None = None,
    capacity_profile=None,
    banned_edges: frozenset[int] = frozenset(),
    telemetry: Telemetry | None = None,
) -> ProblemStructure:
    """One-shot shared factory: a structure via a transient engine.

    The single front door for call sites that build one instance and
    move on (experiments, analysis, verification); long-lived callers
    (the scheduler, the simulator, RET) hold a :class:`ModelEngine` and
    reap the cross-build reuse.
    """
    engine = ModelEngine(network, k_paths, telemetry=telemetry)
    return engine.structure(
        jobs,
        grid,
        slice_length=slice_length,
        path_sets=path_sets,
        capacity_profile=capacity_profile,
        banned_edges=banned_edges,
    )
