"""Layered model engine: incremental structure rebuilds and warm solves.

See :mod:`repro.engine.engine` for the layer split (topology / layout /
solve), :mod:`repro.engine.backend` for the solver-backend registry and
:mod:`repro.engine.assembly` for the shared LP-assembly helpers.
``docs/architecture.md`` has the full design narrative.
"""

from .assembly import append_column, capacity_floor_blocks, stage1_blocks
from .backend import (
    HighsBackend,
    SimplexBackend,
    SolverBackend,
    WarmStart,
    available_backends,
    get_backend,
    register_backend,
)
from .delta import CarriedPlan, map_warm_start, patch_structure
from .engine import ModelEngine, build_structure
from .layout import FragmentCache, LayoutLayer
from .topology import TopologyLayer

__all__ = [
    "ModelEngine",
    "build_structure",
    "TopologyLayer",
    "LayoutLayer",
    "FragmentCache",
    "CarriedPlan",
    "patch_structure",
    "map_warm_start",
    "SolverBackend",
    "WarmStart",
    "HighsBackend",
    "SimplexBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "append_column",
    "capacity_floor_blocks",
    "stage1_blocks",
]
