"""Shared LP-assembly helpers: the engine solve layer's block algebra.

``build_stage1_lp``, ``build_stage2_lp`` and ``build_subret_lp`` all
glue the same two sparse blocks — the capacity matrix and the demand
matrix — with near-identical ``sp.vstack`` / ``sp.hstack`` boilerplate.
This module holds that algebra once, and exploits a fact the ad-hoc
copies could not: the stacked matrices depend only on the structure,
never on the right-hand side, so they are cached *on the structure* and
reused across alpha escalations (stage 2 changes only the fairness rhs),
across repeat SUB-RET solves of one layout, and across anything else
that re-assembles the same instance.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..lp.model import ProblemStructure

__all__ = ["append_column", "capacity_floor_blocks", "stage1_blocks"]


def _assembly_cache(structure: ProblemStructure) -> dict:
    """The structure's private assembled-matrix memo (created on demand)."""
    cache = getattr(structure, "_assembly_cache", None)
    if cache is None:
        cache = {}
        structure._assembly_cache = cache
    return cache


def append_column(matrix: sp.spmatrix, values: np.ndarray | None = None) -> sp.csr_matrix:
    """``matrix`` with one extra column hstacked on: zeros, or ``values``.

    The stage-1 LP appends a ``Z`` variable to the shared column space;
    its equality block needs a ``-d`` column, its capacity block a zero
    column.  Both are this one helper.
    """
    rows = matrix.shape[0]
    if values is None:
        column = sp.csr_matrix((rows, 1))
    else:
        values = np.asarray(values, dtype=float)
        column = sp.csr_matrix(
            (values, (np.arange(rows), np.zeros(rows, dtype=int))),
            shape=(rows, 1),
        )
    return sp.hstack([matrix, column], format="csr")


def capacity_floor_blocks(
    structure: ProblemStructure, floor_rhs: np.ndarray
) -> tuple[sp.csr_matrix, np.ndarray]:
    """``(a_ub, b_ub)`` of a "capacity rows + per-job delivery floors" LP.

    The rows are ``[capacity_matrix; -demand_matrix] <= [cap_rhs;
    floor_rhs]``: stage 2 passes the fairness floors
    ``-(1 - alpha) Z* d`` and SUB-RET the completion floors ``-d``.  The
    stacked matrix is rhs-independent, so it is built once per structure
    and shared by every such solve over it.
    """
    cache = _assembly_cache(structure)
    a_ub = cache.get("capacity_floor")
    if a_ub is None:
        a_ub = sp.vstack(
            [structure.capacity_matrix, -structure.demand_matrix], format="csr"
        )
        cache["capacity_floor"] = a_ub
    b_ub = np.concatenate([structure.cap_rhs, np.asarray(floor_rhs, dtype=float)])
    return a_ub, b_ub


def stage1_blocks(
    structure: ProblemStructure,
) -> tuple[sp.csr_matrix, np.ndarray, sp.csr_matrix, np.ndarray]:
    """``(a_eq, b_eq, a_ub, b_ub)`` of the stage-1 MCF LP (columns + ``Z``).

    Equalities ``[demand_matrix | -d] [x; Z] = 0`` define the concurrent
    throughput; inequalities ``[capacity_matrix | 0] [x; Z] <= C`` are
    constraint (3).  Both matrices are cached on the structure.
    """
    cache = _assembly_cache(structure)
    blocks = cache.get("stage1")
    if blocks is None:
        a_eq = append_column(structure.demand_matrix, -structure.demands)
        a_ub = append_column(structure.capacity_matrix)
        blocks = (a_eq, a_ub)
        cache["stage1"] = blocks
    a_eq, a_ub = blocks
    return a_eq, np.zeros(len(structure.jobs)), a_ub, structure.cap_rhs
