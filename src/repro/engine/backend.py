"""Solver-backend registry: pluggable LP backends behind one protocol.

Historically :func:`repro.lp.solver.solve_lp` hardcoded its two backends
(``"highs"`` and ``"simplex"``) behind string comparisons, so adding a
third solver meant editing the dispatch chain.  This module turns the
backend into a first-class object: anything exposing ``name``,
``supports_warm_start`` and ``solve(problem, ...)`` can be registered
under a name and every solve entry point in the repository reaches it
through :func:`get_backend`.

Warm starts
-----------

The protocol threads an optional :class:`WarmStart` hint — the previous
solution (and, for basis-capable solvers, its basis) of the *same LP
family* — into every solve.  Neither bundled backend consumes it:
SciPy's HiGHS binding exposes no basis or starting-point input, and the
reference simplex is a from-scratch two-phase tableau.  They accept and
ignore the hint so future basis-capable backends slot in without
touching call sites.  The *exact* warm-start reuse the model engine
performs (returning a memoized solution verbatim when the probe's LP is
bit-identical to an already-solved one) lives one layer up, in
:meth:`repro.engine.ModelEngine.cached_solve`, precisely because it is
backend-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ValidationError
from ..lp.solver import LinearProgram, LPSolution, SolveBudget, _solve_once
from ..obs import NULL_TELEMETRY, Telemetry

__all__ = [
    "WarmStart",
    "SolverBackend",
    "HighsBackend",
    "SimplexBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]


@dataclass(frozen=True)
class WarmStart:
    """A starting hint carried from a previous solve of the same family.

    Attributes
    ----------
    x:
        The previous optimal point (same column layout expected).
    ineq_duals, eq_duals:
        Dual values of the previous solve's inequality / equality
        blocks, for dual-simplex-capable backends (``None`` when the
        producing backend reported none).
    basis:
        Opaque basis information for basis-capable backends (``None``
        for the bundled ones, which report no basis).
    label:
        The telemetry label of the solve that produced the hint.
    structure:
        The :class:`~repro.lp.model.ProblemStructure` the hint's column
        and row spaces refer to.  When the next solve of the family runs
        over a *different* (e.g. delta-patched) structure, the engine
        re-indexes the hint through
        :func:`repro.engine.delta.map_warm_start` before a
        warm-start-capable backend sees it; entries with no counterpart
        in the new structure become neutral zeros.  Excluded from
        equality/repr — it is an identity anchor, not data.

    A warm start is always *advisory*: a backend that cannot consume it
    must produce the same answer it would from a cold start, so results
    are identical whether or not the hint is supplied.
    """

    x: np.ndarray
    ineq_duals: np.ndarray | None = None
    eq_duals: np.ndarray | None = None
    basis: tuple | None = None
    label: str | None = None
    structure: object | None = field(default=None, repr=False, compare=False)


@runtime_checkable
class SolverBackend(Protocol):
    """What every registered LP backend must look like."""

    name: str
    supports_warm_start: bool

    def solve(
        self,
        problem: LinearProgram,
        *,
        warm_start: WarmStart | None = None,
        telemetry: Telemetry | None = None,
        label: str | None = None,
        budget: SolveBudget | None = None,
    ) -> LPSolution:
        """Solve ``problem``, raising the shared typed errors on failure."""
        ...


class HighsBackend:
    """SciPy's HiGHS dual simplex / IPM — the at-scale default."""

    name = "highs"
    supports_warm_start = False

    def solve(
        self,
        problem: LinearProgram,
        *,
        warm_start: WarmStart | None = None,
        telemetry: Telemetry | None = None,
        label: str | None = None,
        budget: SolveBudget | None = None,
    ) -> LPSolution:
        return _solve_once(problem, "highs", telemetry or NULL_TELEMETRY, label, budget)


class SimplexBackend:
    """The pure-Python two-phase reference simplex (small instances)."""

    name = "simplex"
    supports_warm_start = False

    def solve(
        self,
        problem: LinearProgram,
        *,
        warm_start: WarmStart | None = None,
        telemetry: Telemetry | None = None,
        label: str | None = None,
        budget: SolveBudget | None = None,
    ) -> LPSolution:
        return _solve_once(problem, "simplex", telemetry or NULL_TELEMETRY, label, budget)


_REGISTRY: dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend, replace: bool = False) -> SolverBackend:
    """Register ``backend`` under its ``name``; returns it for chaining.

    Re-registering an existing name raises unless ``replace=True`` —
    silently shadowing the backend every solve in the process routes
    through is exactly the kind of spooky action a registry must refuse.
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ValidationError(
            "a solver backend must expose a non-empty string `name`"
        )
    if not callable(getattr(backend, "solve", None)):
        raise ValidationError(
            f"backend {name!r} must expose a callable solve(problem, ...)"
        )
    if name in _REGISTRY and not replace:
        raise ValidationError(
            f"backend {name!r} is already registered; pass replace=True "
            "to override it"
        )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> SolverBackend:
    """The backend registered under ``name``; raises on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(repr(n) for n in sorted(_REGISTRY)) or "none"
        raise ValidationError(
            f"unknown backend {name!r}; registered backends: {known}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_REGISTRY))


register_backend(HighsBackend())
register_backend(SimplexBackend())
