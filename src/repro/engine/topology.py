"""Topology layer: per-network path resolution, computed once and cached.

Paths depend only on the graph (and the set of banned edges), never on
jobs, grids or capacities — yet the pre-engine code re-ran Yen's
k-shortest-paths for every RET probe, every admission prefix and every
simulator epoch that did not happen to thread an explicit ``path_sets``
mapping.  :class:`TopologyLayer` memoizes resolution per
``(od_pair, banned_edges)`` so each pair is routed exactly once per
fault pattern for the engine's whole lifetime.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from ..errors import ValidationError
from ..network.graph import Network
from ..network.paths import Path, build_path_sets
from ..obs import NULL_TELEMETRY, Telemetry

__all__ = ["TopologyLayer"]

Node = Hashable


class TopologyLayer:
    """Immutable per-network layer: the graph and cached path sets.

    Parameters
    ----------
    network:
        The wavelength-switched network; the layer (and every engine
        built on it) is bound to this one graph.
    k_paths:
        Paths resolved per origin-destination pair.
    telemetry:
        Optional collector; hits and misses count under
        ``path_cache_hits`` / ``path_cache_misses``.
    """

    def __init__(
        self,
        network: Network,
        k_paths: int = 4,
        telemetry: Telemetry | None = None,
    ) -> None:
        if k_paths < 1:
            raise ValidationError(f"k_paths must be >= 1, got {k_paths}")
        self.network = network
        self.k_paths = int(k_paths)
        self.telemetry = telemetry or NULL_TELEMETRY
        self._cache: dict[tuple, tuple[Path, ...]] = {}

    def path_sets(
        self,
        od_pairs: Iterable[tuple[Node, Node]],
        banned_edges: frozenset[int] = frozenset(),
    ) -> dict[tuple[Node, Node], list[Path]]:
        """Resolved paths per OD pair, shaped like ``build_path_sets``.

        Pairs already resolved under the same ``banned_edges`` come from
        the cache; only genuinely new pairs run the k-shortest-paths
        search.  A pair with *no* surviving path caches as empty (the
        disconnection is itself a stable fact of the topology).
        """
        banned = frozenset(banned_edges)
        out: dict[tuple[Node, Node], list[Path]] = {}
        missing: list[tuple[Node, Node]] = []
        for pair in od_pairs:
            if pair in out:
                continue
            cached = self._cache.get((pair, banned))
            if cached is not None:
                out[pair] = list(cached)
                self.telemetry.count("path_cache_hits")
            else:
                out[pair] = []  # placeholder; filled below, dedupes repeats
                missing.append(pair)
        if missing:
            fresh = build_path_sets(
                self.network, missing, self.k_paths, banned_edges=banned
            )
            for pair in missing:
                pset = tuple(fresh.get(pair) or ())
                self._cache[(pair, banned)] = pset
                out[pair] = list(pset)
                self.telemetry.count("path_cache_misses")
        return out

    def clear(self) -> None:
        """Drop every cached path set (e.g. after mutating the graph)."""
        self._cache.clear()

    def __repr__(self) -> str:
        return (
            f"TopologyLayer(nodes={self.network.num_nodes}, "
            f"k_paths={self.k_paths}, cached_pairs={len(self._cache)})"
        )
