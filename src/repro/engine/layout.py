"""Layout layer: reusing column layouts and constraint blocks across builds.

A :class:`~repro.lp.model.ProblemStructure` is a pure function of
``(network, jobs, grid, k_paths, path_sets, capacity_profile)``.  The
layout layer exploits that purity at two granularities:

* **Whole-structure cache** — an LRU keyed on the exact signature (raw
  job windows included).  Repeat requests for the same instance — the
  admission prefix search re-evaluating its final prefix, a journal
  replay re-solving a committed epoch, the scheduler re-scheduling an
  unchanged residual — get the *same object* back, skipping assembly
  entirely.  Each built structure additionally carries a *discretized*
  signature (``_engine_key``, raw window endpoints replaced by integer
  slice windows) that the solve layer memoizes solutions under: RET
  bisection probes whose ``b`` values differ below slice granularity
  rebuild the (fragment-reusing) structure but share one LP solution.
* **Per-job fragment cache** — the capacity block's sparsity pattern for
  one job depends only on its paths' edge ids and its window span, not
  on where the window sits or where its columns start (see
  :func:`repro.lp.model.job_capacity_fragment`).  Structures that miss
  the exact cache (a new grid, a shifted window) still reuse every
  unchanged per-job segment instead of re-broadcasting it.

Cache invalidation is by construction: *every* input participates in the
key — per-job ``(id, endpoints, size, window, arrival, weight)`` tuples,
the grid's boundary array, ``k_paths``, the resolved paths' edge ids and
the capacity profile's matrix bytes — so changing any of them can only
miss, never serve a stale layout.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Mapping, Sequence

from ..errors import ValidationError
from ..lp.model import ProblemStructure
from ..network.paths import Path
from ..obs import NULL_TELEMETRY, Telemetry
from ..timegrid import TimeGrid
from ..workload.jobs import JobSet
from .delta import patch_structure
from .topology import TopologyLayer

__all__ = ["LayoutLayer", "FragmentCache"]

Node = Hashable

#: How many most-recent cached structures a near-miss tries as donors.
#: A simulator epoch leaves at most a handful of live structures (RET
#: probes plus the scheduling grid), so the previous epoch's donors are
#: always within this window.
MAX_PATCH_DONORS = 6


class FragmentCache(OrderedDict):
    """LRU-bounded mapping for per-job capacity fragments.

    Fragments are small (three int64 arrays per ``(paths, span)`` key)
    but a long simulation over a heavy workload mints new keys every
    epoch — unbounded growth contradicts the million-job north star the
    same way the old unbounded solution memo did.  ``get`` refreshes
    recency; inserting past ``max_entries`` evicts the stalest entry.
    """

    def __init__(self, max_entries: int) -> None:
        super().__init__()
        if max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)

    def get(self, key, default=None):
        try:
            value = super().__getitem__(key)
        except KeyError:
            return default
        self.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        while len(self) > self.max_entries:
            self.popitem(last=False)


def _jobs_key(jobs: JobSet) -> tuple:
    """Everything about the jobs that can change the built structure."""
    return tuple(
        (j.id, j.source, j.dest, j.size, j.start, j.end, j.arrival, j.weight)
        for j in jobs
    )


def _jobs_layout_key(jobs: JobSet, grid: TimeGrid) -> tuple:
    """What the *discretized* layout can observe about the jobs.

    Raw window endpoints are replaced by their integer slice windows on
    ``grid``: two job sets whose endpoints differ below slice
    granularity (RET bisection probes, above all) produce bit-identical
    LPs, and this key is how the solve layer knows it.
    """
    out = []
    for j in jobs:
        window = grid.window_slices(j.start, j.end)
        out.append(
            (j.id, j.source, j.dest, j.size, window.start, window.stop,
             j.arrival, j.weight)
        )
    return tuple(out)


def _paths_key(path_sets: Mapping[tuple[Node, Node], Sequence[Path]]) -> tuple:
    """Resolved-route signature: per pair, the ordered path edge ids."""
    return tuple(
        sorted(
            (
                (pair, tuple(tuple(p.edge_ids) for p in pset))
                for pair, pset in path_sets.items()
            ),
            key=lambda item: (str(item[0][0]), str(item[0][1])),
        )
    )


def _profile_key(profile) -> tuple | None:
    """Capacity-profile signature (grid + matrix content), or None."""
    if profile is None:
        return None
    return (profile.grid, profile.matrix.tobytes())


class LayoutLayer:
    """Structure builder with exact-signature and per-job-fragment reuse.

    Parameters
    ----------
    topology:
        The :class:`~repro.engine.topology.TopologyLayer` below; supplies
        the network, ``k_paths`` and cached path resolution.
    telemetry:
        Optional collector: exact hits count as ``structure_cache_hits``,
        real builds as ``cold_builds`` (fragment-level reuse counts
        inside :class:`~repro.lp.model.ProblemStructure` as
        ``layout_fragment_hits`` / ``layout_fragment_builds``).
    cache_structures, cache_fragments:
        Independently disable either reuse level (the from-scratch
        baseline :meth:`repro.engine.ModelEngine.cold` turns both off).
        Structure caching also enables delta *patching*: an exact-cache
        miss tries the most recent cached structures as donors
        (:func:`repro.engine.delta.patch_structure`) before paying a
        cold build, counted as ``structure_patch_hits``.
    max_structures:
        LRU bound on retained structures (matrices are the bulk of an
        instance's memory; old epochs must not accumulate forever).
    max_fragments:
        LRU bound on retained per-job fragments (see
        :class:`FragmentCache`).
    """

    def __init__(
        self,
        topology: TopologyLayer,
        telemetry: Telemetry | None = None,
        cache_structures: bool = True,
        cache_fragments: bool = True,
        max_structures: int = 64,
        max_fragments: int = 512,
    ) -> None:
        if max_structures < 1:
            raise ValidationError(
                f"max_structures must be >= 1, got {max_structures}"
            )
        self.topology = topology
        self.telemetry = telemetry or NULL_TELEMETRY
        self.cache_structures = bool(cache_structures)
        self.cache_fragments = bool(cache_fragments)
        self.max_structures = int(max_structures)
        self.max_fragments = int(max_fragments)
        self._structures: OrderedDict[tuple, ProblemStructure] = OrderedDict()
        self._fragments: FragmentCache | None = (
            FragmentCache(max_fragments) if self.cache_fragments else None
        )

    @property
    def network(self):
        return self.topology.network

    def structure(
        self,
        jobs: JobSet,
        grid: TimeGrid,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None = None,
        capacity_profile=None,
        banned_edges: frozenset[int] = frozenset(),
    ) -> ProblemStructure:
        """A structure for the instance, reused when the signature matches.

        ``path_sets=None`` resolves routes through the topology layer
        (honouring ``banned_edges``); an explicit mapping — e.g. the
        fault-aware routes an epoch already computed — short-circuits it
        and participates in the cache key by content, not identity.
        """
        if path_sets is None:
            path_sets = self.topology.path_sets(
                jobs.od_pairs(), banned_edges=banned_edges
            )
        key = None
        shared = (
            grid,
            self.topology.k_paths,
            _paths_key(path_sets),
            _profile_key(capacity_profile),
        )
        if self.cache_structures:
            # Exact key: the structure object (which carries the raw
            # jobs) is reused only for a byte-for-byte identical request.
            key = (_jobs_key(jobs), *shared)
            hit = self._structures.get(key)
            if hit is not None:
                self._structures.move_to_end(key)
                self.telemetry.count("structure_cache_hits")
                return hit
        built = None
        if key is not None and capacity_profile is None:
            built = self._try_patch(jobs, grid, path_sets)
        if built is not None:
            self.telemetry.count("structure_patch_hits")
        else:
            built = ProblemStructure(
                self.network,
                jobs,
                grid,
                self.topology.k_paths,
                path_sets=path_sets,
                capacity_profile=capacity_profile,
                telemetry=self.telemetry,
                fragment_cache=self._fragments,
            )
            self.telemetry.count("cold_builds")
        if key is not None:
            # Solve-memo key: discretized windows instead of raw floats,
            # so probes that only differ below slice granularity share
            # their (provably identical) LP solutions.
            built._engine_key = (_jobs_layout_key(jobs, grid), *shared)
            self._structures[key] = built
            while len(self._structures) > self.max_structures:
                self._structures.popitem(last=False)
        return built

    def _try_patch(
        self,
        jobs: JobSet,
        grid: TimeGrid,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]],
    ) -> ProblemStructure | None:
        """Near-miss path: patch from the freshest compatible donor.

        Tries the :data:`MAX_PATCH_DONORS` most recently used cached
        structures; the first donor the patcher accepts wins.  ``None``
        sends the caller to the cold build (and its validation errors).
        """
        if not self._structures:
            return None
        tried = 0
        with self.telemetry.span("structure_patch"):
            for donor in reversed(self._structures.values()):
                patched = patch_structure(
                    donor,
                    jobs,
                    grid,
                    self.topology.k_paths,
                    path_sets,
                    fragment_cache=self._fragments,
                    telemetry=self.telemetry,
                )
                if patched is not None:
                    return patched
                tried += 1
                if tried >= MAX_PATCH_DONORS:
                    return None
        return None

    def clear(self) -> None:
        """Drop every cached structure and fragment."""
        self._structures.clear()
        if self._fragments is not None:
            self._fragments.clear()

    def __repr__(self) -> str:
        frags = len(self._fragments) if self._fragments is not None else 0
        return (
            f"LayoutLayer(structures={len(self._structures)}, "
            f"fragments={frags})"
        )
