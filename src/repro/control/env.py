"""Gym-style environment over the simulator's epoch-control loop.

:class:`SchedulingEnv` exposes :meth:`Simulation.controller
<repro.sim.simulator.Simulation.controller>`'s paused generator as the
classic ``reset``/``step`` episode interface: each step is one
scheduling epoch, the action is an
:class:`~repro.control.kernel.EpochAction` (alpha start/cap, ``k_paths``,
admission policy, solve-budget split), and the reward is the epoch's
delivered volume plus a terminal deadline-rate bonus.  Sending ``None``
as the action defers to the simulation's attached
:class:`~repro.control.policies.ControlPolicy`, so the env doubles as a
rollout harness for policies written against the kernel contract.

The env does not reimplement any controller logic — it drives the very
same generator :meth:`Simulation.run` drives, so an episode played with
all-``None`` actions is bit-for-bit the plain simulation.
"""

from __future__ import annotations

import math

from ..errors import ValidationError
from .kernel import EpochAction, EpochObservation, EpochOutcome
from .policies import ControlPolicy, FixedPolicy

__all__ = ["SchedulingEnv"]


class SchedulingEnv:
    """Reset/step episodes over :class:`~repro.sim.simulator.Simulation`.

    Parameters
    ----------
    network, jobs:
        The instance an episode simulates.
    horizon:
        Simulated time span per episode (``None``: the simulator's
        generous default — latest deadline plus RET headroom).
    policy:
        The fallback :class:`~repro.control.policies.ControlPolicy`
        consulted when :meth:`step` is sent ``None``.  Also what forces
        the kernel to build observations at all, so it must not be
        ``None``; defaults to :class:`FixedPolicy`.
    deadline_weight:
        Scale of the terminal bonus ``deadline_weight * deadline_rate``
        added to the last step's reward (the deadline rate is the share
        of admitted jobs finished by their original deadline).
    sim_kwargs:
        Forwarded to the :class:`~repro.sim.simulator.Simulation`
        constructor (``k_paths``, ``fault_schedule``,
        ``verify_epochs``, ...).

    Episode protocol
    ----------------
    ``reset()`` returns the first decision point's
    :class:`~repro.control.kernel.EpochObservation`, or ``None`` when
    the episode finished without ever reaching one (no schedulable
    work); ``step(action)`` returns ``(obs, reward, done, info)`` where
    ``obs`` is the next decision point (``None`` once done), ``info``
    carries the step's :class:`~repro.control.kernel.EpochOutcome`, and
    the terminal ``info`` adds the full
    :class:`~repro.sim.simulator.SimulationResult` under ``"result"``.
    """

    def __init__(
        self,
        network,
        jobs,
        *,
        horizon: float | None = None,
        policy: ControlPolicy | None = None,
        deadline_weight: float = 1.0,
        **sim_kwargs,
    ) -> None:
        from ..sim.simulator import Simulation

        if "control_policy" in sim_kwargs:
            raise ValidationError(
                "pass the fallback policy as SchedulingEnv(policy=...), "
                "not control_policy="
            )
        self.network = network
        self.jobs = jobs
        self.horizon = horizon
        self.policy = policy if policy is not None else FixedPolicy()
        self.deadline_weight = float(deadline_weight)
        self._sim_kwargs = dict(sim_kwargs)
        self._sim_cls = Simulation
        self._kernel = None
        self._steps = None
        self._pending: EpochObservation | None = None
        self._done = True
        self.result = None

    # ------------------------------------------------------------------
    @property
    def kernel(self):
        """The live run's :class:`~repro.control.kernel.EpochKernel`."""
        return self._kernel

    @property
    def base_action(self) -> EpochAction:
        """The action space's identity element (the driver's base knobs)."""
        if self._kernel is None:
            raise ValidationError("call reset() before base_action")
        return self._kernel.base_action

    @property
    def done(self) -> bool:
        return self._done

    # ------------------------------------------------------------------
    def reset(self) -> EpochObservation | None:
        """Start a fresh episode; returns the first decision point."""
        sim = self._sim_cls(
            self.network, control_policy=self.policy, **self._sim_kwargs
        )
        self._kernel, self._steps = sim.controller(self.jobs, self.horizon)
        self._done = False
        self.result = None
        self._pending = self._advance(None)
        return self._pending

    def step(
        self, action: EpochAction | None = None
    ) -> tuple[EpochObservation | None, float, bool, dict]:
        """Apply one epoch's knobs; play the epoch; pause at the next.

        ``action=None`` defers to the env's fallback policy (via the
        kernel's own decide path).
        """
        if self._done or self._steps is None:
            raise ValidationError(
                "episode is done (or never started); call reset()"
            )
        kind, outcome = self._send(action)
        if kind != "outcome":  # pragma: no cover - contract guard
            raise ValidationError(
                f"controller yielded {kind!r} where an outcome was due"
            )
        reward = outcome.delivered
        obs = self._advance(None)
        info: dict = {"outcome": outcome}
        if self._done:
            info["result"] = self.result
            rate = self.result.deadline_rate
            if not math.isnan(rate):
                reward += self.deadline_weight * rate
        self._pending = obs
        return obs, reward, self._done, info

    # ------------------------------------------------------------------
    def _send(self, payload):
        try:
            return self._steps.send(payload)
        except StopIteration as stop:
            self._done = True
            self.result = stop.value
            self._steps = None
            return "stop", None

    def _advance(self, payload) -> EpochObservation | None:
        """Run to the next decide pause (or to the end of the episode)."""
        kind, value = self._send(payload)
        if kind == "stop":
            return None
        if kind != "decide":  # pragma: no cover - contract guard
            raise ValidationError(
                f"controller yielded {kind!r} where a decision was due"
            )
        return value
