"""Policy-comparison harness over the fuzz scenario generator.

:func:`compare_policies` sweeps each named baseline policy over
:func:`repro.verify.fuzz.make_scenario` seeds — the same deterministic
generator the verification fuzzer uses — with ``verify_epochs=True``,
so every epoch of every policy run passes the shared invariant checker
or the run dies loudly: policy scores are checker-clean by
construction, never the product of an infeasible plan.

The result object aggregates per-policy delivered volume and deadline
rate and renders both a machine-readable dict (the CLI's
``report.json``) and a human table.  ``repro policy compare`` is a thin
wrapper over this module.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from ..errors import ValidationError
from .policies import POLICY_NAMES, make_policy

__all__ = ["PolicyRunResult", "PolicyComparison", "compare_policies"]


@dataclass(frozen=True)
class PolicyRunResult:
    """One (policy, scenario) cell of the sweep.

    ``delivered`` is the run's total delivered volume;
    ``deadline_rate`` the share of admitted jobs finished by their
    original deadline (NaN when the scenario admitted nothing);
    ``epochs_verified`` the number of per-epoch invariant reports the
    checker produced (every one clean, or the run would have raised).
    """

    policy: str
    seed: int
    description: str
    delivered: float
    deadline_rate: float
    completed: int
    expired: int
    rejected: int
    epochs_verified: int


@dataclass(frozen=True)
class PolicyComparison:
    """The full sweep: one :class:`PolicyRunResult` per policy × seed."""

    runs: tuple[PolicyRunResult, ...]

    def aggregate(self) -> dict[str, dict]:
        """Per-policy totals across the sweep (seed order preserved)."""
        agg: dict[str, dict] = {}
        for run in self.runs:
            a = agg.setdefault(run.policy, {
                "runs": 0,
                "delivered_total": 0.0,
                "deadline_rate_mean": 0.0,
                "_rated_runs": 0,
                "completed": 0,
                "expired": 0,
                "rejected": 0,
            })
            a["runs"] += 1
            a["delivered_total"] += run.delivered
            a["completed"] += run.completed
            a["expired"] += run.expired
            a["rejected"] += run.rejected
            if not math.isnan(run.deadline_rate):
                a["_rated_runs"] += 1
                a["deadline_rate_mean"] += (
                    run.deadline_rate - a["deadline_rate_mean"]
                ) / a["_rated_runs"]
        for a in agg.values():
            if a.pop("_rated_runs") == 0:
                a["deadline_rate_mean"] = float("nan")
        return agg

    def to_dict(self) -> dict:
        """JSON-ready report: per-run rows plus per-policy aggregates."""
        return {
            "runs": [asdict(r) for r in self.runs],
            "aggregate": self.aggregate(),
        }

    def render(self) -> str:
        """Human summary table, best aggregate delivered volume first."""
        agg = self.aggregate()
        order = sorted(
            agg, key=lambda name: agg[name]["delivered_total"], reverse=True
        )
        lines = [
            f"{'policy':<14} {'runs':>4} {'delivered':>12} "
            f"{'deadline%':>9} {'done':>5} {'exp':>4} {'rej':>4}"
        ]
        for name in order:
            a = agg[name]
            rate = a["deadline_rate_mean"]
            rate_s = "  n/a" if math.isnan(rate) else f"{100 * rate:5.1f}"
            lines.append(
                f"{name:<14} {a['runs']:>4} {a['delivered_total']:>12.3f} "
                f"{rate_s:>9} {a['completed']:>5} {a['expired']:>4} "
                f"{a['rejected']:>4}"
            )
        return "\n".join(lines)


def compare_policies(
    policies: tuple[str, ...] | list[str] = POLICY_NAMES,
    seeds: int | tuple[int, ...] | list[int] = 3,
    *,
    k_paths: int = 3,
    horizon_factor: float = 3.0,
    allow_faults: bool = True,
    verify_epochs: bool = True,
) -> PolicyComparison:
    """Sweep baseline policies over deterministic fuzz scenarios.

    Parameters
    ----------
    policies:
        Policy names (see
        :data:`~repro.control.policies.POLICY_NAMES`).
    seeds:
        Either an iterable of :func:`~repro.verify.fuzz.make_scenario`
        seeds or an int ``N`` meaning seeds ``0..N-1``.
    k_paths:
        Candidate paths per OD pair for the base action.
    horizon_factor:
        Horizon = ``horizon_factor * grid.end`` per scenario (headroom
        for RET extensions past the nominal grid).
    allow_faults:
        Whether scenarios may carry fault timelines.
    verify_epochs:
        Run the invariant checker every epoch (on by default; switching
        it off forfeits the checker-clean guarantee and exists only for
        overhead experiments).

    Stochastic policies are seeded per scenario (policy seed = scenario
    seed), so the whole sweep is deterministic.
    """
    from ..sim.simulator import Simulation
    from ..verify.fuzz import make_scenario

    if isinstance(seeds, int):
        if seeds <= 0:
            raise ValidationError(f"need at least one seed, got {seeds}")
        seeds = tuple(range(seeds))
    else:
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise ValidationError("need at least one seed")
    names = tuple(policies)
    if not names:
        raise ValidationError("need at least one policy")

    runs: list[PolicyRunResult] = []
    for seed in seeds:
        scenario = make_scenario(seed, allow_faults=allow_faults)
        horizon = horizon_factor * scenario.grid.end
        for name in names:
            policy = make_policy(name, seed=seed)
            sim = Simulation(
                scenario.network,
                k_paths=k_paths,
                fault_schedule=scenario.fault_schedule,
                verify_epochs=verify_epochs,
                control_policy=policy,
            )
            result = sim.run(scenario.jobs, horizon=horizon)
            runs.append(PolicyRunResult(
                policy=name,
                seed=seed,
                description=scenario.description,
                delivered=result.delivered_volume,
                deadline_rate=result.deadline_rate,
                completed=result.num_completed,
                expired=len(result.by_status("expired")),
                rejected=len(result.by_status("rejected")),
                epochs_verified=len(result.verification),
            ))
    return PolicyComparison(tuple(runs))
