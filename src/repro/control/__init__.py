"""Shared epoch-control kernel and pluggable policy surface.

The paper's controller is one periodic observe → decide → solve →
commit loop; this package owns that loop's contract so the simulator,
the reservation service, and the chaos runner all drive a single
:class:`EpochKernel` instead of three divergent copies.

Layers, bottom up:

* :mod:`~repro.control.kernel` — the kernel itself plus the shared
  epoch primitives (fault cursor, stale-window predicate, used-edge
  extraction, journal header/entry builders) and the
  :class:`EpochObservation` / :class:`EpochAction` /
  :class:`EpochOutcome` dataclasses.
* :mod:`~repro.control.policies` — the :class:`ControlPolicy` protocol
  and the non-learned baselines (:class:`FixedPolicy`,
  :class:`AlphaBanditPolicy`, :class:`LoadReactivePathsPolicy`).
* :mod:`~repro.control.env` — :class:`SchedulingEnv`, the gym-style
  reset/step wrapper over the simulator's paused controller generator.
* :mod:`~repro.control.harness` — :func:`compare_policies`, the
  checker-clean policy sweep behind ``repro policy compare``.
"""

from .kernel import (
    EpochAction,
    EpochKernel,
    EpochObservation,
    EpochOutcome,
    FaultDetection,
    advance_fault_cursor,
    base_action_for,
    service_journal_entry,
    service_journal_header,
    simulation_journal_entry,
    simulation_journal_header,
    used_edges,
    window_closed,
)
from .policies import (
    POLICY_NAMES,
    AlphaBanditPolicy,
    ControlPolicy,
    FixedPolicy,
    LoadReactivePathsPolicy,
    make_policy,
)
from .env import SchedulingEnv
from .harness import PolicyComparison, PolicyRunResult, compare_policies

__all__ = [
    "EpochKernel",
    "EpochAction",
    "EpochObservation",
    "EpochOutcome",
    "FaultDetection",
    "advance_fault_cursor",
    "base_action_for",
    "window_closed",
    "used_edges",
    "simulation_journal_header",
    "simulation_journal_entry",
    "service_journal_header",
    "service_journal_entry",
    "ControlPolicy",
    "FixedPolicy",
    "AlphaBanditPolicy",
    "LoadReactivePathsPolicy",
    "POLICY_NAMES",
    "make_policy",
    "SchedulingEnv",
    "PolicyRunResult",
    "PolicyComparison",
    "compare_policies",
]
