"""Control policies: who picks the epoch knobs the kernel applies.

A :class:`ControlPolicy` is the pluggable half of the
:class:`~repro.control.kernel.EpochKernel` contract: every epoch the
kernel builds an :class:`~repro.control.kernel.EpochObservation`, the
policy's :meth:`~ControlPolicy.decide` returns an
:class:`~repro.control.kernel.EpochAction` (or ``None`` for "keep the
base"), and after the epoch executes :meth:`~ControlPolicy.feedback`
closes the loop with the realized
:class:`~repro.control.kernel.EpochOutcome`.

Three non-learned baselines ship here:

* :class:`FixedPolicy` — returns the driver's configured knobs
  verbatim; byte-identical to running with no policy at all (the
  equivalence tests prove it against pre-refactor golden journals).
* :class:`AlphaBanditPolicy` — an epsilon-greedy bandit over the
  stage-2 fairness ``alpha`` start value (Remark 1's escalation knob):
  arms are candidate starting alphas, reward is the epoch's delivered
  volume.  Deterministic for a fixed seed.
* :class:`LoadReactivePathsPolicy` — a threshold controller that widens
  the candidate path set and solve budget when the backlog is deep and
  narrows both when the system drains, trading solve cost for routing
  freedom exactly when multipath freedom pays.

Policy authoring guide: see ``docs/architecture.md`` ("Control kernel &
policy surface").  The short version: ``decide`` must be a pure
function of the observation plus the policy's own state, never of wall
clocks; derive actions with :func:`dataclasses.replace` from
``obs.base`` so unknobbed fields keep the driver's configuration; and
leave ``journal_safe`` False unless the policy provably returns the
base action every epoch — journaled runs resume without the policy
object, so anything else would break crash+resume identity.
"""

from __future__ import annotations

import random
from dataclasses import replace

from ..errors import ValidationError
from .kernel import EpochAction, EpochObservation, EpochOutcome

__all__ = [
    "ControlPolicy",
    "FixedPolicy",
    "AlphaBanditPolicy",
    "LoadReactivePathsPolicy",
    "POLICY_NAMES",
    "make_policy",
]


class ControlPolicy:
    """Base class / protocol for epoch-knob policies.

    Attributes
    ----------
    name:
        Stable identifier used by the CLI and comparison reports.
    journal_safe:
        Whether a journaled (crash-resumable) run may use this policy.
        Only true when the policy provably returns the base action
        every epoch — a resumed run replays *without* the policy
        object, so any deviation would fork the timeline.
    """

    name = "base"
    journal_safe = False

    def decide(self, obs: EpochObservation) -> EpochAction | None:
        """The epoch's knobs; ``None`` keeps the driver's base action."""
        return None

    def feedback(
        self,
        obs: EpochObservation,
        action: EpochAction,
        outcome: EpochOutcome,
    ) -> None:
        """Learn from the epoch's outcome.  Default: nothing to learn."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class FixedPolicy(ControlPolicy):
    """Today's behaviour as a policy: always the driver's base knobs.

    The identity element of the policy surface — attaching it must not
    change a single journal byte, which is what lets the chaos runner
    keep a policy armed on every crash-resumable target.
    """

    name = "fixed"
    journal_safe = True

    def decide(self, obs: EpochObservation) -> EpochAction | None:
        return obs.base


class AlphaBanditPolicy(ControlPolicy):
    """Epsilon-greedy bandit over the stage-2 ``alpha`` starting value.

    Remark 1 escalates ``alpha`` whenever LPDAR misses the fairness
    floor; starting closer to the eventual fixed point skips escalation
    rounds, but starting too high concedes throughput the instance
    never required.  The bandit learns the trade-off online: each arm
    is a candidate starting alpha, reward is the epoch's delivered
    volume.

    Parameters
    ----------
    arms:
        Candidate ``alpha`` values; each must lie in ``[0, 1]``.
    epsilon:
        Exploration rate in ``[0, 1]``.
    seed:
        Seeds the private :class:`random.Random`, making the whole
        policy trajectory deterministic.
    """

    name = "bandit"

    def __init__(
        self,
        arms: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.5),
        epsilon: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not arms:
            raise ValidationError("bandit needs at least one alpha arm")
        for arm in arms:
            if not 0.0 <= arm <= 1.0:
                raise ValidationError(
                    f"bandit alpha arm must be in [0, 1], got {arm}"
                )
        if not 0.0 <= epsilon <= 1.0:
            raise ValidationError(
                f"epsilon must be in [0, 1], got {epsilon}"
            )
        self.arms = tuple(float(a) for a in arms)
        self.epsilon = float(epsilon)
        self._rng = random.Random(seed)
        self._pulls = [0] * len(self.arms)
        self._value = [0.0] * len(self.arms)
        self._last_arm: int | None = None

    def decide(self, obs: EpochObservation) -> EpochAction | None:
        if self._rng.random() < self.epsilon:
            arm = self._rng.randrange(len(self.arms))
        else:
            # Untried arms first (optimistic), then the best average.
            untried = [i for i, n in enumerate(self._pulls) if n == 0]
            arm = (
                untried[0]
                if untried
                else max(range(len(self.arms)), key=lambda i: self._value[i])
            )
        self._last_arm = arm
        alpha = self.arms[arm]
        return replace(
            obs.base,
            alpha=alpha,
            alpha_max=max(obs.base.alpha_max, alpha),
        )

    def feedback(
        self,
        obs: EpochObservation,
        action: EpochAction,
        outcome: EpochOutcome,
    ) -> None:
        arm = self._last_arm
        if arm is None:
            return
        self._pulls[arm] += 1
        n = self._pulls[arm]
        self._value[arm] += (outcome.delivered - self._value[arm]) / n
        self._last_arm = None


class LoadReactivePathsPolicy(ControlPolicy):
    """Backlog-threshold controller over ``k_paths`` and solve budget.

    A deep backlog is when multipath freedom pays: more candidate paths
    per pair raise the attainable ``Z*`` at the cost of a bigger LP.
    This policy widens the path set (and, when a budget is configured,
    the budget split) above ``high_backlog`` and narrows both below
    ``low_backlog``; in between it keeps the driver's base knobs.

    Parameters
    ----------
    low_backlog, high_backlog:
        Hysteresis thresholds on the number of unfinished jobs.
    k_min, k_max:
        The ``k_paths`` values used below / above the thresholds.
        ``None`` derives them from the base (``max(1, k-1)`` and
        ``k+2``).
    budget_boost:
        ``budget_scale`` applied above ``high_backlog`` (the widened
        instance gets proportionally more solve time).
    """

    name = "load-reactive"

    def __init__(
        self,
        low_backlog: int = 2,
        high_backlog: int = 6,
        k_min: int | None = None,
        k_max: int | None = None,
        budget_boost: float = 1.5,
    ) -> None:
        if low_backlog < 0 or high_backlog < low_backlog:
            raise ValidationError(
                "need 0 <= low_backlog <= high_backlog, got "
                f"low={low_backlog}, high={high_backlog}"
            )
        if budget_boost <= 0:
            raise ValidationError(
                f"budget_boost must be > 0, got {budget_boost}"
            )
        self.low_backlog = int(low_backlog)
        self.high_backlog = int(high_backlog)
        self.k_min = k_min
        self.k_max = k_max
        self.budget_boost = float(budget_boost)

    def decide(self, obs: EpochObservation) -> EpochAction | None:
        base = obs.base
        if obs.backlog > self.high_backlog:
            k = self.k_max if self.k_max is not None else base.k_paths + 2
            return replace(
                base,
                k_paths=max(1, int(k)),
                budget_scale=self.budget_boost,
            )
        if obs.backlog < self.low_backlog:
            k = (
                self.k_min
                if self.k_min is not None
                else max(1, base.k_paths - 1)
            )
            return replace(base, k_paths=max(1, int(k)))
        return base


#: Names the CLI accepts (``repro policy compare --policies ...``).
POLICY_NAMES = ("fixed", "bandit", "load-reactive")


def make_policy(name: str, seed: int = 0) -> ControlPolicy:
    """Build a baseline policy by CLI name (seeded where stochastic)."""
    if name == "fixed":
        return FixedPolicy()
    if name == "bandit":
        return AlphaBanditPolicy(seed=seed)
    if name == "load-reactive":
        return LoadReactivePathsPolicy()
    raise ValidationError(
        f"unknown policy {name!r}; known policies: {', '.join(POLICY_NAMES)}"
    )
