"""The shared epoch-control kernel: one observe→decide→commit contract.

The paper's controller is a single periodic loop — wake up every
``tau``, observe the world, decide this epoch's knobs, solve, commit —
yet the repo grew two independent copies of that loop:
:class:`repro.sim.simulator.Simulation` (the batch simulator) and
:class:`repro.service.core.ReservationService` (the online admission
front-end).  Each carried its own fault detection, stale-window expiry,
crash points, journaling and used-edge bookkeeping.  This module is the
extraction: :class:`EpochKernel` owns the epoch-step contract and the
shared state it advances (virtual time, epoch counter, fault cursor),
and both drivers — plus the chaos runner's sim/serve targets — ride it.

The contract, per epoch:

* :meth:`EpochKernel.observe` assembles an :class:`EpochObservation`
  from kernel state (time, epoch, fault cursor) and driver state
  (backlog, residual volume, queue depth, cache/budget telemetry);
* :meth:`EpochKernel.decide` asks the attached
  :class:`~repro.control.policies.ControlPolicy` for an
  :class:`EpochAction` — the per-epoch knobs (fairness ``alpha`` start
  and escalation cap, path-set size ``k_paths``, admission policy,
  solve-budget split) that the driver applies to its scheduling pass;
* :meth:`EpochKernel.commit` durably records the epoch (journal append
  with the mid-journal torn-write crash point) and
  :meth:`EpochKernel.advance` moves the clock.

With no policy attached (``policy=None``) the kernel short-circuits:
``decide`` returns the driver's configured base action without building
an observation, so the default path pays nothing for the surface.  With
:class:`~repro.control.policies.FixedPolicy` the full contract runs and
the outputs are byte-identical — property-tested against pre-refactor
golden journals in ``tests/test_control_equivalence.py``.

The module-level helpers (:func:`window_closed`, :func:`used_edges`,
:func:`advance_fault_cursor`, the journal header/entry builders) are the
de-duplicated bodies of the methods the two drivers used to copy from
each other; both import them from here now.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from ..errors import ValidationError
from ..faults.events import FaultEvent, LinkDown, WavelengthDegrade
from ..obs import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..faults.schedule import FaultSchedule
    from ..lp.solver import SolveBudget
    from ..recovery.crash import CrashInjector
    from ..recovery.journal import EpochJournal

__all__ = [
    "EpochAction",
    "EpochObservation",
    "EpochOutcome",
    "EpochKernel",
    "FaultDetection",
    "base_action_for",
    "advance_fault_cursor",
    "window_closed",
    "used_edges",
    "solver_config_dict",
    "simulation_journal_header",
    "simulation_journal_entry",
    "service_journal_header",
    "service_journal_entry",
]

_EPS = 1e-9

#: Telemetry counters snapshotted into every observation so adaptive
#: policies can react to engine-reuse behaviour (cache starvation is a
#: signal that ``k_paths`` churn is defeating the delta layer).
CACHE_COUNTERS = (
    "structure_cache_hits",
    "structure_patch_hits",
    "cold_builds",
    "warm_starts",
    "ret_witness_hits",
)


# ----------------------------------------------------------------------
# The action / observation / outcome triple
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EpochAction:
    """One epoch's control knobs — what ``decide`` returns.

    Attributes
    ----------
    alpha:
        Stage-2 fairness slack to *start* the epoch's escalation at.
    alpha_step, alpha_max:
        Remark-1 escalation step and cap for this epoch.
    k_paths:
        Candidate paths per origin-destination pair.
    admission_policy:
        Overload action for the batch simulator (``"reject"``,
        ``"reduce"`` or ``"extend"``); the reservation service has its
        own admission pipeline and ignores this knob.
    rejection:
        Admission algorithm variant under ``"reject"``.
    budget_scale:
        Multiplier on the configured per-epoch solve budget (``1.0``
        keeps the configured allowance; ``0.5`` halves it, ``2.0``
        doubles it).  Ignored when the driver runs without a budget.
    """

    alpha: float = 0.1
    alpha_step: float = 0.1
    alpha_max: float = 0.5
    k_paths: int = 4
    admission_policy: str = "reduce"
    rejection: str = "prefix"
    budget_scale: float = 1.0

    def validate(self) -> "EpochAction":
        """Raise :class:`ValidationError` on out-of-range knobs."""
        if not 0.0 <= self.alpha <= 1.0:
            raise ValidationError(f"action alpha must be in [0, 1], got {self.alpha}")
        if self.alpha_step < 0 or self.alpha_max < self.alpha or self.alpha_max > 1.0:
            raise ValidationError(
                "action needs 0 <= alpha_step and alpha <= alpha_max <= 1, "
                f"got step={self.alpha_step}, max={self.alpha_max}"
            )
        if self.k_paths < 1:
            raise ValidationError(f"action k_paths must be >= 1, got {self.k_paths}")
        if self.admission_policy not in ("reject", "reduce", "extend"):
            raise ValidationError(
                f"unknown admission policy {self.admission_policy!r}"
            )
        if self.rejection not in ("prefix", "greedy"):
            raise ValidationError(f"unknown rejection variant {self.rejection!r}")
        if self.budget_scale <= 0:
            raise ValidationError(
                f"action budget_scale must be > 0, got {self.budget_scale}"
            )
        return self


@dataclass(frozen=True)
class EpochObservation:
    """What the controller can see at a decision point.

    Everything here is cheap, deterministic state the kernel or driver
    already tracks — no extra solves are paid to observe.

    Attributes
    ----------
    now, epoch:
        Virtual time and epoch index of the decision.
    backlog:
        Unfinished admitted jobs / reservations.
    total_remaining:
        Undelivered volume across the backlog, in job units.
    queue_depth:
        Requests waiting outside the admitted set (future arrivals for
        the simulator, pending submissions for the service).
    delivered_volume:
        Cumulative volume delivered so far.
    fault_idx:
        Position of the fault cursor in the fault timeline.
    failed_edges:
        Directed edges currently failed (0 when no fault schedule).
    overloaded:
        The previous scheduling pass's overload classification
        (``None`` before the first pass).
    last_zstar:
        The previous pass's maximum concurrent throughput ``Z*``.
    budget_wall_s:
        Configured per-epoch solve budget in seconds (``None`` without
        a budget).
    cache:
        Snapshot of the engine-reuse telemetry counters
        (:data:`CACHE_COUNTERS`).
    base:
        The driver's configured knobs — what
        :class:`~repro.control.policies.FixedPolicy` returns verbatim.
    """

    now: float
    epoch: int
    backlog: int
    total_remaining: float
    queue_depth: int
    delivered_volume: float
    fault_idx: int
    failed_edges: int
    overloaded: bool | None
    last_zstar: float | None
    budget_wall_s: float | None
    cache: dict
    base: EpochAction


@dataclass(frozen=True)
class EpochOutcome:
    """What one epoch's pass achieved — the policy's feedback signal.

    Attributes
    ----------
    epoch:
        The epoch the outcome belongs to.
    delivered:
        Volume delivered during the epoch (the step reward the
        gym-style environment exposes).
    completed:
        Jobs that finished during the epoch.
    expired:
        Jobs whose windows closed undelivered during the epoch.
    zstar:
        The pass's ``Z*`` (``None`` when nothing was scheduled).
    overloaded:
        The pass's overload classification.
    degraded:
        Whether the solve-budget degradation ladder fired.
    """

    epoch: int
    delivered: float = 0.0
    completed: int = 0
    expired: int = 0
    zstar: float | None = None
    overloaded: bool | None = None
    degraded: bool = False


@dataclass(frozen=True)
class FaultDetection:
    """One epoch boundary's worth of newly struck fault events.

    ``events`` preserves timeline order (downs, degrades *and*
    repairs); ``affected`` collects the directed edge ids of capacity
    *lost* (downs and degrades only — a repair restores capacity and
    bans nothing).
    """

    events: tuple[FaultEvent, ...]
    affected: frozenset[int]


def advance_fault_cursor(
    fault_schedule: "FaultSchedule", fault_idx: int, now: float
) -> tuple[int, FaultDetection]:
    """Advance past every fault event at or before ``now``.

    Returns the new cursor position and the detection record.  This is
    the shared core of the two drivers' fault detection: the simulator
    additionally translates ``events`` into its detection event log
    (``LinkFailed`` / ``LinkDegraded`` / ``LinkRestored``), the service
    uses ``affected`` to void broken commitments.
    """
    events: list[FaultEvent] = []
    affected: set[int] = set()
    while (
        fault_idx < len(fault_schedule.events)
        and fault_schedule.events[fault_idx].time <= now + _EPS
    ):
        ev = fault_schedule.events[fault_idx]
        events.append(ev)
        if isinstance(ev, (LinkDown, WavelengthDegrade)):
            affected.update(fault_schedule.edges_of(ev))
        fault_idx += 1
    return fault_idx, FaultDetection(tuple(events), frozenset(affected))


def window_closed(
    start: float, end: float, now: float, slice_length: float
) -> bool:
    """Whether ``[max(start, now), end]`` can no longer hold one slice.

    The single stale-window predicate both drivers share.  The callers
    apply it to different deadlines — the simulator to the *effective*
    (possibly RET-extended) end time, the service to the committed
    job's end — and ``tests/test_control.py`` pins each caller's
    semantics explicitly.
    """
    return end - max(start, now) < slice_length - _EPS


def used_edges(structure, x, tol: float) -> dict:
    """Edge ids each job's schedule actually uses, keyed by raw job id.

    ``tol`` is the caller's volume tolerance (the simulator's is looser
    than the service's); entries below it are ignored.
    """
    x = np.asarray(x)
    used: dict = {}
    for c in np.flatnonzero(x > tol):
        i = int(structure.col_job[c])
        path = structure.paths[i][int(structure.col_path[c])]
        used.setdefault(structure.jobs[i].id, set()).update(path.edge_ids)
    return {job_id: frozenset(eids) for job_id, eids in used.items()}


def solver_config_dict(solve_budget, resilience) -> dict:
    """The journal-header fragment describing the solve configuration."""
    return {
        "solve_budget": (
            {
                "wall_time_s": solve_budget.wall_time_s,
                "min_backend_time_s": solve_budget.min_backend_time_s,
            }
            if solve_budget is not None
            else None
        ),
        "resilience": (
            asdict(resilience) if resilience is not None else None
        ),
    }


# ----------------------------------------------------------------------
# Journal header / entry builders (moved verbatim from the drivers)
# ----------------------------------------------------------------------
def simulation_journal_header(
    *,
    network,
    jobs,
    horizon: float,
    tau: float,
    slice_length: float,
    policy: str,
    k_paths: int,
    alpha: float,
    ret_b_max: float,
    ret_delta: float,
    rejection: str,
    verify_epochs: bool,
    verify_solutions: bool,
    warm_start: bool,
    planner: str,
    solve_budget,
    resilience,
    fault_schedule,
) -> dict:
    """The simulator journal's immutable run description (first line)."""
    from ..serialization import (
        fault_events_to_list,
        jobs_to_dict,
        network_to_dict,
    )

    return {
        "network": network_to_dict(network),
        "jobs": jobs_to_dict(jobs)["jobs"],
        "horizon": float(horizon),
        "config": {
            "tau": tau,
            "slice_length": slice_length,
            "policy": policy,
            "k_paths": k_paths,
            "alpha": alpha,
            "ret_b_max": ret_b_max,
            "ret_delta": ret_delta,
            "rejection": rejection,
            "verify_epochs": verify_epochs,
            "verify_solutions": verify_solutions,
            "warm_start": warm_start,
            "planner": planner,
            **solver_config_dict(solve_budget, resilience),
        },
        "faults": (
            fault_events_to_list(fault_schedule.events)
            if fault_schedule is not None
            else None
        ),
    }


def simulation_journal_entry(
    order: list,
    records: Mapping,
    now: float,
    epoch: int,
    fault_idx: int,
    edge_map: Mapping,
    new_events: Iterable,
) -> dict:
    """One committed-epoch record: the simulator's full mutable state."""
    return {
        "epoch": int(epoch),
        "now": float(now),
        "fault_idx": int(fault_idx),
        "records": [
            {
                "job": records[i].job.id,
                "status": records[i].status,
                "remaining": records[i].remaining,
                "effective_end": records[i].effective_end,
                "completion_time": records[i].completion_time,
            }
            for i in order
        ],
        "used_edges": [
            [job_id, sorted(int(e) for e in edges)]
            for job_id, edges in sorted(
                edge_map.items(), key=lambda kv: str(kv[0])
            )
        ],
        "events": [
            {"type": type(ev).__name__, **asdict(ev)} for ev in new_events
        ],
    }


def service_journal_header(
    *,
    network,
    tau: float,
    slice_length: float,
    k_paths: int,
    queue_limit: int,
    rate: float,
    burst: float,
    ret_b_max: float,
    ret_delta: float,
    renegotiate_limit: int,
    warm_start: bool,
    verify_solutions: bool,
    solve_budget,
    resilience,
    fault_schedule,
) -> dict:
    """The service batch journal's immutable run description."""
    from ..serialization import fault_events_to_list, network_to_dict

    config = {
        "tau": tau,
        "slice_length": slice_length,
        "k_paths": k_paths,
        "queue_limit": queue_limit,
        "rate": rate,
        "burst": burst,
        "ret_b_max": ret_b_max,
        "ret_delta": ret_delta,
        "renegotiate_limit": renegotiate_limit,
        "warm_start": warm_start,
        "verify_solutions": verify_solutions,
        **solver_config_dict(solve_budget, resilience),
    }
    return {
        "service": True,
        "network": network_to_dict(network),
        "config": config,
        "faults": (
            fault_events_to_list(fault_schedule.events)
            if fault_schedule is not None
            else None
        ),
    }


def service_journal_entry(
    *,
    epoch: int,
    now: float,
    fault_idx: int,
    bucket_tokens: float,
    decisions: list,
    transitions: list,
    book,
    internal: list,
) -> dict:
    """One committed-tick record: decisions, transitions, live residuals."""
    return {
        "epoch": int(epoch),
        "now": float(now),
        "fault_idx": int(fault_idx),
        "bucket_tokens": float(bucket_tokens),
        # The enriched ledger dicts (accepts carry endpoints/size):
        # resume rebuilds the ledger byte-for-byte from these.
        "decisions": [
            dict(book.decided(str(d.request_id))) for d in decisions
        ],
        "transitions": transitions,
        "active": [
            [key, res.remaining, sorted(res.used_edges)]
            for key, res in sorted(book.reservations.items())
            if res.status == "accepted" and not res.done
        ],
        "internal": list(internal),
    }


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------
@dataclass
class EpochKernel:
    """Shared epoch-step state machine for every periodic controller.

    One instance per run.  The kernel owns the loop-invariant epoch
    state (virtual time ``now``, ``epoch`` counter, ``fault_idx``
    cursor), the per-epoch contract (``observe`` / ``decide`` /
    ``commit`` / ``advance``) and the cross-cutting hooks the drivers
    used to duplicate: crash points, solve-budget restarts, fault
    detection with carried-plan invalidation, journal commits.

    Parameters
    ----------
    tau, slice_length:
        The epoch period and scheduling-grid granularity.
    base_action:
        The driver's configured knobs; ``decide`` returns it unchanged
        when no policy is attached, and policies receive it inside the
        observation (``obs.base``).
    policy:
        Optional :class:`~repro.control.policies.ControlPolicy`.
        ``None`` short-circuits the decide path entirely.
    fault_schedule, crash_injector, solve_budget, engine, telemetry:
        The shared infrastructure the kernel advances or fires on the
        drivers' behalf.  ``engine`` is only used to invalidate carried
        plans when a fault strikes.
    now, epoch, fault_idx:
        Initial state; ``resume`` paths seed these from the journal.
    """

    tau: float
    slice_length: float
    base_action: EpochAction
    policy: object | None = None
    fault_schedule: object | None = None
    crash_injector: object | None = None
    solve_budget: object | None = None
    engine: object | None = None
    telemetry: Telemetry = NULL_TELEMETRY
    now: float = 0.0
    epoch: int = 0
    fault_idx: int = 0
    #: Cumulative counters for cheap observations.
    delivered_volume: float = 0.0
    last_zstar: float | None = None
    last_overloaded: bool | None = None
    _cache_totals: dict = field(default_factory=dict, repr=False)

    # -- crash points ---------------------------------------------------
    def crash_point(self, point: str, epoch: int | None = None) -> None:
        """Fire the crash injector if this is its ``(point, epoch)``."""
        ci = self.crash_injector
        e = self.epoch if epoch is None else epoch
        if ci is not None and ci.should_fire(point, e):
            ci.fire(point, e)

    # -- budget ---------------------------------------------------------
    def restart_budget(self) -> None:
        """Give the epoch a fresh solve allowance, if one is configured."""
        if self.solve_budget is not None:
            self.solve_budget.restart()

    def budget_for(self, action: EpochAction):
        """The epoch's budget under the action's split.

        ``budget_scale == 1.0`` returns the configured budget object
        itself (restarted by :meth:`restart_budget`), so the default
        path is untouched; any other scale builds a fresh
        :class:`~repro.lp.solver.SolveBudget` for this epoch only.
        """
        if self.solve_budget is None or action.budget_scale == 1.0:
            return self.solve_budget
        from ..lp.solver import SolveBudget

        budget = SolveBudget(
            self.solve_budget.wall_time_s * action.budget_scale,
            min_backend_time_s=self.solve_budget.min_backend_time_s,
        )
        budget.restart()
        return budget

    # -- faults ---------------------------------------------------------
    def detect_faults(self, now: float | None = None) -> FaultDetection:
        """Advance the fault cursor; invalidate carried plans on strikes.

        Returns the newly seen events and the affected (lost-capacity)
        edges.  Without a fault schedule this is a constant-time no-op.
        """
        if self.fault_schedule is None:
            return FaultDetection((), frozenset())
        t = self.now if now is None else now
        self.fault_idx, detection = advance_fault_cursor(
            self.fault_schedule, self.fault_idx, t
        )
        if detection.affected and self.engine is not None:
            # Carried plans routed before the fault are poor witnesses
            # after it: their feasibility certificates were built on the
            # pre-fault route set.
            self.engine.invalidate_carried()
        return detection

    # -- observe / decide / feedback ------------------------------------
    @property
    def wants_observation(self) -> bool:
        """Whether ``decide`` needs a real observation built."""
        return self.policy is not None

    def observe(
        self,
        *,
        backlog: int = 0,
        total_remaining: float = 0.0,
        queue_depth: int = 0,
    ) -> EpochObservation | None:
        """Assemble the decision-point observation (``None`` when unused)."""
        if not self.wants_observation:
            return None
        failed = 0
        if self.fault_schedule is not None:
            failed = len(self.fault_schedule.failed_edges_at(self.now))
        cache = {}
        if self.telemetry.enabled:
            for name in CACHE_COUNTERS:
                cache[name] = float(self.telemetry.counters.get(name, 0.0))
        return EpochObservation(
            now=self.now,
            epoch=self.epoch,
            backlog=int(backlog),
            total_remaining=float(total_remaining),
            queue_depth=int(queue_depth),
            delivered_volume=self.delivered_volume,
            fault_idx=self.fault_idx,
            failed_edges=failed,
            overloaded=self.last_overloaded,
            last_zstar=self.last_zstar,
            budget_wall_s=(
                self.solve_budget.wall_time_s
                if self.solve_budget is not None
                else None
            ),
            cache=cache,
            base=self.base_action,
        )

    def decide(self, obs: EpochObservation | None) -> EpochAction:
        """The policy's action for this epoch (base action without one)."""
        if self.policy is None or obs is None:
            return self.base_action
        action = self.policy.decide(obs)
        if action is None:
            return self.base_action
        return action.validate()

    def feedback(
        self,
        obs: EpochObservation | None,
        action: EpochAction,
        outcome: EpochOutcome,
    ) -> None:
        """Close the loop: outcome accounting plus the policy's update."""
        self.delivered_volume += outcome.delivered
        if outcome.zstar is not None:
            self.last_zstar = outcome.zstar
            self.last_overloaded = outcome.overloaded
        if self.policy is not None and obs is not None:
            self.policy.feedback(obs, action, outcome)

    # -- commit / advance -----------------------------------------------
    def commit(
        self,
        journal: "EpochJournal | None",
        entry: dict | None,
        *,
        crash_epoch: int | None = None,
    ) -> bool:
        """Durably record one epoch; returns whether a line was written.

        ``crash_epoch`` arms the simulator's ``mid-journal`` crash
        point: the entry is first written *torn* (truncated mid-line),
        the injector fires, and — when it does not actually kill the
        process — the intact line is appended over it, exactly as the
        pre-kernel drivers did.
        """
        if journal is None or entry is None:
            return False
        ci = self.crash_injector
        if (
            crash_epoch is not None
            and ci is not None
            and ci.should_fire("mid-journal", crash_epoch)
        ):
            journal.append_torn(entry)
            ci.fire("mid-journal", crash_epoch)
        journal.append(entry)
        self.telemetry.count("journal_commits")
        return True

    def advance(self, to: float | None = None) -> None:
        """Move the clock one epoch forward (or jump to ``to``)."""
        if to is None:
            self.now += self.tau
            self.epoch += 1
        else:
            self.now = float(to)
            self.epoch = int(round(self.now / self.tau))

    # -- telemetry ------------------------------------------------------
    def cache_delta(self) -> dict:
        """Per-epoch delta of the engine-reuse counters (telemetry only)."""
        delta = {}
        for name in CACHE_COUNTERS:
            total = self.telemetry.counters.get(name, 0.0)
            delta[name] = total - self._cache_totals.get(name, 0.0)
            self._cache_totals[name] = total
        return delta


def base_action_for(
    *,
    alpha: float,
    k_paths: int,
    admission_policy: str = "reduce",
    rejection: str = "prefix",
) -> EpochAction:
    """The :class:`EpochAction` mirroring a driver's configured knobs.

    ``alpha_step`` / ``alpha_max`` mirror the
    :class:`~repro.core.scheduler.Scheduler` constructor defaults the
    drivers rely on; an action equal to the base is the signal that the
    prebuilt scheduler can be reused unchanged.
    """
    return EpochAction(
        alpha=alpha,
        alpha_step=0.1,
        alpha_max=0.5,
        k_paths=k_paths,
        admission_policy=admission_policy,
        rejection=rejection,
        budget_scale=1.0,
    )
