"""Typed exceptions used across the library.

The library never signals failure through sentinel return values: every
error condition a caller may want to handle programmatically is raised as
one of the exception classes below, all rooted at :class:`ReproError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "SolverError",
    "InfeasibleProblemError",
    "UnboundedProblemError",
    "ScheduleError",
    "BudgetExceededError",
    "JournalError",
    "JournalLockedError",
    "JournalWriteError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ValidationError(ReproError, ValueError):
    """Invalid user input: malformed job, graph, grid or parameter."""


class SolverError(ReproError, RuntimeError):
    """The underlying LP/MILP solver failed for a non-modelling reason.

    This wraps unexpected HiGHS statuses (numerical trouble, iteration
    limits) as opposed to the well-defined modelling outcomes captured by
    :class:`InfeasibleProblemError` and :class:`UnboundedProblemError`.

    When raised by the resilient solve chain (``solve_lp`` with a
    :class:`~repro.lp.solver.SolveResilience`), the error also carries
    which backends were tried and how many retries were spent, so callers
    and telemetry can tell a first-shot failure from an exhausted chain.
    """

    def __init__(
        self,
        message: str,
        status: int | None = None,
        backend: str | None = None,
        retries: int = 0,
        backends_tried: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        #: Raw status code reported by the backend, when available.
        self.status = status
        #: Backend that produced the final failure, when known.
        self.backend = backend
        #: Number of retry attempts the solve chain spent before giving up.
        self.retries = retries
        #: Every backend the solve chain attempted, in order.
        self.backends_tried = backends_tried


class InfeasibleProblemError(SolverError):
    """The optimization problem admits no feasible solution."""

    def __init__(self, message: str = "problem is infeasible") -> None:
        super().__init__(message, status=2)


class UnboundedProblemError(SolverError):
    """The optimization problem is unbounded."""

    def __init__(self, message: str = "problem is unbounded") -> None:
        super().__init__(message, status=3)


class ScheduleError(ReproError, RuntimeError):
    """A scheduling algorithm could not produce a valid schedule.

    Raised, for example, when Algorithm 2 (RET) exhausts ``b_max`` without
    finding an end-time extension under which every job completes.
    """


class BudgetExceededError(ReproError, RuntimeError):
    """A solve overran its :class:`~repro.lp.solver.SolveBudget`.

    Deliberately *not* a :class:`SolverError`: running out of wall time
    is a policy outcome, not a backend failure, so the resilient solve
    chain never retries it and the degradation ladder in
    :class:`~repro.core.scheduler.Scheduler` catches it separately.
    """

    def __init__(
        self,
        message: str,
        where: str | None = None,
        wall_time_s: float | None = None,
    ) -> None:
        super().__init__(message)
        #: Pipeline stage at which the budget ran out (e.g. ``"stage2"``).
        self.where = where
        #: The budget's total wall-clock allowance, when known.
        self.wall_time_s = wall_time_s


class JournalError(ReproError, RuntimeError):
    """An epoch journal is missing, unreadable or beyond tail recovery.

    Torn or corrupt *tails* are recovered silently (the journal resumes
    from its last valid record); this error means the journal cannot be
    used at all — no file, no valid header, or an unsupported schema
    version.
    """


class JournalLockedError(JournalError):
    """Another live controller process holds the journal's append lock.

    Opening a journal for appending takes an exclusive ``<path>.lock``
    file carrying the owner's PID; a second opener from a *different
    live process* gets this error instead of silently interleaving
    whole-file rewrites with the first.  Locks left behind by dead
    processes (a crashed controller) are stale and stolen silently, as
    are locks held by the opener's own PID — a same-process reopen is
    exactly the crash-test resume path.

    Attributes
    ----------
    owner_pid:
        PID recorded in the conflicting lock file.
    """

    def __init__(self, message: str, owner_pid: int | None = None) -> None:
        super().__init__(message)
        self.owner_pid = owner_pid


class JournalWriteError(JournalError):
    """An append could not be made durable; the prior journal is intact.

    Raised when the atomic whole-file replace fails mid-write — disk
    full (``ENOSPC``), an I/O error (``EIO``), or a torn write injected
    by the chaos engine.  Unlike its parent this is *not* a verdict on
    the journal itself: the last durable commit is still on disk (the
    replace either happened completely or not at all), so the correct
    reaction is fail-stop — treat the entry as never committed, do not
    act on it (the reservation service withholds the batch's responses),
    and resume from the journal once the fault clears.

    Attributes
    ----------
    path:
        Path of the journal whose append failed, when known.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        super().__init__(message)
        self.path = path
