"""JSON serialization for networks, jobs and schedules.

The on-disk formats the CLI (:mod:`repro.cli`) speaks, designed to be
hand-editable:

Network::

    {"wavelength_rate": 5.0, "name": "abilene",
     "nodes": ["Seattle", ...],
     "edges": [{"source": "Seattle", "target": "Denver",
                "capacity": 4, "weight": 1.0}, ...]}

Jobs::

    {"jobs": [{"id": "hep-1", "source": "Chicago", "dest": "Sunnyvale",
               "size": 60.0, "start": 0.0, "end": 4.0,
               "arrival": 0.0}, ...]}

Only JSON-native node/job identifiers (strings, integers, floats,
booleans) round-trip; tuple node ids (e.g. grid coordinates) are
rejected with a clear error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .core.scheduler import ScheduleResult
from .errors import ValidationError
from .network.graph import Network
from .workload.jobs import Job, JobSet

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "jobs_to_dict",
    "jobs_from_dict",
    "schedule_to_dict",
    "simulation_to_dict",
    "report_to_dict",
    "fault_events_to_list",
    "fault_events_from_list",
    "save_json",
    "load_json",
]

_JSON_SCALARS = (str, int, float, bool)


def _check_identifier(value: Any, what: str) -> Any:
    if not isinstance(value, _JSON_SCALARS):
        raise ValidationError(
            f"{what} {value!r} is not JSON-serializable; use a string or number"
        )
    return value


# ----------------------------------------------------------------------
# Network
# ----------------------------------------------------------------------
def network_to_dict(network: Network) -> dict:
    """Plain-dict form of a network (see module docstring for schema)."""
    return {
        "wavelength_rate": network.wavelength_rate,
        "name": network.name,
        "nodes": [_check_identifier(n, "node") for n in network.nodes],
        "edges": [
            {
                "source": _check_identifier(e.source, "node"),
                "target": _check_identifier(e.target, "node"),
                "capacity": e.capacity,
                "weight": e.weight,
            }
            for e in network.edges
        ],
    }


def network_from_dict(data: dict) -> Network:
    """Inverse of :func:`network_to_dict`; validates as it builds."""
    try:
        net = Network(
            wavelength_rate=float(data.get("wavelength_rate", 1.0)),
            name=str(data.get("name", "")),
        )
        for node in data.get("nodes", []):
            net.add_node(node)
        for edge in data["edges"]:
            net.add_edge(
                edge["source"],
                edge["target"],
                int(edge["capacity"]),
                float(edge.get("weight", 1.0)),
            )
    except KeyError as exc:
        raise ValidationError(f"network JSON missing field {exc}") from None
    except TypeError as exc:
        raise ValidationError(f"malformed network JSON: {exc}") from None
    return net


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
def jobs_to_dict(jobs: JobSet) -> dict:
    """Plain-dict form of a job set."""
    out = []
    for job in jobs:
        record = {
            "id": _check_identifier(job.id, "job id"),
            "source": _check_identifier(job.source, "node"),
            "dest": _check_identifier(job.dest, "node"),
            "size": job.size,
            "start": job.start,
            "end": job.end,
            "arrival": job.arrival,
        }
        if job.weight is not None:
            record["weight"] = job.weight
        out.append(record)
    return {"jobs": out}


def jobs_from_dict(data: dict) -> JobSet:
    """Inverse of :func:`jobs_to_dict`; validates every job."""
    try:
        records = data["jobs"]
    except (KeyError, TypeError):
        raise ValidationError('jobs JSON must be {"jobs": [...]}') from None
    jobs = JobSet()
    for record in records:
        try:
            jobs.add(
                Job(
                    id=record["id"],
                    source=record["source"],
                    dest=record["dest"],
                    size=float(record["size"]),
                    start=float(record["start"]),
                    end=float(record["end"]),
                    arrival=(
                        float(record["arrival"]) if "arrival" in record else None
                    ),
                    weight=(
                        float(record["weight"]) if "weight" in record else None
                    ),
                )
            )
        except KeyError as exc:
            raise ValidationError(f"job record missing field {exc}") from None
    return jobs


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def schedule_to_dict(result: ScheduleResult, which: str = "lpdar") -> dict:
    """Exportable form of a scheduling outcome: metrics + grant list."""
    z = result.job_throughputs(which)
    return {
        "algorithm": which,
        "zstar": result.zstar,
        "overloaded": result.overloaded,
        "alpha": result.alpha,
        "fairness_met": bool(result.meets_fairness(which)),
        "weighted_throughput": result.weighted_throughput(which),
        "job_throughputs": {
            str(job.id): float(z[i])
            for i, job in enumerate(result.structure.jobs)
        },
        "grants": [
            {
                "job": _check_identifier(g.job_id, "job id"),
                "path": [_check_identifier(n, "node") for n in g.path],
                "slice": g.slice_index,
                "interval": list(g.interval),
                "wavelengths": g.wavelengths,
            }
            for g in result.grants(which)
        ],
    }


def report_to_dict(report) -> dict:
    """Exportable form of a :class:`~repro.verify.VerificationReport`.

    Used by ``repro verify --json``; the layout mirrors the report's
    fields with each violation flattened to JSON scalars.
    """
    from .verify.checker import VerificationReport

    if not isinstance(report, VerificationReport):
        raise ValidationError(
            f"expected VerificationReport, got {type(report).__name__}"
        )
    return {
        "subject": report.subject,
        "ok": report.ok,
        "num_jobs": report.num_jobs,
        "num_items": report.num_items,
        "checks": list(report.checks),
        "violations": [
            {
                "code": v.code,
                "severity": v.severity,
                "message": v.message,
                "job": v.job_id,
                "edge": list(v.edge) if v.edge is not None else None,
                "slice": v.slice_index,
                "amount": v.amount,
            }
            for v in report.violations
        ],
    }


def simulation_to_dict(result) -> dict:
    """Exportable form of a finished simulation run.

    Serializes the per-job lifecycle records and the full event log (as
    ``type`` plus the event's fields), so a run can be archived and
    re-analyzed without re-simulating.
    """
    from dataclasses import asdict

    from .sim.simulator import SimulationResult

    if not isinstance(result, SimulationResult):
        raise ValidationError(
            f"expected SimulationResult, got {type(result).__name__}"
        )
    return {
        "horizon": result.horizon,
        "records": [
            {
                "job": _check_identifier(rec.job.id, "job id"),
                "status": rec.status,
                "size": rec.job.size,
                "remaining": rec.remaining,
                "effective_end": rec.effective_end,
                "completion_time": rec.completion_time,
                "met_deadline": rec.met_deadline,
            }
            for rec in result.records
        ],
        "events": [
            {"type": type(event).__name__, **asdict(event)}
            for event in result.events
        ],
    }


# ----------------------------------------------------------------------
# Fault events
# ----------------------------------------------------------------------
def fault_events_to_list(events) -> list:
    """Plain-list form of fault events (for the epoch journal header).

    Each event becomes ``{"kind": ..., "time": ..., "source": ...,
    "target": ..., "bidirectional": ...}`` plus ``"remaining"`` for
    degrades.  Inverse: :func:`fault_events_from_list`.
    """
    from .faults.events import LinkDown, LinkUp, WavelengthDegrade

    out = []
    for ev in events:
        if isinstance(ev, LinkDown):
            kind = "down"
        elif isinstance(ev, LinkUp):
            kind = "up"
        elif isinstance(ev, WavelengthDegrade):
            kind = "degrade"
        else:
            raise ValidationError(
                f"not a fault event: {type(ev).__name__}"
            )
        record = {
            "kind": kind,
            "time": ev.time,
            "source": _check_identifier(ev.source, "node"),
            "target": _check_identifier(ev.target, "node"),
            "bidirectional": ev.bidirectional,
        }
        if kind == "degrade":
            record["remaining"] = ev.remaining
        out.append(record)
    return out


def fault_events_from_list(records: list) -> list:
    """Inverse of :func:`fault_events_to_list`; validates every record."""
    from .faults.events import LinkDown, LinkUp, WavelengthDegrade

    kinds = {"down": LinkDown, "up": LinkUp, "degrade": WavelengthDegrade}
    out = []
    for record in records:
        try:
            cls = kinds[record["kind"]]
            kwargs = {
                "time": float(record["time"]),
                "source": record["source"],
                "target": record["target"],
                "bidirectional": bool(record.get("bidirectional", True)),
            }
            if cls is WavelengthDegrade:
                kwargs["remaining"] = int(record["remaining"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed fault-event record {record!r}: {exc}"
            ) from None
        out.append(cls(**kwargs))
    return out


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def save_json(data: dict, path: str | Path) -> None:
    """Write ``data`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(data, indent=2) + "\n")


def load_json(path: str | Path) -> dict:
    """Read a JSON file, raising :class:`ValidationError` on bad syntax."""
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ValidationError(f"no such file: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid JSON in {path}: {exc}") from None
