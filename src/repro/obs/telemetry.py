"""Solve telemetry: nestable timers, counters and per-solve records.

Every hot-path component of the pipeline — :class:`~repro.lp.model.ProblemStructure`
assembly, :func:`~repro.lp.solver.solve_lp`, the LPDAR greedy pass, the
RET binary search — accepts an optional ``telemetry=`` argument.  Passing
a :class:`Telemetry` instance turns the pipeline's black box into a
measured run:

>>> from repro.obs import Telemetry
>>> telemetry = Telemetry()
>>> with telemetry.span("outer"):
...     with telemetry.span("inner"):
...         pass
>>> telemetry.span_stats["outer.inner"].calls
1

Design rules
------------

* **Zero-impact default.**  Call sites normalize ``telemetry=None`` to
  the module-level :data:`NULL_TELEMETRY` singleton, whose every method
  is a no-op; existing code paths and outputs are bit-for-bit unchanged.
* **Observation only.**  A :class:`Telemetry` object never influences
  the computation it measures — it is written to, never read from, by
  the pipeline.
* **Plain-data export.**  :meth:`Telemetry.as_dict` returns nothing but
  dicts, lists, strings, ints and floats, so the result serializes with
  :mod:`json` as-is.

Spans nest: entering ``span("lp_solve")`` while ``span("stage2")`` is
open aggregates under the dotted path ``"stage2.lp_solve"``, so the same
leaf timer (e.g. every LP solve) is attributed to whichever stage
invoked it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

__all__ = ["Span", "SpanStats", "Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


@dataclass
class Span:
    """One live (or finished) timed section.

    Yielded by :meth:`Telemetry.span`; usable as a context manager only
    through that method.  After the ``with`` block exits, :attr:`elapsed`
    holds the section's wall time in seconds (while the block is still
    running it reads the time elapsed so far).
    """

    #: Dotted path of the span, e.g. ``"schedule.stage2.lp_solve"``.
    path: str
    _start: float = field(default=0.0, repr=False)
    _elapsed: float | None = field(default=None, repr=False)

    @property
    def elapsed(self) -> float:
        """Wall seconds: final once closed, running value while open."""
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed

    def _close(self) -> float:
        self._elapsed = time.perf_counter() - self._start
        return self._elapsed


@dataclass
class SpanStats:
    """Aggregate timing of all spans sharing one dotted path."""

    calls: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    @property
    def mean(self) -> float:
        """Average seconds per call (0 when never called)."""
        return self.total / self.calls if self.calls else 0.0

    def _add(self, seconds: float) -> None:
        self.calls += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)


class _SpanContext:
    """Context manager pairing a Span with its owning Telemetry."""

    __slots__ = ("_telemetry", "_span")

    def __init__(self, telemetry: "Telemetry", span: Span) -> None:
        self._telemetry = telemetry
        self._span = span

    def __enter__(self) -> Span:
        self._span._start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._telemetry._exit_span(self._span)


class Telemetry:
    """Collects spans, counters and records for one measured run.

    Attributes
    ----------
    span_stats:
        ``{dotted_path: SpanStats}`` — aggregated wall time per span
        path, nested paths joined with ``"."``.
    counters:
        ``{name: value}`` — monotone event counters
        (:meth:`count`).
    records:
        List of per-event dicts appended by :meth:`record`; every dict
        carries at least a ``"kind"`` key (e.g. ``"lp_solve"``,
        ``"ret_probe"``, ``"greedy_adjust"``).
    """

    #: Whether this object actually stores anything (False on the no-op).
    enabled: bool = True

    def __init__(self) -> None:
        self.span_stats: dict[str, SpanStats] = {}
        self.counters: dict[str, float] = {}
        self.records: list[dict] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    # Collection API (what the pipeline calls)
    # ------------------------------------------------------------------
    def span(self, name: str):
        """Open a named, nestable timer; use as ``with telemetry.span(...)``.

        The yielded :class:`Span` exposes ``elapsed`` after the block, so
        callers that need the duration themselves (e.g. the simulator's
        ``SchedulingPass`` event) read it instead of re-timing.
        """
        path = f"{self._stack[-1].path}.{name}" if self._stack else name
        span = Span(path=path)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _exit_span(self, span: Span) -> None:
        seconds = span._close()
        # Close any dangling children first (exception unwound past them).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.span_stats.setdefault(span.path, SpanStats())._add(seconds)

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def record(self, kind: str, **fields) -> None:
        """Append one structured event record of the given ``kind``."""
        self.records.append({"kind": kind, **fields})

    # ------------------------------------------------------------------
    # Query / export API (what reports call)
    # ------------------------------------------------------------------
    def seconds(self, path: str) -> float:
        """Total wall seconds aggregated under one dotted span path."""
        stats = self.span_stats.get(path)
        return stats.total if stats else 0.0

    def records_of(self, kind: str) -> list[dict]:
        """All records of one kind, in collection order."""
        return [r for r in self.records if r["kind"] == kind]

    def as_dict(self) -> dict:
        """Plain-data view: spans, counters and records, JSON-ready."""
        return {
            "spans": {
                path: {
                    "calls": s.calls,
                    "total_seconds": s.total,
                    "mean_seconds": s.mean,
                    "min_seconds": s.min if s.calls else 0.0,
                    "max_seconds": s.max,
                }
                for path, s in sorted(self.span_stats.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "records": list(self.records),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The :meth:`as_dict` view serialized as JSON text."""
        return json.dumps(self.as_dict(), indent=indent)

    def render(self) -> str:
        """Compact ASCII report: spans, LP solves, RET trace, degraded
        solves and counters."""
        from ..analysis.reporting import Table

        sections: list[str] = []

        if self.span_stats:
            spans = Table(
                ["span", "calls", "total (s)", "mean (s)", "max (s)"],
                title="telemetry — spans",
            )
            for path, s in sorted(self.span_stats.items()):
                spans.add_row(
                    [
                        path,
                        s.calls,
                        round(s.total, 4),
                        round(s.mean, 4),
                        round(s.max, 4),
                    ]
                )
            sections.append(spans.render())

        lp_solves = self.records_of("lp_solve")
        if lp_solves:
            table = Table(
                ["label", "backend", "vars", "rows", "nnz", "iters",
                 "status", "seconds"],
                title="telemetry — LP solves",
            )
            for r in lp_solves:
                table.add_row(
                    [
                        r.get("label") or "-",
                        r["backend"],
                        r["num_vars"],
                        r["num_rows"],
                        r["nnz"],
                        r["iterations"],
                        r["status"],
                        round(r["seconds"], 4),
                    ]
                )
            sections.append(table.render())

        probes = self.records_of("ret_probe")
        if probes:
            table = Table(
                ["phase", "b", "feasible", "vars", "iters"],
                title="telemetry — RET binary-search trace",
            )
            for r in probes:
                table.add_row(
                    [
                        r["phase"],
                        round(r["b"], 6),
                        r["feasible"],
                        r["num_cols"],
                        r["iterations"] if r["feasible"] else "-",
                    ]
                )
            sections.append(table.render())

        greedy = self.records_of("greedy_adjust")
        if greedy:
            table = Table(
                ["visited triples", "grants", "granted wavelengths"],
                title="telemetry — greedy adjustment (Algorithm 1)",
            )
            for r in greedy:
                table.add_row(
                    [r["visited_triples"], r["grants"], r["granted_wavelengths"]]
                )
            sections.append(table.render())

        degraded = self.records_of("degraded_solve")
        if degraded:
            table = Table(
                ["level", "reason"],
                title="telemetry — degraded solves (budget ladder)",
            )
            for r in degraded:
                table.add_row([r["level"], r["reason"]])
            sections.append(table.render())

        if self.counters:
            table = Table(["counter", "value"], title="telemetry — counters")
            for name, value in sorted(self.counters.items()):
                table.add_row([name, value])
            sections.append(table.render())

        if not sections:
            return "telemetry — empty (no spans, records or counters)"
        return "\n\n".join(sections)


class NullTelemetry(Telemetry):
    """The do-nothing telemetry every call site defaults to.

    Spans still yield a working :class:`Span` (some callers read
    ``elapsed`` regardless of profiling — two ``perf_counter`` calls),
    but nothing is aggregated or stored, so the default pipeline keeps
    its exact pre-telemetry behaviour.
    """

    enabled = False

    def span(self, name: str):
        return _NullSpanContext()

    def count(self, name: str, n: float = 1) -> None:
        pass

    def record(self, kind: str, **fields) -> None:
        pass


class _NullSpanContext:
    """Span context that times but never stores."""

    __slots__ = ("_span",)

    def __enter__(self) -> Span:
        self._span = Span(path="", _start=time.perf_counter())
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span._close()


#: Shared no-op instance; ``telemetry or NULL_TELEMETRY`` is the
#: canonical normalization at every pipeline entry point.
NULL_TELEMETRY = NullTelemetry()
