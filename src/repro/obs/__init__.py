"""Observability layer: solve telemetry for the LP -> LPDAR -> RET pipeline.

See :mod:`repro.obs.telemetry` for the design; the CLI's ``--profile``
flag and the experiment harness are the main consumers.
"""

from .telemetry import NULL_TELEMETRY, NullTelemetry, Span, SpanStats, Telemetry

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY", "Span", "SpanStats"]
