"""Deterministic link-fault injection for the slotted-wavelength simulator.

The package models what the paper's periodic controller must survive in
a production research network: fiber cuts, partial wavelength loss and
repairs, all happening *between* scheduling epochs.  A
:class:`FaultSchedule` is a seeded, reproducible timeline of
:class:`LinkDown` / :class:`LinkUp` / :class:`WavelengthDegrade` events
that compiles into the same :class:`~repro.network.capacity.CapacityProfile`
the schedulers already consume, so fault tolerance needs no new solver
machinery — only detection, voiding and replanning in the simulator.
"""

from .events import FaultEvent, LinkDown, LinkUp, WavelengthDegrade
from .schedule import FaultSchedule
from .spec import parse_fault_spec

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "LinkDown",
    "LinkUp",
    "WavelengthDegrade",
    "parse_fault_spec",
]
