"""Parse fault-injection specs from the command line into schedules.

Three spec shapes are accepted by :func:`parse_fault_spec` (and thus by
``repro simulate --faults``):

* ``random:mtbf=20,mttr=2`` — a random MTBF/MTTR schedule; optional
  ``degrade_prob=0.3``.  Requires a ``horizon``; the seed comes from the
  ``--fault-seed`` flag.
* ``down:a-b@2;up:a-b@5;degrade:c-d@3=1`` — inline scripted events:
  ``kind:source-target@time`` with ``=remaining`` for degrades and an
  optional trailing ``!`` for unidirectional events (``down:a-b@2!``).
* a path to a ``.json`` file with an ``{"events": [...]}`` list, each
  entry ``{"kind": "down"|"up"|"degrade", "source": ..., "target": ...,
  "time": ..., "remaining": ..., "bidirectional": ...}``.

Node names in the ``random``/inline forms are coerced to ``int`` when
purely numeric, matching how the topology loaders name nodes.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..errors import ValidationError
from ..network.graph import Network
from ..serialization import load_json
from .events import FaultEvent, LinkDown, LinkUp, WavelengthDegrade
from .schedule import FaultSchedule

__all__ = ["parse_fault_spec"]

Node = Hashable


def _coerce_node(token: str) -> Node:
    token = token.strip()
    if not token:
        raise ValidationError("empty node name in fault spec")
    return int(token) if token.lstrip("-").isdigit() else token


def _parse_number(token: str, what: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise ValidationError(f"bad {what} {token!r} in fault spec") from None


def _parse_random(body: str, network: Network, seed: int, horizon) -> FaultSchedule:
    if horizon is None:
        raise ValidationError(
            "random fault specs need a simulation horizon"
        )
    params: dict[str, float] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise ValidationError(
                f"random fault spec entries look like key=value, got {item!r}"
            )
        params[key.strip()] = _parse_number(value, key.strip())
    unknown = set(params) - {"mtbf", "mttr", "degrade_prob"}
    if unknown:
        raise ValidationError(
            f"unknown random fault parameters: {sorted(unknown)}"
        )
    if "mtbf" not in params or "mttr" not in params:
        raise ValidationError("random fault specs need both mtbf= and mttr=")
    return FaultSchedule.random(
        network,
        horizon=float(horizon),
        mtbf=params["mtbf"],
        mttr=params["mttr"],
        seed=seed,
        degrade_prob=params.get("degrade_prob", 0.0),
    )


def _parse_inline_event(entry: str) -> FaultEvent:
    kind, sep, rest = entry.partition(":")
    if not sep:
        raise ValidationError(
            f"fault entry {entry!r} is not of the form kind:source-target@time"
        )
    kind = kind.strip().lower()
    bidirectional = True
    if rest.endswith("!"):
        bidirectional = False
        rest = rest[:-1]
    remaining = None
    if "=" in rest:
        rest, _, rem = rest.rpartition("=")
        remaining = _parse_number(rem, "remaining wavelengths")
    link, sep, when = rest.partition("@")
    if not sep:
        raise ValidationError(f"fault entry {entry!r} is missing an @time")
    source, sep, target = link.partition("-")
    if not sep:
        raise ValidationError(
            f"fault entry {entry!r} needs a source-target link"
        )
    time = _parse_number(when, "time")
    src, dst = _coerce_node(source), _coerce_node(target)
    if kind == "down":
        return LinkDown(time, src, dst, bidirectional=bidirectional)
    if kind == "up":
        return LinkUp(time, src, dst, bidirectional=bidirectional)
    if kind == "degrade":
        if remaining is None:
            raise ValidationError(
                f"degrade entry {entry!r} needs =remaining wavelengths"
            )
        return WavelengthDegrade(
            time, src, dst, int(remaining), bidirectional=bidirectional
        )
    raise ValidationError(
        f"unknown fault kind {kind!r}; expected down, up or degrade"
    )


def _parse_json(path: str, network: Network) -> FaultSchedule:
    payload = load_json(path)
    if not isinstance(payload, dict):
        raise ValidationError(
            f"fault file {path!r} must be a JSON object with an "
            "'events' list, not a bare "
            f"{type(payload).__name__}"
        )
    raw = payload.get("events")
    if not isinstance(raw, list):
        raise ValidationError(
            f"fault file {path!r} needs a top-level 'events' list"
        )
    events: list[FaultEvent] = []
    for i, item in enumerate(raw):
        if not isinstance(item, dict):
            raise ValidationError(f"fault file event #{i} is not an object")
        kind = str(item.get("kind", "")).lower()
        try:
            time = float(item["time"])
            source = item["source"]
            target = item["target"]
        except KeyError as missing:
            raise ValidationError(
                f"fault file event #{i} is missing {missing.args[0]!r}"
            ) from None
        except (TypeError, ValueError):
            raise ValidationError(
                f"fault file event #{i} has a non-numeric time "
                f"{item.get('time')!r}"
            ) from None
        for what, node in (("source", source), ("target", target)):
            if not isinstance(node, (str, int, float, bool)):
                raise ValidationError(
                    f"fault file event #{i} has a non-scalar {what} {node!r}"
                )
        bidirectional = bool(item.get("bidirectional", True))
        if kind == "down":
            events.append(LinkDown(time, source, target, bidirectional))
        elif kind == "up":
            events.append(LinkUp(time, source, target, bidirectional))
        elif kind == "degrade":
            if "remaining" not in item:
                raise ValidationError(
                    f"fault file degrade event #{i} needs 'remaining'"
                )
            try:
                remaining = int(item["remaining"])
            except (TypeError, ValueError):
                raise ValidationError(
                    f"fault file degrade event #{i} has a non-integer "
                    f"'remaining' {item['remaining']!r}"
                ) from None
            if remaining != item["remaining"]:
                raise ValidationError(
                    f"fault file degrade event #{i} has a fractional "
                    f"'remaining' {item['remaining']!r}"
                )
            events.append(
                WavelengthDegrade(
                    time, source, target, remaining, bidirectional
                )
            )
        else:
            raise ValidationError(
                f"fault file event #{i} has unknown kind {kind!r}"
            )
    return FaultSchedule(network, events)


def parse_fault_spec(
    spec: str,
    network: Network,
    seed: int = 0,
    horizon: float | None = None,
) -> FaultSchedule:
    """Turn a ``--faults`` spec string into a :class:`FaultSchedule`.

    See the module docstring for the three accepted shapes.  ``seed``
    only matters for ``random:`` specs; ``horizon`` is required there
    and ignored elsewhere.
    """
    spec = spec.strip()
    if not spec:
        raise ValidationError("empty fault spec")
    if spec.startswith("random:"):
        return _parse_random(spec[len("random:"):], network, seed, horizon)
    if spec.endswith(".json"):
        return _parse_json(spec, network)
    events = [
        _parse_inline_event(entry)
        for entry in spec.split(";")
        if entry.strip()
    ]
    if not events:
        raise ValidationError(f"fault spec {spec!r} contains no events")
    return FaultSchedule(network, events)
