"""The :class:`FaultSchedule`: a deterministic timeline of link faults.

A fault schedule binds a list of :mod:`~repro.faults.events` to one
network, replays them into per-edge capacity step functions, and answers
the questions the online controller and the executor ask:

* *planning* — :meth:`snapshot_profile` freezes the capacity state at
  one instant into a :class:`~repro.network.capacity.CapacityProfile`
  (what a controller that has detected the current failures, but cannot
  see the future, should schedule against);
* *ground truth* — :meth:`compile` materializes the full time-varying
  profile (what an omniscient offline scheduler would use, and what
  tests check delivered volume against);
* *execution* — :meth:`min_capacity_over` gives the worst-case capacity
  of every edge over a slice, which decides how much of an in-flight
  wavelength grant actually survives.

Random schedules (:meth:`FaultSchedule.random`) are parameterized by
MTBF/MTTR and fully determined by their seed: the same seed always
produces the identical event list, which makes every fault run — and its
whole simulation event log — reproducible.
"""

from __future__ import annotations

import bisect

from collections.abc import Hashable, Iterable, Iterator

import numpy as np

from ..errors import ValidationError
from ..network.capacity import CapacityProfile
from ..network.graph import Network
from ..timegrid import TimeGrid
from .events import FaultEvent, LinkDown, LinkUp, WavelengthDegrade

__all__ = ["FaultSchedule"]

Node = Hashable


class FaultSchedule:
    """An ordered, network-bound list of fault injections.

    Parameters
    ----------
    network:
        The network whose links the events refer to.  Every event's
        ``source -> target`` edge must exist (and ``target -> source``
        too when the event is bidirectional and that direction exists).
    events:
        Fault events in any order; they are stored sorted by time (ties
        keep the given order).

    Raises
    ------
    ValidationError
        An event names an unknown edge, or carries invalid fields.
    """

    def __init__(self, network: Network, events: Iterable[FaultEvent] = ()) -> None:
        self.network = network
        ordered = sorted(enumerate(events), key=lambda kv: (kv[1].time, kv[0]))
        self.events: tuple[FaultEvent, ...] = tuple(ev for _, ev in ordered)
        self._edges_of: list[tuple[int, ...]] = [
            self._resolve_edges(ev) for ev in self.events
        ]
        self._build_steps()

    def _resolve_edges(self, event: FaultEvent) -> tuple[int, ...]:
        """Directed edge ids an event applies to (validates existence)."""
        if not isinstance(event, (LinkDown, LinkUp, WavelengthDegrade)):
            raise ValidationError(
                f"unknown fault event type {type(event).__name__!r}"
            )
        edges = [self.network.edge_id(event.source, event.target)]
        if event.bidirectional and self.network.has_edge(
            event.target, event.source
        ):
            edges.append(self.network.edge_id(event.target, event.source))
        return tuple(edges)

    def _build_steps(self) -> None:
        """Replay events into per-edge (times, capacities) step functions."""
        installed = self.network.capacities()
        # Edge id -> parallel lists of breakpoint times and the capacity
        # holding from each breakpoint on.  Edges never touched by any
        # event are absent and stay at installed capacity throughout.
        self._step_times: dict[int, list[float]] = {}
        self._step_caps: dict[int, list[int]] = {}
        current = installed.copy()
        for event, edges in zip(self.events, self._edges_of):
            for eid in edges:
                if isinstance(event, LinkDown):
                    cap = 0
                elif isinstance(event, LinkUp):
                    cap = int(installed[eid])
                else:  # WavelengthDegrade
                    cap = min(int(installed[eid]), event.remaining)
                if cap == current[eid]:
                    continue
                current[eid] = cap
                self._step_times.setdefault(eid, []).append(float(event.time))
                self._step_caps.setdefault(eid, []).append(cap)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        network: Network,
        horizon: float,
        mtbf: float,
        mttr: float,
        seed: int = 0,
        degrade_prob: float = 0.0,
    ) -> "FaultSchedule":
        """Draw a random fault timeline from an MTBF/MTTR renewal process.

        Each *link pair* (both fiber directions fail together, as a
        physical cut does) independently alternates between healthy
        periods with exponential mean ``mtbf`` and outages with
        exponential mean ``mttr``, until ``horizon``.  With probability
        ``degrade_prob`` an outage is a partial one — the link keeps
        half its installed wavelengths — instead of a full cut.

        The draw is fully determined by ``seed``: link pairs are visited
        in edge-id order and each consumes its own deterministic stream,
        so the same arguments always yield the identical schedule.
        """
        if horizon <= 0:
            raise ValidationError(f"horizon must be positive, got {horizon}")
        if mtbf <= 0 or mttr <= 0:
            raise ValidationError(
                f"mtbf and mttr must be positive, got {mtbf} and {mttr}"
            )
        if not 0.0 <= degrade_prob <= 1.0:
            raise ValidationError(
                f"degrade_prob must be in [0, 1], got {degrade_prob}"
            )
        seen: set[tuple[Node, Node]] = set()
        events: list[FaultEvent] = []
        rng = np.random.default_rng(seed)
        for edge in network.edges:
            key = (edge.source, edge.target)
            if key in seen or (edge.target, edge.source) in seen:
                continue
            seen.add(key)
            t = float(rng.exponential(mtbf))
            while t < horizon:
                outage = float(rng.exponential(mttr))
                degraded = rng.random() < degrade_prob
                if degraded:
                    remaining = max(1, edge.capacity // 2)
                    events.append(
                        WavelengthDegrade(t, edge.source, edge.target, remaining)
                    )
                else:
                    events.append(LinkDown(t, edge.source, edge.target))
                events.append(LinkUp(t + outage, edge.source, edge.target))
                t += outage + float(rng.exponential(mtbf))
        return cls(network, events)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last event (0.0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0.0

    def edges_of(self, event: FaultEvent) -> tuple[int, ...]:
        """Directed edge ids the given (member) event applies to."""
        try:
            index = self.events.index(event)
        except ValueError:
            raise ValidationError(
                "event is not part of this fault schedule"
            ) from None
        return self._edges_of[index]

    def events_between(self, t0: float, t1: float) -> list[FaultEvent]:
        """Events with ``t0 < time <= t1`` (epoch-boundary detection)."""
        return [ev for ev in self.events if t0 < ev.time <= t1 + 1e-12]

    def capacity_at(self, time: float) -> np.ndarray:
        """Per-edge wavelength capacity in force at ``time``."""
        caps = self.network.capacities().copy()
        for eid, times in self._step_times.items():
            idx = bisect.bisect_right(times, time + 1e-12) - 1
            if idx >= 0:
                caps[eid] = self._step_caps[eid][idx]
        return caps

    def min_capacity_over(self, t0: float, t1: float) -> np.ndarray:
        """Per-edge *minimum* capacity anywhere in ``[t0, t1)``.

        The conservative per-slice view: a grant is only safe if the
        link held enough wavelengths for the whole slice.
        """
        if t1 <= t0:
            raise ValidationError(f"empty interval [{t0}, {t1})")
        caps = self.capacity_at(t0)
        for eid, times in self._step_times.items():
            lo = bisect.bisect_right(times, t0 + 1e-12)
            hi = bisect.bisect_left(times, t1 - 1e-12)
            for k in range(lo, hi):
                caps[eid] = min(caps[eid], self._step_caps[eid][k])
        return caps

    def failed_edges_at(self, time: float) -> frozenset[int]:
        """Edge ids with zero capacity in force at ``time``."""
        caps = self.capacity_at(time)
        return frozenset(int(e) for e in np.flatnonzero(caps == 0))

    # ------------------------------------------------------------------
    # Compilation into capacity profiles
    # ------------------------------------------------------------------
    def compile(self, grid: TimeGrid) -> CapacityProfile:
        """Materialize the full time-varying ``C_e(j)`` over ``grid``.

        Each cell is the link's minimum capacity anywhere inside the
        slice — a fault active for any part of a slice makes the whole
        slice unsafe to plan on.
        """
        matrix = np.empty(
            (self.network.num_edges, grid.num_slices), dtype=np.int64
        )
        for j in range(grid.num_slices):
            matrix[:, j] = self.min_capacity_over(
                grid.slice_start(j), grid.slice_end(j)
            )
        return CapacityProfile(self.network, grid, matrix)

    def snapshot_profile(self, grid: TimeGrid, time: float) -> CapacityProfile:
        """The capacity state at ``time``, held constant across ``grid``.

        This is the *online controller's* view: it has detected which
        links are currently down or degraded, but does not know repair
        times, so it plans as if the current state persists.
        """
        caps = self.capacity_at(time)
        matrix = np.repeat(caps[:, None], grid.num_slices, axis=1)
        return CapacityProfile(self.network, grid, matrix)

    def __repr__(self) -> str:
        downs = sum(isinstance(e, LinkDown) for e in self.events)
        degrades = sum(isinstance(e, WavelengthDegrade) for e in self.events)
        return (
            f"FaultSchedule(events={len(self.events)}, downs={downs}, "
            f"degrades={degrades}, horizon={self.horizon:g})"
        )
