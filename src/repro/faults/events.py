"""Typed fault injections: what can happen to a link, and when.

Three event kinds cover the outage modes research-network operators
actually see (fiber cuts, scheduled maintenance, wavelength
pre-emption):

* :class:`LinkDown` — the link carries zero wavelengths from ``time``
  until a later :class:`LinkUp`;
* :class:`WavelengthDegrade` — the link keeps running but with only
  ``remaining`` wavelengths (standing circuits pre-empting capacity);
* :class:`LinkUp` — full installed capacity is restored.

Events are plain frozen dataclasses in *absolute* simulation time; a
:class:`~repro.faults.schedule.FaultSchedule` orders and replays them.
``bidirectional=True`` (the default) applies the event to both fiber
directions of the link pair, matching how physical cuts behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable
from typing import Union

import numpy as np

from ..errors import ValidationError

__all__ = ["LinkDown", "LinkUp", "WavelengthDegrade", "FaultEvent"]

Node = Hashable


def _check_endpoints(time: float, source: Node, target: Node) -> None:
    if not (np.isfinite(time) and time >= 0.0):
        raise ValidationError(
            f"fault event time must be finite and >= 0, got {time!r}"
        )
    if source == target:
        raise ValidationError(
            f"fault event endpoints must differ, got {source!r} twice"
        )


@dataclass(frozen=True)
class LinkDown:
    """The link ``source -> target`` fails completely at ``time``.

    Capacity drops to zero wavelengths and stays there until a later
    :class:`LinkUp` on the same link.
    """

    time: float
    source: Node
    target: Node
    bidirectional: bool = True

    def __post_init__(self) -> None:
        _check_endpoints(self.time, self.source, self.target)


@dataclass(frozen=True)
class LinkUp:
    """The link ``source -> target`` returns to installed capacity."""

    time: float
    source: Node
    target: Node
    bidirectional: bool = True

    def __post_init__(self) -> None:
        _check_endpoints(self.time, self.source, self.target)


@dataclass(frozen=True)
class WavelengthDegrade:
    """The link keeps only ``remaining`` wavelengths from ``time`` on.

    ``remaining`` is clamped to the link's installed capacity at replay
    time; ``remaining = 0`` is equivalent to a :class:`LinkDown`.  A
    later :class:`LinkUp` restores the installed count.
    """

    time: float
    source: Node
    target: Node
    remaining: int
    bidirectional: bool = True

    def __post_init__(self) -> None:
        _check_endpoints(self.time, self.source, self.target)
        if int(self.remaining) != self.remaining or self.remaining < 0:
            raise ValidationError(
                "degraded capacity must be a non-negative whole wavelength "
                f"count, got {self.remaining!r}"
            )
        object.__setattr__(self, "remaining", int(self.remaining))


#: Any of the three injectable fault kinds.
FaultEvent = Union[LinkDown, LinkUp, WavelengthDegrade]
