"""Reference topologies: Abilene and synthetic families.

The paper evaluates on the Abilene backbone (Internet2's network at the
time: 11 core nodes) and on Waxman random networks (see
:mod:`repro.network.waxman`).  This module also provides small synthetic
families (line, ring, star, grid, full mesh, dumbbell) that the test
suite uses for hand-checkable optima.

All factory functions return networks whose links are *pairs* of directed
edges, matching how the paper counts topology size ("20 pairs of links").
"""

from __future__ import annotations

from ..errors import ValidationError
from .graph import Network

__all__ = [
    "abilene",
    "nsfnet",
    "line",
    "ring",
    "star",
    "grid2d",
    "full_mesh",
    "dumbbell",
    "ABILENE_CORE_LINKS",
    "ABILENE_EXPRESS_LINKS",
    "NSFNET_LINKS",
]

#: The 14 historical Abilene backbone link pairs (11 PoPs, circa 2004-2007).
ABILENE_CORE_LINKS: tuple[tuple[str, str], ...] = (
    ("Seattle", "Sunnyvale"),
    ("Seattle", "Denver"),
    ("Sunnyvale", "LosAngeles"),
    ("Sunnyvale", "Denver"),
    ("Denver", "KansasCity"),
    ("LosAngeles", "Houston"),
    ("Houston", "KansasCity"),
    ("Houston", "Atlanta"),
    ("KansasCity", "Indianapolis"),
    ("Indianapolis", "Chicago"),
    ("Indianapolis", "Atlanta"),
    ("Chicago", "NewYork"),
    ("Atlanta", "WashingtonDC"),
    ("NewYork", "WashingtonDC"),
)

#: Six synthetic express links that bring the topology to the 20 link
#: pairs used in the paper's Abilene experiments (Fig. 2).  The paper does
#: not list its extra links, so we add geographically plausible shortcuts.
ABILENE_EXPRESS_LINKS: tuple[tuple[str, str], ...] = (
    ("Seattle", "Chicago"),
    ("Sunnyvale", "KansasCity"),
    ("Denver", "Houston"),
    ("LosAngeles", "Atlanta"),
    ("Indianapolis", "WashingtonDC"),
    ("Chicago", "WashingtonDC"),
)


def abilene(
    capacity: int = 1,
    wavelength_rate: float = 20.0,
    extended: bool = True,
) -> Network:
    """The Abilene backbone as a wavelength-switched network.

    Parameters
    ----------
    capacity:
        Wavelengths per link, ``C_e``.
    wavelength_rate:
        Rate of one wavelength.  The default (20.0) models the paper's
        20 Gbps links carried on a single wavelength; use
        :meth:`Network.with_wavelengths` to split the same 20 Gbps across
        more wavelengths for the Fig. 2 sweep.
    extended:
        When True (default), include :data:`ABILENE_EXPRESS_LINKS` so the
        topology has the paper's 20 link pairs; when False, only the 14
        historical backbone links.
    """
    links = ABILENE_CORE_LINKS + (ABILENE_EXPRESS_LINKS if extended else ())
    return Network.from_link_pairs(
        links, capacity, wavelength_rate, name="abilene"
    )


#: The classic 14-node, 21-link-pair NSFNET T1 backbone — the other
#: standard benchmark topology in the optical-networking literature
#: (e.g. the paper's reference [26] evaluates on it).
NSFNET_LINKS: tuple[tuple[str, str], ...] = (
    ("Seattle", "PaloAlto"),
    ("Seattle", "SanDiego"),
    ("Seattle", "Champaign"),
    ("PaloAlto", "SanDiego"),
    ("PaloAlto", "SaltLakeCity"),
    ("SanDiego", "Houston"),
    ("SaltLakeCity", "Boulder"),
    ("SaltLakeCity", "AnnArbor"),
    ("Boulder", "Houston"),
    ("Boulder", "Lincoln"),
    ("Lincoln", "Champaign"),
    ("Houston", "CollegePark"),
    ("Houston", "Atlanta"),
    ("Champaign", "Pittsburgh"),
    ("AnnArbor", "Princeton"),
    ("AnnArbor", "Ithaca"),
    ("Pittsburgh", "Atlanta"),
    ("Pittsburgh", "Ithaca"),
    ("Atlanta", "CollegePark"),
    ("Princeton", "CollegePark"),
    ("Ithaca", "CollegePark"),
)


def nsfnet(capacity: int = 1, wavelength_rate: float = 20.0) -> Network:
    """The 14-node NSFNET backbone as a wavelength-switched network.

    A second real research-network topology alongside :func:`abilene`,
    commonly used in the wavelength-assignment literature the paper
    builds on.  Denser than Abilene (average degree ~3.1), so multipath
    routing has more room.
    """
    return Network.from_link_pairs(
        NSFNET_LINKS, capacity, wavelength_rate, name="nsfnet"
    )


def line(
    num_nodes: int, capacity: int = 1, wavelength_rate: float = 1.0
) -> Network:
    """Path graph ``0 - 1 - ... - (n-1)`` of link pairs."""
    if num_nodes < 2:
        raise ValidationError(f"line needs >= 2 nodes, got {num_nodes}")
    return Network.from_link_pairs(
        [(i, i + 1) for i in range(num_nodes - 1)],
        capacity,
        wavelength_rate,
        name=f"line{num_nodes}",
    )


def ring(
    num_nodes: int, capacity: int = 1, wavelength_rate: float = 1.0
) -> Network:
    """Cycle of ``num_nodes`` nodes; every node pair has two disjoint paths."""
    if num_nodes < 3:
        raise ValidationError(f"ring needs >= 3 nodes, got {num_nodes}")
    pairs = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return Network.from_link_pairs(
        pairs, capacity, wavelength_rate, name=f"ring{num_nodes}"
    )


def star(
    num_leaves: int, capacity: int = 1, wavelength_rate: float = 1.0
) -> Network:
    """Hub node ``0`` connected to leaves ``1..num_leaves``."""
    if num_leaves < 1:
        raise ValidationError(f"star needs >= 1 leaf, got {num_leaves}")
    return Network.from_link_pairs(
        [(0, i) for i in range(1, num_leaves + 1)],
        capacity,
        wavelength_rate,
        name=f"star{num_leaves}",
    )


def grid2d(
    rows: int, cols: int, capacity: int = 1, wavelength_rate: float = 1.0
) -> Network:
    """``rows x cols`` mesh; nodes are ``(r, c)`` tuples."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValidationError(f"grid2d needs >= 2 nodes, got {rows}x{cols}")
    pairs = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                pairs.append(((r, c), (r, c + 1)))
            if r + 1 < rows:
                pairs.append(((r, c), (r + 1, c)))
    return Network.from_link_pairs(
        pairs, capacity, wavelength_rate, name=f"grid{rows}x{cols}"
    )


def full_mesh(
    num_nodes: int, capacity: int = 1, wavelength_rate: float = 1.0
) -> Network:
    """Complete graph of link pairs."""
    if num_nodes < 2:
        raise ValidationError(f"full_mesh needs >= 2 nodes, got {num_nodes}")
    pairs = [
        (i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)
    ]
    return Network.from_link_pairs(
        pairs, capacity, wavelength_rate, name=f"mesh{num_nodes}"
    )


def dumbbell(
    side_nodes: int,
    capacity: int = 1,
    bottleneck_capacity: int | None = None,
    wavelength_rate: float = 1.0,
) -> Network:
    """Two stars joined by a single (optionally thinner) bottleneck link.

    Left leaves are ``("L", i)``, right leaves ``("R", i)``; the hubs are
    ``"hubL"`` and ``"hubR"``.  Useful for exercising contention: every
    cross transfer shares the hub-to-hub link pair.
    """
    if side_nodes < 1:
        raise ValidationError(f"dumbbell needs >= 1 node per side, got {side_nodes}")
    net = Network(wavelength_rate=wavelength_rate, name=f"dumbbell{side_nodes}")
    for i in range(side_nodes):
        net.add_link_pair(("L", i), "hubL", capacity)
        net.add_link_pair(("R", i), "hubR", capacity)
    net.add_link_pair(
        "hubL",
        "hubR",
        bottleneck_capacity if bottleneck_capacity is not None else capacity,
    )
    return net
